package tbtm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtm/internal/adaptive"
	"tbtm/internal/core"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRetryParksInsteadOfPolling is the acceptance test for the
// event-driven blocking layer, run against every consistency criterion:
// a consumer blocked on an empty condition must park (no retry-loop
// iterations while blocked — the abort counter stays frozen) and wake
// within one committed producer update.
func TestRetryParksInsteadOfPolling(t *testing.T) {
	for _, level := range allLevels {
		t.Run(level.String(), func(t *testing.T) {
			tm := MustNew(WithConsistency(level), WithBlockingRetry())
			flag := NewVar(tm, 0)

			got := make(chan int, 1)
			go func() {
				th := tm.NewThread()
				var v int
				err := th.Atomic(Short, func(tx Tx) error {
					var err error
					if v, err = flag.Read(tx); err != nil {
						return err
					}
					if v == 0 {
						return Retry(tx)
					}
					return flag.Write(tx, 0)
				})
				if err != nil {
					t.Errorf("consumer: %v", err)
				}
				got <- v
			}()

			waitFor(t, "consumer to park", func() bool { return tm.Stats().Parks >= 1 })
			// Parked means parked: no transaction attempts accrue while
			// the condition is unchanged.
			frozen := tm.Stats().Aborts
			time.Sleep(20 * time.Millisecond)
			if now := tm.Stats().Aborts; now != frozen {
				t.Fatalf("parked consumer kept polling: aborts %d -> %d", frozen, now)
			}

			th := tm.NewThread()
			if err := th.Atomic(Short, func(tx Tx) error { return flag.Write(tx, 7) }); err != nil {
				t.Fatalf("producer: %v", err)
			}
			select {
			case v := <-got:
				if v != 7 {
					t.Fatalf("consumer read %d, want 7", v)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("consumer did not wake after the producer's commit")
			}
			st := tm.Stats()
			if st.Parks < 1 || st.Wakeups < 1 {
				t.Fatalf("stats parks=%d wakeups=%d, want >= 1 each", st.Parks, st.Wakeups)
			}
		})
	}
}

// TestRetryWithoutBlockingOptionPolls pins the degraded mode: without
// WithBlockingRetry, Retry is an ordinary backoff retry and still
// completes once the condition flips.
func TestRetryWithoutBlockingOptionPolls(t *testing.T) {
	tm := MustNew()
	flag := NewVar(tm, 0)
	done := make(chan error, 1)
	go func() {
		th := tm.NewThread()
		done <- th.Atomic(Short, func(tx Tx) error {
			v, err := flag.Read(tx)
			if err != nil {
				return err
			}
			if v == 0 {
				return Retry(tx)
			}
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	th := tm.NewThread()
	if err := th.Atomic(Short, func(tx Tx) error { return flag.Write(tx, 1) }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("polling Retry never completed")
	}
	if p := tm.Stats().Parks; p != 0 {
		t.Fatalf("parks = %d on a non-blocking TM", p)
	}
}

// TestRetryEmptyFootprintFallsBack: a body that retries before reading
// anything has nothing to park on; with a retry budget the loop must
// terminate in ErrRetriesExhausted wrapping ErrRetryWait rather than
// hang.
func TestRetryEmptyFootprintFallsBack(t *testing.T) {
	tm := MustNew(WithBlockingRetry(), WithMaxRetries(4))
	th := tm.NewThread()
	err := th.Atomic(Short, func(tx Tx) error { return Retry(tx) })
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, ErrRetryWait) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping ErrRetryWait", err)
	}
	if p := tm.Stats().Parks; p != 0 {
		t.Fatalf("parked %d times on an empty footprint", p)
	}
}

// TestRetryNoReadSetsFootprintPolls covers the other empty-footprint
// shape: a declared read-only transaction under WithNoReadSets performs
// reads but records no read set, so a Retry from it hands the blocking
// layer nothing to park on. The loop must degrade to bounded backoff
// polling — each re-run takes a fresh snapshot and eventually observes
// the writer's commit — rather than park on an empty watch set and hang.
func TestRetryNoReadSetsFootprintPolls(t *testing.T) {
	tm := MustNew(WithConsistency(Linearizable), WithNoReadSets(), WithBlockingRetry())
	flag := NewVar(tm, int64(0))

	done := make(chan error, 1)
	go func() {
		th := tm.NewThread()
		done <- th.AtomicReadOnly(Short, func(tx Tx) error {
			v, err := flag.Read(tx)
			if err != nil {
				return err
			}
			if v == int64(0) {
				return Retry(tx)
			}
			return nil
		})
	}()

	time.Sleep(20 * time.Millisecond) // let the reader reach the empty-footprint retry path
	wr := tm.NewThread()
	if err := wr.Atomic(Short, func(tx Tx) error { return flag.Write(tx, int64(1)) }); err != nil {
		t.Fatalf("writer: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reader err = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader hung: empty-footprint Retry must fall back to polling")
	}
	if p := tm.Stats().Parks; p != 0 {
		t.Fatalf("parked %d times with no recorded footprint", p)
	}
}

func TestAtomicOrElseTakesAlternative(t *testing.T) {
	tm := MustNew(WithBlockingRetry())
	a, b := NewVar(tm, 0), NewVar(tm, 5)
	th := tm.NewThread()
	var from string
	err := th.AtomicOrElse(Short,
		func(tx Tx) error {
			v, err := a.Read(tx)
			if err != nil {
				return err
			}
			if v == 0 {
				return Retry(tx)
			}
			from = "a"
			return a.Write(tx, v-1)
		},
		func(tx Tx) error {
			v, err := b.Read(tx)
			if err != nil {
				return err
			}
			if v == 0 {
				return Retry(tx)
			}
			from = "b"
			return b.Write(tx, v-1)
		})
	if err != nil || from != "b" {
		t.Fatalf("err=%v from=%q, want nil/b", err, from)
	}
	if p := tm.Stats().Parks; p != 0 {
		t.Fatalf("parked %d times though the alternative could run", p)
	}
}

// TestAtomicOrElseParksOnUnion: when both alternatives retry, the
// thread must wake on a change to either footprint — here the second
// alternative's variable is the one the producer eventually bumps.
func TestAtomicOrElseParksOnUnion(t *testing.T) {
	tm := MustNew(WithBlockingRetry())
	a, b := NewVar(tm, 0), NewVar(tm, 0)
	done := make(chan string, 1)
	go func() {
		th := tm.NewThread()
		var from string
		err := th.AtomicOrElse(Short,
			func(tx Tx) error {
				v, err := a.Read(tx)
				if err != nil {
					return err
				}
				if v == 0 {
					return Retry(tx)
				}
				from = "a"
				return nil
			},
			func(tx Tx) error {
				v, err := b.Read(tx)
				if err != nil {
					return err
				}
				if v == 0 {
					return Retry(tx)
				}
				from = "b"
				return nil
			})
		if err != nil {
			t.Errorf("orElse: %v", err)
		}
		done <- from
	}()
	waitFor(t, "orElse to park", func() bool { return tm.Stats().Parks >= 1 })
	th := tm.NewThread()
	if err := th.Atomic(Short, func(tx Tx) error { return b.Write(tx, 1) }); err != nil {
		t.Fatal(err)
	}
	select {
	case from := <-done:
		if from != "b" {
			t.Fatalf("woke from %q, want b", from)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("union park missed the second alternative's footprint")
	}
}

// TestSpuriousWakeupCounted: two consumers park on one variable; a
// single produced token wakes both, one consumes it, and the other must
// re-park — counted as a spurious wakeup.
func TestSpuriousWakeupCounted(t *testing.T) {
	tm := MustNew(WithBlockingRetry())
	tokens := NewVar(tm, 0)
	consume := func(th *Thread) error {
		return th.Atomic(Short, func(tx Tx) error {
			v, err := tokens.Read(tx)
			if err != nil {
				return err
			}
			if v == 0 {
				return Retry(tx)
			}
			return tokens.Write(tx, v-1)
		})
	}
	var done sync.WaitGroup
	for i := 0; i < 2; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			if err := consume(tm.NewThread()); err != nil {
				t.Errorf("consumer: %v", err)
			}
		}()
	}
	waitFor(t, "both consumers to park", func() bool { return tm.Stats().Parks >= 2 })
	th := tm.NewThread()
	produce := func() {
		if err := th.Atomic(Short, func(tx Tx) error {
			return tokens.Modify(tx, func(v int) int { return v + 1 })
		}); err != nil {
			t.Errorf("producer: %v", err)
		}
	}
	produce()
	// The loser re-parks; its wakeup was spurious.
	waitFor(t, "spurious wakeup", func() bool { return tm.Stats().SpuriousWakeups >= 1 })
	produce()
	done.Wait()
}

// TestBlockingSemaphoreHammer is the facade-level lost-wakeup torture:
// producers and consumers exchange tokens through one variable; any
// wakeup lost between a consumer's read and its park deadlocks the run
// (caught by the timeout). Exercised on a scalar-clock, a vector-clock
// and the footprint-tracking SI backend.
func TestBlockingSemaphoreHammer(t *testing.T) {
	levels := []Consistency{ZLinearizable, Serializable, SnapshotIsolation}
	producers, consumers, per := 3, 3, 200
	if testing.Short() {
		producers, consumers, per = 2, 2, 50
	}
	// Supply equals demand: every consumer takes a fixed quota, so the
	// run terminates iff no wakeup is ever lost.
	quota := producers * per / consumers
	for _, level := range levels {
		t.Run(level.String(), func(t *testing.T) {
			tm := MustNew(WithConsistency(level), WithBlockingRetry())
			tokens := NewVar(tm, 0)
			var consumed atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < per; i++ {
						if err := th.Atomic(Short, func(tx Tx) error {
							return tokens.Modify(tx, func(v int) int { return v + 1 })
						}); err != nil {
							t.Errorf("produce: %v", err)
							return
						}
					}
				}()
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < quota; i++ {
						err := th.Atomic(Short, func(tx Tx) error {
							v, err := tokens.Read(tx)
							if err != nil {
								return err
							}
							if v == 0 {
								return Retry(tx)
							}
							return tokens.Write(tx, v-1)
						})
						if err != nil {
							t.Errorf("consume: %v", err)
							return
						}
						consumed.Add(1)
					}
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				t.Fatal("hammer deadlocked: lost wakeup")
			}
			if got := consumed.Load(); got != int64(producers*per) {
				t.Fatalf("consumed %d tokens, want %d", got, producers*per)
			}
		})
	}
}

// --- AtomicSite use-after-recycle regression ---

// recycleBackend simulates the descriptor recycler at its most hostile:
// finishing a transaction immediately Resets the descriptor (as the
// real core.Recycler does once the grace period passes), so anything
// read from tx.meta() after Commit/Abort observes the zeroed state.
type recycleBackend struct {
	kinds []TxKind // kind of each begun transaction, in order
}

func (b *recycleBackend) newObject(initial any) any { return nil }
func (b *recycleBackend) stats() Stats              { return Stats{} }
func (b *recycleBackend) newThread() backendThread  { return &recycleThread{b: b} }

type recycleThread struct{ b *recycleBackend }

func (t *recycleThread) id() int { return 0 }
func (t *recycleThread) begin(kind TxKind, ro bool) Tx {
	t.b.kinds = append(t.b.kinds, kind)
	return &recycleTx{m: core.NewTxMeta(kind, 0), kind: kind}
}

type recycleTx struct {
	m    *core.TxMeta
	kind TxKind
}

func (tx *recycleTx) Read(Object) (any, error)              { return nil, nil }
func (tx *recycleTx) Write(Object, any) error               { return nil }
func (tx *recycleTx) Kind() TxKind                          { return tx.kind }
func (tx *recycleTx) meta() *core.TxMeta                    { return tx.m }
func (tx *recycleTx) Commit() error                         { tx.release(); return nil }
func (tx *recycleTx) Abort()                                { tx.release() }
func (tx *recycleTx) release()                              { tx.m.Reset(tx.kind, 0) } // recycled: Prio zeroed
func (tx *recycleTx) watches(buf []core.Watch) []core.Watch { return buf }
func (tx *recycleTx) watchesStale([]core.Watch) bool        { return false }

// TestAtomicSiteObservesOpensBeforeRelease is the regression test for
// the AtomicSite use-after-recycle: the open count fed to the adaptive
// classifier must be captured before Commit/Abort release the
// descriptor. Against a backend that recycles on finish (zeroing Prio,
// as the epoch-gated pools may), the stale read reports 0 opens and the
// classifier can never promote the site.
func TestAtomicSiteObservesOpensBeforeRelease(t *testing.T) {
	b := &recycleBackend{}
	tm := &TM{
		cfg:        config{consistency: ZLinearizable},
		classifier: adaptive.NewClassifier(adaptive.Config{LongOpens: 8}),
	}
	tm.b = b
	th := tm.NewThread()

	for i := 0; i < 3; i++ {
		if err := th.AtomicSite("hot", func(tx Tx) error {
			tx.meta().Prio.Add(16) // 16 opens, twice the promotion threshold
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := th.AtomicSite("hot", func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	last := b.kinds[len(b.kinds)-1]
	if last != Long {
		t.Fatalf("site not promoted (last kind %v): classifier observed the recycled descriptor's zeroed open count", last)
	}
}

// TestAtomicSiteRetryDoesNotFeedClassifier: blocked attempts are not
// contention aborts — a site that merely waits (Retry) many times in a
// row must not accrue an abort streak and get promoted to Long for
// being idle.
func TestAtomicSiteRetryDoesNotFeedClassifier(t *testing.T) {
	b := &recycleBackend{}
	tm := &TM{
		cfg: config{consistency: ZLinearizable},
		// Promotion by footprint is out of reach; only the abort-streak
		// rule (default streak 8, min 8 opens) could misfire.
		classifier: adaptive.NewClassifier(adaptive.Config{LongOpens: 1000}),
	}
	tm.b = b
	th := tm.NewThread()

	waits := 0
	if err := th.AtomicSite("idle", func(tx Tx) error {
		tx.meta().Prio.Add(10)
		if waits < 10 {
			waits++
			return Retry(tx) // no lot, empty footprint: polls and re-runs
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.AtomicSite("idle", func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if last := b.kinds[len(b.kinds)-1]; last != Short {
		t.Fatalf("idle site promoted to %v: Retry attempts fed the classifier's abort streak", last)
	}
}

// --- WatchesStale vs the version recycler ---

// TestWatchesStaleSurvivesRecycling audits every backend's WatchesStale
// against core.Object.InstallRecycled: a parked thread's watch re-check
// runs while other threads install versions that displace, truncate and
// — once the epoch grace period passes — reuse the very version nodes
// the watches were recorded from. Single-version objects retire their
// displaced current version on every commit, which is the most hostile
// recycling schedule. The check must neither dereference a truncated
// tail nor misreport: a churned object is stale, an untouched one is
// not. Run under -race this also proves the Seq reads are pin-protected
// (an unpinned read of a recycled node is a detectable data race).
func TestWatchesStaleSurvivesRecycling(t *testing.T) {
	cases := []struct {
		name string
		kind TxKind
		opts []Option
	}{
		{"lsa", Short, []Option{WithConsistency(Linearizable), WithVersions(1)}},
		{"single-version", Short, []Option{WithConsistency(SingleVersion)}},
		{"zstm-short", Short, []Option{WithConsistency(ZLinearizable), WithVersions(1)}},
		{"zstm-long", Long, []Option{WithConsistency(ZLinearizable), WithVersions(1)}},
		{"cstm", Short, []Option{WithConsistency(CausallySerializable)}},
		{"sstm", Short, []Option{WithConsistency(Serializable)}},
		{"sistm", Short, []Option{WithConsistency(SnapshotIsolation), WithVersions(1)}},
	}
	rounds := 400
	if testing.Short() {
		rounds = 80
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tm := MustNew(append([]Option{WithBlockingRetry()}, tc.opts...)...)
			churned := NewVar(tm, int64(0))
			quiet := NewVar(tm, int64(0))

			rd := tm.NewThread()
			tx := rd.b.begin(tc.kind, false)
			if _, err := tx.Read(churned.Object()); err != nil {
				t.Fatalf("read churned: %v", err)
			}
			if _, err := tx.Read(quiet.Object()); err != nil {
				t.Fatalf("read quiet: %v", err)
			}
			ws := tx.watches(nil)
			if len(ws) != 2 {
				t.Fatalf("watches = %d entries, want 2", len(ws))
			}
			tx.Abort()

			// Churn: displace, truncate and recycle versions of the watched
			// object while the parked-side re-check runs concurrently.
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < rounds; i++ {
						_ = th.Atomic(Short, func(btx Tx) error {
							return churned.Write(btx, int64(w*rounds+i))
						})
					}
				}(w)
			}
			stop := make(chan struct{})
			checks := make(chan bool, 1)
			go func() {
				stale := false
				for {
					select {
					case <-stop:
						checks <- stale
						return
					default:
						stale = tx.watchesStale(ws)
					}
				}
			}()
			wg.Wait()
			close(stop)
			<-checks

			if !tx.watchesStale(ws) {
				t.Fatal("watchesStale = false after the watched object was overwritten hundreds of times")
			}
			// The quiet object alone must still read as fresh.
			quietOnly := ws[1:]
			if tx.watchesStale(quietOnly) {
				t.Fatal("watchesStale = true for an untouched object")
			}
		})
	}
}
