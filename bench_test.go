// Benchmarks regenerating the paper's evaluation (§5.5): one benchmark
// per figure panel plus the ablation experiments of DESIGN.md §4. Each
// panel benchmark measures the latency of the panel's transaction type
// while the paper's background workload runs (thread 0 is the measuring
// thread; the remaining threads run transfers); throughput in the
// figures' units is 1e9/(ns/op). cmd/bankbench produces the full
// duration-based tables.
package tbtm_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tbtm"
	"tbtm/internal/bank"
	"tbtm/internal/workload"
)

const benchAccounts = 1000

type benchSeries struct {
	name string
	opts []tbtm.Option
}

func figureSeries(update bool) []benchSeries {
	series := []benchSeries{
		{"LSA-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)}},
	}
	if !update {
		series = append(series, benchSeries{
			"LSA-STM-no-readsets",
			[]tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithNoReadSets(), tbtm.WithVersions(1024)},
		})
	}
	series = append(series, benchSeries{
		"Z-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)},
	})
	return series
}

// withBankLoad runs fn on a measuring thread while workers-1 background
// goroutines execute transfers, reproducing the figures' setup.
func withBankLoad(b *testing.B, opts []tbtm.Option, workers int, fn func(b *testing.B, bk *bank.Bank, th *tbtm.Thread)) {
	b.Helper()
	tm, err := tbtm.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	bk := bank.New(tm, benchAccounts, 1000)
	bk.YieldEvery = 50

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			pick := workload.NewPicker(benchAccounts, workload.Uniform, int64(w)*7919)
			for !stop.Load() {
				runtime.Gosched() // transaction-granularity round-robin
				from, to := pick.NextPair()
				_ = bk.Transfer(th, from, to, 1)
			}
		}(w)
	}

	th := tm.NewThread()
	b.ResetTimer()
	fn(b, bk, th)
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	if err := bk.CheckInvariant(tm.NewThread()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure6ComputeTotal regenerates Figure 6 (left): read-only
// Compute-Total latency under transfer load, per STM and thread count.
// The thread axis is trimmed to {1,2,8}: with transaction-granularity
// round-robin scheduling, per-operation latency grows with the worker
// count, and testing.B's iteration scaling would stretch high-thread
// panels past practical budgets. cmd/bankbench runs the full
// {1,2,8,16,32} axis with duration-based measurement.
func BenchmarkFigure6ComputeTotal(b *testing.B) {
	for _, s := range figureSeries(false) {
		for _, threads := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, threads), func(b *testing.B) {
				withBankLoad(b, s.opts, threads, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
					for i := 0; i < b.N; i++ {
						total, err := bk.ComputeTotal(th)
						if err != nil {
							b.Fatal(err)
						}
						if total != bk.ExpectedTotal() {
							b.Fatalf("total = %d, want %d", total, bk.ExpectedTotal())
						}
					}
				})
			})
		}
	}
}

// BenchmarkFigure6Transfer regenerates Figure 6 (right): transfer latency
// under the same configurations.
func BenchmarkFigure6Transfer(b *testing.B) {
	for _, s := range figureSeries(false) {
		for _, threads := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, threads), func(b *testing.B) {
				withBankLoad(b, s.opts, threads, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
					pick := workload.NewPicker(benchAccounts, workload.Uniform, 1)
					for i := 0; i < b.N; i++ {
						from, to := pick.NextPair()
						if err := bk.Transfer(th, from, to, 1); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkFigure7ComputeTotal regenerates Figure 7 (left): update
// Compute-Total latency under transfer load. Under LSA-STM with
// concurrent transfers the long update transaction retries until the
// system quiesces, which is the paper's starvation result — expect
// multi-millisecond (or worse) ns/op at higher thread counts versus
// Z-STM's steady latency. The thread counts are kept low for LSA-STM so
// the benchmark terminates.
func BenchmarkFigure7ComputeTotal(b *testing.B) {
	private := struct{ v *tbtm.Var[int64] }{}
	for _, s := range []benchSeries{
		{"LSA-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)}},
		{"Z-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)}},
	} {
		threadCounts := []int{1, 2, 8}
		if s.name == "LSA-STM" {
			// With any concurrent transfer worker, LSA-STM's long update
			// transaction is starved indefinitely (the Figure 7 result);
			// a b.N-based benchmark would never terminate. Measure only
			// the uncontended point and see cmd/bankbench for the
			// duration-based collapse at higher thread counts.
			threadCounts = []int{1}
		}
		for _, threads := range threadCounts {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, threads), func(b *testing.B) {
				withBankLoad(b, s.opts, threads, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
					private.v = tbtm.NewVar(th.TM(), int64(0))
					for i := 0; i < b.N; i++ {
						total, err := bk.ComputeTotalUpdate(th, private.v)
						if err != nil {
							b.Fatal(err)
						}
						if total != bk.ExpectedTotal() {
							b.Fatalf("total = %d, want %d", total, bk.ExpectedTotal())
						}
					}
				})
			})
		}
	}
}

// BenchmarkFigure7Transfer regenerates Figure 7 (right): transfer latency
// while a background goroutine continuously runs update Compute-Totals.
func BenchmarkFigure7Transfer(b *testing.B) {
	for _, s := range []benchSeries{
		{"LSA-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)}},
		{"Z-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)}},
	} {
		for _, threads := range []int{2, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, threads), func(b *testing.B) {
				tm, err := tbtm.New(s.opts...)
				if err != nil {
					b.Fatal(err)
				}
				bk := bank.New(tm, benchAccounts, 1000)
				bk.YieldEvery = 50
				var stop atomic.Bool
				var wg sync.WaitGroup
				// One background long-update-total worker (best effort —
				// under LSA-STM it starves, which is the point).
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					private := tbtm.NewVar(tm, int64(0))
					for !stop.Load() {
						_, _ = bk.ComputeTotalUpdate(th, private)
					}
				}()
				// threads-2 background transfer workers.
				for w := 2; w < threads; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						th := tm.NewThread()
						pick := workload.NewPicker(benchAccounts, workload.Uniform, int64(w)*104729)
						for !stop.Load() {
							from, to := pick.NextPair()
							_ = bk.Transfer(th, from, to, 1)
						}
					}(w)
				}
				th := tm.NewThread()
				pick := workload.NewPicker(benchAccounts, workload.Uniform, 99)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					from, to := pick.NextPair()
					if err := bk.Transfer(th, from, to, 1); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				stop.Store(true)
				wg.Wait()
			})
		}
	}
}

// BenchmarkAblationClockOverhead measures A1 (DESIGN.md §4): the per-
// transfer cost of the scalar counter versus vector and plausible time
// bases, single-threaded so only bookkeeping differs (§4.4/§6: vector
// time overhead "can be quite significant").
func BenchmarkAblationClockOverhead(b *testing.B) {
	for _, s := range []benchSeries{
		{"LSA-counter", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable)}},
		{"CS-vector16", []tbtm.Option{tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithThreads(16)}},
		{"CS-plausible2", []tbtm.Option{tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithThreads(16), tbtm.WithPlausibleEntries(2)}},
		{"S-STM-vector16", []tbtm.Option{tbtm.WithConsistency(tbtm.Serializable), tbtm.WithThreads(16)}},
	} {
		b.Run(s.name, func(b *testing.B) {
			tm, err := tbtm.New(s.opts...)
			if err != nil {
				b.Fatal(err)
			}
			bk := bank.New(tm, benchAccounts, 1000)
			th := tm.NewThread()
			pick := workload.NewPicker(benchAccounts, workload.Uniform, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from, to := pick.NextPair()
				if err := bk.Transfer(th, from, to, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlausibleR measures A2: per-transfer latency
// (including retries caused by false conflicts) as the plausible-clock
// width r shrinks, under background transfer contention (§4.3: smaller r
// orders more concurrent events, producing unnecessary aborts).
func BenchmarkAblationPlausibleR(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts []tbtm.Option
	}{
		{"r=1", []tbtm.Option{tbtm.WithPlausibleEntries(1)}},
		{"r=2", []tbtm.Option{tbtm.WithPlausibleEntries(2)}},
		{"r=2+comb", []tbtm.Option{tbtm.WithPlausibleEntries(2), tbtm.WithPlausibleComb()}},
		{"r=4", []tbtm.Option{tbtm.WithPlausibleEntries(4)}},
		{"r=16", []tbtm.Option{tbtm.WithPlausibleEntries(16)}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			tm, err := tbtm.New(append([]tbtm.Option{
				tbtm.WithConsistency(tbtm.CausallySerializable),
				tbtm.WithThreads(16),
			}, cfg.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			bk := bank.New(tm, benchAccounts, 1000)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := tm.NewThread()
					pick := workload.NewPicker(benchAccounts, workload.Uniform, int64(w)*6151)
					for !stop.Load() {
						from, to := pick.NextPair()
						_ = bk.Transfer(th, from, to, 1)
					}
				}(w)
			}
			th := tm.NewThread()
			pick := workload.NewPicker(benchAccounts, workload.Uniform, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from, to := pick.NextPair()
				if err := bk.Transfer(th, from, to, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}

// BenchmarkAblationVersions measures A3: read-only Compute-Total latency
// under transfer load with multi-version versus single-version objects
// (§4.4: "single-version objects can decrease performance"). Every
// series bounds the retry loop: under single-version objects the scan
// can starve outright on a busy host (the paper's phenomenon, taken to
// its limit), and an unbounded Atomic would turn the benchmark into a
// livelock; starved scans are reported as a metric instead.
func BenchmarkAblationVersions(b *testing.B) {
	for _, s := range []benchSeries{
		{"multi-8", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(8), tbtm.WithMaxRetries(2000)}},
		{"multi-1024", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024), tbtm.WithMaxRetries(2000)}},
		{"single-TL2", []tbtm.Option{tbtm.WithConsistency(tbtm.SingleVersion), tbtm.WithMaxRetries(2000)}},
	} {
		b.Run(s.name, func(b *testing.B) {
			withBankLoad(b, s.opts, 4, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
				starved := 0
				for i := 0; i < b.N; i++ {
					if _, err := bk.ComputeTotal(th); err != nil {
						if errors.Is(err, tbtm.ErrRetriesExhausted) {
							starved++
							continue
						}
						b.Fatal(err)
					}
				}
				if starved > 0 {
					b.ReportMetric(float64(starved)/float64(b.N), "starved/op")
				}
			})
		})
	}
}

// BenchmarkLongCommitCost measures A4: the quiescent cost of one long
// read-only scan plus commit. Z-STM's long commit is a single check
// against CT (§6 factor 2) and it keeps no read set (factor 1); LSA-STM
// pays read-set maintenance, the no-readset variant avoids it.
func BenchmarkLongCommitCost(b *testing.B) {
	for _, s := range figureSeries(false) {
		b.Run(s.name, func(b *testing.B) {
			tm, err := tbtm.New(s.opts...)
			if err != nil {
				b.Fatal(err)
			}
			bk := bank.New(tm, benchAccounts, 1000)
			th := tm.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bk.ComputeTotal(th); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationValidationFastPath measures A5: commit cost of an
// uncontended read-modify-write transaction as the read set grows, with
// and without the RSTM-style validation fast path (§3). Without the fast
// path commit-time validation is O(read set); with it, an unchanged
// commit counter collapses validation to one comparison.
func BenchmarkAblationValidationFastPath(b *testing.B) {
	for _, fast := range []bool{false, true} {
		for _, reads := range []int{8, 64, 512} {
			name := fmt.Sprintf("fastpath=%v/reads=%d", fast, reads)
			b.Run(name, func(b *testing.B) {
				opts := []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable)}
				if fast {
					opts = append(opts, tbtm.WithValidationFastPath())
				}
				tm, err := tbtm.New(opts...)
				if err != nil {
					b.Fatal(err)
				}
				vars := make([]*tbtm.Var[int64], reads)
				for i := range vars {
					vars[i] = tbtm.NewVar(tm, int64(i))
				}
				th := tm.NewThread()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
						for _, v := range vars {
							if _, err := v.Read(tx); err != nil {
								return err
							}
						}
						return vars[0].Modify(tx, func(x int64) int64 { return x + 1 })
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSnapshotIsolation measures A6: the Figure 7 workload
// (update Compute-Total under transfer load) on SI-STM versus Z-STM.
// Both sustain the long update transaction — SI because reads are never
// validated, Z-STM through zones — but SI pays for it with weaker
// semantics (write skew; see examples/writeskew), which is the paper's
// §4.1 trade-off made measurable.
func BenchmarkAblationSnapshotIsolation(b *testing.B) {
	for _, s := range []benchSeries{
		{"SI-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.SnapshotIsolation), tbtm.WithVersions(1024)}},
		{"Z-STM", []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)}},
	} {
		for _, threads := range []int{2, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, threads), func(b *testing.B) {
				withBankLoad(b, s.opts, threads, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
					private := tbtm.NewVar(th.TM(), int64(0))
					for i := 0; i < b.N; i++ {
						total, err := bk.ComputeTotalUpdate(th, private)
						if err != nil {
							b.Fatal(err)
						}
						if total != bk.ExpectedTotal() {
							b.Fatalf("total = %d, want %d", total, bk.ExpectedTotal())
						}
					}
				})
			})
		}
	}
}

// BenchmarkAblationMultiVersionCS measures A12: the benefit of §4.1
// footnote 1 ("keeping multiple versions would allow a transaction to
// choose the version that maximizes the chances of successful
// validation") on a long read-only scan under transfer churn. Both
// series bound the scan to 20 attempts; the commit-rate metric shows
// single-version CS-STM starving where the multi-version variant reads
// old retained versions and commits.
func BenchmarkAblationMultiVersionCS(b *testing.B) {
	for _, s := range []benchSeries{
		{"single-version", []tbtm.Option{
			tbtm.WithConsistency(tbtm.CausallySerializable),
			tbtm.WithThreads(16), tbtm.WithMaxRetries(20)}},
		{"multi-8", []tbtm.Option{
			tbtm.WithConsistency(tbtm.CausallySerializable),
			tbtm.WithThreads(16), tbtm.WithMaxRetries(20), tbtm.WithVersions(8)}},
	} {
		b.Run(s.name, func(b *testing.B) {
			withBankLoad(b, s.opts, 2, func(b *testing.B, bk *bank.Bank, th *tbtm.Thread) {
				var ok int
				for i := 0; i < b.N; i++ {
					total, err := bk.ComputeTotal(th)
					switch {
					case err == nil && total != bk.ExpectedTotal():
						b.Fatalf("total = %d, want %d", total, bk.ExpectedTotal())
					case err == nil:
						ok++
					case !errors.Is(err, tbtm.ErrRetriesExhausted):
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(ok)/float64(b.N), "commit-rate")
			})
		})
	}
}

// BenchmarkAblationContentionManagers measures A11: contended transfer
// latency (including retries) under each arbitration policy — the
// "configurable module ... responsible for the liveness of the system"
// of §4.1 made comparable.
func BenchmarkAblationContentionManagers(b *testing.B) {
	for _, s := range []struct {
		name   string
		policy tbtm.Contention
	}{
		{"polite", tbtm.ContentionPolite},
		{"aggressive", tbtm.ContentionAggressive},
		{"karma", tbtm.ContentionKarma},
		{"timestamp", tbtm.ContentionTimestamp},
		{"greedy", tbtm.ContentionGreedy},
		{"randomized", tbtm.ContentionRandomized},
	} {
		b.Run(s.name, func(b *testing.B) {
			tm, err := tbtm.New(tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithContention(s.policy))
			if err != nil {
				b.Fatal(err)
			}
			// A small account pool maximizes write/write conflicts.
			bk := bank.New(tm, 16, 1000)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := tm.NewThread()
					pick := workload.NewPicker(16, workload.Uniform, int64(w)*2671)
					for !stop.Load() {
						from, to := pick.NextPair()
						_ = bk.Transfer(th, from, to, 1)
					}
				}(w)
			}
			th := tm.NewThread()
			pick := workload.NewPicker(16, workload.Uniform, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from, to := pick.NextPair()
				if err := bk.Transfer(th, from, to, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			if err := bk.CheckInvariant(tm.NewThread()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAtomicOverhead measures the facade's per-transaction floor: an
// empty short transaction through Atomic.
func BenchmarkAtomicOverhead(b *testing.B) {
	for _, s := range []benchSeries{
		{"linearizable", []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable)}},
		{"z-linearizable", []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable)}},
	} {
		b.Run(s.name, func(b *testing.B) {
			tm, err := tbtm.New(s.opts...)
			if err != nil {
				b.Fatal(err)
			}
			v := tbtm.NewVar(tm, int64(0))
			th := tm.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					_, err := v.Read(tx)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCommitLogExtension is the long-reader-vs-writers
// ablation for the PR4 commit log: one read-only transaction scans n
// objects while a background writer keeps committing to objects ahead
// of the scan, so every few reads the reader must extend its snapshot
// past a fresh commit. With the commit log each extension checks only
// the handful of log records since the previous extension
// (ExtensionsFast); without it each extension revalidates the whole
// read set so far, and the scan degenerates to O(n²) object touches.
// The per-op extension counters are reported so the scaling is visible
// regardless of wall-clock noise.
func BenchmarkAblationCommitLogExtension(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, logOn := range []bool{true, false} {
			label := "log-off"
			if logOn {
				label = "log-on"
			}
			b.Run(fmt.Sprintf("reads=%d/%s", n, label), func(b *testing.B) {
				opts := []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(8)}
				if !logOn {
					opts = append(opts, tbtm.WithCommitLog(0))
				}
				tm := tbtm.MustNew(opts...)
				objs := make([]tbtm.Object, n)
				for i := range objs {
					objs[i] = tm.NewObject(int64(0))
				}

				var (
					pos  atomic.Int64 // reader's scan position
					stop atomic.Bool
					wg   sync.WaitGroup
				)
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					val := int64(0)
					for !stop.Load() {
						// Write strictly ahead of the reader so the scan keeps
						// tripping over fresh commits without invalidating
						// what it already read.
						i := int(pos.Load())
						if i+1 >= n {
							runtime.Gosched()
							continue
						}
						j := i + 1 + (i*7+int(val))%(n-i-1)
						val++
						_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
							return tx.Write(objs[j], val)
						})
						runtime.Gosched()
					}
				}()

				th := tm.NewThread()
				before := tm.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pos.Store(0)
					err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
						for k := 0; k < n; k++ {
							pos.Store(int64(k))
							if k%8 == 0 {
								// Transaction-granularity scheduling on a single
								// CPU would let the scan run to completion
								// unopposed; yielding keeps the writer committing
								// ahead of it (cf. withBankLoad's YieldEvery).
								runtime.Gosched()
							}
							if _, err := tx.Read(objs[k]); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := tm.Stats()
				stop.Store(true)
				wg.Wait()
				ops := float64(b.N)
				b.ReportMetric(float64(after.ExtensionsFast-before.ExtensionsFast)/ops, "ext-fast/op")
				b.ReportMetric(float64(after.ExtensionsFull-before.ExtensionsFull)/ops, "ext-full/op")
				b.ReportMetric(float64(after.LogWraps-before.LogWraps)/ops, "wraps/op")
			})
		}
	}
}
