package tbtm

import (
	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/cstm"
	"tbtm/internal/lsa"
	"tbtm/internal/sistm"
	"tbtm/internal/sstm"
	"tbtm/internal/vclock"
	"tbtm/internal/zstm"
)

// backoff delegates to the shared truncated exponential backoff.
func backoff(round int) { cm.Backoff(round) }

func buildCM(cfg config) cm.Manager {
	switch cfg.contention {
	case ContentionPolite:
		return &cm.Polite{}
	case ContentionAggressive:
		return cm.Aggressive{}
	case ContentionSuicide:
		return cm.Suicide{}
	case ContentionKarma:
		return cm.Karma{}
	case ContentionTimestamp:
		return cm.Timestamp{}
	case ContentionGreedy:
		return cm.Greedy{}
	case ContentionRandomized:
		return &cm.Randomized{}
	case ContentionZoneAware:
		return &cm.ZoneAware{}
	default:
		if cfg.consistency == ZLinearizable {
			return &cm.ZoneAware{}
		}
		return &cm.Polite{}
	}
}

func buildClock(cfg config) clock.TimeBase {
	if cfg.timeBase != nil {
		// The facade TimeBase has the identical method set, so the value
		// satisfies the kernel interface directly.
		return cfg.timeBase
	}
	if cfg.realTime {
		return clock.NewSimRealTime(cfg.rtMaxThreads, cfg.rtEpsilon, cfg.rtTick)
	}
	if cfg.stripedClock {
		return clock.NewStripedCounter(cfg.stripedSlots)
	}
	if cfg.sharedCommitTimes {
		return clock.NewSharingCounter()
	}
	return clock.NewCounter()
}

func buildBackend(cfg config, tm *TM) backend {
	switch cfg.consistency {
	case Linearizable:
		return &lsaBackend{tm: tm, stm: lsa.New(lsa.Config{
			Clock:              buildClock(cfg),
			CM:                 buildCM(cfg),
			Versions:           cfg.versions,
			NoReadSets:         cfg.noReadSets,
			ValidationFastPath: cfg.validationFastPath,
			Lot:                tm.lot,
			CommitLog:          cfg.commitLog,
		})}
	case SingleVersion:
		return &lsaBackend{tm: tm, stm: lsa.New(lsa.Config{
			Clock:              buildClock(cfg),
			CM:                 buildCM(cfg),
			Versions:           1,
			NoExtension:        true,
			NoReadSets:         cfg.noReadSets,
			ValidationFastPath: cfg.validationFastPath,
			Lot:                tm.lot,
			CommitLog:          cfg.commitLog,
		})}
	case CausallySerializable:
		csVersions := 1 // the paper's base CS-STM keeps no old versions
		if cfg.versionsSet {
			csVersions = cfg.versions
		}
		return &csBackend{tm: tm, stm: cstm.New(cstm.Config{
			Threads:   cfg.threads,
			Entries:   cfg.entries,
			Mapping:   vclock.Mapping(cfg.mapping),
			Comb:      cfg.comb,
			CM:        buildCM(cfg),
			Versions:  csVersions,
			Lot:       tm.lot,
			CommitLog: cfg.commitLog,
		})}
	case Serializable:
		return &ssBackend{tm: tm, stm: sstm.New(sstm.Config{
			Threads:       cfg.threads,
			Entries:       cfg.entries,
			Mapping:       vclock.Mapping(cfg.mapping),
			Comb:          cfg.comb,
			CM:            buildCM(cfg),
			CommitStripes: cfg.commitStripes,
			Lot:           tm.lot,
			CommitLog:     cfg.commitLog,
		})}
	case SnapshotIsolation:
		return &siBackend{tm: tm, stm: sistm.New(sistm.Config{
			Clock:     buildClock(cfg),
			CM:        buildCM(cfg),
			Versions:  cfg.versions,
			Lot:       tm.lot,
			CommitLog: cfg.commitLog,
		})}
	default: // ZLinearizable (validated in New)
		return &zBackend{tm: tm, stm: zstm.New(zstm.Config{
			Clock:              buildClock(cfg),
			CM:                 buildCM(cfg),
			Versions:           cfg.versions,
			NoReadSets:         cfg.noReadSets,
			ZonePatience:       cfg.zonePatience,
			ValidationFastPath: cfg.validationFastPath,
			Lot:                tm.lot,
			CommitLog:          cfg.commitLog,
		})}
	}
}

// innerTx is the shape every STM implementation's transaction type
// shares, parameterized by its object type. Done reports that the
// transaction finished (committed or aborted) and must tolerate a nil
// receiver, so a never-used wrapper slot recycles uniformly. Watches and
// WatchesStale expose the read footprint to the blocking layer: Watches
// appends (object ID, read-version Seq, object handle) triples, and
// WatchesStale re-checks whether any watched object has advanced,
// re-entering the thread's epoch critical section when the backend
// recycles versions.
type innerTx[O any] interface {
	Read(O) (any, error)
	Write(O, any) error
	Commit() error
	Abort()
	Meta() *core.TxMeta
	Done() bool
	Watches(buf []core.Watch) []core.Watch
	WatchesStale(ws []core.Watch) bool
}

// adaptedTx lifts an implementation transaction to the facade Tx,
// checking object affinity on every access. Wrappers are embedded in
// their backend thread and recycled by begin — allocating one per
// attempt would put a facade allocation back on the hot path that the
// backends' descriptor reuse just removed.
type adaptedTx[O any, T innerTx[O]] struct {
	tm   *TM
	kind TxKind
	tx   T
}

// beginAdapted recycles slot for a fresh backend transaction, falling
// back to a new wrapper while the previous facade transaction is still
// in flight (a contract violation, but tolerated — see Thread.Begin).
// reuse must be sampled from slot.tx.Done() BEFORE beginning the
// backend transaction: the backend recycles its descriptor in place, so
// after its Begin the slot's old pointer already looks live again.
func beginAdapted[O any, T innerTx[O]](slot *adaptedTx[O, T], reuse bool, tm *TM, kind TxKind, tx T) Tx {
	a := slot
	if !reuse {
		a = &adaptedTx[O, T]{}
	}
	a.tm, a.kind, a.tx = tm, kind, tx
	return a
}

var _ Tx = (*adaptedTx[*core.Object, *lsa.Tx])(nil)

func (a *adaptedTx[O, T]) Kind() TxKind       { return a.kind }
func (a *adaptedTx[O, T]) meta() *core.TxMeta { return a.tx.Meta() }
func (a *adaptedTx[O, T]) Commit() error      { return a.tx.Commit() }
func (a *adaptedTx[O, T]) Abort()             { a.tx.Abort() }

func (a *adaptedTx[O, T]) watches(buf []core.Watch) []core.Watch { return a.tx.Watches(buf) }
func (a *adaptedTx[O, T]) watchesStale(ws []core.Watch) bool     { return a.tx.WatchesStale(ws) }

func (a *adaptedTx[O, T]) Read(obj Object) (any, error) {
	o, err := unwrap[O](a.tm, obj)
	if err != nil {
		return nil, err
	}
	return a.tx.Read(o)
}

func (a *adaptedTx[O, T]) Write(obj Object, val any) error {
	o, err := unwrap[O](a.tm, obj)
	if err != nil {
		return err
	}
	return a.tx.Write(o, val)
}

// unwrap extracts a backend object handle, verifying the object belongs
// to the transaction's TM.
func unwrap[O any](tm *TM, obj Object) (O, error) {
	var zero O
	if obj.tm != tm {
		return zero, core.ErrWrongObject
	}
	h, ok := obj.h.(O)
	if !ok {
		return zero, core.ErrWrongObject
	}
	return h, nil
}

// --- LSA / SingleVersion backend ---

type lsaBackend struct {
	tm  *TM
	stm *lsa.STM
}

func (b *lsaBackend) newObject(initial any) any { return b.stm.NewObject(initial) }
func (b *lsaBackend) newThread() backendThread  { return &lsaThread{b: b, th: b.stm.NewThread()} }
func (b *lsaBackend) stats() Stats {
	s := b.stm.Stats()
	return Stats{
		Commits: s.Commits, Aborts: s.Aborts, Conflicts: s.Conflicts,
		Extensions: s.Extensions, FastValidations: s.FastValidations,
		OldVersions: s.OldVersions, SnapshotMisses: s.SnapshotMiss,
		ExtensionsFast: s.ExtensionsFast, ExtensionsFull: s.ExtensionsFull,
		LogWraps: s.LogWraps,
	}
}

type lsaThread struct {
	b   *lsaBackend
	th  *lsa.Thread
	atx adaptedTx[*core.Object, *lsa.Tx]
}

func (t *lsaThread) id() int { return t.th.ID() }
func (t *lsaThread) begin(kind TxKind, ro bool) Tx {
	reuse := t.atx.tx.Done()
	return beginAdapted(&t.atx, reuse, t.b.tm, kind, t.th.Begin(kind, ro))
}

// --- CS-STM backend ---

type csBackend struct {
	tm  *TM
	stm *cstm.STM
}

func (b *csBackend) newObject(initial any) any { return b.stm.NewObject(initial) }
func (b *csBackend) newThread() backendThread  { return &csThread{b: b, th: b.stm.NewThread()} }
func (b *csBackend) stats() Stats {
	s := b.stm.Stats()
	return Stats{
		Commits: s.Commits, Aborts: s.Aborts, Conflicts: s.Conflicts,
		FastValidations: s.FastValidations, LogWraps: s.LogWraps,
	}
}

type csThread struct {
	b   *csBackend
	th  *cstm.Thread
	atx adaptedTx[*cstm.Object, *cstm.Tx]
}

func (t *csThread) id() int { return t.th.ID() }
func (t *csThread) begin(kind TxKind, ro bool) Tx {
	reuse := t.atx.tx.Done()
	return beginAdapted(&t.atx, reuse, t.b.tm, kind, t.th.Begin(kind, ro))
}

// --- S-STM backend ---

type ssBackend struct {
	tm  *TM
	stm *sstm.STM
}

func (b *ssBackend) newObject(initial any) any { return b.stm.NewObject(initial) }
func (b *ssBackend) newThread() backendThread  { return &ssThread{b: b, th: b.stm.NewThread()} }
func (b *ssBackend) stats() Stats {
	s := b.stm.Stats()
	return Stats{
		Commits: s.Commits, Aborts: s.Aborts, Conflicts: s.Conflicts,
		FastValidations: s.FastValidations, LogWraps: s.LogWraps,
	}
}

type ssThread struct {
	b   *ssBackend
	th  *sstm.Thread
	atx adaptedTx[*sstm.Object, *sstm.Tx]
}

func (t *ssThread) id() int { return t.th.ID() }
func (t *ssThread) begin(kind TxKind, ro bool) Tx {
	reuse := t.atx.tx.Done()
	return beginAdapted(&t.atx, reuse, t.b.tm, kind, t.th.Begin(kind, ro))
}

// --- SI-STM backend ---

type siBackend struct {
	tm  *TM
	stm *sistm.STM
}

func (b *siBackend) newObject(initial any) any { return b.stm.NewObject(initial) }
func (b *siBackend) newThread() backendThread  { return &siThread{b: b, th: b.stm.NewThread()} }
func (b *siBackend) stats() Stats {
	s := b.stm.Stats()
	return Stats{
		Commits: s.Commits, Aborts: s.Aborts, Conflicts: s.Conflicts,
		OldVersions: s.OldVersions, SnapshotMisses: s.SnapshotMiss,
		Extensions: s.Advances, ExtensionsFast: s.AdvancesFast,
		ExtensionsFull: s.AdvancesFull, LogWraps: s.LogWraps,
	}
}

type siThread struct {
	b   *siBackend
	th  *sistm.Thread
	atx adaptedTx[*core.Object, *sistm.Tx]
}

func (t *siThread) id() int { return t.th.ID() }
func (t *siThread) begin(kind TxKind, ro bool) Tx {
	reuse := t.atx.tx.Done()
	return beginAdapted(&t.atx, reuse, t.b.tm, kind, t.th.Begin(kind, ro))
}

// --- Z-STM backend ---

type zBackend struct {
	tm  *TM
	stm *zstm.STM
}

func (b *zBackend) newObject(initial any) any { return b.stm.NewObject(initial) }
func (b *zBackend) newThread() backendThread  { return &zThread{b: b, th: b.stm.NewThread()} }
func (b *zBackend) stats() Stats {
	s := b.stm.Stats()
	return Stats{
		Commits:         s.Short.Commits,
		Aborts:          s.Short.Aborts,
		Conflicts:       s.Short.Conflicts,
		Extensions:      s.Short.Extensions,
		ExtensionsFast:  s.Short.ExtensionsFast,
		ExtensionsFull:  s.Short.ExtensionsFull,
		LogWraps:        s.Short.LogWraps,
		FastValidations: s.Short.FastValidations,
		OldVersions:     s.Short.OldVersions,
		SnapshotMisses:  s.Short.SnapshotMiss,
		LongCommits:     s.LongCommits,
		LongAborts:      s.LongAborts,
		ZoneCrosses:     s.ZoneCrosses,
		ZoneWaits:       s.ZoneWaits,
	}
}

type zThread struct {
	b    *zBackend
	th   *zstm.Thread
	satx adaptedTx[*core.Object, *zstm.ShortTx]
	latx adaptedTx[*core.Object, *zstm.LongTx]
}

func (t *zThread) id() int { return t.th.ID() }
func (t *zThread) begin(kind TxKind, ro bool) Tx {
	if kind == Long {
		reuse := t.latx.tx.Done()
		return beginAdapted(&t.latx, reuse, t.b.tm, Long, t.th.BeginLong(ro))
	}
	reuse := t.satx.tx.Done()
	return beginAdapted(&t.satx, reuse, t.b.tm, Short, t.th.BeginShort(ro))
}
