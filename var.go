package tbtm

import "fmt"

// Var is a typed wrapper over a transactional Object. It removes the
// type assertions from application code:
//
//	balance := tbtm.NewVar(tm, int64(100))
//	v, err := balance.Read(tx)   // v is int64
//	err = balance.Write(tx, v+1)
type Var[T any] struct {
	obj Object
}

// NewVar allocates a transactional variable holding initial.
func NewVar[T any](tm *TM, initial T) *Var[T] {
	return &Var[T]{obj: tm.NewObject(initial)}
}

// Object returns the underlying untyped handle.
func (v *Var[T]) Object() Object { return v.obj }

// Read returns the transaction's view of the variable.
func (v *Var[T]) Read(tx Tx) (T, error) {
	var zero T
	raw, err := tx.Read(v.obj)
	if err != nil {
		return zero, err
	}
	val, ok := raw.(T)
	if !ok {
		return zero, fmt.Errorf("tbtm: Var holds %T, not %T", raw, zero)
	}
	return val, nil
}

// Write buffers an update of the variable to val.
func (v *Var[T]) Write(tx Tx, val T) error {
	return tx.Write(v.obj, val)
}

// Modify reads the variable, applies f, and writes the result back.
func (v *Var[T]) Modify(tx Tx, f func(T) T) error {
	val, err := v.Read(tx)
	if err != nil {
		return err
	}
	return v.Write(tx, f(val))
}
