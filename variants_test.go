package tbtm

import (
	"errors"
	"sync"
	"testing"
)

// Facade wiring for the §4.1 footnote 1 and §4.3 [12] variants:
// multi-version CS-STM (WithVersions under CausallySerializable) and
// comb clocks (WithPlausibleComb).

func TestCombOptionValidation(t *testing.T) {
	for _, c := range []Consistency{CausallySerializable, Serializable} {
		if _, err := New(WithConsistency(c), WithPlausibleComb()); err != nil {
			t.Fatalf("%v: comb rejected: %v", c, err)
		}
	}
	for _, c := range []Consistency{Linearizable, SingleVersion, ZLinearizable, SnapshotIsolation} {
		if _, err := New(WithConsistency(c), WithPlausibleComb()); err == nil {
			t.Fatalf("%v: comb accepted on a scalar time base", c)
		}
	}
}

func TestCombRoundTrip(t *testing.T) {
	for _, c := range []Consistency{CausallySerializable, Serializable} {
		tm := MustNew(WithConsistency(c), WithThreads(8),
			WithPlausibleEntries(2), WithPlausibleComb())
		v := NewVar(tm, int64(1))
		th := tm.NewThread()
		if err := th.Atomic(Short, func(tx Tx) error {
			return v.Modify(tx, func(x int64) int64 { return x + 1 })
		}); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		var got int64
		err := th.AtomicReadOnly(Short, func(tx Tx) error {
			x, err := v.Read(tx)
			got = x
			return err
		})
		if err != nil || got != 2 {
			t.Fatalf("%v: value = %v, %v; want 2, nil", c, got, err)
		}
	}
}

// TestCombConservationUnderContention runs concurrent transfers on comb
// timestamps: extra or fewer aborts are fine, wrong sums are not.
func TestCombConservationUnderContention(t *testing.T) {
	const (
		workers   = 4
		transfers = 200
		accounts  = 10
	)
	tm := MustNew(WithConsistency(CausallySerializable),
		WithThreads(workers), WithPlausibleEntries(2), WithPlausibleComb())
	vars := make([]*Var[int64], accounts)
	for i := range vars {
		vars[i] = NewVar(tm, int64(100))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < transfers; i++ {
				from, to := vars[(i+w)%accounts], vars[(i*3+w+1)%accounts]
				if from == to {
					continue
				}
				if err := th.Atomic(Short, func(tx Tx) error {
					fv, err := from.Read(tx)
					if err != nil {
						return err
					}
					tv, err := to.Read(tx)
					if err != nil {
						return err
					}
					if err := from.Write(tx, fv-1); err != nil {
						return err
					}
					return to.Write(tx, tv+1)
				}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	th := tm.NewThread()
	var sum int64
	if err := th.AtomicReadOnly(Long, func(tx Tx) error {
		sum = 0
		for _, v := range vars {
			x, err := v.Read(tx)
			if err != nil {
				return err
			}
			sum += x
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != accounts*100 {
		t.Fatalf("sum = %d, want %d", sum, accounts*100)
	}
}

// TestMultiVersionCSFacade exercises the WithVersions(>1) wiring for
// CausallySerializable through the public API: a long reader that
// straddles a causal update chain commits only in multi-version mode.
func TestMultiVersionCSFacade(t *testing.T) {
	for _, versions := range []int{0, 8} { // 0: option not set (default 1)
		opts := []Option{WithConsistency(CausallySerializable), WithThreads(4)}
		if versions > 0 {
			opts = append(opts, WithVersions(versions))
		}
		tm := MustNew(opts...)
		o1 := NewVar(tm, "o1v0")
		o2 := NewVar(tm, "o2v0")
		thL := tm.NewThread()
		th1 := tm.NewThread()

		txL := thL.BeginReadOnly(Long)
		if _, err := o1.Read(txL); err != nil {
			t.Fatal(err)
		}
		if err := th1.Atomic(Short, func(tx Tx) error { return o1.Write(tx, "o1v1") }); err != nil {
			t.Fatal(err)
		}
		if err := th1.Atomic(Short, func(tx Tx) error { return o2.Write(tx, "o2v1") }); err != nil {
			t.Fatal(err)
		}
		if _, err := o2.Read(txL); err != nil {
			t.Fatal(err)
		}
		err := txL.Commit()
		if versions > 0 {
			if err != nil {
				t.Fatalf("versions=%d: commit err = %v, want nil", versions, err)
			}
		} else if !errors.Is(err, ErrConflict) {
			t.Fatalf("default: commit err = %v, want ErrConflict", err)
		}
	}
}
