package structs

import (
	"errors"

	"tbtm"
)

// ErrEmpty reports a Dequeue on an empty queue.
var ErrEmpty = errors.New("structs: queue is empty")

// ErrFull reports an Enqueue on a bounded queue at capacity.
var ErrFull = errors.New("structs: queue is full")

// qNode is the immutable payload of one queue cell.
type qNode[T any] struct {
	val  T
	next *qCell[T]
	// sentinel marks the dummy cell.
	sentinel bool
}

type qCell[T any] struct {
	v *tbtm.Var[qNode[T]]
}

// Queue is a transactional FIFO queue (linked cells with a dummy head,
// in the Michael–Scott layout adapted to STM: head and tail pointers are
// transactional variables, so an enqueue conflicts only with other
// enqueues and a dequeue only with other dequeues, except on the
// empty/one-element boundary).
type Queue[T any] struct {
	tm   *tbtm.TM
	head *tbtm.Var[*qCell[T]] // dummy cell; its next is the front
	tail *tbtm.Var[*qCell[T]] // last cell
	size *tbtm.Var[int]
	cap  int // 0 means unbounded
}

// NewQueue creates an empty unbounded queue.
func NewQueue[T any](tm *tbtm.TM) *Queue[T] { return NewBoundedQueue[T](tm, 0) }

// NewBoundedQueue creates an empty queue holding at most capacity
// elements; capacity <= 0 means unbounded. The bound is enforced by
// Enqueue (ErrFull) and gives PutAtomic its blocking backpressure.
func NewBoundedQueue[T any](tm *tbtm.TM, capacity int) *Queue[T] {
	if capacity < 0 {
		capacity = 0
	}
	dummy := &qCell[T]{v: tbtm.NewVar(tm, qNode[T]{sentinel: true})}
	return &Queue[T]{
		tm:   tm,
		head: tbtm.NewVar(tm, dummy),
		tail: tbtm.NewVar(tm, dummy),
		size: tbtm.NewVar(tm, 0),
		cap:  capacity,
	}
}

// Cap returns the queue's capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Enqueue appends val inside tx; ErrFull if the queue is bounded and at
// capacity (ErrFull is not retryable — callers that want blocking
// semantics use PutAtomic). The capacity check reads the size variable
// first, so a transaction that fails with ErrFull has the size in its
// read footprint and a blocking producer wakes when a consumer shrinks
// it.
func (q *Queue[T]) Enqueue(tx tbtm.Tx, val T) error {
	n, err := q.size.Read(tx)
	if err != nil {
		return err
	}
	if q.cap > 0 && n >= q.cap {
		return ErrFull
	}
	cell := &qCell[T]{v: tbtm.NewVar(q.tm, qNode[T]{val: val})}
	tail, err := q.tail.Read(tx)
	if err != nil {
		return err
	}
	tn, err := tail.v.Read(tx)
	if err != nil {
		return err
	}
	tn.next = cell
	if err := tail.v.Write(tx, tn); err != nil {
		return err
	}
	if err := q.tail.Write(tx, cell); err != nil {
		return err
	}
	return q.size.Write(tx, n+1)
}

// Dequeue removes and returns the front element inside tx; ErrEmpty if
// the queue is empty (ErrEmpty is not retryable — callers that want
// blocking semantics retry around it).
func (q *Queue[T]) Dequeue(tx tbtm.Tx) (T, error) {
	var zero T
	head, err := q.head.Read(tx)
	if err != nil {
		return zero, err
	}
	hn, err := head.v.Read(tx)
	if err != nil {
		return zero, err
	}
	front := hn.next
	if front == nil {
		return zero, ErrEmpty
	}
	fn, err := front.v.Read(tx)
	if err != nil {
		return zero, err
	}
	// The front cell becomes the new dummy; its value is cleared so the
	// queue does not retain a reference to the dequeued element.
	fn2 := fn
	fn2.val = zero
	fn2.sentinel = true
	if err := front.v.Write(tx, fn2); err != nil {
		return zero, err
	}
	if err := q.head.Write(tx, front); err != nil {
		return zero, err
	}
	n, err := q.size.Read(tx)
	if err != nil {
		return zero, err
	}
	return fn.val, q.size.Write(tx, n-1)
}

// Len returns the queue length inside tx.
func (q *Queue[T]) Len(tx tbtm.Tx) (int, error) {
	return q.size.Read(tx)
}

// Drain returns and removes all elements inside tx, front to back.
func (q *Queue[T]) Drain(tx tbtm.Tx) ([]T, error) {
	var out []T
	for {
		v, err := q.Dequeue(tx)
		if errors.Is(err, ErrEmpty) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

// EnqueueAtomic runs Enqueue in its own short transaction.
func (q *Queue[T]) EnqueueAtomic(th *tbtm.Thread, val T) error {
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return q.Enqueue(tx, val)
	})
}

// DequeueAtomic runs Dequeue in its own short transaction. It returns
// ErrEmpty without retrying when the queue is empty.
func (q *Queue[T]) DequeueAtomic(th *tbtm.Thread) (val T, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		val, e = q.Dequeue(tx)
		return e
	})
	return
}

// TakeAtomic removes and returns the front element, blocking while the
// queue is empty. On a TM built with tbtm.WithBlockingRetry the calling
// thread parks until a producer commits a Put/Enqueue (no retry-loop
// iterations while empty); elsewhere it degrades to polling with
// backoff.
func (q *Queue[T]) TakeAtomic(th *tbtm.Thread) (val T, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		v, e := q.Dequeue(tx)
		if errors.Is(e, ErrEmpty) {
			return tbtm.Retry(tx)
		}
		val = v
		return e
	})
	return
}

// PutAtomic appends val, blocking while a bounded queue is at capacity
// (the producer-side dual of TakeAtomic; on an unbounded queue it never
// blocks and is equivalent to EnqueueAtomic).
func (q *Queue[T]) PutAtomic(th *tbtm.Thread, val T) error {
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		err := q.Enqueue(tx, val)
		if errors.Is(err, ErrFull) {
			return tbtm.Retry(tx)
		}
		return err
	})
}
