package structs

import (
	"sync"
	"testing"
	"time"

	"tbtm"
)

// TestQueueTakeAtomicParks is the PR's acceptance test at the structure
// level: a blocked TakeAtomic consumer performs zero retry-loop
// iterations while the queue is empty — it parks (visible in the Parks
// counter, with the abort counter frozen) — and wakes within one
// committed Put.
func TestQueueTakeAtomicParks(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithBlockingRetry())
	q := NewQueue[int](tm)

	got := make(chan int, 1)
	go func() {
		th := tm.NewThread()
		v, err := q.TakeAtomic(th)
		if err != nil {
			t.Errorf("take: %v", err)
		}
		got <- v
	}()

	deadline := time.Now().Add(10 * time.Second)
	for tm.Stats().Parks < 1 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Zero retry-loop iterations while empty: the abort counter (one
	// increment per aborted attempt) must not move while the consumer is
	// parked.
	frozen := tm.Stats().Aborts
	time.Sleep(20 * time.Millisecond)
	if now := tm.Stats().Aborts; now != frozen {
		t.Fatalf("parked TakeAtomic kept polling: aborts %d -> %d", frozen, now)
	}

	th := tm.NewThread()
	if err := q.PutAtomic(th, 42); err != nil {
		t.Fatalf("put: %v", err)
	}
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("took %d, want 42", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer did not wake within one committed Put")
	}
	if st := tm.Stats(); st.Parks < 1 || st.Wakeups < 1 {
		t.Fatalf("parks=%d wakeups=%d, want >= 1 each", st.Parks, st.Wakeups)
	}
}

// TestBoundedQueuePutAtomicBlocks: the producer-side dual — PutAtomic on
// a full bounded queue parks until a consumer frees a slot.
func TestBoundedQueuePutAtomicBlocks(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithBlockingRetry())
	q := NewBoundedQueue[int](tm, 2)
	th := tm.NewThread()
	if err := q.PutAtomic(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.PutAtomic(th, 2); err != nil {
		t.Fatal(err)
	}
	// Non-blocking enqueue reports full.
	if err := q.EnqueueAtomic(th, 3); err != ErrFull {
		t.Fatalf("EnqueueAtomic on full queue = %v, want ErrFull", err)
	}

	done := make(chan error, 1)
	go func() {
		pth := tm.NewThread()
		done <- q.PutAtomic(pth, 3)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for tm.Stats().Parks < 1 {
		if time.Now().After(deadline) {
			t.Fatal("producer never parked on the full queue")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if v, err := q.TakeAtomic(th); err != nil || v != 1 {
		t.Fatalf("take = %d, %v", v, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked producer did not wake after a take freed a slot")
	}
	if v, err := q.TakeAtomic(th); err != nil || v != 2 {
		t.Fatalf("take = %d, %v", v, err)
	}
	if v, err := q.TakeAtomic(th); err != nil || v != 3 {
		t.Fatalf("take = %d, %v", v, err)
	}
}

// TestQueueBlockingPipeline pushes a full producer/consumer pipeline
// through a small bounded queue across several criteria: conservation
// (every produced element consumed exactly once) and termination (no
// lost wakeup on either the empty or the full edge).
func TestQueueBlockingPipeline(t *testing.T) {
	levels := []tbtm.Consistency{tbtm.ZLinearizable, tbtm.Serializable, tbtm.CausallySerializable}
	producers, consumers, per := 3, 3, 150
	if testing.Short() {
		producers, consumers, per = 2, 2, 40
	}
	quota := producers * per / consumers
	for _, level := range levels {
		t.Run(level.String(), func(t *testing.T) {
			tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithBlockingRetry())
			q := NewBoundedQueue[int](tm, 4)
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := make(map[int]int)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < per; i++ {
						if err := q.PutAtomic(th, p*per+i); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					}
				}(p)
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < quota; i++ {
						v, err := q.TakeAtomic(th)
						if err != nil {
							t.Errorf("take: %v", err)
							return
						}
						mu.Lock()
						seen[v]++
						mu.Unlock()
					}
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				t.Fatal("pipeline deadlocked: lost wakeup")
			}
			if len(seen) != producers*per {
				t.Fatalf("consumed %d distinct elements, want %d", len(seen), producers*per)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("element %d consumed %d times", v, n)
				}
			}
		})
	}
}
