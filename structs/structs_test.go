package structs

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tbtm"
)

func intLess(a, b int) bool { return a < b }

func newTM(t *testing.T, level tbtm.Consistency) *tbtm.TM {
	t.Helper()
	return tbtm.MustNew(tbtm.WithConsistency(level))
}

// --- List ---

func TestListBasics(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	l := NewList(tm, intLess)
	th := tm.NewThread()

	for _, k := range []int{5, 1, 3, 2, 4} {
		ins, err := l.InsertAtomic(th, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ins {
			t.Fatalf("Insert(%d) = false on fresh key", k)
		}
	}
	// Duplicate insert.
	ins, err := l.InsertAtomic(th, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ins {
		t.Fatal("duplicate insert reported true")
	}
	keys, err := l.KeysAtomic(th)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(keys) || len(keys) != 5 {
		t.Fatalf("Keys = %v", keys)
	}
	found, err := l.ContainsAtomic(th, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("Contains(4) = false")
	}
	found, err = l.ContainsAtomic(th, 42)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("Contains(42) = true")
	}
	rem, err := l.RemoveAtomic(th, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rem {
		t.Fatal("Remove(3) = false")
	}
	rem, err = l.RemoveAtomic(th, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rem {
		t.Fatal("second Remove(3) = true")
	}
	keys, err = l.KeysAtomic(th)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 5}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestListLenTracksSize(t *testing.T) {
	tm := newTM(t, tbtm.Linearizable)
	l := NewList(tm, intLess)
	th := tm.NewThread()
	for i := 0; i < 10; i++ {
		if _, err := l.InsertAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		n, err = l.Len(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("Len = %d", n)
	}
}

func TestListBoundaryInsertions(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	l := NewList(tm, intLess)
	th := tm.NewThread()
	// Insert at tail, head, middle.
	for _, k := range []int{10, 1, 5} {
		if _, err := l.InsertAtomic(th, k); err != nil {
			t.Fatal(err)
		}
	}
	// Remove head, then tail.
	if rem, _ := l.RemoveAtomic(th, 1); !rem {
		t.Fatal("remove head failed")
	}
	if rem, _ := l.RemoveAtomic(th, 10); !rem {
		t.Fatal("remove tail failed")
	}
	keys, _ := l.KeysAtomic(th)
	if len(keys) != 1 || keys[0] != 5 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestListConcurrentDistinctRanges(t *testing.T) {
	// Workers insert disjoint ranges concurrently; the final list is the
	// sorted union.
	tm := newTM(t, tbtm.ZLinearizable)
	l := NewList(tm, intLess)
	const workers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < per; i++ {
				if _, err := l.InsertAtomic(th, w*per+i); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	keys, err := l.KeysAtomic(tm.NewThread())
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != workers*per {
		t.Fatalf("len = %d, want %d", len(keys), workers*per)
	}
	for i, k := range keys {
		if k != i {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func TestListConcurrentMixedWithScans(t *testing.T) {
	// Inserts and removes race with long scans; scans must always see a
	// sorted, duplicate-free list.
	tm := newTM(t, tbtm.ZLinearizable)
	l := NewList(tm, intLess)
	th0 := tm.NewThread()
	for i := 0; i < 20; i += 2 {
		if _, err := l.InsertAtomic(th0, i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(20)
				if rng.Intn(2) == 0 {
					_, _ = l.InsertAtomic(th, k)
				} else {
					_, _ = l.RemoveAtomic(th, k)
				}
			}
		}(w)
	}
	th := tm.NewThread()
	for scan := 0; scan < 40; scan++ {
		keys, err := l.KeysAtomic(th)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("scan %d: unsorted/duplicate keys %v", scan, keys)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	q := NewQueue[string](tm)
	th := tm.NewThread()
	for _, s := range []string{"a", "b", "c"} {
		if err := q.EnqueueAtomic(th, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		got, err := q.DequeueAtomic(th)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Dequeue = %q, want %q", got, want)
		}
	}
	if _, err := q.DequeueAtomic(th); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty Dequeue = %v, want ErrEmpty", err)
	}
}

func TestQueueLenAndDrain(t *testing.T) {
	tm := newTM(t, tbtm.Linearizable)
	q := NewQueue[int](tm)
	th := tm.NewThread()
	for i := 1; i <= 5; i++ {
		if err := q.EnqueueAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	var drained []int
	if err := th.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
		var err error
		n, err = q.Len(tx)
		if err != nil {
			return err
		}
		drained, err = q.Drain(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(drained) != 5 {
		t.Fatalf("len %d, drained %v", n, drained)
	}
	for i, v := range drained {
		if v != i+1 {
			t.Fatalf("drained = %v", drained)
		}
	}
	if _, err := q.DequeueAtomic(th); !errors.Is(err, ErrEmpty) {
		t.Fatal("queue not empty after drain")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	q := NewQueue[int](tm)
	const producers, per = 3, 40
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < per; i++ {
				if err := q.EnqueueAtomic(th, p*per+i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	got := make(map[int]bool)
	perProducerLast := make(map[int]int) // FIFO check per producer
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			misses := 0
			for misses < 2000 {
				v, err := q.DequeueAtomic(th)
				if errors.Is(err, ErrEmpty) {
					misses++
					continue
				}
				if err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
				mu.Lock()
				if got[v] {
					t.Errorf("value %d dequeued twice", v)
				}
				got[v] = true
				p := v / per
				if last, ok := perProducerLast[p]; ok && v < last {
					t.Errorf("producer %d order violated: %d after %d", p, v, last)
				}
				perProducerLast[p] = v
				if len(got) == producers*per {
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != producers*per {
		t.Fatalf("dequeued %d values, want %d", len(got), producers*per)
	}
}

func TestQueueTransfersCompose(t *testing.T) {
	// Atomically move an element between queues: never observed in both
	// or neither.
	tm := newTM(t, tbtm.ZLinearizable)
	a, b := NewQueue[int](tm), NewQueue[int](tm)
	th := tm.NewThread()
	for i := 0; i < 10; i++ {
		if err := a.EnqueueAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			v, err := a.Dequeue(tx)
			if err != nil {
				return err
			}
			return b.Enqueue(tx, v)
		}); err != nil {
			t.Fatal(err)
		}
	}
	var la, lb int
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		if la, err = a.Len(tx); err != nil {
			return err
		}
		lb, err = b.Len(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if la != 0 || lb != 10 {
		t.Fatalf("lens = %d, %d", la, lb)
	}
}

// --- Map ---

func TestMapBasics(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	m := NewMap[string, int](tm, 16, StringHash)
	th := tm.NewThread()

	ins, err := m.PutAtomic(th, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ins {
		t.Fatal("fresh Put = false")
	}
	ins, err = m.PutAtomic(th, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ins {
		t.Fatal("update Put = true")
	}
	v, ok, err := m.GetAtomic(th, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	_, ok, err = m.GetAtomic(th, "missing")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Get(missing) = true")
	}
	del, err := m.DeleteAtomic(th, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !del {
		t.Fatal("Delete = false")
	}
	del, err = m.DeleteAtomic(th, "x")
	if err != nil {
		t.Fatal(err)
	}
	if del {
		t.Fatal("second Delete = true")
	}
}

func TestMapSizeAndSnapshot(t *testing.T) {
	tm := newTM(t, tbtm.ZLinearizable)
	m := NewMap[int, string](tm, 8, IntHash)
	th := tm.NewThread()
	for i := 0; i < 50; i++ {
		if _, err := m.PutAtomic(th, i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		n, err = m.Len(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("Len = %d", n)
	}
	snap, err := m.SnapshotAtomic(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 50 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
}

func TestMapRangeEarlyStop(t *testing.T) {
	tm := newTM(t, tbtm.Linearizable)
	m := NewMap[int, int](tm, 4, IntHash)
	th := tm.NewThread()
	for i := 0; i < 20; i++ {
		if _, err := m.PutAtomic(th, i, i); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	if err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		seen = 0
		return m.Range(tx, func(int, int) bool {
			seen++
			return seen < 5
		})
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("Range visited %d entries after early stop", seen)
	}
}

func TestMapSingleBucketDegenerate(t *testing.T) {
	tm := newTM(t, tbtm.Linearizable)
	m := NewMap[int, int](tm, 0, IntHash) // clamps to 1 bucket
	th := tm.NewThread()
	for i := 0; i < 10; i++ {
		if _, err := m.PutAtomic(th, i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := m.GetAtomic(th, 7)
	if err != nil || !ok || v != 49 {
		t.Fatalf("Get(7) = %d, %v, %v", v, ok, err)
	}
}

func TestMapConsistentSnapshotsUnderWrites(t *testing.T) {
	// Writers keep pairs (k, k+offset) synchronized; snapshots must
	// always see matching pairs.
	tm := newTM(t, tbtm.ZLinearizable)
	m := NewMap[int, int](tm, 32, IntHash)
	th0 := tm.NewThread()
	const pairs = 8
	for i := 0; i < pairs; i++ {
		if _, err := m.PutAtomic(th0, i, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.PutAtomic(th0, 100+i, 0); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				k := (w*3 + i) % pairs
				if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					v, _, err := m.Get(tx, k)
					if err != nil {
						return err
					}
					if _, err := m.Put(tx, k, v+1); err != nil {
						return err
					}
					_, err = m.Put(tx, 100+k, v+1)
					return err
				}); err != nil {
					t.Errorf("paired put: %v", err)
					return
				}
			}
		}(w)
	}
	th := tm.NewThread()
	for scan := 0; scan < 30; scan++ {
		snap, err := m.SnapshotAtomic(th)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pairs; i++ {
			if snap[i] != snap[100+i] {
				t.Fatalf("scan %d: pair %d torn: %d vs %d", scan, i, snap[i], snap[100+i])
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestStructsAcrossConsistencyLevels(t *testing.T) {
	// The structures work under every consistency level (single-threaded
	// here; concurrent guarantees differ by level).
	for _, level := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.SingleVersion, tbtm.CausallySerializable,
		tbtm.Serializable, tbtm.ZLinearizable,
	} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			tm := newTM(t, level)
			th := tm.NewThread()
			l := NewList(tm, intLess)
			q := NewQueue[int](tm)
			m := NewMap[int, int](tm, 4, IntHash)
			for i := 0; i < 10; i++ {
				if _, err := l.InsertAtomic(th, i); err != nil {
					t.Fatal(err)
				}
				if err := q.EnqueueAtomic(th, i); err != nil {
					t.Fatal(err)
				}
				if _, err := m.PutAtomic(th, i, i); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := l.KeysAtomic(th)
			if err != nil || len(keys) != 10 {
				t.Fatalf("list: %v, %v", keys, err)
			}
			v, err := q.DequeueAtomic(th)
			if err != nil || v != 0 {
				t.Fatalf("queue: %d, %v", v, err)
			}
			snap, err := m.SnapshotAtomic(th)
			if err != nil || len(snap) != 10 {
				t.Fatalf("map: %v, %v", snap, err)
			}
		})
	}
}
