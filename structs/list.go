package structs

import (
	"tbtm"
)

// listNode is the immutable payload of one list cell. Updating a cell
// installs a new payload value.
type listNode[K any] struct {
	key  K
	next *listCell[K]
	// sentinel marks the head cell, which holds no key.
	sentinel bool
}

// listCell wraps one transactional variable holding a listNode.
type listCell[K any] struct {
	v *tbtm.Var[listNode[K]]
}

// List is a transactional sorted linked-list set: ascending unique keys
// ordered by the comparison function. Concurrent transactions traverse
// and edit it with the STM's usual conflict rules — an insert near the
// tail does not conflict with one near the head.
type List[K any] struct {
	tm   *tbtm.TM
	less func(a, b K) bool
	head *listCell[K]
	size *tbtm.Var[int]
}

// NewList creates an empty sorted list over the given strict ordering.
func NewList[K any](tm *tbtm.TM, less func(a, b K) bool) *List[K] {
	head := &listCell[K]{v: tbtm.NewVar(tm, listNode[K]{sentinel: true})}
	return &List[K]{tm: tm, less: less, head: head, size: tbtm.NewVar(tm, 0)}
}

// find returns the cell whose successor is the first cell with key >= k
// (prev), that successor (or nil), and the successor's payload.
func (l *List[K]) find(tx tbtm.Tx, k K) (prev *listCell[K], prevNode listNode[K], cur *listCell[K], curNode listNode[K], err error) {
	prev = l.head
	prevNode, err = prev.v.Read(tx)
	if err != nil {
		return
	}
	cur = prevNode.next
	for cur != nil {
		curNode, err = cur.v.Read(tx)
		if err != nil {
			return
		}
		if !l.less(curNode.key, k) {
			return // curNode.key >= k
		}
		prev, prevNode = cur, curNode
		cur = curNode.next
	}
	return
}

// Insert adds k to the set inside tx; it reports whether the key was
// absent (and therefore inserted).
func (l *List[K]) Insert(tx tbtm.Tx, k K) (bool, error) {
	prev, prevNode, cur, curNode, err := l.find(tx, k)
	if err != nil {
		return false, err
	}
	if cur != nil && !l.less(k, curNode.key) {
		return false, nil // equal key already present
	}
	cell := &listCell[K]{v: tbtm.NewVar(l.tm, listNode[K]{key: k, next: cur})}
	prevNode.next = cell
	if err := prev.v.Write(tx, prevNode); err != nil {
		return false, err
	}
	n, err := l.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, l.size.Write(tx, n+1)
}

// Remove deletes k from the set inside tx; it reports whether the key
// was present.
func (l *List[K]) Remove(tx tbtm.Tx, k K) (bool, error) {
	prev, prevNode, cur, curNode, err := l.find(tx, k)
	if err != nil {
		return false, err
	}
	if cur == nil || l.less(k, curNode.key) {
		return false, nil
	}
	prevNode.next = curNode.next
	if err := prev.v.Write(tx, prevNode); err != nil {
		return false, err
	}
	n, err := l.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, l.size.Write(tx, n-1)
}

// Contains reports whether k is in the set inside tx.
func (l *List[K]) Contains(tx tbtm.Tx, k K) (bool, error) {
	_, _, cur, curNode, err := l.find(tx, k)
	if err != nil {
		return false, err
	}
	return cur != nil && !l.less(k, curNode.key), nil
}

// Len returns the set size inside tx.
func (l *List[K]) Len(tx tbtm.Tx) (int, error) {
	return l.size.Read(tx)
}

// Keys returns all keys in ascending order inside tx — a whole-structure
// scan, the paper's archetypal long access pattern.
func (l *List[K]) Keys(tx tbtm.Tx) ([]K, error) {
	var out []K
	node, err := l.head.v.Read(tx)
	if err != nil {
		return nil, err
	}
	for cell := node.next; cell != nil; {
		n, err := cell.v.Read(tx)
		if err != nil {
			return nil, err
		}
		out = append(out, n.key)
		cell = n.next
	}
	return out, nil
}

// InsertAtomic runs Insert in its own short transaction.
func (l *List[K]) InsertAtomic(th *tbtm.Thread, k K) (inserted bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		inserted, e = l.Insert(tx, k)
		return e
	})
	return
}

// RemoveAtomic runs Remove in its own short transaction.
func (l *List[K]) RemoveAtomic(th *tbtm.Thread, k K) (removed bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		removed, e = l.Remove(tx, k)
		return e
	})
	return
}

// ContainsAtomic runs Contains in its own short read-only transaction.
func (l *List[K]) ContainsAtomic(th *tbtm.Thread, k K) (found bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		found, e = l.Contains(tx, k)
		return e
	})
	return
}

// KeysAtomic runs Keys in its own long read-only transaction.
func (l *List[K]) KeysAtomic(th *tbtm.Thread) (keys []K, err error) {
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		var e error
		keys, e = l.Keys(tx)
		return e
	})
	return
}
