package structs

import (
	"tbtm"
)

// mapEntry is one key/value pair in a bucket's immutable slice.
type mapEntry[K comparable, V any] struct {
	key K
	val V
}

// Map is a transactional hash map with a fixed bucket count. Each bucket
// holds an immutable entry slice replaced copy-on-write, so operations
// on different buckets never conflict and a Range is a long consistent
// scan over all buckets.
type Map[K comparable, V any] struct {
	tm      *tbtm.TM
	hash    func(K) uint64
	buckets []*tbtm.Var[[]mapEntry[K, V]]
	size    *tbtm.Var[int]
}

// NewMap creates a map with the given bucket count (minimum 1) and hash
// function.
func NewMap[K comparable, V any](tm *tbtm.TM, buckets int, hash func(K) uint64) *Map[K, V] {
	if buckets < 1 {
		buckets = 1
	}
	m := &Map[K, V]{tm: tm, hash: hash, size: tbtm.NewVar(tm, 0)}
	m.buckets = make([]*tbtm.Var[[]mapEntry[K, V]], buckets)
	for i := range m.buckets {
		m.buckets[i] = tbtm.NewVar(tm, []mapEntry[K, V](nil))
	}
	return m
}

// StringHash is an FNV-1a hash for string keys.
func StringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// IntHash is a Fibonacci hash for integer keys.
func IntHash(k int) uint64 {
	return uint64(k) * 11400714819323198485
}

func (m *Map[K, V]) bucket(k K) *tbtm.Var[[]mapEntry[K, V]] {
	return m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// Get returns the value for k inside tx.
func (m *Map[K, V]) Get(tx tbtm.Tx, k K) (V, bool, error) {
	var zero V
	es, err := m.bucket(k).Read(tx)
	if err != nil {
		return zero, false, err
	}
	for _, e := range es {
		if e.key == k {
			return e.val, true, nil
		}
	}
	return zero, false, nil
}

// Put inserts or updates k inside tx; it reports whether the key was
// newly inserted.
func (m *Map[K, V]) Put(tx tbtm.Tx, k K, v V) (bool, error) {
	b := m.bucket(k)
	es, err := b.Read(tx)
	if err != nil {
		return false, err
	}
	next := make([]mapEntry[K, V], 0, len(es)+1)
	replaced := false
	for _, e := range es {
		if e.key == k {
			next = append(next, mapEntry[K, V]{key: k, val: v})
			replaced = true
		} else {
			next = append(next, e)
		}
	}
	if !replaced {
		next = append(next, mapEntry[K, V]{key: k, val: v})
	}
	if err := b.Write(tx, next); err != nil {
		return false, err
	}
	if replaced {
		return false, nil
	}
	n, err := m.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, m.size.Write(tx, n+1)
}

// Delete removes k inside tx; it reports whether the key was present.
func (m *Map[K, V]) Delete(tx tbtm.Tx, k K) (bool, error) {
	b := m.bucket(k)
	es, err := b.Read(tx)
	if err != nil {
		return false, err
	}
	next := make([]mapEntry[K, V], 0, len(es))
	found := false
	for _, e := range es {
		if e.key == k {
			found = true
			continue
		}
		next = append(next, e)
	}
	if !found {
		return false, nil
	}
	if err := b.Write(tx, next); err != nil {
		return false, err
	}
	n, err := m.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, m.size.Write(tx, n-1)
}

// Len returns the entry count inside tx.
func (m *Map[K, V]) Len(tx tbtm.Tx) (int, error) {
	return m.size.Read(tx)
}

// Range calls fn for every entry inside tx (bucket order, insertion
// order within buckets) until fn returns false. Reading every bucket
// makes a Range a consistent whole-map snapshot.
func (m *Map[K, V]) Range(tx tbtm.Tx, fn func(K, V) bool) error {
	for _, b := range m.buckets {
		es, err := b.Read(tx)
		if err != nil {
			return err
		}
		for _, e := range es {
			if !fn(e.key, e.val) {
				return nil
			}
		}
	}
	return nil
}

// GetAtomic runs Get in its own short read-only transaction.
func (m *Map[K, V]) GetAtomic(th *tbtm.Thread, k K) (val V, ok bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		val, ok, e = m.Get(tx, k)
		return e
	})
	return
}

// PutAtomic runs Put in its own short transaction.
func (m *Map[K, V]) PutAtomic(th *tbtm.Thread, k K, v V) (inserted bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		inserted, e = m.Put(tx, k, v)
		return e
	})
	return
}

// DeleteAtomic runs Delete in its own short transaction.
func (m *Map[K, V]) DeleteAtomic(th *tbtm.Thread, k K) (deleted bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		deleted, e = m.Delete(tx, k)
		return e
	})
	return
}

// SnapshotAtomic collects the whole map in one long read-only
// transaction.
func (m *Map[K, V]) SnapshotAtomic(th *tbtm.Thread) (map[K]V, error) {
	var snap map[K]V
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		snap = make(map[K]V)
		return m.Range(tx, func(k K, v V) bool {
			snap[k] = v
			return true
		})
	})
	return snap, err
}
