package structs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tbtm"
)

func newIntSkipList(t *testing.T, opts ...tbtm.Option) (*tbtm.TM, *SkipList[int], *tbtm.Thread) {
	t.Helper()
	if len(opts) == 0 {
		opts = []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable)}
	}
	tm := tbtm.MustNew(opts...)
	return tm, NewSkipList[int](tm, intLess), tm.NewThread()
}

func TestSkipListInsertContainsRemove(t *testing.T) {
	_, s, th := newIntSkipList(t)

	for _, k := range []int{5, 1, 9, 3, 7} {
		ins, err := s.InsertAtomic(th, k)
		if err != nil || !ins {
			t.Fatalf("Insert(%d) = %v, %v", k, ins, err)
		}
	}
	if ins, err := s.InsertAtomic(th, 5); err != nil || ins {
		t.Fatalf("duplicate Insert(5) = %v, %v; want false", ins, err)
	}
	for _, k := range []int{1, 3, 5, 7, 9} {
		found, err := s.ContainsAtomic(th, k)
		if err != nil || !found {
			t.Fatalf("Contains(%d) = %v, %v", k, found, err)
		}
	}
	for _, k := range []int{0, 2, 4, 6, 8, 10} {
		found, err := s.ContainsAtomic(th, k)
		if err != nil || found {
			t.Fatalf("Contains(%d) = %v, %v; want absent", k, found, err)
		}
	}
	if rm, err := s.RemoveAtomic(th, 5); err != nil || !rm {
		t.Fatalf("Remove(5) = %v, %v", rm, err)
	}
	if rm, err := s.RemoveAtomic(th, 5); err != nil || rm {
		t.Fatalf("second Remove(5) = %v, %v; want false", rm, err)
	}
	keys, err := s.KeysAtomic(th)
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	want := []int{1, 3, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestSkipListLenTracksSize(t *testing.T) {
	tm, s, th := newIntSkipList(t)
	for i := 0; i < 50; i++ {
		if _, err := s.InsertAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i += 2 {
		if _, err := s.RemoveAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		n, e = s.Len(tx)
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("Len = %d, want 25", n)
	}
	_ = tm
}

func TestSkipListMin(t *testing.T) {
	_, s, th := newIntSkipList(t)
	err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		if _, ok, err := s.Min(tx); err != nil || ok {
			t.Fatalf("Min on empty = ok=%v, err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{42, 17, 99} {
		if _, err := s.InsertAtomic(th, k); err != nil {
			t.Fatal(err)
		}
	}
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		k, ok, err := s.Min(tx)
		if err != nil || !ok || k != 17 {
			t.Fatalf("Min = %d, ok=%v, err=%v; want 17", k, ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSkipListRange(t *testing.T) {
	_, s, th := newIntSkipList(t)
	for i := 0; i < 100; i += 10 {
		if _, err := s.InsertAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.RangeAtomic(th, 25, 75)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{30, 40, 50, 60, 70}
	if len(keys) != len(want) {
		t.Fatalf("Range = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range = %v, want %v", keys, want)
		}
	}
	// Empty and inverted ranges.
	if keys, err := s.RangeAtomic(th, 31, 39); err != nil || len(keys) != 0 {
		t.Fatalf("empty Range = %v, %v", keys, err)
	}
	if keys, err := s.RangeAtomic(th, 80, 20); err != nil || len(keys) != 0 {
		t.Fatalf("inverted Range = %v, %v", keys, err)
	}
}

func TestSkipListAscendFrom(t *testing.T) {
	_, s, th := newIntSkipList(t)
	for i := 0; i < 100; i += 10 {
		if _, err := s.InsertAtomic(th, i); err != nil {
			t.Fatal(err)
		}
	}

	// Bounded visit: start mid-set, stop after three keys — the
	// streaming form a server uses for limited range queries.
	var got []int
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		got = got[:0]
		return s.AscendFrom(tx, 25, func(k int) (bool, error) {
			got = append(got, k)
			return len(got) < 3, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("AscendFrom = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendFrom = %v, want %v", got, want)
		}
	}

	// From an existing key the visit is inclusive; past the maximum it
	// visits nothing.
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		got = got[:0]
		return s.AscendFrom(tx, 90, func(k int) (bool, error) {
			got = append(got, k)
			return true, nil
		})
	})
	if err != nil || len(got) != 1 || got[0] != 90 {
		t.Fatalf("AscendFrom(90) = %v, %v", got, err)
	}
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		return s.AscendFrom(tx, 91, func(k int) (bool, error) {
			t.Errorf("AscendFrom(91) visited %d", k)
			return false, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	// A callback error aborts the walk and surfaces unchanged.
	sentinel := tbtm.ErrReadOnly // any distinguishable error value
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		visits := 0
		err := s.AscendFrom(tx, 0, func(k int) (bool, error) {
			visits++
			if visits == 2 {
				return false, sentinel
			}
			return true, nil
		})
		if err != sentinel {
			t.Errorf("callback error = %v, want sentinel", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSkipListModelProperty drives a random operation sequence against
// both the skip list and a reference map, checking observable agreement
// after every operation (single-threaded model test via testing/quick).
func TestSkipListModelProperty(t *testing.T) {
	prop := func(ops []uint16, seed int64) bool {
		_, s, th := newIntSkipList(t)
		model := map[int]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := int(op % 64)
			switch rng.Intn(3) {
			case 0:
				ins, err := s.InsertAtomic(th, k)
				if err != nil || ins == model[k] {
					return false // inserted must equal "was absent"
				}
				model[k] = true
			case 1:
				rm, err := s.RemoveAtomic(th, k)
				if err != nil || rm != model[k] {
					return false
				}
				delete(model, k)
			default:
				found, err := s.ContainsAtomic(th, k)
				if err != nil || found != model[k] {
					return false
				}
			}
		}
		// Final full agreement: keys sorted and exactly the model.
		keys, err := s.KeysAtomic(th)
		if err != nil {
			return false
		}
		if !sort.IntsAreSorted(keys) || len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			if !model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListConcurrentDisjoint has each worker own a key range; after
// the storm each range holds exactly what its owner left there.
func TestSkipListConcurrentDisjoint(t *testing.T) {
	tm, s, _ := newIntSkipList(t)
	const (
		workers = 4
		span    = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			base := w * span
			for i := 0; i < span; i++ {
				if _, err := s.InsertAtomic(th, base+i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
			for i := 1; i < span; i += 2 {
				if _, err := s.RemoveAtomic(th, base+i); err != nil {
					t.Errorf("Remove: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	th := tm.NewThread()
	keys, err := s.KeysAtomic(th)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	if len(keys) != workers*span/2 {
		t.Fatalf("len(keys) = %d, want %d", len(keys), workers*span/2)
	}
	for _, k := range keys {
		if k%2 != 0 {
			t.Fatalf("odd key %d survived", k)
		}
	}
}

// TestSkipListScanDuringChurn runs long Keys scans concurrently with
// short inserts that preserve a parity invariant: every insert adds a
// pair (k, k+1000) atomically, so every snapshot must contain matched
// pairs.
func TestSkipListScanDuringChurn(t *testing.T) {
	tm, s, _ := newIntSkipList(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % 500
			err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				if _, err := s.Insert(tx, k); err != nil {
					return err
				}
				_, err := s.Insert(tx, k+1000)
				return err
			})
			if err != nil {
				t.Errorf("paired insert: %v", err)
				return
			}
		}
	}()

	th := tm.NewThread()
	for i := 0; i < 30; i++ {
		keys, err := s.KeysAtomic(th)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		in := map[int]bool{}
		for _, k := range keys {
			in[k] = true
		}
		for _, k := range keys {
			if k < 1000 && !in[k+1000] {
				t.Fatalf("torn snapshot: %d present without %d", k, k+1000)
			}
			if k >= 1000 && !in[k-1000] {
				t.Fatalf("torn snapshot: %d present without %d", k, k-1000)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSkipListComposesAcrossStructures moves a key from a skip list to a
// second one in one transaction; no snapshot may observe it in both or
// neither.
func TestSkipListComposesAcrossStructures(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	a := NewSkipList[int](tm, intLess)
	b := NewSkipList[int](tm, intLess)
	th := tm.NewThread()
	if _, err := a.InsertAtomic(th, 7); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dir := i%2 == 0
			err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				src, dst := a, b
				if !dir {
					src, dst = b, a
				}
				moved, err := src.Remove(tx, 7)
				if err != nil {
					return err
				}
				if moved {
					_, err = dst.Insert(tx, 7)
				}
				return err
			})
			if err != nil {
				t.Errorf("move: %v", err)
				return
			}
		}
	}()

	thR := tm.NewThread()
	for i := 0; i < 200; i++ {
		var inA, inB bool
		err := thR.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
			var e error
			if inA, e = a.Contains(tx, 7); e != nil {
				return e
			}
			inB, e = b.Contains(tx, 7)
			return e
		})
		if err != nil {
			t.Fatal(err)
		}
		if inA == inB {
			t.Fatalf("key 7 observed in %v/%v (both or neither)", inA, inB)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSkipListRandLevelDistribution(t *testing.T) {
	tm := tbtm.MustNew()
	s := NewSkipList[int](tm, intLess)
	counts := make([]int, skipMaxLevel+1)
	const draws = 100000
	for i := 0; i < draws; i++ {
		lvl := s.randLevel()
		if lvl < 1 || lvl > skipMaxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	// Roughly geometric with p = 1/4: level 1 should dominate and each
	// next level should shrink substantially.
	if counts[1] < draws/2 {
		t.Fatalf("level 1 count %d, want > %d", counts[1], draws/2)
	}
	if counts[2] > counts[1] || counts[3] > counts[2] {
		t.Fatalf("level counts not decreasing: %v", counts[:5])
	}
}

func TestSkipListOnAllLevels(t *testing.T) {
	for _, level := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.SingleVersion, tbtm.Serializable,
		tbtm.CausallySerializable, tbtm.ZLinearizable, tbtm.SnapshotIsolation,
	} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			_, s, th := newIntSkipList(t, tbtm.WithConsistency(level))
			for i := 9; i >= 0; i-- {
				if _, err := s.InsertAtomic(th, i); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := s.KeysAtomic(th)
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 10 || !sort.IntsAreSorted(keys) {
				t.Fatalf("keys = %v", keys)
			}
		})
	}
}
