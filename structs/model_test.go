package structs

import (
	"math/rand"
	"testing"

	"tbtm"
)

// Model-based testing: random operation sequences are applied both to
// the transactional structures and to plain Go reference models; every
// observable result and every snapshot must match.

func TestListMatchesModel(t *testing.T) {
	for _, level := range []tbtm.Consistency{tbtm.Linearizable, tbtm.ZLinearizable} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			tm := tbtm.MustNew(tbtm.WithConsistency(level))
			l := NewList(tm, intLess)
			th := tm.NewThread()
			model := make(map[int]bool)
			rng := rand.New(rand.NewSource(21))

			for op := 0; op < 2000; op++ {
				k := rng.Intn(30)
				switch rng.Intn(4) {
				case 0:
					ins, err := l.InsertAtomic(th, k)
					if err != nil {
						t.Fatal(err)
					}
					if ins == model[k] {
						t.Fatalf("op %d: Insert(%d) = %v, model has %v", op, k, ins, model[k])
					}
					model[k] = true
				case 1:
					rem, err := l.RemoveAtomic(th, k)
					if err != nil {
						t.Fatal(err)
					}
					if rem != model[k] {
						t.Fatalf("op %d: Remove(%d) = %v, model has %v", op, k, rem, model[k])
					}
					delete(model, k)
				case 2:
					found, err := l.ContainsAtomic(th, k)
					if err != nil {
						t.Fatal(err)
					}
					if found != model[k] {
						t.Fatalf("op %d: Contains(%d) = %v, model %v", op, k, found, model[k])
					}
				default:
					keys, err := l.KeysAtomic(th)
					if err != nil {
						t.Fatal(err)
					}
					if len(keys) != len(model) {
						t.Fatalf("op %d: Keys len %d, model %d", op, len(keys), len(model))
					}
					for i, key := range keys {
						if !model[key] {
							t.Fatalf("op %d: stray key %d", op, key)
						}
						if i > 0 && keys[i-1] >= key {
							t.Fatalf("op %d: unsorted %v", op, keys)
						}
					}
				}
			}
		})
	}
}

func TestMapMatchesModel(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	m := NewMap[int, int](tm, 8, IntHash)
	th := tm.NewThread()
	model := make(map[int]int)
	rng := rand.New(rand.NewSource(23))

	for op := 0; op < 2000; op++ {
		k := rng.Intn(40)
		switch rng.Intn(4) {
		case 0:
			v := rng.Intn(1000)
			_, existed := model[k]
			ins, err := m.PutAtomic(th, k, v)
			if err != nil {
				t.Fatal(err)
			}
			if ins == existed {
				t.Fatalf("op %d: Put(%d) inserted=%v, model existed=%v", op, k, ins, existed)
			}
			model[k] = v
		case 1:
			_, existed := model[k]
			del, err := m.DeleteAtomic(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if del != existed {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", op, k, del, existed)
			}
			delete(model, k)
		case 2:
			want, existed := model[k]
			got, ok, err := m.GetAtomic(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v; model %d,%v", op, k, got, ok, want, existed)
			}
		default:
			snap, err := m.SnapshotAtomic(th)
			if err != nil {
				t.Fatal(err)
			}
			if len(snap) != len(model) {
				t.Fatalf("op %d: snapshot size %d, model %d", op, len(snap), len(model))
			}
			for k, v := range model {
				if snap[k] != v {
					t.Fatalf("op %d: snapshot[%d] = %d, model %d", op, k, snap[k], v)
				}
			}
		}
	}
}

func TestQueueMatchesModel(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.Linearizable))
	q := NewQueue[int](tm)
	th := tm.NewThread()
	var model []int
	rng := rand.New(rand.NewSource(29))

	for op := 0; op < 2000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // bias toward enqueue so the queue grows
			v := rng.Int()
			if err := q.EnqueueAtomic(th, v); err != nil {
				t.Fatal(err)
			}
			model = append(model, v)
		default:
			got, err := q.DequeueAtomic(th)
			if len(model) == 0 {
				if err == nil {
					t.Fatalf("op %d: Dequeue on empty succeeded", op)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Dequeue: %v", op, err)
			}
			if got != model[0] {
				t.Fatalf("op %d: Dequeue = %d, model %d", op, got, model[0])
			}
			model = model[1:]
		}
		// Length must always match.
		var n int
		if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
			var e error
			n, e = q.Len(tx)
			return e
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, n, len(model))
		}
	}
}
