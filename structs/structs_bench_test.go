package structs

import (
	"fmt"
	"testing"

	"tbtm"
)

func BenchmarkListInsertRemove(b *testing.B) {
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
			l := NewList(tm, intLess)
			th := tm.NewThread()
			for i := 0; i < size; i += 2 {
				if _, err := l.InsertAtomic(th, i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i*7)%size | 1 // odd keys: always absent before insert
				if _, err := l.InsertAtomic(th, k); err != nil {
					b.Fatal(err)
				}
				if _, err := l.RemoveAtomic(th, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	q := NewQueue[int](tm)
	th := tm.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.EnqueueAtomic(th, i); err != nil {
			b.Fatal(err)
		}
		if _, err := q.DequeueAtomic(th); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueBlockingHandoff measures the event-driven producer →
// consumer handoff: the consumer parks on the empty queue, the producer
// wakes it per element. Compare against BenchmarkQueueEnqueueDequeue to
// see the cost of a park/wake round trip; the wake probe itself is the
// one atomic load an uncontended commit pays.
func BenchmarkQueueBlockingHandoff(b *testing.B) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithBlockingRetry())
	q := NewQueue[int](tm)
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := tm.NewThread()
		for i := 0; i < b.N; i++ {
			if _, err := q.TakeAtomic(th); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	th := tm.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.PutAtomic(th, i); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

func BenchmarkMapPutGet(b *testing.B) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	m := NewMap[int, int](tm, 64, IntHash)
	th := tm.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 512
		if _, err := m.PutAtomic(th, k, i); err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.GetAtomic(th, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSnapshot(b *testing.B) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	m := NewMap[int, int](tm, 64, IntHash)
	th := tm.NewThread()
	for i := 0; i < 256; i++ {
		if _, err := m.PutAtomic(th, i, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SnapshotAtomic(th); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkipListInsertRemove(b *testing.B) {
	for _, size := range []int{128, 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
			s := NewSkipList(tm, intLess)
			th := tm.NewThread()
			for i := 0; i < size; i += 2 {
				if _, err := s.InsertAtomic(th, i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i*7)%size | 1 // odd keys: always absent before insert
				if _, err := s.InsertAtomic(th, k); err != nil {
					b.Fatal(err)
				}
				if _, err := s.RemoveAtomic(th, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkipListScanUnderChurn compares the long whole-set scan under
// concurrent short inserts across consistency levels — the data-structure
// variant of the paper's Figure 6/7 story: under ZLinearizable the scan
// is a zone-protected long transaction, under Linearizable it must win
// the validation race.
func BenchmarkSkipListScanUnderChurn(b *testing.B) {
	for _, level := range []tbtm.Consistency{tbtm.Linearizable, tbtm.ZLinearizable} {
		b.Run(level.String(), func(b *testing.B) {
			tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithVersions(1024))
			s := NewSkipList(tm, intLess)
			th := tm.NewThread()
			for i := 0; i < 512; i++ {
				if _, err := s.InsertAtomic(th, i*2); err != nil {
					b.Fatal(err)
				}
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				thW := tm.NewThread()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := (i*13)%1024 | 1
					_, _ = s.InsertAtomic(thW, k)
					_, _ = s.RemoveAtomic(thW, k)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.KeysAtomic(th); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
