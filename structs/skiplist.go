package structs

import (
	"sync/atomic"

	"tbtm"
)

// skipMaxLevel bounds tower height; 16 levels with p = 1/4 cover sets far
// beyond what an in-memory benchmark holds.
const skipMaxLevel = 16

// skipNode is the immutable payload of one skip-list cell. next has one
// entry per level of the node's tower; updating any link installs a new
// payload with a fresh slice (payload values are snapshots and must not
// be mutated in place).
type skipNode[K any] struct {
	key  K
	next []*skipCell[K]
	// sentinel marks the head cell, which holds no key and spans every
	// level.
	sentinel bool
}

// clone returns a copy of n with its own next slice, ready to mutate.
func (n skipNode[K]) clone() skipNode[K] {
	next := make([]*skipCell[K], len(n.next))
	copy(next, n.next)
	n.next = next
	return n
}

// skipCell wraps one transactional variable holding a skipNode.
type skipCell[K any] struct {
	v *tbtm.Var[skipNode[K]]
}

// SkipList is a transactional sorted set implemented as a skip list:
// expected O(log n) search, insert and remove, plus ordered iteration
// and range scans. Compared to List, towers let searches skip ahead, so
// transactions touch O(log n) cells instead of O(n) — short index
// operations stay short in the paper's sense even on large sets, while
// Range and Keys remain the archetypal long transactions.
type SkipList[K any] struct {
	tm   *tbtm.TM
	less func(a, b K) bool
	head *skipCell[K]
	size *tbtm.Var[int]
	// rngState seeds the per-insert level choice; a shared atomic counter
	// keeps level choices independent of transaction retries and of how
	// callers schedule goroutines.
	rngState atomic.Uint64
}

// NewSkipList creates an empty sorted set over the given strict ordering.
func NewSkipList[K any](tm *tbtm.TM, less func(a, b K) bool) *SkipList[K] {
	head := &skipCell[K]{v: tbtm.NewVar(tm, skipNode[K]{
		sentinel: true,
		next:     make([]*skipCell[K], skipMaxLevel),
	})}
	s := &SkipList[K]{tm: tm, less: less, head: head, size: tbtm.NewVar(tm, 0)}
	s.rngState.Store(0x9e3779b97f4a7c15)
	return s
}

// randLevel draws a tower height with geometric distribution (p = 1/4)
// from a splitmix64 step of the shared state.
func (s *SkipList[K]) randLevel() int {
	x := s.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1
	for lvl < skipMaxLevel && x&3 == 3 {
		lvl++
		x >>= 2
	}
	return lvl
}

// findPreds returns, for every level, the last cell whose key is < k
// (preds) together with its payload (predNodes), plus the bottom-level
// successor cell and payload (the candidate match).
func (s *SkipList[K]) findPreds(tx tbtm.Tx, k K) (
	preds [skipMaxLevel]*skipCell[K],
	predNodes [skipMaxLevel]skipNode[K],
	cur *skipCell[K],
	curNode skipNode[K],
	err error,
) {
	cell := s.head
	node, err := cell.v.Read(tx)
	if err != nil {
		return
	}
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for node.next[lvl] != nil {
			var nextNode skipNode[K]
			nextNode, err = node.next[lvl].v.Read(tx)
			if err != nil {
				return
			}
			if !s.less(nextNode.key, k) {
				break // next key >= k: drop a level
			}
			cell, node = node.next[lvl], nextNode
		}
		preds[lvl], predNodes[lvl] = cell, node
	}
	cur = node.next[0]
	if cur != nil {
		curNode, err = cur.v.Read(tx)
	}
	return
}

// Insert adds k to the set inside tx; it reports whether the key was
// absent (and therefore inserted).
func (s *SkipList[K]) Insert(tx tbtm.Tx, k K) (bool, error) {
	preds, predNodes, cur, curNode, err := s.findPreds(tx, k)
	if err != nil {
		return false, err
	}
	if cur != nil && !s.less(k, curNode.key) {
		return false, nil // equal key already present
	}
	lvl := s.randLevel()
	next := make([]*skipCell[K], lvl)
	for i := 0; i < lvl; i++ {
		next[i] = predNodes[i].next[i]
	}
	cell := &skipCell[K]{v: tbtm.NewVar(s.tm, skipNode[K]{key: k, next: next})}

	// Splice the tower in. Several levels may share one predecessor
	// cell; group the link updates so each cell is written once.
	updated := make(map[*skipCell[K]]skipNode[K], lvl)
	for i := 0; i < lvl; i++ {
		n, ok := updated[preds[i]]
		if !ok {
			n = predNodes[i].clone()
		}
		n.next[i] = cell
		updated[preds[i]] = n
	}
	for c, n := range updated {
		if err := c.v.Write(tx, n); err != nil {
			return false, err
		}
	}
	n, err := s.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, s.size.Write(tx, n+1)
}

// Remove deletes k from the set inside tx; it reports whether the key
// was present.
func (s *SkipList[K]) Remove(tx tbtm.Tx, k K) (bool, error) {
	preds, predNodes, cur, curNode, err := s.findPreds(tx, k)
	if err != nil {
		return false, err
	}
	if cur == nil || s.less(k, curNode.key) {
		return false, nil
	}
	updated := make(map[*skipCell[K]]skipNode[K], len(curNode.next))
	for i := 0; i < len(curNode.next); i++ {
		if predNodes[i].next[i] != cur {
			continue // tower taller than predecessor path (impossible by construction, but cheap to guard)
		}
		n, ok := updated[preds[i]]
		if !ok {
			n = predNodes[i].clone()
		}
		n.next[i] = curNode.next[i]
		updated[preds[i]] = n
	}
	for c, n := range updated {
		if err := c.v.Write(tx, n); err != nil {
			return false, err
		}
	}
	n, err := s.size.Read(tx)
	if err != nil {
		return false, err
	}
	return true, s.size.Write(tx, n-1)
}

// Contains reports whether k is in the set inside tx.
func (s *SkipList[K]) Contains(tx tbtm.Tx, k K) (bool, error) {
	_, _, cur, curNode, err := s.findPreds(tx, k)
	if err != nil {
		return false, err
	}
	return cur != nil && !s.less(k, curNode.key), nil
}

// Len returns the set size inside tx.
func (s *SkipList[K]) Len(tx tbtm.Tx) (int, error) {
	return s.size.Read(tx)
}

// Min returns the smallest key inside tx; ok is false on an empty set.
func (s *SkipList[K]) Min(tx tbtm.Tx) (k K, ok bool, err error) {
	node, err := s.head.v.Read(tx)
	if err != nil {
		return k, false, err
	}
	if node.next[0] == nil {
		return k, false, nil
	}
	first, err := node.next[0].v.Read(tx)
	if err != nil {
		return k, false, err
	}
	return first.key, true, nil
}

// Range returns, in ascending order, every key k with from <= k < to
// inside tx. Like Keys it walks the bottom level, so it is a long access
// pattern when the range is wide.
func (s *SkipList[K]) Range(tx tbtm.Tx, from, to K) ([]K, error) {
	var out []K
	err := s.AscendFrom(tx, from, func(k K) (bool, error) {
		if !s.less(k, to) {
			return false, nil
		}
		out = append(out, k)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AscendFrom visits, in ascending order, every key k with from <= k,
// calling fn for each; iteration stops when fn returns false or errors.
// It is the streaming form of Range for callers that bound results by
// count rather than by key — a network server answering a limited range
// query visits exactly the cells it returns instead of materialising the
// whole suffix.
func (s *SkipList[K]) AscendFrom(tx tbtm.Tx, from K, fn func(K) (bool, error)) error {
	_, predNodes, _, _, err := s.findPreds(tx, from)
	if err != nil {
		return err
	}
	for cell := predNodes[0].next[0]; cell != nil; {
		node, err := cell.v.Read(tx)
		if err != nil {
			return err
		}
		more, err := fn(node.key)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		cell = node.next[0]
	}
	return nil
}

// Keys returns all keys in ascending order inside tx — a whole-structure
// scan, the paper's archetypal long access pattern.
func (s *SkipList[K]) Keys(tx tbtm.Tx) ([]K, error) {
	var out []K
	node, err := s.head.v.Read(tx)
	if err != nil {
		return nil, err
	}
	for cell := node.next[0]; cell != nil; {
		n, err := cell.v.Read(tx)
		if err != nil {
			return nil, err
		}
		out = append(out, n.key)
		cell = n.next[0]
	}
	return out, nil
}

// InsertAtomic runs Insert in its own short transaction.
func (s *SkipList[K]) InsertAtomic(th *tbtm.Thread, k K) (inserted bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		inserted, e = s.Insert(tx, k)
		return e
	})
	return
}

// RemoveAtomic runs Remove in its own short transaction.
func (s *SkipList[K]) RemoveAtomic(th *tbtm.Thread, k K) (removed bool, err error) {
	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		removed, e = s.Remove(tx, k)
		return e
	})
	return
}

// ContainsAtomic runs Contains in its own short read-only transaction.
func (s *SkipList[K]) ContainsAtomic(th *tbtm.Thread, k K) (found bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		found, e = s.Contains(tx, k)
		return e
	})
	return
}

// RangeAtomic runs Range in its own long read-only transaction.
func (s *SkipList[K]) RangeAtomic(th *tbtm.Thread, from, to K) (keys []K, err error) {
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		var e error
		keys, e = s.Range(tx, from, to)
		return e
	})
	return
}

// KeysAtomic runs Keys in its own long read-only transaction.
func (s *SkipList[K]) KeysAtomic(th *tbtm.Thread) (keys []K, err error) {
	err = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		var e error
		keys, e = s.Keys(tx)
		return e
	})
	return
}
