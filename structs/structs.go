// Package structs provides transactional data structures built on the
// tbtm public API: a sorted linked-list set, a FIFO queue, and a hash
// map. They are both useful building blocks and executable documentation
// for composing multi-object transactions; dynamic-sized data structures
// are the original workload of the DSTM line of systems the paper builds
// on (Herlihy et al., PODC 2003).
//
// All operations run inside the caller's transaction, so they compose:
// moving an element between two structures in one atomic step is just
// calling Remove and Insert under the same Tx. Convenience wrappers that
// run a whole operation in its own short transaction are provided as
// *Atomic methods taking a Thread; whole-structure scans (List.Keys,
// Map.Range, Queue.Drain) run as long transactions in their *Atomic
// forms, matching the paper's short/long split.
//
// Values stored in the structures follow the library's rule: they are
// snapshots and must not be mutated after insertion.
package structs
