// Command tbtmd serves a tbtm instance over TCP: a transactional
// key-value server speaking the length-prefixed binary protocol of
// package tbtm/server (GET/SET/DEL/CAS, consistent RANGE scans, atomic
// MULTI scripts, and blocking BTAKE/WAIT that park server-side without
// consuming an engine thread).
//
// Usage:
//
//	tbtmd                               # ZLinearizable on :7420
//	tbtmd -addr 127.0.0.1:7420 -consistency lsa -leases 8
//	tbtmd -stats-every 10s              # log per-interval engine stats
//	tbtmd -duration 30s                 # serve, then exit gracefully (CI smoke)
//
// SIGINT/SIGTERM shut the server down gracefully: parked clients are
// woken with StatusClosed, in-flight responses drain, then connections
// close.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tbtm"
	"tbtm/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbtmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbtmd", flag.ContinueOnError)
	addr := fs.String("addr", ":7420", "listen address")
	consistency := fs.String("consistency", "zlin", "engine criterion: lsa|single|causal|serializable|zlin|si")
	leases := fs.Int("leases", 0, "fast lease pool size (0 = 2*GOMAXPROCS)")
	blockingLeases := fs.Int("blocking-leases", 0, "blocking lease pool size (0 = 64)")
	buckets := fs.Int("buckets", 0, "store hash buckets (0 = 1024)")
	versions := fs.Int("versions", 0, "retained versions per object (0 = engine default)")
	statsEvery := fs.Duration("stats-every", 0, "log per-interval engine stats at this period (0 = off)")
	duration := fs.Duration("duration", 0, "serve for this long, then exit gracefully (0 = until signal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := server.ParseConsistency(*consistency)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Consistency:    c,
		Leases:         *leases,
		BlockingLeases: *blockingLeases,
		Buckets:        *buckets,
	}
	if *versions > 0 {
		cfg.TMOptions = append(cfg.TMOptions, tbtm.WithVersions(*versions))
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("tbtmd: serving %s on %s (leases=%s blocking=%s)",
		*consistency, ln.Addr(), cfgOrDefault(*leases, "auto"), cfgOrDefault(*blockingLeases, "64"))

	stop := make(chan struct{})
	closeDone := make(chan error, 1)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sigc:
			log.Printf("tbtmd: %v — shutting down", s)
		case <-stop:
		}
		closeDone <- srv.Close()
	}()
	if *duration > 0 {
		time.AfterFunc(*duration, func() { close(stop) })
	}

	if *statsEvery > 0 {
		go func() {
			prev := srv.TM().Stats()
			for range time.Tick(*statsEvery) {
				cur := srv.TM().Stats()
				d := cur.Sub(prev)
				prev = cur
				log.Printf("tbtmd: interval commits=%d aborts=%d conflicts=%d parks=%d wakeups=%d",
					d.Commits+d.LongCommits, d.Aborts+d.LongAborts, d.Conflicts, d.Parks, d.Wakeups)
			}
		}()
	}

	if err := srv.Serve(ln); err != nil {
		// A real accept failure, not a graceful close: exit with it.
		return err
	}
	// Serve returns nil only after Close began; wait for the graceful
	// shutdown — the shutdown-flag commit that wakes parked clients and
	// the in-flight drain — to finish before the process exits.
	return <-closeDone
}

// cfgOrDefault renders a zero-valued flag as its effective default in
// the startup log line.
func cfgOrDefault(v int, def string) string {
	if v > 0 {
		return fmt.Sprint(v)
	}
	return def
}
