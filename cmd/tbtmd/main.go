// Command tbtmd serves a tbtm instance over TCP: a transactional
// key-value server speaking the length-prefixed binary protocol of
// package tbtm/server (GET/SET/DEL/CAS, consistent RANGE scans, atomic
// MULTI scripts, and blocking BTAKE/WAIT that park server-side without
// consuming an engine thread).
//
// Usage:
//
//	tbtmd                               # ZLinearizable on :7420
//	tbtmd -addr 127.0.0.1:7420 -consistency lsa -leases 8
//	tbtmd -stats-every 10s              # log per-interval engine stats
//	tbtmd -duration 30s                 # serve, then exit gracefully (CI smoke)
//	tbtmd -data-dir /var/lib/tbtmd      # durable: WAL + checkpoints + recovery
//	tbtmd -data-dir d -durability relaxed -fsync-interval 2ms
//	tbtmd -replica-of 10.0.0.1:7420     # read replica following that primary's WAL
//	tbtmd -debug-addr 127.0.0.1:7421    # /metrics (Prometheus), /trace, /debug/pprof
//	tbtmd -slow-op 10ms                 # log slow ops with their phase breakdown
//
// The flight recorder is armed by default: per-event-loop rings of
// phase events (decode, lease wait, engine exec, WAL gate, fsync wait,
// response flush) dumpable via the TRACE wire verb, the debug
// endpoint's /trace, or SIGUSR1 (to stderr). -flight-recorder=false
// disarms it; -slow-op additionally logs any op over the threshold
// with its per-phase time breakdown inline.
//
// With -data-dir the server write-ahead-logs every update commit and
// recovers the store from the latest checkpoint plus the log tail on
// startup (truncating at the first torn or corrupt record). -durability
// picks the acknowledgement contract: strict (default) acknowledges
// only after fsync, relaxed after the OS write with group fsync in the
// background, none never fsyncs outside rotation. Requires a
// scalar-clock criterion (not causal/serializable).
//
// With -replica-of the server is a read replica: it bootstraps from the
// primary's newest checkpoint, tails its WAL, applies every record as
// an ordinary engine transaction, serves reads (GET/RANGE/read-only
// MULTI, and WAIT woken by replicated writes) from snapshot-consistent
// local state, and refuses writes with a replica-specific read-only
// status. STATS reports the replication lag.
//
// SIGINT/SIGTERM shut the server down gracefully: parked clients are
// woken with StatusClosed, in-flight responses drain, then connections
// close.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tbtm"
	"tbtm/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbtmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbtmd", flag.ContinueOnError)
	addr := fs.String("addr", ":7420", "listen address")
	consistency := fs.String("consistency", "zlin", "engine criterion: lsa|single|causal|serializable|zlin|si")
	leases := fs.Int("leases", 0, "fast lease pool size (0 = 2*GOMAXPROCS)")
	blockingLeases := fs.Int("blocking-leases", 0, "blocking lease pool size (0 = 64)")
	buckets := fs.Int("buckets", 0, "store hash buckets (0 = 1024)")
	versions := fs.Int("versions", 0, "retained versions per object (0 = engine default)")
	statsEvery := fs.Duration("stats-every", 0, "log per-interval engine stats at this period (0 = off)")
	duration := fs.Duration("duration", 0, "serve for this long, then exit gracefully (0 = until signal)")
	dataDir := fs.String("data-dir", "", "durability directory for WAL + checkpoints (empty = in-memory only)")
	durability := fs.String("durability", "strict", "WAL ack mode with -data-dir: strict|relaxed|none")
	fsyncEvery := fs.Int("fsync-every", 0, "relaxed mode: fsync after this many records (0 = 256)")
	fsyncInterval := fs.Duration("fsync-interval", 0, "relaxed mode: fsync at least this often (0 = 5ms)")
	segmentBytes := fs.Int64("segment-bytes", 0, "rotate WAL segments at this size (0 = 8MiB)")
	checkpointBytes := fs.Int64("checkpoint-bytes", 0, "checkpoint when live WAL bytes exceed this (0 = 64MiB)")
	replicaOf := fs.String("replica-of", "", "follow the durable primary at this address as a read replica (excludes -data-dir)")
	replicaBackoff := fs.Duration("replica-backoff", 0, "replica initial reconnect delay (0 = 50ms, doubling to 2s)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics (Prometheus), /trace and /debug/pprof on this address (empty = off)")
	slowOp := fs.Duration("slow-op", 0, "log any op slower than this with its phase breakdown (0 = off)")
	flightRecorder := fs.Bool("flight-recorder", true, "arm the flight recorder (phase-event rings behind TRACE and SIGUSR1)")
	traceRing := fs.Int("trace-ring", 0, "flight-recorder events per ring (0 = 4096)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := server.ParseConsistency(*consistency)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Consistency:     c,
		Leases:          *leases,
		BlockingLeases:  *blockingLeases,
		Buckets:         *buckets,
		DataDir:         *dataDir,
		Durability:      *durability,
		FsyncEvery:      *fsyncEvery,
		FsyncInterval:   *fsyncInterval,
		SegmentBytes:    *segmentBytes,
		CheckpointBytes: *checkpointBytes,
		ReplicaOf:       *replicaOf,
		ReplicaBackoff:  *replicaBackoff,
		RecorderEvents:  *traceRing,
		RecorderOff:     !*flightRecorder,
		SlowOp:          *slowOp,
	}
	if *versions > 0 {
		cfg.TMOptions = append(cfg.TMOptions, tbtm.WithVersions(*versions))
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if rec := srv.Recovery(); rec != nil {
		torn := ""
		if rec.TornTail {
			torn = ", torn tail truncated"
		}
		log.Printf("tbtmd: recovered %d keys from %s (%d log records over %d segments, checkpoint seq %d, %d corrupt records skipped%s, epoch %d)",
			len(rec.Keys), *dataDir, rec.Records, rec.Segments, rec.CheckpointSeq, rec.Skipped, torn, rec.Epoch)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mode := "off"
	if *dataDir != "" {
		mode = *durability
	}
	role := ""
	if *replicaOf != "" {
		role = fmt.Sprintf(" replica-of=%s", *replicaOf)
	}
	log.Printf("tbtmd: serving %s on %s (leases=%s blocking=%s durability=%s%s)",
		*consistency, ln.Addr(), cfgOrDefault(*leases, "auto"), cfgOrDefault(*blockingLeases, "64"), mode, role)

	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return derr
		}
		defer dln.Close()
		log.Printf("tbtmd: debug endpoint (/metrics, /trace, /debug/pprof) on %s", dln.Addr())
		go func() { _ = http.Serve(dln, srv.DebugHandler()) }()
	}

	// SIGUSR1 dumps the flight recorder to stderr (one JSON document
	// per signal) without disturbing service.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			doc, terr := srv.TraceJSON(0)
			if terr != nil {
				log.Printf("tbtmd: trace dump: %v", terr)
				continue
			}
			os.Stderr.Write(append(doc, '\n'))
		}
	}()

	stop := make(chan struct{})
	closeDone := make(chan error, 1)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sigc:
			log.Printf("tbtmd: %v — shutting down", s)
		case <-stop:
		}
		closeDone <- srv.Close()
	}()
	if *duration > 0 {
		time.AfterFunc(*duration, func() { close(stop) })
	}

	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			prev := srv.TM().Stats()
			for {
				select {
				case <-tick.C:
				case <-stop:
					return
				}
				cur := srv.TM().Stats()
				d := cur.Sub(prev)
				prev = cur
				repl := ""
				if *replicaOf != "" {
					rs := srv.ReplicaStats()
					repl = fmt.Sprintf(" repl-lag=%d repl-applied=%d repl-connected=%v", rs.Lag, rs.AppliedSeq, rs.Connected)
				}
				log.Printf("tbtmd: interval commits=%d aborts=%d conflicts=%d parks=%d wakeups=%d%s",
					d.Commits+d.LongCommits, d.Aborts+d.LongAborts, d.Conflicts, d.Parks, d.Wakeups, repl)
			}
		}()
	}

	if err := srv.Serve(ln); err != nil {
		// A real accept failure, not a graceful close: exit with it.
		return err
	}
	// Serve returns nil only after Close began; wait for the graceful
	// shutdown — the shutdown-flag commit that wakes parked clients and
	// the in-flight drain — to finish before the process exits.
	return <-closeDone
}

// cfgOrDefault renders a zero-valued flag as its effective default in
// the startup log line.
func cfgOrDefault(v int, def string) string {
	if v > 0 {
		return fmt.Sprint(v)
	}
	return def
}
