package main

import (
	"strings"
	"testing"
	"time"

	"tbtm/server"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadConsistency(t *testing.T) {
	err := run([]string{"-consistency", "nonsense"})
	if err == nil || !strings.Contains(err.Error(), "unknown consistency") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunServesAndExits starts tbtmd on an ephemeral port with a short
// -duration, verifies it answers the protocol, and waits for the
// graceful self-shutdown.
func TestRunServesAndExits(t *testing.T) {
	const addr = "127.0.0.1:17427"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-duration", "2s", "-consistency", "lsa", "-stats-every", "500ms"})
	}()

	var cl *server.Client
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		cl, err = server.DialTimeout(addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer cl.Close()
	if err := cl.Set("k", []byte("v")); err != nil {
		t.Fatalf("set: %v", err)
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("get = %q ok=%v err=%v", v, ok, err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tbtmd did not exit after -duration")
	}
}
