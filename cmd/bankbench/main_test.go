package main

import (
	"testing"
)

func TestRunFigure6Tiny(t *testing.T) {
	err := run([]string{"-figure", "6", "-duration", "20ms", "-threads", "1,2", "-accounts", "50"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure7Tiny(t *testing.T) {
	err := run([]string{"-figure", "7", "-duration", "20ms", "-threads", "2", "-accounts", "50"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "9"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	if err := run([]string{"-threads", "1,zero"}); err == nil {
		t.Fatal("bad thread list accepted")
	}
	if err := run([]string{"-threads", "0"}); err == nil {
		t.Fatal("zero threads accepted")
	}
}
