// Command bankbench reproduces the paper's evaluation (§5.5, Figures 6
// and 7): throughput of the bank micro-benchmark — short Transfer
// transactions and long Compute-Total transactions — across thread
// counts, comparing LSA-STM, LSA-STM without read sets, and Z-STM.
//
// Usage:
//
//	bankbench -figure 6                # read-only Compute-Total
//	bankbench -figure 7                # update Compute-Total
//	bankbench -figure 6 -duration 1s -accounts 1000
//
// Absolute numbers differ from the paper (Go on this host vs Java on an
// 8-core UltraSPARC T1); the series shapes and orderings are what the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tbtm"
	"tbtm/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bankbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bankbench", flag.ContinueOnError)
	figure := fs.Int("figure", 6, "paper figure to reproduce (6: read-only totals, 7: update totals)")
	duration := fs.Duration("duration", 500*time.Millisecond, "measurement window per point")
	accounts := fs.Int("accounts", 1000, "number of bank accounts")
	threadsFlag := fs.String("threads", "", "comma-separated thread counts (default 1,2,8,16,32)")
	seed := fs.Int64("seed", 42, "workload seed")
	yieldEvery := fs.Int("yield", 50, "yield every N accounts during scans (simulates hardware parallelism on few-core hosts; 0 disables)")
	stats := fs.Bool("stats", false, "print per-point latency distributions (committed ops, end to end)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	threads := harness.PaperThreads
	if *threadsFlag != "" {
		threads = nil
		for _, part := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("invalid thread count %q", part)
			}
			threads = append(threads, n)
		}
	}

	update := false
	switch *figure {
	case 6:
	case 7:
		update = true
	default:
		return fmt.Errorf("unknown figure %d (want 6 or 7)", *figure)
	}

	base := harness.BankConfig{
		Accounts:     *accounts,
		Duration:     *duration,
		UpdateTotals: update,
		YieldEvery:   *yieldEvery,
		Seed:         *seed,
	}

	var configs []harness.BankConfig
	lsaCfg := base
	lsaCfg.Name = "LSA-STM"
	lsaCfg.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)}
	configs = append(configs, lsaCfg)
	if !update {
		nrs := base
		nrs.Name = "LSA-STM(no-readsets)"
		nrs.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithNoReadSets(), tbtm.WithVersions(1024)}
		configs = append(configs, nrs)
	}
	zCfg := base
	zCfg.Name = "Z-STM"
	zCfg.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)}
	configs = append(configs, zCfg)

	variant := "read-only"
	if update {
		variant = "update"
	}
	fmt.Printf("Reproducing Figure %d: bank benchmark, %d accounts, %s Compute-Total, %v per point\n",
		*figure, *accounts, variant, *duration)
	fmt.Printf("(thread 0 mixes 80%% transfers / 20%% totals; other threads transfer only)\n\n")

	var series []harness.Series
	for _, cfg := range configs {
		fmt.Printf("running %-22s threads:", cfg.Name)
		s := harness.Series{Name: cfg.Name}
		for _, n := range threads {
			c := cfg
			c.Threads = n
			r, err := harness.RunBank(c)
			if err != nil {
				return err
			}
			if !r.InvariantOK {
				return fmt.Errorf("%s at %d threads: bank invariant violated", cfg.Name, n)
			}
			s.Results = append(s.Results, r)
			fmt.Printf(" %d", n)
		}
		fmt.Println(" done")
		series = append(series, s)
	}
	fmt.Println()

	fmt.Println(harness.FormatTable(
		fmt.Sprintf("Figure %d left: Compute-Total transactions (%s), Tx/s", *figure, variant),
		harness.MetricTotals, threads, series))
	fmt.Println(harness.FormatTable(
		fmt.Sprintf("Figure %d right: Transfer transactions, Tx/s", *figure),
		harness.MetricTransfers, threads, series))

	fmt.Println("Per-series stats at the largest thread count:")
	for _, s := range series {
		last := s.Results[len(s.Results)-1]
		st := last.Stats
		fmt.Printf("  %-22s commits=%d aborts=%d conflicts=%d longCommits=%d longAborts=%d zoneCrosses=%d\n",
			s.Name, st.Commits, st.Aborts, st.Conflicts, st.LongCommits, st.LongAborts, st.ZoneCrosses)
	}

	if *stats {
		fmt.Println()
		fmt.Println(harness.FormatLatencyTable(
			fmt.Sprintf("Compute-Total latency (%s, committed, incl. retries)", variant),
			harness.MetricTotals, series))
		fmt.Println(harness.FormatLatencyTable(
			"Transfer latency (committed, incl. retries)",
			harness.MetricTransfers, series))
	}
	return nil
}
