// Command crashsmoke seeds and verifies sentinel keys for the CI
// crash-recovery drill. The drill runs it twice around a kill -9 of a
// durable tbtmd:
//
//	crashsmoke -mode seed -addr :7420 -keys 32     # write sentinels, strict-acked
//	kill -9 $TBTMD_PID && tbtmd -data-dir ... &    # crash + restart
//	crashsmoke -mode verify -addr :7420 -wait 10s  # every sentinel must be back
//
// Seed writes keys sentinel:0..N-1 with values "sentinel-<i>" through
// individual SETs — each acknowledgement is a strict-durability promise
// — and exits non-zero if any write fails. Verify reads them all back
// and exits non-zero if any is missing or holds the wrong value: a lost
// acknowledged write, exactly what the drill exists to catch.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tbtm/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crashsmoke", flag.ContinueOnError)
	mode := fs.String("mode", "", "seed | verify")
	addr := fs.String("addr", "127.0.0.1:7420", "tbtmd address")
	keys := fs.Int("keys", 32, "number of sentinel keys")
	wait := fs.Duration("wait", 10*time.Second, "retry dialing for this long before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := dial(*addr, *wait)
	if err != nil {
		return err
	}
	defer cl.Close()

	switch *mode {
	case "seed":
		for i := 0; i < *keys; i++ {
			if err := cl.Set(sentinelKey(i), []byte(sentinelVal(i))); err != nil {
				return fmt.Errorf("seeding %s: %w", sentinelKey(i), err)
			}
		}
		fmt.Printf("crashsmoke: seeded %d sentinels (each SET ack is a durability promise)\n", *keys)
		return nil
	case "verify":
		missing := 0
		for i := 0; i < *keys; i++ {
			v, ok, err := cl.Get(sentinelKey(i))
			if err != nil {
				return fmt.Errorf("reading %s: %w", sentinelKey(i), err)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "crashsmoke: %s LOST after recovery\n", sentinelKey(i))
				missing++
			} else if string(v) != sentinelVal(i) {
				fmt.Fprintf(os.Stderr, "crashsmoke: %s corrupted: %q\n", sentinelKey(i), v)
				missing++
			}
		}
		if missing > 0 {
			return fmt.Errorf("%d of %d acknowledged sentinels did not survive recovery", missing, *keys)
		}
		fmt.Printf("crashsmoke: all %d sentinels survived recovery\n", *keys)
		return nil
	default:
		return fmt.Errorf("unknown -mode %q (want seed or verify)", *mode)
	}
}

// dial retries until the server answers or the wait budget runs out, so
// the drill does not race the restarting server's listen.
func dial(addr string, wait time.Duration) (*server.Client, error) {
	deadline := time.Now().Add(wait)
	for {
		cl, err := server.DialTimeout(addr, 2*time.Second)
		if err == nil {
			if err = cl.Ping(); err == nil {
				return cl, nil
			}
			cl.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server at %s not reachable within %v: %w", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func sentinelKey(i int) string { return fmt.Sprintf("sentinel:%d", i) }
func sentinelVal(i int) string { return fmt.Sprintf("sentinel-%d", i) }
