package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinySnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-out", out, "-benchtime", "5ms", "-goroutines", "1,2", "-run", "lsa/counter,sstm"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	// 3 kept series × 2 goroutine counts.
	if len(snap.Points) != 6 {
		t.Fatalf("got %d points, want 6", len(snap.Points))
	}
	for _, p := range snap.Points {
		if p.CommitsPerSec <= 0 || p.NsPerOp <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
}

func TestRunServerSeries(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-benchtime", "150ms", "-goroutines", "2", "-run", "server/throughput"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Points) != 1 || snap.Points[0].Series != "server/throughput" {
		t.Fatalf("points = %+v", snap.Points)
	}
	if snap.Points[0].CommitsPerSec <= 0 {
		t.Fatalf("degenerate server point: %+v", snap.Points[0])
	}
	if snap.PR != 7 {
		t.Fatalf("pr = %d, want default 7", snap.PR)
	}
}

func TestRunPipelinedSeries(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-benchtime", "50ms", "-run", "server/pipelined"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Points) != len(pipelineDepths) {
		t.Fatalf("got %d points, want %d: %+v", len(snap.Points), len(pipelineDepths), snap.Points)
	}
	for i, p := range snap.Points {
		if p.Series != pipelinedSeries || p.Goroutines != pipelineDepths[i] {
			t.Fatalf("point %d = %+v, want %s at depth %d", i, p, pipelinedSeries, pipelineDepths[i])
		}
		if p.CommitsPerSec <= 0 || p.P50Us <= 0 || p.P99Us < p.P50Us {
			t.Fatalf("degenerate pipelined point: %+v", p)
		}
	}
}

func TestRunRejectsBadGoroutines(t *testing.T) {
	if err := run([]string{"-goroutines", "1,zero"}); err == nil {
		t.Fatal("bad goroutine list accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
