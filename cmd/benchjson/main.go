// Command benchjson runs the commit-path scaling benchmarks across
// goroutine counts and emits a machine-readable JSON snapshot — the
// repo's benchmark trajectory (BENCH_PR2.json is the first committed
// snapshot). Each series measures warm update transactions with
// per-goroutine disjoint footprints, so the remaining cost is the
// commit path itself: the time base, the commit ordering machinery and
// the allocator.
//
// Series:
//
//	lsa/counter         LSA on the shared-counter time base (commit log on)
//	lsa/no-commit-log   LSA with the commit log disabled (WithCommitLog(0))
//	lsa/striped-clock   LSA on the striped commit counter (WithStripedClock)
//	zstm/short          Z-STM short transactions (default clock)
//	sstm/serialized     S-STM with one commit stripe (the global-lock baseline)
//	sstm/striped        S-STM with the default 64 commit stripes
//	sistm/counter       SI-STM on the shared counter
//	server/throughput   an in-process tbtmd driven over loopback TCP by
//	                    the closed-loop load generator (cmd/tbtmload's
//	                    engine); goroutines = client connections
//	server/pipelined    the same server driven by 2 pipelined+batched
//	                    connections at increasing window depths;
//	                    goroutines = pipeline depth (1, 4, 16, 64)
//	server/durable/*    a durable server (real on-disk WAL in a temp
//	                    dir) at each ack mode — none, relaxed, strict —
//	                    driven by 2 pipelined+batched connections at
//	                    depth 16 with a 50/50 read/write mix; the spread
//	                    across modes prices the fsync-per-ack contract
//	                    and the group-commit recovery of it
//
// Usage:
//
//	benchjson                         # all series, goroutines 1,2,4,8, stdout+file
//	benchjson -out BENCH_PR4.json     # write the snapshot
//	benchjson -goroutines 1,2,4,8,16 -benchtime 200ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/server"
)

// Point is one measured configuration.
type Point struct {
	Series        string  `json:"series"`
	Goroutines    int     `json:"goroutines"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// P50Us/P99Us are per-op latency percentiles for the server series
	// (zero and omitted for the in-process engine series).
	P50Us float64 `json:"p50_us,omitempty"`
	P99Us float64 `json:"p99_us,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	PR         int     `json:"pr"`
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GOARCH     string  `json:"goarch"`
	Note       string  `json:"note,omitempty"`
	Benchtime  string  `json:"benchtime"`
	Points     []Point `json:"points"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

type series struct {
	name string
	mk   func() (*tbtm.TM, error)
}

func allSeries() []series {
	return []series{
		{"lsa/counter", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.Linearizable))
		}},
		{"lsa/no-commit-log", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithCommitLog(0))
		}},
		{"lsa/striped-clock", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithStripedClock(16))
		}},
		{"zstm/short", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.ZLinearizable))
		}},
		{"sstm/serialized", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.Serializable), tbtm.WithThreads(64), tbtm.WithCommitStripes(1))
		}},
		{"sstm/striped", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.Serializable), tbtm.WithThreads(64))
		}},
		{"sistm/counter", func() (*tbtm.TM, error) {
			return tbtm.New(tbtm.WithConsistency(tbtm.SnapshotIsolation))
		}},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "write the JSON snapshot to this file (default stdout only)")
	goroutines := fs.String("goroutines", "1,2,4,8", "comma-separated goroutine counts")
	benchtime := fs.Duration("benchtime", 100*time.Millisecond, "minimum measurement time per point")
	runList := fs.String("run", "", "comma-separated series substrings to keep (default all)")
	pr := fs.Int("pr", 7, "PR number recorded in the snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var gs []int
	for _, part := range strings.Split(*goroutines, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad goroutine count %q", part)
		}
		gs = append(gs, n)
	}

	keep := func(name string) bool {
		if *runList == "" {
			return true
		}
		for _, part := range strings.Split(*runList, ",") {
			if strings.Contains(name, strings.TrimSpace(part)) {
				return true
			}
		}
		return false
	}

	snap := Snapshot{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOARCH:     runtime.GOARCH,
		Benchtime:  benchtime.String(),
	}
	// Stamp the parallelism the numbers were measured under into the
	// human-readable note too: a snapshot compared across hosts is
	// meaningless without it.
	snap.Note = fmt.Sprintf("num_cpu=%d gomaxprocs=%d", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if runtime.NumCPU() == 1 {
		snap.Note += "; single-CPU host: goroutines timeshare one core, so parallel speedups are not visible in wall-clock"
	}

	for _, s := range allSeries() {
		if !keep(s.name) {
			continue
		}
		for _, g := range gs {
			p, err := measure(s, g, *benchtime)
			if err != nil {
				return err
			}
			snap.Points = append(snap.Points, p)
			fmt.Fprintf(os.Stderr, "%-20s g=%-3d %10.1f ns/op %6.1f allocs/op %12.0f commits/s\n",
				s.name, g, p.NsPerOp, p.AllocsPerOp, p.CommitsPerSec)
		}
	}

	if keep(serverSeries) {
		for _, g := range gs {
			p, err := measureServer(g, *benchtime)
			if err != nil {
				return err
			}
			snap.Points = append(snap.Points, p)
			fmt.Fprintf(os.Stderr, "%-20s g=%-3d %10.1f ns/op %6.1f allocs/op %12.0f commits/s\n",
				serverSeries, g, p.NsPerOp, p.AllocsPerOp, p.CommitsPerSec)
		}
	}

	if keep(pipelinedSeries) {
		for _, depth := range pipelineDepths {
			p, err := measurePipelined(depth, *benchtime)
			if err != nil {
				return err
			}
			snap.Points = append(snap.Points, p)
			fmt.Fprintf(os.Stderr, "%-20s d=%-3d %10.1f ns/op %6.1f allocs/op %12.0f commits/s  p50 %.0fµs p99 %.0fµs\n",
				pipelinedSeries, depth, p.NsPerOp, p.AllocsPerOp, p.CommitsPerSec, p.P50Us, p.P99Us)
		}
	}

	for _, mode := range durableModes {
		name := durableSeriesPrefix + mode
		if !keep(name) {
			continue
		}
		p, err := measureDurable(mode, *benchtime)
		if err != nil {
			return err
		}
		snap.Points = append(snap.Points, p)
		fmt.Fprintf(os.Stderr, "%-20s d=16  %10.1f ns/op %6.1f allocs/op %12.0f commits/s  p50 %.0fµs p99 %.0fµs\n",
			name, p.NsPerOp, p.AllocsPerOp, p.CommitsPerSec, p.P50Us, p.P99Us)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(enc)
	}
	return nil
}

// serverSeries is the wire-protocol series: an in-process tbtmd on a
// loopback port, hammered by the closed-loop load generator. ns_per_op
// here is closed-loop latency per connection (protocol round trip
// included), and allocs cover the whole process — server and clients
// share it — so the number is an upper bound on either side.
const serverSeries = "server/throughput"

func measureServer(conns int, benchtime time.Duration) (Point, error) {
	srv, err := server.New(server.Config{})
	if err != nil {
		return Point{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Point{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := server.RunLoad(server.LoadConfig{
		Addr:       ln.Addr().String(),
		Conns:      conns,
		Duration:   benchtime,
		Keys:       256,
		ReadRatio:  0.8,
		MultiRatio: 0.05,
	})
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Point{}, err
	}
	if res.Ops == 0 {
		return Point{}, fmt.Errorf("%s at %d connections: no operations completed", serverSeries, conns)
	}
	return Point{
		Series:        serverSeries,
		Goroutines:    conns,
		NsPerOp:       res.NsPerOp,
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops),
		BytesPerOp:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops),
		CommitsPerSec: res.OpsPerS,
	}, nil
}

// pipelinedSeries measures what pipelining itself buys: a fixed 2
// connections drive the server at increasing window depths, flushing
// each window in one write so the server batches it under one lease.
// The Goroutines field records the DEPTH, not a connection count. The
// workload is the plain single-key mix (no MULTI) so depth-1 is an
// apples-to-apples baseline for the synchronous protocol.
const pipelinedSeries = "server/pipelined"

var pipelineDepths = []int{1, 4, 16, 64}

func measurePipelined(depth int, benchtime time.Duration) (Point, error) {
	srv, err := server.New(server.Config{})
	if err != nil {
		return Point{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Point{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := server.RunLoad(server.LoadConfig{
		Addr:      ln.Addr().String(),
		Conns:     2,
		Duration:  benchtime,
		Keys:      256,
		ReadRatio: 0.8,
		Pipeline:  depth,
		Batch:     true,
	})
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Point{}, err
	}
	if res.Ops == 0 {
		return Point{}, fmt.Errorf("%s at depth %d: no operations completed", pipelinedSeries, depth)
	}
	return Point{
		Series:        pipelinedSeries,
		Goroutines:    depth,
		NsPerOp:       res.NsPerOp,
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops),
		BytesPerOp:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops),
		CommitsPerSec: res.OpsPerS,
		P50Us:         res.P50Us,
		P99Us:         res.P99Us,
	}, nil
}

// durableSeriesPrefix measures what durability costs on the wire: the
// same pipelined+batched drive as server/pipelined at a fixed depth of
// 16, but against a durable server writing a real on-disk WAL in a
// temp directory, once per ack mode. ReadRatio drops to 0.5 so half
// the traffic actually exercises the log. "none" prices the WAL write
// path alone, "relaxed" adds background group fsync, "strict" makes
// every SET ack wait for its group's fsync — the full contract the
// crash drill verifies.
const durableSeriesPrefix = "server/durable/"

var durableModes = []string{"none", "relaxed", "strict"}

func measureDurable(mode string, benchtime time.Duration) (Point, error) {
	dir, err := os.MkdirTemp("", "benchjson-wal-*")
	if err != nil {
		return Point{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir, Durability: mode})
	if err != nil {
		return Point{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Point{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := server.RunLoad(server.LoadConfig{
		Addr:      ln.Addr().String(),
		Conns:     2,
		Duration:  benchtime,
		Keys:      256,
		ReadRatio: 0.5,
		Pipeline:  16,
		Batch:     true,
	})
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Point{}, err
	}
	if res.Ops == 0 {
		return Point{}, fmt.Errorf("%s%s: no operations completed", durableSeriesPrefix, mode)
	}
	return Point{
		Series:        durableSeriesPrefix + mode,
		Goroutines:    16,
		NsPerOp:       res.NsPerOp,
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops),
		BytesPerOp:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops),
		CommitsPerSec: res.OpsPerS,
		P50Us:         res.P50Us,
		P99Us:         res.P99Us,
	}, nil
}

// measure runs one series at one goroutine count: every goroutine owns a
// private object and thread and commits warm update transactions, so
// footprints are disjoint and the commit path is the contended resource.
// Each worker warms its descriptor logs and reclamation pools first, so
// the measured window sees steady state.
func measure(s series, goroutines int, benchtime time.Duration) (Point, error) {
	tm, err := s.mk()
	if err != nil {
		return Point{}, err
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	if goroutines > prev {
		runtime.GOMAXPROCS(goroutines)
	}

	const warmupOps = 512
	var (
		stop    atomic.Bool
		workErr atomic.Value
		warmed  sync.WaitGroup
		done    sync.WaitGroup
		begin   = make(chan struct{})
		counts  = make([]int64, goroutines)
	)
	for g := 0; g < goroutines; g++ {
		warmed.Add(1)
		done.Add(1)
		go func(g int) {
			defer done.Done()
			th := tm.NewThread()
			obj := tm.NewObject(int64(0))
			// Pre-boxed so Write does not box a fresh interface value per
			// op: the series measures the STM's allocations, not the
			// harness's.
			var val any = int64(g)
			op := func() error {
				return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					if _, err := tx.Read(obj); err != nil {
						return err
					}
					return tx.Write(obj, val)
				})
			}
			for w := 0; w < warmupOps; w++ {
				if err := op(); err != nil {
					workErr.Store(err)
					break
				}
			}
			warmed.Done()
			<-begin
			var n int64
			for !stop.Load() {
				if err := op(); err != nil {
					workErr.Store(err)
					break
				}
				n++
			}
			counts[g] = n
		}(g)
	}
	warmed.Wait()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	close(begin)
	time.Sleep(benchtime)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	if e := workErr.Load(); e != nil {
		return Point{}, e.(error)
	}
	var ops int64
	for _, n := range counts {
		ops += n
	}
	if ops == 0 {
		return Point{}, fmt.Errorf("%s at %d goroutines: no operations completed", s.name, goroutines)
	}
	return Point{
		Series:        s.name,
		Goroutines:    goroutines,
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp:   float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		BytesPerOp:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		CommitsPerSec: float64(ops) / elapsed.Seconds(),
	}, nil
}
