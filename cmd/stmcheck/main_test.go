package main

import (
	"strings"
	"testing"
)

func TestRunSingleSystem(t *testing.T) {
	if err := run([]string{"-stm", "zstm", "-rounds", "2", "-tx", "10", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAll(t *testing.T) {
	if err := run([]string{"-stm", "all", "-rounds", "1", "-tx", "8", "-threads", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSystem(t *testing.T) {
	err := run([]string{"-stm", "nonsense"})
	if err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
