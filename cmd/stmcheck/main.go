// Command stmcheck fuzzes an STM implementation with random concurrent
// workloads and validates the recorded histories against the
// implementation's advertised consistency criterion (DESIGN.md §6):
//
//	lsa, lsa-noreadsets  → linearizability
//	cstm, cstm-plausible → causal serializability
//	sstm                 → serializability
//	zstm                 → serializability and z-linearizability
//	sistm                → snapshot isolation (timestamp-exact)
//
// Usage:
//
//	stmcheck -stm zstm -rounds 200
//	stmcheck -stm all -rounds 50 -threads 6 -objects 4
//	stmcheck -stm sstm -rounds 500 -dump /tmp   # save failing histories
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tbtm/internal/checker"
	"tbtm/internal/conformance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stmcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stmcheck", flag.ContinueOnError)
	stm := fs.String("stm", "all", "system to check: lsa, lsa-noreadsets, lsa-fastpath, cstm, cstm-plausible, cstm-plausible-block, cstm-multiversion, cstm-comb, sstm, zstm, sistm, or all")
	rounds := fs.Int("rounds", 50, "fuzz rounds per system (one seed each)")
	threads := fs.Int("threads", 4, "worker goroutines")
	txPer := fs.Int("tx", 50, "transactions per worker")
	objects := fs.Int("objects", 6, "object universe size")
	seed := fs.Int64("seed", time.Now().UnixNano()%1e9, "base seed")
	dump := fs.String("dump", "", "directory to write failing histories to (JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var systems []conformance.System
	if *stm == "all" {
		systems = []conformance.System{
			conformance.LSA, conformance.LSANoReadSets, conformance.LSAFast,
			conformance.CSTM, conformance.CSTMPlausible, conformance.CSTMPlausibleBlock,
			conformance.CSTMMulti, conformance.CSTMComb,
			conformance.SSTM, conformance.ZSTM, conformance.SISTM,
		}
	} else {
		s, err := conformance.ParseSystem(*stm)
		if err != nil {
			return err
		}
		systems = []conformance.System{s}
	}

	for _, sys := range systems {
		start := time.Now()
		checked := 0
		for r := 0; r < *rounds; r++ {
			cfg := conformance.Config{
				System:      sys,
				Threads:     *threads,
				TxPerThread: *txPer,
				Objects:     *objects,
				Seed:        *seed + int64(r),
			}
			hist, err := conformance.Run(cfg)
			if err == nil {
				checked += len(hist.Txs)
				err = conformance.CheckHistory(sys, hist)
			}
			if err != nil {
				if *dump != "" && hist != nil {
					path := filepath.Join(*dump, fmt.Sprintf("%s-seed%d.json", sys, cfg.Seed))
					if derr := dumpHistory(path, hist); derr != nil {
						fmt.Fprintln(os.Stderr, "stmcheck: dump failed:", derr)
					} else {
						fmt.Fprintln(os.Stderr, "stmcheck: failing history written to", path)
					}
				}
				return fmt.Errorf("%s round %d (seed %d): %w", sys, r, cfg.Seed, err)
			}
		}
		fmt.Printf("%-16s OK: %d rounds, %d committed transactions checked in %v\n",
			sys, *rounds, checked, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func dumpHistory(path string, hist *checker.History) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := checker.SaveJSON(f, hist); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
