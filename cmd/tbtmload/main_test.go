package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"

	"tbtm/server"
)

// startServer brings up an in-process tbtmd for the load tool to hit.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunAgainstLiveServer(t *testing.T) {
	addr := startServer(t)
	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-addr", addr,
		"-duration", "300ms",
		"-conns", "2",
		"-keys", "64",
		"-multi-ratio", "0.1",
		"-blocking-ratio", "0.05",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(doc, &snap); err != nil {
		t.Fatalf("bad snapshot JSON: %v\n%s", err, doc)
	}
	if len(snap.Points) != 1 || snap.Points[0].Series != "server/throughput" {
		t.Fatalf("snapshot points = %+v", snap.Points)
	}
	if snap.Points[0].CommitsPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", snap.Points[0])
	}
	if snap.PR != 7 {
		t.Fatalf("pr = %d, want default 7", snap.PR)
	}
}

func TestRunUnreachableServer(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1", "-duration", "100ms"}); err == nil {
		t.Fatal("load against a dead address succeeded")
	}
}
