// Command tbtmload is a closed-loop load generator for tbtmd. Each
// connection issues operations — GETs and SETs over a skewed keyspace,
// MULTI scripts, and optionally blocking BTAKEs fed by a dedicated
// pipelined token connection — for a fixed duration, then the tool
// reports throughput and latency percentiles in the same JSON series
// shape as cmd/benchjson, so server numbers join the repo's benchmark
// trajectory. With -pipeline N each connection keeps N requests
// outstanding; -batch flushes each window in one write, which lets the
// server execute it under one lease.
//
// Usage:
//
//	tbtmload -addr 127.0.0.1:7420 -duration 5s -conns 8
//	tbtmload -addr :7420 -pipeline 16 -batch           # pipelined windows
//	tbtmload -addr :7420 -read-ratio 0.9 -skew 1.2 -multi-ratio 0.1
//	tbtmload -addr :7420 -blocking-ratio 0.05          # park/wake mix
//	tbtmload -addr :7420 -wait 5s -min-ops 1           # CI smoke: retry
//	   dialing until the server is up, fail unless ops committed
//	tbtmload -addr :7420 -metrics-url http://127.0.0.1:7421/metrics
//	   # scrape the server's exposition endpoint at the window
//	   # boundaries and embed server-side fsync and lease-wait
//	   # percentiles (computed from the histogram delta over the
//	   # window) next to the client-side p50/p99
//
// The tool exits non-zero when fewer than -min-ops operations complete
// or the server-side commit delta over the window is zero — the smoke
// assertion CI relies on. A window cut short because the server closed
// or reset connections mid-run (a crash drill killing tbtmd, say) is
// NOT a failure: the tool reports the partial counters with
// "truncated": true and exits zero, as long as -min-ops was still met
// before the cut.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"tbtm/internal/telemetry"
	"tbtm/server"
)

// Point and Snapshot mirror cmd/benchjson's emitted document shape so
// the two tools' outputs concatenate into one trajectory.
type Point struct {
	Series        string  `json:"series"`
	Goroutines    int     `json:"goroutines"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	P50Us         float64 `json:"p50_us,omitempty"`
	P99Us         float64 `json:"p99_us,omitempty"`
	Truncated     bool    `json:"truncated,omitempty"`

	// Server-side percentiles over the measurement window, computed
	// from the /metrics histogram deltas when -metrics-url is set:
	// where the wall-clock went on the other side of the wire.
	ServerFsyncP50Us     float64 `json:"server_fsync_p50_us,omitempty"`
	ServerFsyncP99Us     float64 `json:"server_fsync_p99_us,omitempty"`
	ServerLeaseWaitP50Us float64 `json:"server_lease_wait_p50_us,omitempty"`
	ServerLeaseWaitP99Us float64 `json:"server_lease_wait_p99_us,omitempty"`
}

type Snapshot struct {
	PR        int     `json:"pr"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	GOARCH    string  `json:"goarch"`
	Note      string  `json:"note,omitempty"`
	Benchtime string  `json:"benchtime"`
	Points    []Point `json:"points"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbtmload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbtmload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7420", "tbtmd address")
	conns := fs.Int("conns", 4, "closed-loop connections")
	duration := fs.Duration("duration", 2*time.Second, "measurement window")
	keys := fs.Int("keys", 1024, "keyspace size")
	valsize := fs.Int("valsize", 64, "SET payload bytes")
	readRatio := fs.Float64("read-ratio", 0.8, "GET share of plain single-key traffic")
	multiRatio := fs.Float64("multi-ratio", 0.05, "MULTI script share of traffic")
	txnSize := fs.Int("txn-size", 8, "MULTI script length")
	blockingRatio := fs.Float64("blocking-ratio", 0, "blocking BTAKE share of traffic")
	pipeline := fs.Int("pipeline", 1, "requests kept outstanding per connection (1 = synchronous)")
	batch := fs.Bool("batch", false, "flush each pipelined window in one write (server batches it under one lease)")
	skew := fs.Float64("skew", 0, "key distribution: 0 uniform, >1 Zipf s")
	seed := fs.Int64("seed", 1, "per-connection RNG seed base")
	wait := fs.Duration("wait", 0, "retry dialing for this long before failing")
	minOps := fs.Uint64("min-ops", 1, "fail unless at least this many ops complete")
	metricsURL := fs.String("metrics-url", "", "scrape this Prometheus endpoint at the window boundaries for server-side percentiles (e.g. http://127.0.0.1:7421/metrics)")
	out := fs.String("out", "", "write the JSON snapshot to this file (default stdout)")
	seriesName := fs.String("series", "server/throughput", "series name recorded in the snapshot")
	pr := fs.Int("pr", 7, "PR number recorded in the snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.LoadConfig{
		Addr:          *addr,
		Conns:         *conns,
		Duration:      *duration,
		Keys:          *keys,
		ValueSize:     *valsize,
		ReadRatio:     *readRatio,
		MultiRatio:    *multiRatio,
		TxnSize:       *txnSize,
		BlockingRatio: *blockingRatio,
		Pipeline:      *pipeline,
		Batch:         *batch,
		Skew:          *skew,
		Seed:          *seed,
		Wait:          *wait,
		DialTimeout:   2 * time.Second,
	}

	// The pre-window scrape anchors the histogram deltas; a failed
	// scrape degrades to client-side numbers only (the server may not
	// have a debug endpoint).
	var preScrape *telemetry.Scrape
	if *metricsURL != "" {
		var serr error
		if preScrape, serr = scrapeMetrics(*metricsURL); serr != nil {
			fmt.Fprintf(os.Stderr, "tbtmload: pre-window scrape: %v\n", serr)
		}
	}

	// Client-side allocation accounting brackets the run; against a
	// remote server it covers only this process (the generator), which
	// is the interesting side for a closed-loop tool.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := server.RunLoad(cfg)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return err
	}

	var postScrape *telemetry.Scrape
	if *metricsURL != "" && preScrape != nil {
		var serr error
		if postScrape, serr = scrapeMetrics(*metricsURL); serr != nil {
			fmt.Fprintf(os.Stderr, "tbtmload: post-window scrape: %v\n", serr)
		}
	}

	trunc := ""
	if res.Truncated {
		trunc = " TRUNCATED (server closed or reset mid-window; partial counters)"
	}
	fmt.Fprintf(os.Stderr,
		"tbtmload: %d ops in %v (%.0f ops/s, %.1f µs/op closed-loop, p50 %.0fµs p99 %.0fµs) gets=%d sets=%d multis=%d blocking=%d errors=%d engine-commits=%d%s\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.OpsPerS, res.NsPerOp/1e3,
		res.P50Us, res.P99Us,
		res.Gets, res.Sets, res.Multis, res.Blocking, res.Errors, res.EngineCommits, trunc)

	if res.Ops < *minOps {
		return fmt.Errorf("only %d ops completed, want >= %d", res.Ops, *minOps)
	}
	// A truncated window skips the commit-delta and error assertions:
	// the server may have died before the post-window stats fetch, and
	// connection-cut fallout is expected, not a generator bug.
	if !res.Truncated {
		if res.EngineCommits == 0 {
			return fmt.Errorf("server-side commit delta is zero over the window")
		}
		if res.Errors > 0 {
			return fmt.Errorf("%d operations failed", res.Errors)
		}
	}

	p := Point{
		Series:        *seriesName,
		Goroutines:    *conns,
		NsPerOp:       res.NsPerOp,
		CommitsPerSec: res.OpsPerS,
		P50Us:         res.P50Us,
		P99Us:         res.P99Us,
		Truncated:     res.Truncated,
	}
	if res.Ops > 0 {
		p.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
		p.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops)
	}
	if postScrape != nil {
		p.ServerFsyncP50Us, p.ServerFsyncP99Us = windowQuantiles(
			preScrape, postScrape, "tbtmd_wal_fsync_seconds")
		p.ServerLeaseWaitP50Us, p.ServerLeaseWaitP99Us = windowQuantiles(
			preScrape, postScrape, "tbtmd_lease_wait_seconds")
		if p.ServerFsyncP99Us > 0 || p.ServerLeaseWaitP99Us > 0 {
			fmt.Fprintf(os.Stderr,
				"tbtmload: server-side window percentiles: fsync p50 %.0fµs p99 %.0fµs, lease-wait p50 %.0fµs p99 %.0fµs\n",
				p.ServerFsyncP50Us, p.ServerFsyncP99Us, p.ServerLeaseWaitP50Us, p.ServerLeaseWaitP99Us)
		}
	}
	snap := Snapshot{
		PR:        *pr,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		GOARCH:    runtime.GOARCH,
		Benchtime: (*duration).String(),
		Points:    []Point{p},
	}
	if runtime.NumCPU() == 1 {
		snap.Note = "single-CPU host: connections timeshare one core, so parallel speedups are not visible in wall-clock"
	}
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out != "" {
		return os.WriteFile(*out, doc, 0o644)
	}
	_, err = os.Stdout.Write(doc)
	return err
}

// scrapeMetrics fetches and parses one Prometheus text exposition.
func scrapeMetrics(url string) (*telemetry.Scrape, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	return telemetry.ParseScrape(resp.Body)
}

// windowQuantiles computes p50/p99 in microseconds from the named
// histogram's delta between two scrapes; zeros when the metric is
// absent (in-memory server) or saw no observations in the window.
func windowQuantiles(before, after *telemetry.Scrape, name string) (p50, p99 float64) {
	b, a := before.Hist(name), after.Hist(name)
	if a == nil {
		return 0, 0
	}
	if v, ok := telemetry.HistDeltaQuantile(a, b, 0.50); ok {
		p50 = v * 1e6
	}
	if v, ok := telemetry.HistDeltaQuantile(a, b, 0.99); ok {
		p99 = v * 1e6
	}
	return p50, p99
}
