package main

import (
	"testing"
)

func TestRunSubsetTiny(t *testing.T) {
	if err := run([]string{"-run", "a1", "-duration", "15ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunA2Tiny(t *testing.T) {
	if err := run([]string{"-run", "a2", "-duration", "15ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunA6A7Tiny(t *testing.T) {
	if err := run([]string{"-run", "a6", "-duration", "15ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunA8A9A10Tiny(t *testing.T) {
	if err := run([]string{"-run", "a8,a9,a10", "-duration", "15ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNothing(t *testing.T) {
	if err := run([]string{"-run", "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
