// Command figures runs the full experiment suite: both panels of the
// paper's Figures 6 and 7 plus the harness-based ablation experiments
// from DESIGN.md §4 — A1 (vector-clock overhead), A2 (plausible-clock
// width), A3 (version-retention depth), A6 (snapshot isolation on the
// Figure 7 workload), A7 (first-attempt commit probability versus
// transaction length, the paper's motivating claim), A8 (long-transaction
// frequency), A9 (real-time clock deviation), A10 (zone-crossing
// patience) and A12 (multi-version CS-STM, §4.1 footnote 1). A5 and A11
// are testing.B benchmarks in the root package.
// Its output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	figures                  # everything, default durations
//	figures -duration 300ms  # faster, noisier
//	figures -run fig6,a2     # subset
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	duration := fs.Duration("duration", 500*time.Millisecond, "measurement window per point")
	runList := fs.String("run", "fig6,fig7,a1,a2,a3,a6,a7,a8,a9,a10,a12", "comma-separated experiments")
	seed := fs.Int64("seed", 42, "workload seed")
	yieldEvery := fs.Int("yield", 50, "yield every N accounts during scans (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(e)] = true
	}

	if want["fig6"] {
		if err := figure(6, false, *duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["fig7"] {
		if err := figure(7, true, *duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["a1"] {
		if err := ablationClockOverhead(*duration, *seed); err != nil {
			return err
		}
	}
	if want["a2"] {
		if err := ablationPlausibleWidth(*duration, *seed); err != nil {
			return err
		}
	}
	if want["a3"] {
		if err := ablationVersionDepth(*duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["a6"] {
		if err := ablationSnapshotIsolation(*duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["a7"] {
		if err := ablationCommitProbability(*seed); err != nil {
			return err
		}
	}
	if want["a8"] {
		if err := ablationLongFrequency(*duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["a9"] {
		if err := ablationClockDeviation(*duration, *seed); err != nil {
			return err
		}
	}
	if want["a10"] {
		if err := ablationZonePatience(*duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	if want["a12"] {
		if err := ablationMultiVersionCS(*duration, *seed, *yieldEvery); err != nil {
			return err
		}
	}
	return nil
}

// ablationMultiVersionCS (A12) measures §4.1 footnote 1 on the bank
// workload: long read-only Compute-Total transactions under transfer
// churn, CS-STM with a single retained version (the paper's base
// algorithm) versus eight retained versions. The single-version series
// starves the long scans — every concurrent update invalidates them —
// while the multi-version variant picks older retained versions and
// sustains total throughput; transfer throughput is unaffected.
func ablationMultiVersionCS(d time.Duration, seed int64, yieldEvery int) error {
	threads := []int{1, 2, 8}
	base := harness.BankConfig{Accounts: 1000, Duration: d, YieldEvery: yieldEvery, Seed: seed}
	sv := base
	sv.Name = "CS-STM(single)"
	sv.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithThreads(16)}
	mv := base
	mv.Name = "CS-STM(8 versions)"
	mv.Options = []tbtm.Option{
		tbtm.WithConsistency(tbtm.CausallySerializable),
		tbtm.WithThreads(16), tbtm.WithVersions(8),
	}
	series, err := runSeries([]harness.BankConfig{sv, mv}, threads)
	if err != nil {
		return err
	}
	fmt.Println("== A12: multi-version CS-STM (§4.1 footnote 1) ==")
	fmt.Println()
	fmt.Println(harness.FormatTable("Compute-Total Tx/s (read-only)", harness.MetricTotals, threads, series))
	fmt.Println(harness.FormatTable("Transfer Tx/s", harness.MetricTransfers, threads, series))
	return nil
}

func runSeries(cfgs []harness.BankConfig, threads []int) ([]harness.Series, error) {
	var out []harness.Series
	for _, cfg := range cfgs {
		s, err := harness.RunSeries(cfg, threads)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func figure(num int, update bool, d time.Duration, seed int64, yieldEvery int) error {
	variant := "read-only"
	if update {
		variant = "update"
	}
	base := harness.BankConfig{Accounts: 1000, Duration: d, UpdateTotals: update, YieldEvery: yieldEvery, Seed: seed}
	lsaCfg := base
	lsaCfg.Name = "LSA-STM"
	lsaCfg.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)}
	cfgs := []harness.BankConfig{lsaCfg}
	if !update {
		nrs := base
		nrs.Name = "LSA-STM(no-readsets)"
		nrs.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithNoReadSets(), tbtm.WithVersions(1024)}
		cfgs = append(cfgs, nrs)
	}
	zCfg := base
	zCfg.Name = "Z-STM"
	zCfg.Options = []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)}
	cfgs = append(cfgs, zCfg)

	series, err := runSeries(cfgs, harness.PaperThreads)
	if err != nil {
		return err
	}
	fmt.Printf("== E%d/E%d: Figure %d (%s Compute-Total) ==\n\n", num-5, num-3, num, variant)
	fmt.Println(harness.FormatTable(
		fmt.Sprintf("Figure %d left: Compute-Total Tx/s (%s)", num, variant),
		harness.MetricTotals, harness.PaperThreads, series))
	fmt.Println(harness.FormatTable(
		fmt.Sprintf("Figure %d right: Transfer Tx/s", num),
		harness.MetricTransfers, harness.PaperThreads, series))
	return nil
}

// ablationClockOverhead compares transfers-only throughput of the scalar
// LSA-STM against the vector-clock CS-STM (§4.4/§6: "the runtime overhead
// for managing vector time can be quite significant").
func ablationClockOverhead(d time.Duration, seed int64) error {
	threads := []int{1, 2, 8}
	base := harness.BankConfig{Accounts: 1000, Duration: d, TotalPct: -1, Seed: seed}
	mk := func(name string, opts ...tbtm.Option) harness.BankConfig {
		c := base
		c.Name = name
		c.Options = opts
		return c
	}
	cfgs := []harness.BankConfig{
		mk("LSA(counter)", tbtm.WithConsistency(tbtm.Linearizable)),
		mk("CS-STM(vector16)", tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithThreads(16)),
		mk("CS-STM(plaus r=2)", tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithThreads(16), tbtm.WithPlausibleEntries(2)),
		mk("S-STM(vector16)", tbtm.WithConsistency(tbtm.Serializable), tbtm.WithThreads(16)),
	}
	series, err := runSeries(cfgs, threads)
	if err != nil {
		return err
	}
	fmt.Println("== A1: time-base overhead (transfers only) ==")
	fmt.Println()
	fmt.Println(harness.FormatTable("Transfer Tx/s", harness.MetricTransfers, threads, series))
	return nil
}

// ablationPlausibleWidth isolates the §4.3 accuracy trade-off: workers
// update pairwise-disjoint objects (no true conflicts are possible for a
// reader spanning them) while one observer repeatedly reads across all
// partitions and commits a private write. With exact vector clocks the
// observer never aborts; as r shrinks, false orderings between the
// concurrent updates make the observer's validation fail spuriously.
func ablationPlausibleWidth(d time.Duration, seed int64) error {
	_ = seed
	const workers = 6
	fmt.Println("== A2: plausible-clock width r (CS-STM, disjoint updates + cross-partition reader) ==")
	fmt.Println()
	fmt.Printf("%-10s %18s %18s %15s\n", "r", "observer commits", "observer aborts", "false-abort %")
	configs := []struct {
		label string
		opts  []tbtm.Option
	}{
		{"1", []tbtm.Option{tbtm.WithPlausibleEntries(1)}},
		{"2", []tbtm.Option{tbtm.WithPlausibleEntries(2)}},
		{"2+comb", []tbtm.Option{tbtm.WithPlausibleEntries(2), tbtm.WithPlausibleComb()}},
		{"3", []tbtm.Option{tbtm.WithPlausibleEntries(3)}},
		{"6", []tbtm.Option{tbtm.WithPlausibleEntries(6)}},
	}
	for _, c := range configs {
		opts := append([]tbtm.Option{
			tbtm.WithConsistency(tbtm.CausallySerializable),
			tbtm.WithThreads(workers + 1),
		}, c.opts...)
		tm, err := tbtm.New(opts...)
		if err != nil {
			return err
		}
		// One object per worker; workers only ever touch their own.
		objs := make([]*tbtm.Var[int64], workers)
		for i := range objs {
			objs[i] = tbtm.NewVar(tm, int64(0))
		}
		sink := tbtm.NewVar(tm, int64(0))

		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := tm.NewThread()
				var n int64
				for !stop.Load() {
					n++
					v := n
					_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
						return objs[w].Write(tx, v)
					})
					// Throttle so a scan overlaps roughly one update:
					// the false-abort probability then reflects the
					// clock's accuracy rather than saturating.
					time.Sleep(200 * time.Microsecond)
				}
			}(w)
		}

		th := tm.NewThread()
		var commits, aborts uint64
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			tx := th.Begin(tbtm.Long)
			failed := false
			var sum int64
			for _, o := range objs {
				runtime.Gosched() // let updaters run between reads
				v, err := o.Read(tx)
				if err != nil {
					failed = true
					break
				}
				sum += v
			}
			if !failed {
				failed = sink.Write(tx, sum) != nil
			}
			if failed {
				tx.Abort()
				aborts++
				continue
			}
			if tx.Commit() != nil {
				aborts++
			} else {
				commits++
			}
		}
		stop.Store(true)
		wg.Wait()
		pct := 0.0
		if commits+aborts > 0 {
			pct = 100 * float64(aborts) / float64(commits+aborts)
		}
		fmt.Printf("%-10s %18d %18d %14.1f%%\n", c.label, commits, aborts, pct)
	}
	fmt.Println()
	return nil
}

// ablationSnapshotIsolation runs the Figure 7 workload (update
// Compute-Total) on SI-STM next to Z-STM: both sustain the long update
// transaction, but SI admits write skew (examples/writeskew) while
// z-linearizability keeps the whole history serializable — the paper's
// §4.1 semantics-versus-throughput trade-off as one table.
func ablationSnapshotIsolation(d time.Duration, seed int64, yieldEvery int) error {
	threads := []int{1, 2, 8}
	base := harness.BankConfig{Accounts: 1000, Duration: d, UpdateTotals: true, YieldEvery: yieldEvery, Seed: seed}
	mk := func(name string, opts ...tbtm.Option) harness.BankConfig {
		c := base
		c.Name = name
		c.Options = opts
		return c
	}
	cfgs := []harness.BankConfig{
		mk("SI-STM", tbtm.WithConsistency(tbtm.SnapshotIsolation), tbtm.WithVersions(1024)),
		mk("Z-STM", tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)),
	}
	series, err := runSeries(cfgs, threads)
	if err != nil {
		return err
	}
	fmt.Println("== A6: snapshot isolation on the Figure 7 workload ==")
	fmt.Println()
	fmt.Println(harness.FormatTable("Compute-Total Tx/s (update)", harness.MetricTotals, threads, series))
	fmt.Println(harness.FormatTable("Transfer Tx/s", harness.MetricTransfers, threads, series))
	return nil
}

// ablationCommitProbability measures the paper's motivating claim
// directly: the first-attempt commit probability of an update
// transaction versus its read-set size, under fixed background transfer
// churn, for the linearizable baseline and for Z-STM long transactions.
func ablationCommitProbability(seed int64) error {
	lengths := []int{2, 10, 50, 200, 1000}
	probes := []harness.ProbeConfig{
		{
			Name:    "LSA-STM(short)",
			Options: []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1024)},
			Lengths: lengths, Seed: seed,
		},
		{
			Name:    "SI-STM(short)",
			Options: []tbtm.Option{tbtm.WithConsistency(tbtm.SnapshotIsolation), tbtm.WithVersions(1024)},
			Lengths: lengths, Seed: seed,
		},
		{
			Name:    "Z-STM(long)",
			Options: []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)},
			Long:    true,
			Lengths: lengths, Seed: seed,
		},
	}
	var series []harness.ProbeResult
	for _, cfg := range probes {
		res, err := harness.RunProbe(cfg)
		if err != nil {
			return err
		}
		series = append(series, res)
	}
	fmt.Println("== A7: first-attempt commit probability vs transaction length ==")
	fmt.Println()
	fmt.Println(harness.FormatProbeTable(
		"Commit probability (update tx reading N accounts, 2 churn threads)", series))
	return nil
}

// ablationLongFrequency stresses the paper's standing assumption that
// "long transactions are executed infrequently" (§5): the mixed thread's
// Compute-Total share rises from the paper's 20% to 80%, with update
// totals so every long transaction opens a zone. Transfer throughput
// under Z-STM should degrade as zone churn grows — the regime boundary
// of the z-linearizable design.
func ablationLongFrequency(d time.Duration, seed int64, yieldEvery int) error {
	const threads = 8
	fmt.Println("== A8: long-transaction frequency (Z-STM, update totals, 8 threads) ==")
	fmt.Println()
	fmt.Printf("%-12s %15s %15s %15s %15s\n", "totals %", "totals Tx/s", "transfers Tx/s", "zone crosses", "long aborts")
	for _, pct := range []int{5, 20, 50, 80} {
		r, err := harness.RunBank(harness.BankConfig{
			Name:         fmt.Sprintf("Z-STM(%d%%)", pct),
			Options:      []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(1024)},
			Threads:      threads,
			Duration:     d,
			TotalPct:     pct,
			UpdateTotals: true,
			YieldEvery:   yieldEvery,
			Seed:         seed,
		})
		if err != nil {
			return err
		}
		if !r.InvariantOK {
			return fmt.Errorf("a8: invariant violated at %d%% totals", pct)
		}
		fmt.Printf("%-12d %15.1f %15.1f %15d %15d\n",
			pct, r.TotalsPerSec(), r.TransfersPerSec(), r.Stats.ZoneCrosses, r.Stats.LongAborts)
	}
	fmt.Println()
	return nil
}

// ablationClockDeviation quantifies §2's claim that with internally
// synchronized real-time clocks "the probability of spurious aborts
// increases with the deviation of clocks": transfers-only LSA on the
// simulated real-time base, sweeping the deviation bound ε.
func ablationClockDeviation(d time.Duration, seed int64) error {
	const threads = 4
	fmt.Println("== A9: simulated real-time clock deviation (LSA, transfers only, 4 threads) ==")
	fmt.Println()
	fmt.Printf("%-12s %15s %15s %15s\n", "epsilon", "transfers Tx/s", "conflicts", "conflict %")
	for _, eps := range []uint64{0, 4, 16, 64} {
		r, err := harness.RunBank(harness.BankConfig{
			Name: fmt.Sprintf("eps=%d", eps),
			Options: []tbtm.Option{
				tbtm.WithConsistency(tbtm.Linearizable),
				tbtm.WithSimRealTimeClock(threads, eps, 5*time.Microsecond),
			},
			Threads:  threads,
			Duration: d,
			TotalPct: -1, // transfers only
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		if !r.InvariantOK {
			return fmt.Errorf("a9: invariant violated at eps=%d", eps)
		}
		attempts := r.Stats.Commits + r.Stats.Aborts
		pct := 0.0
		if attempts > 0 {
			pct = 100 * float64(r.Stats.Conflicts) / float64(attempts)
		}
		fmt.Printf("%-12d %15.1f %15d %14.2f%%\n", eps, r.TransfersPerSec(), r.Stats.Conflicts, pct)
	}
	fmt.Println()
	return nil
}

// ablationZonePatience sweeps how long a short transaction waits on a
// zone crossing before aborting (Algorithm 3 line 18's contention-manager
// policy): impatient shorts burn work re-executing; very patient shorts
// serialize behind the long transaction.
func ablationZonePatience(d time.Duration, seed int64, yieldEvery int) error {
	const threads = 8
	fmt.Println("== A10: zone-crossing patience (Z-STM, update totals, 8 threads) ==")
	fmt.Println()
	fmt.Printf("%-12s %15s %15s %15s %15s\n", "patience", "totals Tx/s", "transfers Tx/s", "crossings", "short aborts")
	for _, patience := range []int{1, 8, 64, 512} {
		r, err := harness.RunBank(harness.BankConfig{
			Name: fmt.Sprintf("patience=%d", patience),
			Options: []tbtm.Option{
				tbtm.WithConsistency(tbtm.ZLinearizable),
				tbtm.WithVersions(1024),
				tbtm.WithZonePatience(patience),
			},
			Threads:      threads,
			Duration:     d,
			UpdateTotals: true,
			YieldEvery:   yieldEvery,
			Seed:         seed,
		})
		if err != nil {
			return err
		}
		if !r.InvariantOK {
			return fmt.Errorf("a10: invariant violated at patience=%d", patience)
		}
		fmt.Printf("%-12d %15.1f %15.1f %15d %15d\n",
			patience, r.TotalsPerSec(), r.TransfersPerSec(), r.Stats.ZoneCrosses, r.Stats.Aborts)
	}
	fmt.Println()
	return nil
}

// ablationVersionDepth compares multi-version LSA against the
// single-version TL2-like variant under the Figure 6 workload (§4.4:
// "single-version objects can decrease performance" for long read-only
// transactions).
func ablationVersionDepth(d time.Duration, seed int64, yieldEvery int) error {
	threads := []int{1, 2, 8}
	base := harness.BankConfig{Accounts: 1000, Duration: d, YieldEvery: yieldEvery, Seed: seed}
	mk := func(name string, opts ...tbtm.Option) harness.BankConfig {
		c := base
		c.Name = name
		c.Options = opts
		return c
	}
	cfgs := []harness.BankConfig{
		mk("LSA(8 versions)", tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(8)),
		mk("LSA(1 version)", tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(1)),
		mk("SingleVersion/TL2", tbtm.WithConsistency(tbtm.SingleVersion)),
	}
	series, err := runSeries(cfgs, threads)
	if err != nil {
		return err
	}
	fmt.Println("== A3: version retention depth (Figure 6 workload) ==")
	fmt.Println()
	fmt.Println(harness.FormatTable("Compute-Total Tx/s (read-only)", harness.MetricTotals, threads, series))
	fmt.Println(harness.FormatTable("Transfer Tx/s", harness.MetricTransfers, threads, series))
	return nil
}
