// Command schedviz replays the paper's schedule figures against the real
// STM implementations and renders the result as ASCII timelines (one row
// per thread, the global axis left to right, long transactions drawn
// with double brackets). It makes the consistency-criteria differences
// visible: the same interleaving commits or aborts different
// transactions depending on the criterion.
//
// Usage:
//
//	schedviz            # all figures
//	schedviz -fig 1     # just Figure 1
//
// Figures:
//
//	1  long TL spans two disjoint short writers; linearizability aborts
//	   TL, the weaker criteria (and z-linearizability) commit everything
//	2  Figure 1 plus T3, which fixes an order; serializability lets only
//	   one of TL/T3 commit, causal serializability commits both
//	3  a transaction reads versions both before and after a committed
//	   writer; CS-STM aborts it
//	4  Z-STM zones: shorts joining the active zone commit, shorts that
//	   would cross it abort, and proceed after the long commits
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"tbtm"
	"tbtm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "schedviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("schedviz", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to replay (1-4; 0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	figures := []func() error{figure1, figure2, figure3, figure4}
	if *fig != 0 {
		if *fig < 1 || *fig > len(figures) {
			return fmt.Errorf("unknown figure %d", *fig)
		}
		return figures[*fig-1]()
	}
	for _, f := range figures {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// outcome folds a commit error into the recorder and returns a label.
func outcome(t *trace.Tx, err error) {
	if err == nil {
		t.Commit()
	} else {
		t.Abort()
	}
}

// figure1 replays Figure 1: TL reads o1, o2, then T1 overwrites both and
// commits, T2 writes o3 twice and commits, and TL finally reads o3 and
// writes o4.
func figure1() error {
	fmt.Println("== Figure 1: linearizability forces the long transaction to abort ==")
	fmt.Println()
	for _, level := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.CausallySerializable, tbtm.Serializable, tbtm.ZLinearizable,
	} {
		rec := trace.New()
		tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithContention(tbtm.ContentionSuicide))
		o1 := tbtm.NewVar(tm, "o1v0")
		o2 := tbtm.NewVar(tm, "o2v0")
		o3 := tbtm.NewVar(tm, "o3v0")
		o4 := tbtm.NewVar(tm, "o4v0")

		p1, p2, p3 := tm.NewThread(), tm.NewThread(), tm.NewThread()

		tl := p3.Begin(tbtm.Long)
		ltr := rec.Begin("p3", "TL", true)
		if _, err := o1.Read(tl); err != nil {
			return fmt.Errorf("TL r(o1): %w", err)
		}
		ltr.Read("o1")
		if _, err := o2.Read(tl); err != nil {
			return fmt.Errorf("TL r(o2): %w", err)
		}
		ltr.Read("o2")

		t1 := p1.Begin(tbtm.Short)
		t1r := rec.Begin("p1", "T1", false)
		err := o1.Write(t1, "o1v1")
		if err == nil {
			t1r.Write("o1")
			if err = o2.Write(t1, "o2v1"); err == nil {
				t1r.Write("o2")
				err = t1.Commit()
			}
		}
		outcome(t1r, err)

		t2 := p2.Begin(tbtm.Short)
		t2r := rec.Begin("p2", "T2", false)
		err = o3.Write(t2, "o3v1a")
		if err == nil {
			t2r.Write("o3")
			if err = o3.Write(t2, "o3v1b"); err == nil {
				t2r.Write("o3")
				err = t2.Commit()
			}
		}
		outcome(t2r, err)

		_, err = o3.Read(tl)
		if err == nil {
			ltr.Read("o3")
			if err = o4.Write(tl, "o4v1"); err == nil {
				ltr.Write("o4")
				err = tl.Commit()
			}
		}
		outcome(ltr, err)

		printFigure(level, rec)
	}
	return nil
}

// figure2 replays Figure 2: Figure 1 plus T3 (reads o3, writes o2),
// which imposes the order T1 → T2; only one of TL and T3 may then commit
// under serializability, while causal serializability admits both.
func figure2() error {
	fmt.Println("== Figure 2: causally serializable but not serializable ==")
	fmt.Println()
	for _, level := range []tbtm.Consistency{
		tbtm.CausallySerializable, tbtm.Serializable,
	} {
		rec := trace.New()
		tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithContention(tbtm.ContentionSuicide))
		o1 := tbtm.NewVar(tm, "o1v0")
		o2 := tbtm.NewVar(tm, "o2v0")
		o3 := tbtm.NewVar(tm, "o3v0")
		o4 := tbtm.NewVar(tm, "o4v0")

		p1, p2, p3, p4 := tm.NewThread(), tm.NewThread(), tm.NewThread(), tm.NewThread()

		tl := p3.Begin(tbtm.Long)
		ltr := rec.Begin("p3", "TL", true)
		if _, err := o1.Read(tl); err != nil {
			return err
		}
		ltr.Read("o1")
		if _, err := o2.Read(tl); err != nil {
			return err
		}
		ltr.Read("o2")

		t1 := p1.Begin(tbtm.Short)
		t1r := rec.Begin("p1", "T1", false)
		err := o1.Write(t1, "o1v1")
		if err == nil {
			t1r.Write("o1")
			if err = o2.Write(t1, "o2v1"); err == nil {
				t1r.Write("o2")
				err = t1.Commit()
			}
		}
		outcome(t1r, err)

		// T3 reads o3 before T2 commits (the initial version): committing
		// T3 then fixes T1 → T3 → T2, the order incompatible with TL's
		// T2 → TL → T1.
		t3 := p4.Begin(tbtm.Short)
		t3r := rec.Begin("p4", "T3", false)
		_, err = o3.Read(t3)
		if err == nil {
			t3r.Read("o3")
		}

		t2 := p2.Begin(tbtm.Short)
		t2r := rec.Begin("p2", "T2", false)
		err2 := o3.Write(t2, "o3v1")
		if err2 == nil {
			t2r.Write("o3")
			err2 = t2.Commit()
		}
		outcome(t2r, err2)

		if err == nil {
			if err = o2.Write(t3, "o2v2"); err == nil {
				t3r.Write("o2")
				err = t3.Commit()
			}
		}
		outcome(t3r, err)

		_, err = o3.Read(tl)
		if err == nil {
			ltr.Read("o3")
			if err = o4.Write(tl, "o4v1"); err == nil {
				ltr.Write("o4")
				err = tl.Commit()
			}
		}
		outcome(ltr, err)

		printFigure(level, rec)
	}
	return nil
}

// figure3 replays Figure 3's abort pattern: T1 reads a version of o3
// that T2 then overwrites; by also reading T2's o1 it would causally
// both precede and follow T2, so CS-STM aborts it at validation.
func figure3() error {
	fmt.Println("== Figure 3: reading around a committed writer aborts ==")
	fmt.Println()
	level := tbtm.CausallySerializable
	rec := trace.New()
	tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithContention(tbtm.ContentionSuicide))
	o1 := tbtm.NewVar(tm, "o1v0")
	o3 := tbtm.NewVar(tm, "o3v0")
	p1, p2 := tm.NewThread(), tm.NewThread()

	t1 := p1.Begin(tbtm.Short)
	t1r := rec.Begin("p1", "T1", false)
	if _, err := o3.Read(t1); err != nil {
		return err
	}
	t1r.Read("o3")

	t2 := p2.Begin(tbtm.Short)
	t2r := rec.Begin("p2", "T2", false)
	err := o1.Write(t2, "o1v1")
	if err == nil {
		t2r.Write("o1")
		if err = o3.Write(t2, "o3v1"); err == nil {
			t2r.Write("o3")
			err = t2.Commit()
		}
	}
	outcome(t2r, err)

	_, err = o1.Read(t1)
	if err == nil {
		t1r.Read("o1")
		if err = o1.Write(t1, "o1v2"); err == nil {
			t1r.Write("o1")
			err = t1.Commit()
		}
	}
	outcome(t1r, err)

	printFigure(level, rec)
	return nil
}

// figure4 replays the zone partitioning of Figures 4/5 on Z-STM: while
// long TL1 is active, short S1 (touching only objects in TL1's zone)
// commits, short S2 (spanning the zone boundary) aborts on the crossing,
// and after TL1 commits the same operations succeed as S3.
func figure4() error {
	fmt.Println("== Figures 4/5: zones under Z-STM ==")
	fmt.Println()
	level := tbtm.ZLinearizable
	rec := trace.New()
	tm := tbtm.MustNew(tbtm.WithConsistency(level), tbtm.WithZonePatience(1))
	o1 := tbtm.NewVar(tm, "o1v0")
	o2 := tbtm.NewVar(tm, "o2v0")
	o3 := tbtm.NewVar(tm, "o3v0")
	pL, pS := tm.NewThread(), tm.NewThread()

	tl := pL.Begin(tbtm.Long)
	ltr := rec.Begin("pL", "TL1", true)
	if _, err := o1.Read(tl); err != nil {
		return err
	}
	ltr.Read("o1")
	if _, err := o2.Read(tl); err != nil {
		return err
	}
	ltr.Read("o2")

	// S1 joins TL1's zone (both objects already opened by TL1).
	s1 := pS.Begin(tbtm.Short)
	s1r := rec.Begin("pS", "S1", false)
	_, err := o1.Read(s1)
	if err == nil {
		s1r.Read("o1")
		if err = o2.Write(s1, "o2v1"); err == nil {
			s1r.Write("o2")
			err = s1.Commit()
		}
	}
	outcome(s1r, err)
	if err != nil {
		return fmt.Errorf("S1 must commit inside the zone: %w", err)
	}

	// S2 crosses from the active zone to the primordial one: aborted.
	s2 := pS.Begin(tbtm.Short)
	s2r := rec.Begin("pS", "S2", false)
	_, err = o1.Read(s2)
	if err == nil {
		s2r.Read("o1")
		if _, err = o3.Read(s2); err == nil {
			s2r.Read("o3")
			err = s2.Commit()
		} else {
			s2r.Note("cross!")
		}
	}
	outcome(s2r, err)
	if err == nil {
		return errors.New("S2 crossed an active zone; it must abort")
	}
	s2.Abort()

	if err := tl.Commit(); err != nil {
		return fmt.Errorf("TL1 commit: %w", err)
	}
	ltr.Commit()

	// The same operations proceed once the zone is in the past.
	s3 := pS.Begin(tbtm.Short)
	s3r := rec.Begin("pS", "S3", false)
	_, err = o1.Read(s3)
	if err == nil {
		s3r.Read("o1")
		if _, err = o3.Read(s3); err == nil {
			s3r.Read("o3")
			err = s3.Commit()
		}
	}
	outcome(s3r, err)
	if err != nil {
		return fmt.Errorf("S3 must commit after the long finished: %w", err)
	}

	printFigure(level, rec)
	return nil
}

func printFigure(level tbtm.Consistency, rec *trace.Recorder) {
	fmt.Printf("--- %s ---\n", level)
	fmt.Print(rec.Render())
	out := rec.Outcomes()
	fmt.Print("outcomes:")
	for _, tx := range []string{"T1", "T2", "T3", "TL", "TL1", "S1", "S2", "S3"} {
		if o, ok := out[tx]; ok {
			fmt.Printf(" %s=%s", tx, o)
		}
	}
	fmt.Println()
	fmt.Println()
}
