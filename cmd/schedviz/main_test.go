package main

import "testing"

func TestAllFigures(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFigure(t *testing.T) {
	for fig := 1; fig <= 4; fig++ {
		if err := run([]string{"-fig", string(rune('0' + fig))}); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
}

func TestBadFigure(t *testing.T) {
	if err := run([]string{"-fig", "9"}); err == nil {
		t.Fatal("figure 9 accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
