package main

import (
	"bytes"
	"strings"
	"testing"

	"tbtm/internal/lint"
)

// TestListMatchesRegistry keeps the binary's -list output in sync
// with the internal/lint registry (the registry's own meta-test ties
// the registry to the analyzer directories, closing the loop).
func TestListMatchesRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("tbtmvet -list exited %d: %s", code, errb.String())
	}
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		name, _, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed -list line %q", line)
		}
		listed = append(listed, name)
	}
	reg := lint.Analyzers()
	if len(listed) != len(reg) {
		t.Fatalf("-list shows %d analyzers, registry has %d", len(listed), len(reg))
	}
	for i, a := range reg {
		if listed[i] != a.Name {
			t.Errorf("-list[%d] = %q, registry has %q", i, listed[i], a.Name)
		}
	}
}

// TestUnknownOnlyRejected guards the -only validation path.
func TestUnknownOnlyRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Fatalf("missing unknown-analyzer message: %s", errb.String())
	}
}
