// Command tbtmvet is the repo's contract checker: a multichecker that
// runs every analyzer registered in internal/lint over the module.
// CI runs it as a blocking lane; locally:
//
//	go run ./cmd/tbtmvet ./...
//	go run ./cmd/tbtmvet -list
//	go run ./cmd/tbtmvet -only noalloc,epochpin ./internal/core
//
// Exit status is 1 when any analyzer reports a finding, 2 on driver
// errors (load or type-check failures). Suppress a single finding
// with a `//tbtm:ignore <analyzer>` comment on the flagged line — the
// suppression is visible in review, unlike a silently narrowed check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tbtm/internal/lint"
	"tbtm/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbtmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s\t%s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(stderr, "tbtmvet: unknown analyzer %q (see -list)\n", n)
			return 2
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "tbtmvet: %v\n", err)
		return 2
	}
	pkgs, fset, dirs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tbtmvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, fset, dirs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "tbtmvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tbtmvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
