// Command replsmoke drives and verifies the CI replication drill: a
// durable primary, a read replica following its WAL, a kill -9 of the
// replica mid-stream, a restart, and a catch-up assertion.
//
//	replsmoke -mode seed -primary :7420 -keys 32 -round 1
//	replsmoke -mode verify -primary :7420 -replica :7421 -keys 32 -round 1
//
// Seed writes keys repl:0..N-1 with values "round-<r>-<i>" to the
// PRIMARY. Verify polls the REPLICA's STATS until it reports a live
// primary connection with zero replication lag, then:
//
//   - reads every sentinel from the replica and compares it with the
//     seeded round's value (a torn or stale replica fails the drill),
//   - requires a SET against the replica to be refused with the
//     replica-specific read-only status (routing, not degradation),
//   - prints the replica's final lag/applied gauges.
//
// Both modes exit non-zero on any violation; the CI job's shell does
// the process choreography (start, kill -9, restart) around them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tbtm/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replsmoke:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replsmoke", flag.ContinueOnError)
	mode := fs.String("mode", "", "seed | verify")
	primary := fs.String("primary", "127.0.0.1:7420", "primary tbtmd address")
	replica := fs.String("replica", "127.0.0.1:7421", "replica tbtmd address (verify)")
	keys := fs.Int("keys", 32, "number of sentinel keys")
	round := fs.Int("round", 1, "seeding round stamped into the values")
	wait := fs.Duration("wait", 10*time.Second, "dial-retry budget per server")
	lagWait := fs.Duration("lag-wait", 30*time.Second, "how long verify waits for replication lag to reach 0")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "seed":
		cl, err := dial(*primary, *wait)
		if err != nil {
			return err
		}
		defer cl.Close()
		for i := 0; i < *keys; i++ {
			if err := cl.Set(sentinelKey(i), []byte(sentinelVal(*round, i))); err != nil {
				return fmt.Errorf("seeding %s: %w", sentinelKey(i), err)
			}
		}
		fmt.Printf("replsmoke: seeded %d sentinels at round %d on %s\n", *keys, *round, *primary)
		return nil

	case "verify":
		rcl, err := dial(*replica, *wait)
		if err != nil {
			return err
		}
		defer rcl.Close()
		pcl, err := dial(*primary, *wait)
		if err != nil {
			return err
		}
		defer pcl.Close()

		// Catch-up: the replica must reach a connected, zero-lag state
		// with everything the PRIMARY's WAL has assigned applied. The
		// replica's own lag gauge is computed against its last-heard
		// primary seq, which trails the truth between heartbeats, so the
		// gate reads the primary's STATS directly.
		deadline := time.Now().Add(*lagWait)
		var st server.StatsReply
		for {
			pst, err := pcl.Stats()
			if err != nil {
				return fmt.Errorf("primary stats: %w", err)
			}
			if pst.WAL == nil {
				return fmt.Errorf("primary at %s reports no WAL section (not durable?)", *primary)
			}
			st, err = rcl.Stats()
			if err != nil {
				return fmt.Errorf("replica stats: %w", err)
			}
			if st.Repl == nil {
				return fmt.Errorf("replica at %s reports no replication section (not started with -replica-of?)", *replica)
			}
			if st.Repl.Connected && st.Repl.Lag == 0 && st.Repl.AppliedSeq >= pst.WAL.LastSeq {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica never caught up within %v: connected=%v lag=%d applied=%d primary=%d (primary wal seq %d)",
					*lagWait, st.Repl.Connected, st.Repl.Lag, st.Repl.AppliedSeq, st.Repl.PrimarySeq, pst.WAL.LastSeq)
			}
			time.Sleep(50 * time.Millisecond)
		}

		bad := 0
		for i := 0; i < *keys; i++ {
			v, ok, err := rcl.Get(sentinelKey(i))
			if err != nil {
				return fmt.Errorf("replica read %s: %w", sentinelKey(i), err)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "replsmoke: %s MISSING on the replica\n", sentinelKey(i))
				bad++
			} else if string(v) != sentinelVal(*round, i) {
				fmt.Fprintf(os.Stderr, "replsmoke: %s = %q on the replica, want %q\n",
					sentinelKey(i), v, sentinelVal(*round, i))
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d sentinels wrong on the caught-up replica", bad, *keys)
		}

		// Writes must be refused with the replica routing error, not the
		// primary's degradation error and not success.
		if err := rcl.Set("repl-smoke-write", []byte("x")); !errors.Is(err, server.ErrReplicaRead) {
			return fmt.Errorf("replica SET = %v, want ErrReplicaRead", err)
		}
		fmt.Printf("replsmoke: replica caught up (applied=%d, bootstraps=%d, reconnects=%d); %d sentinels match round %d; writes refused\n",
			st.Repl.AppliedSeq, st.Repl.Bootstraps, st.Repl.Reconnects, *keys, *round)
		return nil

	default:
		return fmt.Errorf("unknown -mode %q (want seed or verify)", *mode)
	}
}

// dial retries until the server answers or the wait budget runs out, so
// the drill does not race a restarting server's listen.
func dial(addr string, wait time.Duration) (*server.Client, error) {
	deadline := time.Now().Add(wait)
	for {
		cl, err := server.DialTimeout(addr, 2*time.Second)
		if err == nil {
			if err = cl.Ping(); err == nil {
				return cl, nil
			}
			cl.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server at %s not reachable within %v: %w", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func sentinelKey(i int) string        { return fmt.Sprintf("repl:%d", i) }
func sentinelVal(r int, i int) string { return fmt.Sprintf("round-%d-%d", r, i) }
