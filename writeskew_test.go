package tbtm

import (
	"testing"
)

// Write skew is the anomaly that separates snapshot isolation (and, per
// paper §4.1, causal serializability) from serializability: two
// transactions each read {x, y} and write the object the other one read.
// No version either read is overwritten-and-revalidated from its own
// perspective, yet the pair has no serialization.
//
// The deterministic interleaving below drives both transactions through
// explicit Begin/Commit so the overlap is guaranteed:
//
//	T1: read x, read y          write x  commit
//	T2:   read x, read y  write y           commit
//
// Expected outcomes per criterion:
//
//   - SnapshotIsolation admits the skew: both commit (reads are never
//     validated, write sets are disjoint).
//   - CausallySerializable admits it too: T1.ct and T2.ct are
//     incomparable, so neither read validates against the other's
//     commit — the behaviour the paper compares to snapshot isolation.
//   - Linearizable, SingleVersion, Serializable and ZLinearizable all
//     reject it: at most one of the two commits.
func runWriteSkew(t *testing.T, level Consistency) (bothCommitted bool) {
	t.Helper()
	tm := MustNew(WithConsistency(level), WithThreads(4), WithContention(ContentionSuicide))
	x := NewVar(tm, int64(50))
	y := NewVar(tm, int64(50))

	t1 := tm.NewThread().Begin(Short)
	t2 := tm.NewThread().Begin(Short)

	readBoth := func(tx Tx) error {
		if _, err := x.Read(tx); err != nil {
			return err
		}
		_, err := y.Read(tx)
		return err
	}
	if err := readBoth(t1); err != nil {
		t.Fatalf("%v: t1 reads: %v", level, err)
	}
	if err := readBoth(t2); err != nil {
		t.Fatalf("%v: t2 reads: %v", level, err)
	}

	// Each withdraws 60 believing x+y = 100 covers it.
	err1 := x.Write(t1, int64(-10))
	err2 := y.Write(t2, int64(-10))
	if err1 == nil {
		err1 = t1.Commit()
	} else {
		t1.Abort()
	}
	if err2 == nil {
		err2 = t2.Commit()
	} else {
		t2.Abort()
	}
	return err1 == nil && err2 == nil
}

func TestWriteSkewAdmittedBySnapshotIsolation(t *testing.T) {
	if !runWriteSkew(t, SnapshotIsolation) {
		t.Fatal("snapshot isolation rejected write skew; it must admit it")
	}
}

func TestWriteSkewAdmittedByCausalSerializability(t *testing.T) {
	// Paper §4.1: "causal serializability provides semantics comparable
	// to snapshot isolation" — the skew transactions are causally
	// unrelated, so both commit.
	if !runWriteSkew(t, CausallySerializable) {
		t.Fatal("CS-STM rejected write skew; causal serializability admits it")
	}
}

func TestWriteSkewRejectedBySerializableLevels(t *testing.T) {
	for _, level := range []Consistency{Linearizable, SingleVersion, Serializable, ZLinearizable} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			if runWriteSkew(t, level) {
				t.Fatalf("%v admitted write skew; it must reject it", level)
			}
		})
	}
}
