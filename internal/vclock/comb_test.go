package vclock

import (
	"math/rand"
	"testing"
)

// Comb-clock laws (§4.3's "other types of plausible clocks"): the same
// simulated message-passing regime as plausible_test.go, with three
// clocks driven in lockstep — exact vector (truth), plain REV, and comb
// (REV + shared Lamport entry). The comb clock must satisfy the
// plausibility laws, order no pair the plain REV clock leaves unordered,
// and falsely order at most as many truly-concurrent pairs.

type combEvent struct {
	truth TS
	rev   TS
	comb  TS
}

func simulateComb(n, r int, mapping Mapping, steps int, seed int64) []combEvent {
	rng := rand.New(rand.NewSource(seed))
	truthClock := New(n, n)
	revClock := NewMapped(n, r, mapping)
	combClock := NewComb(n, r, mapping)

	truths := make([]TS, n)
	revs := make([]TS, n)
	combs := make([]TS, n)
	for p := 0; p < n; p++ {
		truths[p] = truthClock.Zero()
		revs[p] = revClock.Zero()
		combs[p] = combClock.Zero()
	}

	var events []combEvent
	for s := 0; s < steps; s++ {
		p := rng.Intn(n)
		if rng.Intn(3) == 0 && n > 1 {
			q := rng.Intn(n)
			for q == p {
				q = rng.Intn(n)
			}
			truths[p].MaxInto(truths[q])
			revs[p].MaxInto(revs[q])
			combs[p].MaxInto(combs[q])
		}
		truthClock.Stamp(p, truths[p])
		revClock.Stamp(p, revs[p])
		combClock.Stamp(p, combs[p])
		events = append(events, combEvent{
			truth: truths[p].Clone(),
			rev:   revs[p].Clone(),
			comb:  combs[p].Clone(),
		})
	}
	return events
}

func TestCombPlausibilityLaws(t *testing.T) {
	for _, n := range []int{4, 6} {
		for _, r := range []int{1, 2, 3} {
			for seed := int64(1); seed <= 3; seed++ {
				events := simulateComb(n, r, Modulo, 100, seed)
				for i := range events {
					for j := range events {
						if i == j {
							continue
						}
						e, f := events[i], events[j]
						if e.truth.Less(f.truth) {
							if !e.comb.Less(f.comb) {
								t.Fatalf("n=%d r=%d seed=%d: e→f not captured by comb: %v %v",
									n, r, seed, e.comb, f.comb)
							}
						}
						if e.comb.Concurrent(f.comb) && !e.truth.Concurrent(f.truth) {
							t.Fatalf("n=%d r=%d seed=%d: comb claims concurrency for ordered events",
								n, r, seed)
						}
					}
				}
			}
		}
	}
}

// TestCombOrdersSubsetOfREV checks the filter law: every pair the comb
// clock orders, the plain REV clock orders the same way (the Lamport
// entry only removes orderings, never adds or flips them).
func TestCombOrdersSubsetOfREV(t *testing.T) {
	events := simulateComb(6, 2, Modulo, 120, 7)
	for i := range events {
		for j := range events {
			if i == j {
				continue
			}
			e, f := events[i], events[j]
			if e.comb.Less(f.comb) && !e.rev.Less(f.rev) {
				t.Fatalf("comb orders a pair REV leaves unordered: comb %v %v rev %v %v",
					e.comb, f.comb, e.rev, f.rev)
			}
		}
	}
}

// TestCombReducesFalseOrderings counts truly-concurrent pairs each clock
// falsely orders: the comb count must never exceed the REV count, and
// across several seeds it must be strictly smaller at least once
// (otherwise the extra entry would be dead weight).
func TestCombReducesFalseOrderings(t *testing.T) {
	strictlyBetter := false
	for seed := int64(1); seed <= 5; seed++ {
		events := simulateComb(6, 2, Modulo, 120, seed)
		falseREV, falseComb := 0, 0
		for i := range events {
			for j := range events {
				if i == j {
					continue
				}
				e, f := events[i], events[j]
				if !e.truth.Concurrent(f.truth) {
					continue
				}
				if e.rev.Less(f.rev) {
					falseREV++
				}
				if e.comb.Less(f.comb) {
					falseComb++
				}
			}
		}
		if falseComb > falseREV {
			t.Fatalf("seed %d: comb falsely orders more pairs (%d) than REV (%d)",
				seed, falseComb, falseREV)
		}
		if falseComb < falseREV {
			strictlyBetter = true
		}
	}
	if !strictlyBetter {
		t.Fatal("comb never beat REV across all seeds; the Lamport entry filters nothing")
	}
}

// TestCombAccessors pins the width bookkeeping: r first-segment entries
// plus min(r+1, threads) second-segment entries.
func TestCombAccessors(t *testing.T) {
	c := NewComb(8, 3, Block)
	if !c.Comb() {
		t.Fatal("Comb() = false")
	}
	if c.Entries() != 3 {
		t.Fatalf("Entries() = %d, want 3", c.Entries())
	}
	if c.Width() != 7 {
		t.Fatalf("Width() = %d, want 7", c.Width())
	}
	if len(c.Zero()) != 7 {
		t.Fatalf("Zero() width = %d, want 7", len(c.Zero()))
	}
	// The second segment is clamped to the processor count.
	tight := NewComb(3, 3, Modulo)
	if tight.Width() != 6 {
		t.Fatalf("clamped Width() = %d, want 6", tight.Width())
	}
	plain := NewMapped(8, 3, Block)
	if plain.Comb() || plain.Width() != 3 {
		t.Fatalf("plain clock reports comb=%v width=%d", plain.Comb(), plain.Width())
	}
}
