package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// These tests verify the plausible-clock laws of paper §4.3 against a
// simulated message-passing execution. Each process keeps two clocks: an
// exact vector clock (ground truth for causality) and an r-entry REV
// clock under the mapping being tested. Random local events and
// max-merge "message" exchanges drive both in lockstep; the REV clock
// must then satisfy, for all pairs of events:
//
//	(2,3) e → f (truth)  ⇒  REV(e) ≺ REV(f) or the REV timestamps tie —
//	      never the reverse order
//	(4)   REV(e) ∥ REV(f) ⇒ e ∥ f (truth)
//
// which together are exactly "plausible clocks can always determine the
// order of causally related events correctly but may order events that
// are actually concurrent".

type simEvent struct {
	truth TS // exact vector timestamp (width n)
	rev   TS // plausible timestamp (width r)
}

// simulate runs a random execution of n processes for steps steps and
// returns every event's pair of timestamps.
func simulate(n, r int, mapping Mapping, steps int, seed int64) []simEvent {
	rng := rand.New(rand.NewSource(seed))
	truthClock := New(n, n)
	revClock := NewMapped(n, r, mapping)

	truths := make([]TS, n)
	revs := make([]TS, n)
	for p := 0; p < n; p++ {
		truths[p] = truthClock.Zero()
		revs[p] = revClock.Zero()
	}

	var events []simEvent
	for s := 0; s < steps; s++ {
		p := rng.Intn(n)
		if rng.Intn(3) == 0 && n > 1 {
			// Receive: merge another process's clocks into p's.
			q := rng.Intn(n)
			for q == p {
				q = rng.Intn(n)
			}
			truths[p].MaxInto(truths[q])
			revs[p].MaxInto(revs[q])
		}
		// Local event: tick both clocks.
		e, v := truthClock.Tick(p)
		Apply(truths[p], e, v)
		e, v = revClock.Tick(p)
		Apply(revs[p], e, v)
		events = append(events, simEvent{truth: truths[p].Clone(), rev: revs[p].Clone()})
	}
	return events
}

func checkPlausibility(t *testing.T, n, r int, mapping Mapping, seed int64) {
	t.Helper()
	events := simulate(n, r, mapping, 120, seed)
	for i := range events {
		for j := range events {
			if i == j {
				continue
			}
			e, f := events[i], events[j]
			switch {
			case e.truth.Less(f.truth):
				// Causally ordered: REV must not report the reverse.
				if f.rev.Less(e.rev) {
					t.Fatalf("n=%d r=%d %v seed=%d: e→f but REV(f)≺REV(e): %v %v / %v %v",
						n, r, mapping, seed, e.truth, f.truth, e.rev, f.rev)
				}
				// With a get-and-increment shared entry, ties cannot hide
				// a causal order either: e → f implies REV(e) ≺ REV(f).
				if !e.rev.Less(f.rev) {
					t.Fatalf("n=%d r=%d %v seed=%d: e→f not reflected: REV(e)=%v REV(f)=%v",
						n, r, mapping, seed, e.rev, f.rev)
				}
			case e.truth.Concurrent(f.truth):
				// Concurrent in truth: REV may order them (false
				// ordering is the plausibility trade-off) — no check.
			}
			// Law (4): REV-concurrent implies truly concurrent.
			if e.rev.Concurrent(f.rev) && !e.truth.Concurrent(f.truth) {
				t.Fatalf("n=%d r=%d %v seed=%d: REV claims concurrency for ordered events %v %v",
					n, r, mapping, seed, e.truth, f.truth)
			}
		}
	}
}

func TestPlausibilityLawsModulo(t *testing.T) {
	for _, cfg := range []struct{ n, r int }{{4, 1}, {4, 2}, {6, 3}, {6, 6}, {8, 5}} {
		for seed := int64(1); seed <= 3; seed++ {
			checkPlausibility(t, cfg.n, cfg.r, Modulo, seed)
		}
	}
}

func TestPlausibilityLawsBlock(t *testing.T) {
	for _, cfg := range []struct{ n, r int }{{4, 2}, {6, 3}, {8, 5}, {9, 4}} {
		for seed := int64(1); seed <= 3; seed++ {
			checkPlausibility(t, cfg.n, cfg.r, Block, seed)
		}
	}
}

func TestMappingEntryRanges(t *testing.T) {
	for _, mapping := range []Mapping{Modulo, Block} {
		for _, cfg := range []struct{ n, r int }{{1, 1}, {4, 2}, {7, 3}, {16, 5}} {
			c := NewMapped(cfg.n, cfg.r, mapping)
			used := map[int]bool{}
			for p := 0; p < cfg.n; p++ {
				e := c.EntryOf(p)
				if e < 0 || e >= cfg.r {
					t.Fatalf("%v n=%d r=%d: EntryOf(%d) = %d out of range", mapping, cfg.n, cfg.r, p, e)
				}
				used[e] = true
			}
			if len(used) != cfg.r {
				t.Fatalf("%v n=%d r=%d: only %d of %d entries used", mapping, cfg.n, cfg.r, len(used), cfg.r)
			}
		}
	}
}

func TestBlockMappingGroupsNeighbours(t *testing.T) {
	c := NewMapped(8, 2, Block)
	for p := 0; p < 4; p++ {
		if c.EntryOf(p) != 0 {
			t.Fatalf("block: EntryOf(%d) = %d, want 0", p, c.EntryOf(p))
		}
	}
	for p := 4; p < 8; p++ {
		if c.EntryOf(p) != 1 {
			t.Fatalf("block: EntryOf(%d) = %d, want 1", p, c.EntryOf(p))
		}
	}
	m := NewMapped(8, 2, Modulo)
	if m.EntryOf(0) != 0 || m.EntryOf(1) != 1 || m.EntryOf(2) != 0 {
		t.Fatal("modulo mapping changed")
	}
}

func TestMappingString(t *testing.T) {
	if Modulo.String() != "modulo" || Block.String() != "block" || Mapping(9).String() != "invalid" {
		t.Fatal("mapping names wrong")
	}
}

// Algebraic laws of the timestamp lattice, via testing/quick. Timestamps
// are generated as small fixed-width vectors.

func tsFrom(raw []uint8, width int) TS {
	t := NewTS(width)
	for i := 0; i < width && i < len(raw); i++ {
		t[i] = uint64(raw[i])
	}
	return t
}

func TestTSPartialOrderLaws(t *testing.T) {
	const w = 4
	reflexive := func(a []uint8) bool {
		x := tsFrom(a, w)
		return x.LessEq(x) && x.Equal(x) && !x.Less(x) && !x.Concurrent(x)
	}
	antisymmetric := func(a, b []uint8) bool {
		x, y := tsFrom(a, w), tsFrom(b, w)
		if x.LessEq(y) && y.LessEq(x) {
			return x.Equal(y)
		}
		return true
	}
	transitive := func(a, b, c []uint8) bool {
		x, y, z := tsFrom(a, w), tsFrom(b, w), tsFrom(c, w)
		if x.LessEq(y) && y.LessEq(z) {
			return x.LessEq(z)
		}
		return true
	}
	concurrentSymmetric := func(a, b []uint8) bool {
		x, y := tsFrom(a, w), tsFrom(b, w)
		return x.Concurrent(y) == y.Concurrent(x)
	}
	trichotomyExhaustive := func(a, b []uint8) bool {
		x, y := tsFrom(a, w), tsFrom(b, w)
		n := 0
		if x.Equal(y) {
			n++
		}
		if x.Less(y) {
			n++
		}
		if y.Less(x) {
			n++
		}
		if x.Concurrent(y) {
			n++
		}
		return n == 1
	}
	for name, prop := range map[string]any{
		"reflexive":     reflexive,
		"antisymmetric": antisymmetric,
		"transitive":    transitive,
		"symmetric":     concurrentSymmetric,
		"trichotomy":    trichotomyExhaustive,
	} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTSJoinSemilatticeLaws(t *testing.T) {
	const w = 4
	join := func(x, y TS) TS {
		z := x.Clone()
		z.MaxInto(y)
		return z
	}
	idempotent := func(a []uint8) bool {
		x := tsFrom(a, w)
		return join(x, x).Equal(x)
	}
	commutative := func(a, b []uint8) bool {
		x, y := tsFrom(a, w), tsFrom(b, w)
		return join(x, y).Equal(join(y, x))
	}
	associative := func(a, b, c []uint8) bool {
		x, y, z := tsFrom(a, w), tsFrom(b, w), tsFrom(c, w)
		return join(join(x, y), z).Equal(join(x, join(y, z)))
	}
	upperBound := func(a, b []uint8) bool {
		x, y := tsFrom(a, w), tsFrom(b, w)
		j := join(x, y)
		return x.LessEq(j) && y.LessEq(j)
	}
	leastUpper := func(a, b, c []uint8) bool {
		x, y, z := tsFrom(a, w), tsFrom(b, w), tsFrom(c, w)
		if x.LessEq(z) && y.LessEq(z) {
			return join(x, y).LessEq(z)
		}
		return true
	}
	for name, prop := range map[string]any{
		"idempotent":  idempotent,
		"commutative": commutative,
		"associative": associative,
		"upperBound":  upperBound,
		"leastUpper":  leastUpper,
	} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
