package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComparisons(t *testing.T) {
	tests := []struct {
		name                string
		a, b                TS
		equal, lessEq, less bool
		concurrent          bool
	}{
		{"equal", TS{1, 2, 3}, TS{1, 2, 3}, true, true, false, false},
		{"strictly less", TS{1, 2, 3}, TS{2, 2, 3}, false, true, true, false},
		{"all less", TS{0, 0, 0}, TS{1, 1, 1}, false, true, true, false},
		{"concurrent", TS{2, 0, 0}, TS{0, 2, 0}, false, false, false, true},
		{"mixed concurrent", TS{3, 1, 2}, TS{1, 3, 2}, false, false, false, true},
		{"zero vs zero", TS{0, 0}, TS{0, 0}, true, true, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.equal {
				t.Errorf("Equal = %v, want %v", got, tt.equal)
			}
			if got := tt.a.LessEq(tt.b); got != tt.lessEq {
				t.Errorf("LessEq = %v, want %v", got, tt.lessEq)
			}
			if got := tt.a.Less(tt.b); got != tt.less {
				t.Errorf("Less = %v, want %v", got, tt.less)
			}
			if got := tt.a.Concurrent(tt.b); got != tt.concurrent {
				t.Errorf("Concurrent = %v, want %v", got, tt.concurrent)
			}
		})
	}
}

func TestWidthMismatch(t *testing.T) {
	a, b := TS{1, 2}, TS{1, 2, 3}
	if a.Equal(b) || a.LessEq(b) || a.Less(b) {
		t.Fatal("mismatched widths compared as related")
	}
}

func TestMaxInto(t *testing.T) {
	a := TS{1, 5, 2}
	a.MaxInto(TS{3, 1, 2})
	if !a.Equal(TS{3, 5, 2}) {
		t.Fatalf("MaxInto = %v, want [3 5 2]", a)
	}
	// Shorter operand: missing entries treated as zero.
	a.MaxInto(TS{9})
	if !a.Equal(TS{9, 5, 2}) {
		t.Fatalf("MaxInto short = %v, want [9 5 2]", a)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := TS{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestString(t *testing.T) {
	if got := (TS{1, 0, 7}).String(); got != "[1 0 7]" {
		t.Fatalf("String = %q", got)
	}
}

// Partial-order laws, checked with testing/quick.

func genTS(rng *rand.Rand, width int) TS {
	ts := NewTS(width)
	for k := range ts {
		ts[k] = uint64(rng.Intn(4))
	}
	return ts
}

func TestPartialOrderLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		a, b, c := genTS(rng, 3), genTS(rng, 3), genTS(rng, 3)
		// Reflexivity of ≼, irreflexivity of ≺.
		if !a.LessEq(a) {
			t.Fatalf("a ⋠ a for %v", a)
		}
		if a.Less(a) {
			t.Fatalf("a ≺ a for %v", a)
		}
		// Antisymmetry.
		if a.Less(b) && b.Less(a) {
			t.Fatalf("≺ not antisymmetric: %v %v", a, b)
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("≺ not transitive: %v %v %v", a, b, c)
		}
		// Trichotomy-ish partition: exactly one of =, ≺, ≻, ∥.
		count := 0
		if a.Equal(b) {
			count++
		}
		if a.Less(b) {
			count++
		}
		if b.Less(a) {
			count++
		}
		if a.Concurrent(b) {
			count++
		}
		if count != 1 {
			t.Fatalf("partition violated for %v vs %v (count %d)", a, b, count)
		}
	}
}

func TestMaxIsLeastUpperBound(t *testing.T) {
	f := func(av, bv [4]uint8) bool {
		a, b := NewTS(4), NewTS(4)
		for k := 0; k < 4; k++ {
			a[k], b[k] = uint64(av[k]), uint64(bv[k])
		}
		m := a.Clone()
		m.MaxInto(b)
		return a.LessEq(m) && b.LessEq(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMapping(t *testing.T) {
	c := New(8, 3)
	if c.Entries() != 3 || c.Threads() != 8 {
		t.Fatalf("Entries/Threads = %d/%d", c.Entries(), c.Threads())
	}
	if c.EntryOf(0) != 0 || c.EntryOf(3) != 0 || c.EntryOf(5) != 2 {
		t.Fatal("modulo mapping wrong")
	}
	if c.EntryOf(-4) != 1 {
		t.Fatalf("EntryOf(-4) = %d, want 1", c.EntryOf(-4))
	}
	if c.Exact() {
		t.Fatal("Exact() true for r=3, n=8")
	}
	if !New(4, 4).Exact() {
		t.Fatal("Exact() false for r=n")
	}
}

func TestClockClamping(t *testing.T) {
	c := New(4, 100)
	if c.Entries() != 4 {
		t.Fatalf("r clamped to %d, want 4", c.Entries())
	}
	c = New(0, 0)
	if c.Entries() != 1 || c.Threads() != 1 {
		t.Fatalf("degenerate clock = %d entries, %d threads", c.Entries(), c.Threads())
	}
}

func TestTickUniqueAcrossSharedEntry(t *testing.T) {
	c := New(4, 2)
	// Threads 0 and 2 share entry 0.
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		p := (i % 2) * 2 // 0, 2, 0, 2...
		e, v := c.Tick(p)
		if e != 0 {
			t.Fatalf("Tick(%d) entry = %d, want 0", p, e)
		}
		if seen[v] {
			t.Fatalf("duplicate tick value %d", v)
		}
		seen[v] = true
	}
}

func TestApply(t *testing.T) {
	ts := TS{5, 5}
	Apply(ts, 0, 3) // smaller: no-op
	if ts[0] != 5 {
		t.Fatal("Apply moved timestamp backwards")
	}
	Apply(ts, 1, 9)
	if ts[1] != 9 {
		t.Fatal("Apply did not raise entry")
	}
	Apply(ts, 7, 1) // out of range: no-op, no panic
}

// TestPlausibleClockGuarantees validates the four plausible-clock
// guarantees of paper §4.3 by simulating a random shared-object history
// twice: once with exact vector clocks (ground truth causality) and once
// with an r-entry REV clock. The REV relations must never contradict the
// true causality: true causal order must be reported as causal order, and
// a REV-concurrent verdict implies true concurrency.
func TestPlausibleClockGuarantees(t *testing.T) {
	const threads, events = 6, 400
	for _, r := range []int{1, 2, 3, 6} {
		r := r
		t.Run("r="+string(rune('0'+r)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + r)))
			exact := New(threads, threads)
			plaus := New(threads, r)

			// Per-thread current timestamps in both systems.
			exTS := make([]TS, threads)
			plTS := make([]TS, threads)
			for p := range exTS {
				exTS[p] = exact.Zero()
				plTS[p] = plaus.Zero()
			}
			// "Objects" carry the timestamp of their last writer event.
			const objects = 5
			exObj := make([]TS, objects)
			plObj := make([]TS, objects)
			for o := range exObj {
				exObj[o] = exact.Zero()
				plObj[o] = plaus.Zero()
			}

			type event struct{ ex, pl TS }
			var history []event

			for i := 0; i < events; i++ {
				p := rng.Intn(threads)
				o := rng.Intn(objects)
				// Read the object's time (merge), then write a new event.
				exTS[p].MaxInto(exObj[o])
				plTS[p].MaxInto(plObj[o])
				e, v := exact.Tick(p)
				Apply(exTS[p], e, v)
				e, v = plaus.Tick(p)
				Apply(plTS[p], e, v)
				exObj[o] = exTS[p].Clone()
				plObj[o] = plTS[p].Clone()
				history = append(history, event{exTS[p].Clone(), plTS[p].Clone()})
			}

			checked := 0
			for i := 0; i < len(history); i += 3 {
				for j := i + 1; j < len(history); j += 2 {
					ei, ej := history[i], history[j]
					trueLess := ei.ex.Less(ej.ex)
					trueGreater := ej.ex.Less(ei.ex)
					plLess := ei.pl.Less(ej.pl)
					plGreater := ej.pl.Less(ei.pl)
					plConc := ei.pl.Concurrent(ej.pl)
					// (2)/(3): plausible order implies true order or concurrency,
					// equivalently true order must be preserved.
					if trueLess && !plLess {
						t.Fatalf("r=%d: true e%d→e%d not reported (ex %v %v, pl %v %v)",
							r, i, j, ei.ex, ej.ex, ei.pl, ej.pl)
					}
					if trueGreater && !plGreater {
						t.Fatalf("r=%d: true e%d→e%d not reported", r, j, i)
					}
					// (4): plausible-concurrent implies truly concurrent.
					if plConc && (trueLess || trueGreater) {
						t.Fatalf("r=%d: plausible ∥ but truly ordered (e%d, e%d)", r, i, j)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no pairs checked")
			}
		})
	}
}

// TestPlausibleR1TotalOrder checks the r=1 degenerate case: all events are
// totally ordered, i.e. no two distinct timestamps are concurrent.
func TestPlausibleR1TotalOrder(t *testing.T) {
	c := New(4, 1)
	a, b := c.Zero(), c.Zero()
	e, v := c.Tick(0)
	Apply(a, e, v)
	e, v = c.Tick(3)
	Apply(b, e, v)
	if a.Concurrent(b) {
		t.Fatal("r=1 timestamps reported concurrent")
	}
	if !a.Less(b) {
		t.Fatalf("expected %v ≺ %v under r=1", a, b)
	}
}
