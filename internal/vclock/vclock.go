// Package vclock implements the vector time bases of paper §4: full
// vector clocks (Fidge/Mattern) and plausible clocks based on r-entry
// vectors (REV, Torres-Rojas/Ahamad) with the modulo-r processor→entry
// mapping. With r = 1 the timestamps degenerate to a single shared
// counter (a scalar-clock TBTM); with r = n they are classical vector
// clocks (paper §4.3).
package vclock

import (
	"strconv"
	"strings"
	"sync/atomic"
)

// TS is a vector timestamp: entry k holds the perceived local time of the
// processors mapped to entry k. Timestamps are compared with the partial
// order of paper §4:
//
//	t == u  ⇔ ∀k, t[k] == u[k]
//	t ≼ u   ⇔ ∀k, t[k] <= u[k]
//	t ≺ u   ⇔ t ≼ u ∧ t != u
//	t ∥ u   ⇔ t ⊀ u ∧ u ⊀ t
type TS []uint64

// NewTS returns a zero timestamp with r entries.
func NewTS(r int) TS {
	if r < 1 {
		r = 1
	}
	return make(TS, r)
}

// Clone returns an independent copy of t.
func (t TS) Clone() TS {
	u := make(TS, len(t))
	copy(u, t)
	return u
}

// CopyInto copies t into dst, reusing dst's backing storage when it has
// the right width, and returns the destination. With a mismatched (or
// nil) dst a fresh timestamp is allocated, so CopyInto degrades to Clone;
// hot paths keep a thread-owned scratch buffer and pass it back in.
func (t TS) CopyInto(dst TS) TS {
	if len(dst) != len(t) {
		dst = make(TS, len(t))
	}
	copy(dst, t)
	return dst
}

// Equal reports t == u. Timestamps of different widths are never equal.
func (t TS) Equal(u TS) bool {
	if len(t) != len(u) {
		return false
	}
	for k := range t {
		if t[k] != u[k] {
			return false
		}
	}
	return true
}

// LessEq reports t ≼ u (element-wise <=).
func (t TS) LessEq(u TS) bool {
	if len(t) != len(u) {
		return false
	}
	for k := range t {
		if t[k] > u[k] {
			return false
		}
	}
	return true
}

// Less reports t ≺ u (t ≼ u and t != u), the causal-precedence test.
func (t TS) Less(u TS) bool {
	return t.LessEq(u) && !t.Equal(u)
}

// Concurrent reports t ∥ u: neither strictly precedes the other and the
// timestamps differ. Equal timestamps are not concurrent.
func (t TS) Concurrent(u TS) bool {
	return !t.Equal(u) && !t.Less(u) && !u.Less(t)
}

// MaxInto sets t to the element-wise maximum of t and u (the "dmax" of
// Algorithm 1 line 8). Widths must match; extra entries in u are ignored
// and missing ones treated as zero, so a mismatched merge is safe but
// lossy.
func (t TS) MaxInto(u TS) {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for k := 0; k < n; k++ {
		if u[k] > t[k] {
			t[k] = u[k]
		}
	}
}

// String formats the timestamp as "[a b c]".
func (t TS) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for k, v := range t {
		if k > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(v, 10))
	}
	b.WriteByte(']')
	return b.String()
}

// Mapping selects how processors share the r clock entries of a
// plausible clock. The paper studies only the modulo mapping ("there are
// many possible mappings between processors and entries but, in our
// study, we only consider the modulo r mapping", §4.3); Block is the
// natural alternative, and which one produces fewer false conflicts
// depends on which processors actually contend (see the accuracy tests).
type Mapping int

// Mappings.
const (
	// Modulo maps processor p to entry p mod r: neighbouring processors
	// spread across entries.
	Modulo Mapping = iota
	// Block maps processor p to entry p*r/n: contiguous processor blocks
	// share an entry.
	Block
)

// String returns the mapping name.
func (m Mapping) String() string {
	switch m {
	case Modulo:
		return "modulo"
	case Block:
		return "block"
	default:
		return "invalid"
	}
}

// Clock is a (possibly plausible) vector time source for n processors
// using r <= n shared entries under a configurable processor→entry
// mapping. Shared entries are advanced with an atomic get-and-increment
// so two processors mapped to the same entry never generate the same
// timestamp (paper §4.3).
//
// r == n yields exact vector clocks; r == 1 a single shared counter.
//
// A comb clock (§4.3's "there exist other types of plausible clocks
// [12]"; Torres-Rojas & Ahamad's "comb" vectors) concatenates a second
// REV segment of r+1 entries under the plain modulo mapping. The
// comparison stays the element-wise partial order over all entries, so
// a false ordering must survive *both* processor→entry sharings: two
// processors conflated by the first segment (p ≡ q mod r) are almost
// always separated by the second (p ≡ q mod r+1 too only when p ≡ q
// mod r(r+1)). Comb ordering is therefore a subset of the same-r REV
// ordering while still capturing all true causal order — strictly
// better accuracy for r+1 extra timestamp words.
type Clock struct {
	entries []atomic.Uint64
	// entries2 is the second comb segment (nil for plain clocks). Its
	// width is min(r+1, threads) and it always uses the modulo mapping.
	entries2 []atomic.Uint64
	threads  int
	mapping  Mapping
}

// New returns a clock for threads processors with r entries under the
// paper's modulo mapping. r is clamped to [1, threads].
func New(threads, r int) *Clock {
	return NewMapped(threads, r, Modulo)
}

// NewMapped returns a clock with an explicit processor→entry mapping.
func NewMapped(threads, r int, m Mapping) *Clock {
	if threads < 1 {
		threads = 1
	}
	if r < 1 {
		r = 1
	}
	if r > threads {
		r = threads
	}
	return &Clock{entries: make([]atomic.Uint64, r), threads: threads, mapping: m}
}

// NewComb returns a comb clock: r REV entries under the given mapping
// plus a second segment of min(r+1, threads) modulo-mapped entries.
// Timestamps are r + min(r+1, threads) wide.
func NewComb(threads, r int, m Mapping) *Clock {
	c := NewMapped(threads, r, m)
	r2 := len(c.entries) + 1
	if r2 > c.threads {
		r2 = c.threads
	}
	c.entries2 = make([]atomic.Uint64, r2)
	return c
}

// Comb reports whether the clock carries the second comb segment.
func (c *Clock) Comb() bool { return c.entries2 != nil }

// Width returns the timestamp width across all segments.
func (c *Clock) Width() int { return len(c.entries) + len(c.entries2) }

// Mapping returns the processor→entry mapping in use.
func (c *Clock) Mapping() Mapping { return c.mapping }

// Entries returns r, the timestamp width.
func (c *Clock) Entries() int { return len(c.entries) }

// Threads returns the number of processors the clock was sized for.
func (c *Clock) Threads() int { return c.threads }

// EntryOf returns the entry processor p maps to under the clock's
// mapping. Processors beyond the sized thread count wrap around.
func (c *Clock) EntryOf(p int) int {
	if p < 0 {
		p = -p
	}
	r := len(c.entries)
	switch c.mapping {
	case Block:
		return (p % c.threads) * r / c.threads
	default:
		return p % r
	}
}

// Zero returns a zero timestamp of the clock's width.
func (c *Clock) Zero() TS { return NewTS(c.Width()) }

// Tick atomically advances processor p's entry and returns the entry
// index and its new value. The caller folds the result into a timestamp
// with Apply, typically at commit (Algorithm 1 line 29).
func (c *Clock) Tick(p int) (entry int, val uint64) {
	e := c.EntryOf(p)
	return e, c.entries[e].Add(1)
}

// Apply sets ts[entry] = val if val is greater. Tick values come from a
// global get-and-increment, so Apply never moves a timestamp backwards.
func Apply(ts TS, entry int, val uint64) {
	if entry >= 0 && entry < len(ts) && val > ts[entry] {
		ts[entry] = val
	}
}

// Stamp folds one fresh tick of processor p into ts: the processor's
// entry advances in every segment. Stamp is what committing
// transactions call; Tick/Apply remain for callers that need the raw
// first-segment entry.
func (c *Clock) Stamp(p int, ts TS) {
	e, v := c.Tick(p)
	Apply(ts, e, v)
	if c.entries2 != nil {
		if p < 0 {
			p = -p
		}
		e2 := p % len(c.entries2)
		Apply(ts, len(c.entries)+e2, c.entries2[e2].Add(1))
	}
}

// Exact reports whether the clock is an exact vector clock (r == n), in
// which case Less is precisely the causality relation rather than a
// plausible approximation.
func (c *Clock) Exact() bool { return len(c.entries) == c.threads }
