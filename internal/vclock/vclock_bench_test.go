package vclock

import (
	"fmt"
	"testing"
)

func benchTS(width int, stagger bool) (TS, TS) {
	a, b := NewTS(width), NewTS(width)
	for k := 0; k < width; k++ {
		a[k] = uint64(k)
		b[k] = uint64(k)
		if stagger && k%2 == 0 {
			b[k]++
		}
	}
	return a, b
}

func BenchmarkLess(b *testing.B) {
	for _, width := range []int{1, 4, 16, 64} {
		a, c := benchTS(width, true)
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = a.Less(c)
			}
		})
	}
}

func BenchmarkConcurrentCheck(b *testing.B) {
	for _, width := range []int{4, 16, 64} {
		a, c := benchTS(width, true)
		c[1] = 0 // make them concurrent
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.Concurrent(c)
			}
		})
	}
}

func BenchmarkMaxInto(b *testing.B) {
	for _, width := range []int{1, 4, 16, 64} {
		a, c := benchTS(width, true)
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.MaxInto(c)
			}
		})
	}
}

func BenchmarkClone(b *testing.B) {
	for _, width := range []int{4, 16, 64} {
		a, _ := benchTS(width, false)
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = a.Clone()
			}
		})
	}
}

func BenchmarkTick(b *testing.B) {
	for _, r := range []int{1, 4, 16} {
		c := New(16, r)
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = c.Tick(i)
			}
		})
	}
}
