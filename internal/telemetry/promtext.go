package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the exposition format: a small
// parser for the subset of the Prometheus text format the registry
// emits. tbtmload uses it to window server-side histograms between
// scrapes; the exposition tests use it to validate /metrics
// line-by-line.

// ScrapedBucket is one cumulative histogram bucket from a scrape.
type ScrapedBucket struct {
	Le  float64 // upper bound; math.Inf(1) for +Inf
	Cum uint64
}

// ScrapedHist is one histogram series reassembled from its _bucket,
// _sum and _count lines.
type ScrapedHist struct {
	Buckets []ScrapedBucket
	Sum     float64
	Count   uint64
}

// Scrape is one parsed exposition document.
type Scrape struct {
	// Values maps "name" or "name{labels}" (labels as emitted,
	// including le) to the sample value.
	Values map[string]float64
	// Hists maps "base" or "base{labels-without-le}" to reassembled
	// histograms.
	Hists map[string]*ScrapedHist
	// Help and Types map family name to its HELP text and TYPE.
	Help  map[string]string
	Types map[string]string
}

// Value returns a plain sample by its full key.
func (s *Scrape) Value(key string) (float64, bool) {
	v, ok := s.Values[key]
	return v, ok
}

// Hist returns a histogram series by its base key (nil if absent).
func (s *Scrape) Hist(key string) *ScrapedHist { return s.Hists[key] }

func (s *Scrape) hist(key string) *ScrapedHist {
	h := s.Hists[key]
	if h == nil {
		h = &ScrapedHist{}
		s.Hists[key] = h
	}
	return h
}

// splitSample cuts a sample line into name, raw label string (without
// braces, "" if none) and the value text.
func splitSample(line string) (name, labels, val string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces: %q", line)
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:]), nil
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", "", fmt.Errorf("no value: %q", line)
	}
	return line[:i], "", strings.TrimSpace(line[i+1:]), nil
}

// extractLe pulls the le label out of a label string, returning the
// remaining labels.
func extractLe(labels string) (le string, rest string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}

// ParseScrape parses an exposition document. Unknown lines are
// errors: the format the registry emits is small enough to parse
// exactly, and strictness is what makes the CI assertion meaningful.
func ParseScrape(r io.Reader) (*Scrape, error) {
	s := &Scrape{
		Values: map[string]float64{},
		Hists:  map[string]*ScrapedHist{},
		Help:   map[string]string{},
		Types:  map[string]string{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "HELP":
					help := ""
					if len(fields) == 4 {
						help = fields[3]
					}
					s.Help[fields[2]] = help
				case "TYPE":
					if len(fields) == 4 {
						s.Types[fields[2]] = fields[3]
					}
				}
			}
			continue
		}
		name, labels, valStr, err := splitSample(line)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		s.Values[key] = v

		histKey := func(base, rest string) string {
			if rest == "" {
				return base
			}
			return base + "{" + rest + "}"
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, rest := extractLe(labels)
			if le == "" {
				break
			}
			base := strings.TrimSuffix(name, "_bucket")
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("bad le in %q: %v", line, err)
				}
			}
			h := s.hist(histKey(base, rest))
			h.Buckets = append(h.Buckets, ScrapedBucket{Le: bound, Cum: uint64(v)})
		case strings.HasSuffix(name, "_sum"):
			s.hist(histKey(strings.TrimSuffix(name, "_sum"), labels)).Sum = v
		case strings.HasSuffix(name, "_count"):
			s.hist(histKey(strings.TrimSuffix(name, "_count"), labels)).Count = uint64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, h := range s.Hists {
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Le < h.Buckets[j].Le })
	}
	return s, nil
}

// cumAt returns the cumulative count at upper bound le (the largest
// bucket with Le <= le), or 0 when the hist is nil.
func (h *ScrapedHist) cumAt(le float64) uint64 {
	if h == nil {
		return 0
	}
	var cum uint64
	for _, b := range h.Buckets {
		if b.Le <= le {
			cum = b.Cum
		}
	}
	return cum
}

// HistDeltaQuantile estimates the q-quantile of the observations that
// arrived between two scrapes of the same histogram series. before
// may be nil (whole-life quantile). Returns false when no
// observations arrived in the window.
func HistDeltaQuantile(after, before *ScrapedHist, q float64) (float64, bool) {
	if after == nil || len(after.Buckets) == 0 {
		return 0, false
	}
	var beforeCount uint64
	if before != nil {
		beforeCount = before.Count
	}
	if after.Count <= beforeCount {
		return 0, false
	}
	total := after.Count - beforeCount
	rank := q * float64(total)
	prevLe := 0.0
	var prevCum uint64
	for _, b := range after.Buckets {
		dCum := b.Cum - before.cumAt(b.Le)
		if float64(dCum) >= rank && dCum > 0 {
			inBucket := dCum - prevCum
			if math.IsInf(b.Le, 1) || inBucket == 0 {
				return prevLe, true
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return prevLe + frac*(b.Le-prevLe), true
		}
		prevCum = dCum
		if !math.IsInf(b.Le, 1) {
			prevLe = b.Le
		}
	}
	return prevLe, true
}
