package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind tags a flight-recorder event with the op phase it covers.
type EventKind uint8

const (
	EvNone EventKind = iota
	// EvOp is the whole-op envelope: for a pipelined batch one event
	// covers the batch and Aux carries the op count; for solo and
	// blocking ops Aux is 1. Recording an EvOp is also the slow-op
	// checkpoint.
	EvOp
	// EvDecode covers one burst's frame decode; Aux = frames decoded.
	EvDecode
	// EvLeaseWait covers the wait for an executor lease (queueing under
	// backpressure).
	EvLeaseWait
	// EvExec covers engine execution under the lease (begin..commit,
	// including conflict retries); Aux = transactions begun, so Aux-1
	// is the conflict-retry count.
	EvExec
	// EvWALGate covers the wait to acquire the durable layer's
	// checkpoint gate (nonzero while a checkpoint wedges writers).
	EvWALGate
	// EvFsync covers the group-commit ticket wait (write+fsync for
	// strict mode, write-ack for relaxed).
	EvFsync
	// EvFlush covers writing the coalesced response buffer to the
	// socket.
	EvFlush
	// EvReplApply covers a replica applying one shipped WAL record;
	// Seq is the WAL sequence number.
	EvReplApply

	evKinds
)

func (k EventKind) String() string {
	switch k {
	case EvOp:
		return "op"
	case EvDecode:
		return "decode"
	case EvLeaseWait:
		return "lease_wait"
	case EvExec:
		return "exec"
	case EvWALGate:
		return "wal_gate"
	case EvFsync:
		return "fsync"
	case EvFlush:
		return "flush"
	case EvReplApply:
		return "repl_apply"
	}
	return "unknown"
}

// Event is one fixed-size flight-recorder record. TS is nanoseconds
// since the recorder's epoch (monotonic), Dur the phase duration in
// nanoseconds. Conn and Seq correlate the phases of one op; Aux is
// kind-specific (see the kind constants).
type Event struct {
	TS   int64
	Dur  int64
	Seq  uint64
	Conn uint32
	Aux  uint32
	Kind EventKind
	Op   uint8
}

// Ring is a fixed-capacity event ring. One permanent Ring belongs to
// each event loop; fallback (goroutine-per-conn) connections borrow
// pooled rings. A short critical section under a plain mutex keeps
// recording race-free without allocating — a Lock/Unlock pair on an
// uncontended mutex costs ~20ns, well under the phase durations being
// measured.
type Ring struct {
	rec *Recorder
	mu  sync.Mutex
	ev  []Event
	pos uint64 // events ever recorded; next slot is pos % len(ev)
}

// Record appends one event (a no-op on a nil ring or a disarmed
// recorder, so instrumentation sites need no guards).
//
//tbtm:noalloc
func (r *Ring) Record(kind EventKind, op uint8, conn uint32, seq uint64, aux uint32, ts, dur int64) {
	if r == nil || !r.rec.armed.Load() {
		return
	}
	r.mu.Lock()
	i := r.pos % uint64(len(r.ev))
	r.ev[i] = Event{TS: ts, Dur: dur, Seq: seq, Conn: conn, Aux: aux, Kind: kind, Op: op}
	r.pos++
	r.mu.Unlock()
}

// Now returns the current timestamp for a phase start, or 0 when the
// ring is nil or disarmed (Span and Op treat a zero start as "skip").
//
//tbtm:noalloc
func (r *Ring) Now() int64 {
	if r == nil || !r.rec.armed.Load() {
		return 0
	}
	return int64(time.Since(r.rec.epoch))
}

// Span records a phase that started at start (from Now) and ends now,
// returning the end timestamp so adjacent phases can chain without a
// second clock read.
//
//tbtm:noalloc
func (r *Ring) Span(kind EventKind, op uint8, conn uint32, seq uint64, aux uint32, start int64) int64 {
	if r == nil || start == 0 || !r.rec.armed.Load() {
		return 0
	}
	now := int64(time.Since(r.rec.epoch))
	r.Record(kind, op, conn, seq, aux, start, now-start)
	return now
}

// Op records the whole-op envelope event and, when the op's duration
// crosses the recorder's slow-op threshold, emits the slow-op log
// line (a cold, allocating path).
//
//tbtm:noalloc
func (r *Ring) Op(op uint8, conn uint32, seq uint64, aux uint32, start int64) {
	if r == nil || start == 0 || !r.rec.armed.Load() {
		return
	}
	now := int64(time.Since(r.rec.epoch))
	dur := now - start
	r.Record(EvOp, op, conn, seq, aux, start, dur)
	if t := r.rec.slowNs.Load(); t > 0 && dur >= t {
		r.rec.logSlow(r, op, conn, seq, aux, start, dur)
	}
}

// maxRings bounds the pooled-ring population; fallback connections
// beyond it share one overflow ring rather than growing memory.
const maxRings = 64

// Recorder owns the rings, the armed switch, and the slow-op sink.
// It is armed by default; disarming turns every record site into a
// single atomic load.
type Recorder struct {
	epoch  time.Time
	armed  atomic.Bool
	slowNs atomic.Int64
	events int
	opName atomic.Pointer[func(uint8) string]

	slowMu  sync.Mutex
	slowOut io.Writer

	mu       sync.Mutex
	rings    []*Ring
	free     []*Ring
	overflow *Ring
}

// DefaultRingEvents is the per-ring capacity when the caller passes
// zero: 4096 events × 40 bytes ≈ 160KiB per event loop.
const DefaultRingEvents = 4096

// NewRecorder returns an armed recorder with events slots per ring
// (DefaultRingEvents if events <= 0). The slow-op log starts
// disabled; SetSlowOp enables it.
func NewRecorder(events int) *Recorder {
	if events <= 0 {
		events = DefaultRingEvents
	}
	rec := &Recorder{epoch: time.Now(), events: events, slowOut: os.Stderr}
	rec.armed.Store(true)
	return rec
}

// Arm flips the recorder on or off at runtime.
func (rec *Recorder) Arm(on bool) { rec.armed.Store(on) }

// Armed reports the switch.
func (rec *Recorder) Armed() bool { return rec.armed.Load() }

// SetSlowOp sets the slow-op threshold (0 disables) and, when w is
// non-nil, the log sink (default stderr). Slow-op detection rides on
// the op envelope event, so it requires the recorder to be armed.
func (rec *Recorder) SetSlowOp(d time.Duration, w io.Writer) {
	rec.slowNs.Store(int64(d))
	if w != nil {
		rec.slowMu.Lock()
		rec.slowOut = w
		rec.slowMu.Unlock()
	}
}

// SetOpNames installs the opcode renderer used by the slow-op log and
// JSON dumps (the wire layer's Op.String, passed in to keep telemetry
// dependency-free).
func (rec *Recorder) SetOpNames(fn func(uint8) string) { rec.opName.Store(&fn) }

func (rec *Recorder) opString(op uint8) string {
	if p := rec.opName.Load(); p != nil {
		return (*p)(op)
	}
	return strconv.Itoa(int(op))
}

func (rec *Recorder) newRing() *Ring {
	return &Ring{rec: rec, ev: make([]Event, rec.events)}
}

// Ring allocates a permanent ring (one per event loop).
func (rec *Recorder) Ring() *Ring {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := rec.newRing()
	rec.rings = append(rec.rings, r)
	return r
}

// AcquireRing borrows a pooled ring for a fallback connection;
// ReleaseRing returns it. Past maxRings total rings, connections
// share one overflow ring (its mutex keeps that safe).
func (rec *Recorder) AcquireRing() *Ring {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if n := len(rec.free); n > 0 {
		r := rec.free[n-1]
		rec.free = rec.free[:n-1]
		return r
	}
	if len(rec.rings) >= maxRings {
		if rec.overflow == nil {
			rec.overflow = rec.newRing()
			rec.rings = append(rec.rings, rec.overflow)
		}
		return rec.overflow
	}
	r := rec.newRing()
	rec.rings = append(rec.rings, r)
	return r
}

// ReleaseRing returns a pooled ring (no-op for nil or the shared
// overflow ring). The ring keeps its events — a dump after a conn
// closes still sees its tail.
func (rec *Recorder) ReleaseRing(r *Ring) {
	if rec == nil || r == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if r == rec.overflow {
		return
	}
	rec.free = append(rec.free, r)
}

// Snapshot merges every ring's surviving events, oldest first,
// keeping at most max (0 = all).
func (rec *Recorder) Snapshot(max int) []Event {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	rings := make([]*Ring, len(rec.rings))
	copy(rings, rec.rings)
	rec.mu.Unlock()
	var out []Event
	for _, r := range rings {
		r.mu.Lock()
		n := uint64(len(r.ev))
		have := r.pos
		if have > n {
			have = n
		}
		for i := uint64(0); i < have; i++ {
			out = append(out, r.ev[(r.pos-have+i)%n])
		}
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Dropped returns how many events have been overwritten across all
// rings since the recorder started.
func (rec *Recorder) Dropped() uint64 {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var d uint64
	for _, r := range rec.rings {
		r.mu.Lock()
		if n := uint64(len(r.ev)); r.pos > n {
			d += r.pos - n
		}
		r.mu.Unlock()
	}
	return d
}

// Recorded returns the total events ever recorded (the registry
// exposes it as a counter).
func (rec *Recorder) Recorded() uint64 {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var n uint64
	for _, r := range rec.rings {
		r.mu.Lock()
		n += r.pos
		r.mu.Unlock()
	}
	return n
}

type eventJSON struct {
	TS   int64  `json:"ts_ns"`
	Dur  int64  `json:"dur_ns"`
	Kind string `json:"kind"`
	Op   string `json:"op,omitempty"`
	Conn uint32 `json:"conn"`
	Seq  uint64 `json:"seq"`
	Aux  uint32 `json:"aux,omitempty"`
}

type dumpJSON struct {
	Armed     bool        `json:"armed"`
	RingSize  int         `json:"ring_events"`
	Rings     int         `json:"rings"`
	Recorded  uint64      `json:"recorded"`
	Dropped   uint64      `json:"dropped"`
	SlowOpNs  int64       `json:"slow_op_ns"`
	Events    []eventJSON `json:"events"`
	Truncated bool        `json:"truncated,omitempty"`
}

// DumpJSON renders a merged snapshot (at most max events, 0 = all)
// as one JSON document — the payload of the TRACE wire verb and the
// SIGUSR1 dump.
func (rec *Recorder) DumpJSON(max int) ([]byte, error) {
	if rec == nil {
		return []byte(`{"armed":false,"events":[]}`), nil
	}
	evs := rec.Snapshot(max)
	d := dumpJSON{
		Armed:    rec.Armed(),
		RingSize: rec.events,
		Recorded: rec.Recorded(),
		Dropped:  rec.Dropped(),
		SlowOpNs: rec.slowNs.Load(),
		Events:   make([]eventJSON, len(evs)),
	}
	rec.mu.Lock()
	d.Rings = len(rec.rings)
	rec.mu.Unlock()
	d.Truncated = max > 0 && len(evs) == max
	for i, e := range evs {
		j := eventJSON{
			TS: e.TS, Dur: e.Dur, Kind: e.Kind.String(),
			Conn: e.Conn, Seq: e.Seq, Aux: e.Aux,
		}
		if e.Kind == EvOp || e.Kind == EvExec || e.Kind == EvLeaseWait {
			j.Op = rec.opString(e.Op)
		}
		d.Events[i] = j
	}
	return json.Marshal(d)
}

// logSlow reconstructs the phase breakdown for one op from its ring
// and writes a single slow-op line. Cold path: it runs only when an
// op crosses the threshold.
//
//tbtm:allocok
func (rec *Recorder) logSlow(r *Ring, op uint8, conn uint32, seq uint64, aux uint32, ts, dur int64) {
	var phase [evKinds]int64
	var attempts uint32
	r.mu.Lock()
	n := uint64(len(r.ev))
	have := r.pos
	if have > n {
		have = n
	}
	for i := uint64(0); i < have; i++ {
		e := &r.ev[(r.pos-have+i)%n]
		if e.Conn != conn || e.Seq != seq || e.Kind == EvOp || e.TS < ts-int64(time.Second) {
			continue
		}
		phase[e.Kind] += e.Dur
		if e.Kind == EvExec {
			attempts += e.Aux
		}
	}
	r.mu.Unlock()

	var b []byte
	b = append(b, "tbtm slow op: op="...)
	b = append(b, rec.opString(op)...)
	b = fmt.Appendf(b, " conn=%d seq=%d ops=%d dur=%s", conn, seq, aux, time.Duration(dur))
	for k := EventKind(EvOp + 1); k < evKinds; k++ {
		if phase[k] == 0 {
			continue
		}
		b = fmt.Appendf(b, " %s=%s", k, time.Duration(phase[k]))
	}
	if attempts > 1 {
		b = fmt.Appendf(b, " attempts=%d", attempts)
	}
	b = append(b, '\n')
	rec.slowMu.Lock()
	rec.slowOut.Write(b)
	rec.slowMu.Unlock()
}
