package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 1000, 1 << 35} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	want := uint64(0 + 1 + 2 + 3 + 1000 + 1<<35)
	if h.Sum() != want {
		t.Fatalf("sum = %d want %d", h.Sum(), want)
	}
	counts := h.Load()
	if counts[0] != 1 { // v == 0
		t.Fatalf("bucket0 = %d", counts[0])
	}
	if counts[1] != 1 { // v == 1
		t.Fatalf("bucket1 = %d", counts[1])
	}
	if counts[2] != 2 { // v in {2,3}
		t.Fatalf("bucket2 = %d", counts[2])
	}
	if counts[10] != 1 { // 1000 in [512,1024)
		t.Fatalf("bucket10 = %d", counts[10])
	}
	if counts[36] != 1 {
		t.Fatalf("bucket36 = %d", counts[36])
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Observe(100) // bucket 7: [64,128)
	}
	h.Observe(1 << 20)
	c := h.Load()
	p50 := Quantile(c, 0.5)
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %d, want within [64,127]", p50)
	}
	if q := Quantile(c, 0.9999); q < 1<<19 {
		t.Fatalf("p9999 = %d, want the outlier bucket", q)
	}
	var zero [HistBuckets]uint64
	if Quantile(zero, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistObserveAllocs(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(100, func() { h.Observe(42) }); n != 0 {
		t.Fatalf("Observe allocates %v/op", n)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	var h Hist
	for _, v := range []uint64{10, 2000, 2000, 1 << 30} {
		h.Observe(v)
	}
	r.MustRegister(
		Family{Name: "t_reqs_total", Help: "requests", Kind: Counter, Collect: func(e *Emitter) {
			e.Value(`op="get"`, 7)
			e.Value(`op="set"`, 3)
		}},
		Family{Name: "t_conns", Help: "open conns", Kind: Gauge, Collect: func(e *Emitter) {
			e.Value("", 2)
		}},
		Family{Name: "t_lat_seconds", Help: "latency", Kind: Histogram, Collect: func(e *Emitter) {
			e.Hist("", &h, 1e-9)
		}},
	)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	s, err := ParseScrape(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if v, _ := s.Value(`t_reqs_total{op="get"}`); v != 7 {
		t.Fatalf("get counter = %v", v)
	}
	if v, _ := s.Value("t_conns"); v != 2 {
		t.Fatalf("gauge = %v", v)
	}
	if s.Types["t_lat_seconds"] != "histogram" || s.Help["t_reqs_total"] != "requests" {
		t.Fatalf("missing HELP/TYPE: %v %v", s.Types, s.Help)
	}
	hh := s.Hist("t_lat_seconds")
	if hh == nil || hh.Count != 4 {
		t.Fatalf("hist = %+v", hh)
	}
	// Buckets must be cumulative and monotone, ending at count.
	var last uint64
	for _, b := range hh.Buckets {
		if b.Cum < last {
			t.Fatalf("non-monotone bucket: %+v", hh.Buckets)
		}
		last = b.Cum
	}
	if last != hh.Count {
		t.Fatalf("+Inf bucket %d != count %d", last, hh.Count)
	}
	wantSum := float64(10+2000+2000+1<<30) * 1e-9
	if diff := hh.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v want %v", hh.Sum, wantSum)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Family{Name: "a_total", Kind: Counter, Collect: func(*Emitter) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.MustRegister(Family{Name: "a_total", Kind: Counter, Collect: func(*Emitter) {}})
}

func TestRingWrapAndSnapshot(t *testing.T) {
	rec := NewRecorder(4)
	r := rec.Ring()
	for i := 0; i < 10; i++ {
		r.Record(EvExec, 1, 1, uint64(i), 1, int64(i+1), 5)
	}
	evs := rec.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("snapshot kept %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d seq %d, want oldest-first tail", i, e.Seq)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d", rec.Dropped())
	}
	if rec.Recorded() != 10 {
		t.Fatalf("recorded = %d", rec.Recorded())
	}
}

func TestDisarmedRecorderIsQuiet(t *testing.T) {
	rec := NewRecorder(8)
	rec.Arm(false)
	r := rec.Ring()
	if r.Now() != 0 {
		t.Fatal("disarmed Now should return 0")
	}
	r.Record(EvExec, 1, 1, 1, 1, 1, 1)
	r.Op(1, 1, 1, 1, 1)
	if len(rec.Snapshot(0)) != 0 {
		t.Fatal("disarmed recorder recorded events")
	}
	var nilRing *Ring
	nilRing.Record(EvExec, 1, 1, 1, 1, 1, 1) // must not panic
	if nilRing.Span(EvExec, 1, 1, 1, 1, 1) != 0 {
		t.Fatal("nil ring Span should return 0")
	}
}

func TestRecordPathAllocs(t *testing.T) {
	rec := NewRecorder(64)
	r := rec.Ring()
	if n := testing.AllocsPerRun(200, func() {
		start := r.Now()
		r.Record(EvDecode, 0, 1, 2, 16, start, 10)
		end := r.Span(EvLeaseWait, 3, 1, 2, 0, start)
		r.Span(EvExec, 3, 1, 2, 1, end)
		r.Op(3, 1, 2, 16, start)
	}); n != 0 {
		t.Fatalf("record path allocates %v/op", n)
	}
}

func TestSlowOpLog(t *testing.T) {
	rec := NewRecorder(64)
	var out bytes.Buffer
	rec.SetSlowOp(time.Nanosecond, &out)
	rec.SetOpNames(func(op uint8) string { return "get" })
	r := rec.Ring()
	start := r.Now()
	end := r.Span(EvLeaseWait, 3, 7, 42, 0, start)
	r.Span(EvExec, 3, 7, 42, 3, end)
	r.Op(3, 7, 42, 16, start)
	line := out.String()
	for _, want := range []string{"slow op", "op=get", "conn=7", "seq=42", "ops=16", "lease_wait=", "exec=", "attempts=3"} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-op line missing %q: %q", want, line)
		}
	}
}

func TestDumpJSON(t *testing.T) {
	rec := NewRecorder(16)
	rec.SetOpNames(func(op uint8) string { return "set" })
	r := rec.Ring()
	start := r.Now()
	r.Span(EvFsync, 2, 1, 9, 0, start)
	r.Op(2, 1, 9, 1, start)
	raw, err := rec.DumpJSON(100)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Armed  bool `json:"armed"`
		Events []struct {
			Kind string `json:"kind"`
			Op   string `json:"op"`
			Seq  uint64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, raw)
	}
	if !d.Armed || len(d.Events) != 2 {
		t.Fatalf("dump = %s", raw)
	}
	if d.Events[0].Kind != "fsync" || d.Events[1].Kind != "op" || d.Events[1].Op != "set" {
		t.Fatalf("dump events = %+v", d.Events)
	}
}

func TestRingPool(t *testing.T) {
	rec := NewRecorder(8)
	a := rec.AcquireRing()
	b := rec.AcquireRing()
	if a == b {
		t.Fatal("distinct acquires share a ring")
	}
	rec.ReleaseRing(a)
	if c := rec.AcquireRing(); c != a {
		t.Fatal("released ring not reused")
	}
	// Past the cap, acquires share the overflow ring.
	var rings []*Ring
	for i := 0; i < maxRings+4; i++ {
		rings = append(rings, rec.AcquireRing())
	}
	if rings[len(rings)-1] != rings[len(rings)-2] {
		t.Fatal("over-cap acquires should share the overflow ring")
	}
}

func TestHistDeltaQuantile(t *testing.T) {
	mk := func(obs ...uint64) *ScrapedHist {
		var h Hist
		for _, v := range obs {
			h.Observe(v)
		}
		var buf bytes.Buffer
		r := NewRegistry()
		r.MustRegister(Family{Name: "x_seconds", Kind: Histogram, Collect: func(e *Emitter) {
			e.Hist("", &h, 1e-9)
		}})
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		s, err := ParseScrape(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return s.Hist("x_seconds")
	}
	before := mk(100, 100, 100)
	// After = before plus 1000 observations near 1µs.
	obs := []uint64{100, 100, 100}
	for i := 0; i < 1000; i++ {
		obs = append(obs, 1000)
	}
	after := mk(obs...)
	q, ok := HistDeltaQuantile(after, before, 0.5)
	if !ok {
		t.Fatal("no delta observations seen")
	}
	// 1000ns falls in (512ns, 1024ns]; exposed in seconds.
	if q < 256e-9 || q > 1100e-9 {
		t.Fatalf("delta p50 = %v, want ~1µs", q)
	}
	if _, ok := HistDeltaQuantile(before, before, 0.5); ok {
		t.Fatal("empty window should report !ok")
	}
}
