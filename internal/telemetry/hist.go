// Package telemetry is the unified observability plane: lock-free
// log2 histograms, a registry that renders every layer's counters in
// Prometheus text exposition format, and a zero-alloc flight recorder
// that stamps per-op phase events (decode, lease wait, execution,
// WAL gate, fsync, flush) into ring buffers for post-hoc slow-op
// reconstruction.
//
// The package deliberately has no dependencies beyond the standard
// library and defines no metric types of its own state: registry
// families are closures over atomics that already exist in the
// engine, WAL, replication, and stats layers.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log2 buckets in a Hist. Bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// bucket 0 holds v == 0 and the last bucket absorbs the high tail.
// 40 buckets span 1ns to ~9min when observations are nanoseconds.
const HistBuckets = 40

// Hist is a fixed-shape concurrent histogram: a power-of-two bucket
// array plus count/sum, all updated with atomics. Observe allocates
// nothing and takes a handful of nanoseconds, so it can sit on the
// server's warm path; snapshots are taken bucket-by-bucket without
// locking (scrapes tolerate torn reads across buckets).
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one observation. Units are the caller's choice
// (the server records nanoseconds for latencies and record counts
// for batch sizes); the bucket boundaries are powers of two of that
// unit.
//
//tbtm:noalloc
func (h *Hist) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count and Sum return the running totals.
func (h *Hist) Count() uint64 { return h.count.Load() }
func (h *Hist) Sum() uint64   { return h.sum.Load() }

// Load copies the current bucket counts into a plain array.
func (h *Hist) Load() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpper returns the inclusive upper bound of bucket i in the
// observation's unit: 0 for bucket 0, otherwise 2^i - 1 (the largest
// v with bits.Len64(v) == i).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0 <= q <= 1) from a bucket
// snapshot, interpolating linearly inside the winning bucket. It is
// the shared estimator for load-report percentiles; with log2 buckets
// the error is bounded by a factor of two.
func Quantile(counts [HistBuckets]uint64, q float64) uint64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			lo := uint64(0)
			if i > 0 {
				lo = uint64(1) << uint(i-1)
			}
			hi := BucketUpper(i)
			frac := float64(rank-seen) / float64(c)
			return lo + uint64(frac*float64(hi-lo))
		}
		seen += c
	}
	return BucketUpper(HistBuckets - 1)
}

// Sub returns a-b elementwise, clamping at zero. Load generators use
// it to window histogram deltas between scrapes.
func Sub(a, b [HistBuckets]uint64) [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range out {
		if a[i] > b[i] {
			out[i] = a[i] - b[i]
		}
	}
	return out
}
