package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Kind is the Prometheus type of a metric family.
type Kind int

const (
	Counter Kind = iota
	Gauge
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return "untyped"
}

// Family is one metric family: a name, help text, a type, and a
// Collect closure that reads the live values at scrape time. The
// closure emits zero or more series via the Emitter; it must not
// retain the Emitter. Families adapt existing atomics — they hold no
// state of their own.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Collect func(e *Emitter)
}

// Emitter renders one family's series during a scrape. Labels are
// passed pre-rendered (`op="get"`) or empty; values are float64 as
// the text format requires.
type Emitter struct {
	w    io.Writer
	name string
	err  error
}

func (e *Emitter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// Value emits one sample: name{labels} v.
func (e *Emitter) Value(labels string, v float64) {
	if labels == "" {
		e.printf("%s %g\n", e.name, v)
		return
	}
	e.printf("%s{%s} %g\n", e.name, labels, v)
}

// Hist emits a full Prometheus histogram (cumulative le buckets plus
// _sum and _count) from a Hist snapshot. scale converts the Hist's
// unit to the exposed unit (1e-9 for nanosecond observations exposed
// as seconds; 1 for unitless sizes). Empty buckets are elided except
// the mandatory +Inf.
func (e *Emitter) Hist(labels string, h *Hist, scale float64) {
	counts := h.Load()
	pre := labels
	if pre != "" {
		pre += ","
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if c == 0 {
			continue
		}
		e.printf("%s_bucket{%sle=\"%g\"} %d\n",
			e.name, pre, float64(BucketUpper(i))*scale, cum)
	}
	e.printf("%s_bucket{%sle=\"+Inf\"} %d\n", e.name, pre, cum)
	if labels == "" {
		e.printf("%s_sum %g\n", e.name, float64(h.Sum())*scale)
		e.printf("%s_count %d\n", e.name, cum)
		return
	}
	e.printf("%s_sum{%s} %g\n", e.name, labels, float64(h.Sum())*scale)
	e.printf("%s_count{%s} %d\n", e.name, labels, cum)
}

// Registry is an ordered set of families. Registration happens at
// server construction; scrapes iterate in registration order so the
// output is stable and diffable.
type Registry struct {
	mu   sync.Mutex
	fams []Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// MustRegister appends families. It panics on a duplicate or invalid
// name — registration is static wiring, so failing loudly at startup
// beats a silently shadowed metric.
func (r *Registry) MustRegister(fams ...Family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range fams {
		if !validName(f.Name) {
			panic("telemetry: invalid metric name " + f.Name)
		}
		for _, have := range r.fams {
			if have.Name == f.Name {
				panic("telemetry: duplicate metric " + f.Name)
			}
		}
		r.fams = append(r.fams, f)
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]Family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		e := &Emitter{w: w, name: f.Name}
		e.printf("# HELP %s %s\n", f.Name, f.Help)
		e.printf("# TYPE %s %s\n", f.Name, f.Kind)
		f.Collect(e)
		if e.err != nil {
			return e.err
		}
	}
	return nil
}

// Handler serves the registry at any path (conventionally /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Names returns the registered family names, sorted (tests pin the
// catalogue against it).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.fams))
	for i, f := range r.fams {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}
