package cstm

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/core"
)

// TestMultiVersionDefaultsToSingle pins the default: Versions < 1 is
// normalized to 1 and no predecessor chain is retained.
func TestMultiVersionDefaultsToSingle(t *testing.T) {
	s := New(Config{Threads: 4})
	if got := s.Config().Versions; got != 1 {
		t.Fatalf("default Versions = %d, want 1", got)
	}
	o := s.NewObject(0)
	th := s.NewThread()
	for i := 1; i <= 3; i++ {
		atomically(t, th, false, func(tx *Tx) error { return tx.Write(o, i) })
	}
	if p := o.Current().Prev(); p != nil {
		t.Fatalf("single-version object retained a predecessor: %+v", p)
	}
}

// TestMultiVersionFootnoteScenario exercises §4.1 footnote 1: a reader
// that opened an object before a causally-later chain of updates can
// only commit if reads may return older retained versions.
//
//	T_L: reads o1 (initial version)
//	p1:  commits a write to o1, then a (causally later) write to o2
//	T_L: reads o2
//
// With the base algorithm T_L must read o2's current version, raising
// T.ct above the successor of its o1 read — validation fails. With
// Versions > 1 T_L picks o2's initial version and commits.
func TestMultiVersionFootnoteScenario(t *testing.T) {
	for _, versions := range []int{1, 4} {
		s := New(Config{Threads: 4, Versions: versions})
		o1 := s.NewObject("o1v0")
		o2 := s.NewObject("o2v0")
		thL := s.NewThread()
		th1 := s.NewThread()

		txL := thL.Begin(core.Long, true)
		if _, err := txL.Read(o1); err != nil {
			t.Fatal(err)
		}

		atomically(t, th1, false, func(tx *Tx) error { return tx.Write(o1, "o1v1") })
		atomically(t, th1, false, func(tx *Tx) error { return tx.Write(o2, "o2v1") })

		got, err := txL.Read(o2)
		if err != nil {
			t.Fatal(err)
		}
		commitErr := txL.Commit()

		if versions == 1 {
			if got != "o2v1" {
				t.Fatalf("versions=1: read %v, want current o2v1", got)
			}
			if !errors.Is(commitErr, core.ErrConflict) {
				t.Fatalf("versions=1: commit err = %v, want ErrConflict", commitErr)
			}
			continue
		}
		if got != "o2v0" {
			t.Fatalf("versions=%d: read %v, want retained o2v0", versions, got)
		}
		if commitErr != nil {
			t.Fatalf("versions=%d: commit err = %v, want nil", versions, commitErr)
		}
	}
}

// TestMultiVersionRereadStable verifies that re-reading an object inside
// one transaction returns the version picked first, even after a
// concurrent update made a newer version current.
func TestMultiVersionRereadStable(t *testing.T) {
	s := New(Config{Threads: 4, Versions: 4})
	o := s.NewObject("v0")
	thR := s.NewThread()
	thW := s.NewThread()

	tx := thR.Begin(core.Short, true)
	first, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	atomically(t, thW, false, func(tx *Tx) error { return tx.Write(o, "v1") })
	second, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("re-read changed value: %v then %v", first, second)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiVersionTrim verifies the retained chain is bounded by
// Config.Versions.
func TestMultiVersionTrim(t *testing.T) {
	const keep = 3
	s := New(Config{Threads: 2, Versions: keep})
	o := s.NewObject(0)
	th := s.NewThread()
	for i := 1; i <= 10; i++ {
		atomically(t, th, false, func(tx *Tx) error { return tx.Write(o, i) })
	}
	depth := 0
	for v := o.Current(); v != nil; v = v.Prev() {
		depth++
		if depth > keep {
			t.Fatalf("retained chain deeper than %d versions", keep)
		}
	}
	if depth != keep {
		t.Fatalf("retained depth = %d, want %d", depth, keep)
	}
}

// TestMultiVersionWriteUsesCurrent verifies that writes always install
// over the current version: a transaction that read an old retained
// version of an object and then writes that same object folds the
// current version's timestamp and is validated against it.
func TestMultiVersionWriteUsesCurrent(t *testing.T) {
	s := New(Config{Threads: 4, Versions: 4})
	o1 := s.NewObject("o1v0")
	o2 := s.NewObject("o2v0")
	thL := s.NewThread()
	th1 := s.NewThread()

	txL := thL.Begin(core.Short, false)
	if _, err := txL.Read(o1); err != nil {
		t.Fatal(err)
	}
	atomically(t, th1, false, func(tx *Tx) error { return tx.Write(o1, "o1v1") })
	atomically(t, th1, false, func(tx *Tx) error { return tx.Write(o2, "o2v1") })

	// Old-version read of o2 keeps T_L alive...
	if got, err := txL.Read(o2); err != nil || got != "o2v0" {
		t.Fatalf("read = %v, %v; want o2v0, nil", got, err)
	}
	// ...but upgrading o2 to a write folds the current version's
	// timestamp, dooming the o1 read: commit must fail.
	if err := txL.Write(o2, "o2v2"); err != nil {
		t.Fatal(err)
	}
	if err := txL.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("commit err = %v, want ErrConflict", err)
	}
	if cur := o2.Current().Value; cur != "o2v1" {
		t.Fatalf("aborted writer mutated object: %v", cur)
	}
}

// TestMultiVersionConcurrentSnapshotSum stress-tests snapshot
// consistency: concurrent transfers preserve a zero sum, and multi-
// version readers must never observe a torn (non-zero) sum.
func TestMultiVersionConcurrentSnapshotSum(t *testing.T) {
	const (
		objects   = 8
		transfers = 300
	)
	s := New(Config{Threads: 4, Versions: 8})
	objs := make([]*Object, objects)
	for i := range objs {
		objs[i] = s.NewObject(int64(0))
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < transfers; i++ {
				from, to := objs[(i+w)%objects], objs[(i*3+w+1)%objects]
				if from == to {
					continue
				}
				for {
					tx := th.Begin(core.Short, false)
					err := func() error {
						fv, err := tx.Read(from)
						if err != nil {
							return err
						}
						tv, err := tx.Read(to)
						if err != nil {
							return err
						}
						if err := tx.Write(from, fv.(int64)-1); err != nil {
							return err
						}
						return tx.Write(to, tv.(int64)+1)
					}()
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
					if err == nil {
						break
					}
					if !core.IsRetryable(err) {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		th := s.NewThread()
		for i := 0; i < 200; i++ {
			tx := th.Begin(core.Long, true)
			var sum int64
			ok := true
			for _, o := range objs {
				v, err := tx.Read(o)
				if err != nil {
					ok = false
					break
				}
				sum += v.(int64)
			}
			if !ok {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err == nil && sum != 0 {
				t.Errorf("committed scan saw torn sum %d", sum)
				return
			}
		}
	}()

	wg.Wait()
	<-readerDone
}
