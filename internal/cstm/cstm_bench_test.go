package cstm

import (
	"fmt"
	"testing"

	"tbtm/internal/core"
)

func BenchmarkTransferByWidth(b *testing.B) {
	// Vector width r is the §4.3 size/accuracy knob; this measures its
	// pure bookkeeping cost (timestamp merge + validation) per update
	// transaction.
	for _, r := range []int{1, 2, 8, 16, 64} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			s := New(Config{Threads: 64, Entries: r})
			oa, ob := s.NewObject(int64(0)), s.NewObject(int64(0))
			th := s.NewThread()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := th.Begin(core.Short, false)
				if _, err := tx.Read(oa); err != nil {
					b.Fatal(err)
				}
				if err := tx.Write(ob, int64(i)); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadOnlyScan(b *testing.B) {
	s := New(Config{Threads: 16})
	const n = 100
	objs := make([]*Object, n)
	for i := range objs {
		objs[i] = s.NewObject(int64(i))
	}
	th := s.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.Begin(core.Long, true)
		for _, o := range objs {
			if _, err := tx.Read(o); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
