// Package cstm implements CS-STM, the causally serializable STM of paper
// §4.1 (Algorithm 1), using a vector time base — either exact vector
// clocks or plausible r-entry REV clocks (§4.3), which trade extra
// (false-conflict) aborts for constant timestamp size but never miss a
// true causal conflict.
//
// Shared objects traverse a sequence of versions; each version carries
// the vector commit timestamp of the transaction that installed it. A
// transaction T accumulates its tentative commit timestamp T.ct as the
// element-wise maximum of every version it opens. Reads are invisible; a
// single writer per object is enforced with contention-managed
// arbitration. At commit, T validates that no version it read has a
// successor whose timestamp strictly precedes T.ct — such a successor
// would have to be ordered both before and after T, so no causally
// consistent view could exist (paper §4.1, correctness argument).
package cstm

import (
	"sync/atomic"

	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/epoch"
	"tbtm/internal/stats"
	"tbtm/internal/vclock"
)

// Config parameterizes a CS-STM instance.
type Config struct {
	// Threads is the number of worker threads the vector clock is sized
	// for (default 16). Creating more threads than this is safe — they
	// share entries like a plausible clock.
	Threads int
	// Entries is the timestamp width r. Zero means Threads (exact vector
	// clocks); 1 gives a single shared counter; intermediate values give
	// plausible REV clocks.
	Entries int
	// Mapping selects the processor→entry mapping for plausible widths
	// (default: the paper's modulo mapping).
	Mapping vclock.Mapping
	// Comb appends a second REV segment of r+1 modulo-mapped entries to
	// the plausible timestamps (§4.3's "other types of plausible
	// clocks"; see vclock.NewComb). A false ordering must survive both
	// processor→entry sharings, reducing spurious aborts at the price of
	// wider timestamps.
	Comb bool
	// CM arbitrates write/write conflicts. Nil means Polite.
	CM cm.Manager
	// Versions is the number of committed versions retained per object
	// (default 1, the paper's base algorithm, where "old versions do not
	// need to be kept"). Values > 1 enable the multi-version variant of
	// §4.1 footnote 1: a read may return an older retained version,
	// chosen to maximize the chances of successful validation, trading
	// space for long-reader concurrency.
	Versions int
	// Lot, when non-nil, receives a wakeup for every object an update
	// commit installs a version into, unblocking transactions parked in
	// the facade's Retry. Nil keeps the commit path wake-free.
	Lot *core.ParkingLot
	// CommitLog sizes the global commit log (0 default-on at
	// core.DefaultCommitLogSlots, >0 explicit size, <0 off). Vector
	// commit timestamps are neither scalar nor dense, so the log runs in
	// claim mode: every update commit claims the next log tick and
	// publishes its write set under it before validating. A committing
	// transaction whose reads all returned current versions then skips
	// the O(reads) successor validation whenever the window between its
	// begin and its commit avoided its read footprint.
	CommitLog int
	// CrossCheck makes every log-clear validation skip re-run the full
	// successor walk and panic on disagreement (conformance harness
	// only).
	CrossCheck bool
}

// Stats is a snapshot of an instance's cumulative counters.
type Stats struct {
	Commits         uint64 // transactions committed
	Aborts          uint64 // transactions aborted
	Conflicts       uint64 // validation failures
	FastValidations uint64 // commits that skipped the successor walk (commit log)
	LogWraps        uint64 // fast-path fallbacks because the log window wrapped
}

// Counter slots within a thread's stats shard.
const (
	cntCommits = iota
	cntAborts
	cntConflicts
	cntFastValidations
	cntLogWraps
)

// STM is a CS-STM instance.
type STM struct {
	cfg   Config
	clock *vclock.Clock
	// log is the claim-mode commit log, nil when disabled.
	log *core.CommitLog

	nextThread atomic.Int64

	// shards holds the per-thread counter shards; see internal/stats.
	shards stats.Set

	// domain is the epoch-based reclamation domain gating descriptor
	// reuse (versions are not recycled here: their CT timestamps escape
	// into VC_p and thread-owned buffers, see internal/epoch).
	domain epoch.Domain
}

// New returns a CS-STM instance, applying defaults for zero fields.
func New(cfg Config) *STM {
	if cfg.Threads < 1 {
		cfg.Threads = 16
	}
	if cfg.Entries < 1 || cfg.Entries > cfg.Threads {
		cfg.Entries = cfg.Threads
	}
	if cfg.CM == nil {
		cfg.CM = &cm.Polite{}
	}
	if cfg.Versions < 1 {
		cfg.Versions = 1
	}
	mk := vclock.NewMapped
	if cfg.Comb {
		mk = vclock.NewComb
	}
	s := &STM{cfg: cfg, clock: mk(cfg.Threads, cfg.Entries, cfg.Mapping)}
	if cfg.CommitLog >= 0 {
		s.log = core.NewCommitLog(cfg.CommitLog)
	}
	return s
}

// Log returns the commit log, or nil when disabled (tests).
func (s *STM) Log() *core.CommitLog { return s.log }

// Config returns the effective configuration.
func (s *STM) Config() Config { return s.cfg }

// Clock exposes the vector time base (tests, S-STM reuse).
func (s *STM) Clock() *vclock.Clock { return s.clock }

// Stats returns a snapshot of the cumulative counters, aggregated across
// the per-thread shards.
func (s *STM) Stats() Stats {
	c := s.shards.Snapshot()
	return Stats{
		Commits:         c[cntCommits],
		Aborts:          c[cntAborts],
		Conflicts:       c[cntConflicts],
		FastValidations: c[cntFastValidations],
		LogWraps:        c[cntLogWraps],
	}
}

// Version is one committed state of an Object. CT is the vector commit
// timestamp of the installing transaction; Next is set when the version
// is superseded, giving validation the v_{i+1} of Algorithm 1 line 22.
type Version struct {
	Value    any
	CT       vclock.TS
	Seq      uint64
	WriterID uint64

	next atomic.Pointer[Version]
	prev atomic.Pointer[Version]
}

// Next returns the successor version, or nil while this version is
// current.
func (v *Version) Next() *Version { return v.next.Load() }

// Prev returns the retained predecessor version, or nil when this is the
// oldest retained version (always nil with Config.Versions == 1).
func (v *Version) Prev() *Version { return v.prev.Load() }

// Object is a CS-STM shared object: the current version plus a writer
// ownership word (single writer per object, Algorithm 1 lines 9-13).
type Object struct {
	id  uint64
	cur atomic.Pointer[Version]
	wr  atomic.Pointer[core.TxMeta]
}

// NewObject allocates an object whose initial version has a zero
// timestamp.
func (s *STM) NewObject(initial any) *Object {
	o := &Object{id: core.NextObjectID()}
	o.cur.Store(&Version{Value: initial, CT: s.clock.Zero(), Seq: 1})
	return o
}

// ID returns the object's process-unique identifier.
func (o *Object) ID() uint64 { return o.id }

// Current returns the newest committed version.
func (o *Object) Current() *Version { return o.cur.Load() }

// Writer returns the transaction holding write ownership, or nil.
func (o *Object) Writer() *core.TxMeta { return o.wr.Load() }

// Thread is a per-goroutine handle carrying VC_p, the commit timestamp of
// the thread's last committed transaction (Algorithm 1 line 3). It also
// owns a stats shard and a reusable transaction descriptor, so the
// begin→commit hot path performs no descriptor allocation.
type Thread struct {
	stm   *STM
	id    int
	vc    vclock.TS
	shard *stats.Shard
	tx    Tx            // reusable descriptor, recycled by Begin once finished
	ctbuf vclock.TS     // spare timestamp buffer recovered from finished transactions
	rec   core.Recycler // epoch-gated descriptor pool
	idbuf []uint64      // reusable write-set ID buffer for commit-log publication
	// vcEscaped records whether the buffer behind vc was published into
	// installed versions (an update commit's ct). A read-only commit's ct
	// buffer stays thread-private, so when it replaces vc the old vc
	// buffer can be recovered for reuse — read-only commit loops then
	// ping-pong two buffers instead of cloning per transaction.
	vcEscaped bool
}

// NewThread returns a handle for one worker goroutine.
func (s *STM) NewThread() *Thread {
	th := &Thread{stm: s, id: int(s.nextThread.Add(1) - 1), vc: s.clock.Zero(), shard: s.shards.NewShard()}
	th.rec.Init(&s.domain)
	return th
}

// ID returns the thread's index (its vector-clock entry is ID mod r).
func (th *Thread) ID() int { return th.id }

// STM returns the owning instance.
func (th *Thread) STM() *STM { return th.stm }

// VC returns a copy of the thread's last committed timestamp (tests).
func (th *Thread) VC() vclock.TS { return th.vc.Clone() }

// VCInto copies the thread's last committed timestamp into dst, reusing
// dst's storage when it is wide enough, and returns the result. The
// zero-alloc sibling of VC for hot-path callers that keep a scratch
// buffer.
func (th *Thread) VCInto(dst vclock.TS) vclock.TS { return th.vc.CopyInto(dst) }

// Begin starts a transaction (Algorithm 1 lines 1-5). kind feeds the
// contention manager; readOnly transactions skip the commit-time tick.
//
// Begin may recycle the thread's previous transaction descriptor: a *Tx
// is invalid after Commit or Abort and must not be retained across the
// next Begin on the same thread.
func (th *Thread) Begin(kind core.TxKind, readOnly bool) *Tx {
	tx := &th.tx
	if tx.stm != nil && !tx.done {
		tx = new(Tx)
	}
	th.rec.Pin() // read-side critical section: Begin → finish
	if tx.meta != nil {
		th.rec.RetireMeta(tx.meta) // previous transaction finished
	}
	tx.stm = th.stm
	tx.th = th
	tx.meta = th.rec.NewMeta(kind, th.id)
	tx.ro = readOnly
	tx.ct = th.takeCT()
	clear(tx.reads) // release the previous transaction's objects/values
	clear(tx.writes)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex.Reset()
	tx.rindex.Reset()
	tx.allCurrent = true
	if log := th.stm.log; log != nil {
		// lb bounds the validation window: any commit that could install
		// a successor to a version this transaction reads as current
		// claims its log tick after the read (its writer was not yet
		// committing when the read stabilized), hence after this load.
		tx.lb = log.Claimed()
	}
	tx.done = false
	return tx
}

// takeCT returns a tentative commit timestamp initialized from VC_p. It
// reuses a buffer recovered from an aborted predecessor when one is
// available; committed timestamps escape into installed versions and
// VC_p and are never reused.
func (th *Thread) takeCT() vclock.TS {
	if buf := th.ctbuf; len(buf) == len(th.vc) {
		th.ctbuf = nil
		copy(buf, th.vc)
		return buf
	}
	return th.vc.Clone()
}

type readEntry struct {
	obj *Object
	ver *Version
}

type writeEntry struct {
	obj  *Object
	base *Version // version current at open time; its Next is set on install
	val  any
}

// Tx is a CS-STM transaction.
type Tx struct {
	stm  *STM
	th   *Thread
	meta *core.TxMeta
	ro   bool

	// ct is the tentative commit timestamp T.ct.
	ct vclock.TS

	reads  []readEntry
	writes []writeEntry
	windex core.SmallIndex
	// rindex deduplicates reads per object — a re-read returns the
	// version chosen first rather than re-picking — and doubles as the
	// commit log's read-footprint membership test.
	rindex core.SmallIndex
	// scratch is pick's reusable fold buffer (multi-version mode only).
	scratch vclock.TS
	// lb is the commit-log tick observed at Begin; the commit-time fast
	// path scans (lb, now].
	lb uint64
	// allCurrent records that every read returned the object's current
	// version. A multi-version pick of an older version may carry a
	// pre-existing successor the log window cannot see, so such
	// transactions always validate the slow way.
	allCurrent bool
	done       bool
}

// Meta exposes the shared descriptor.
func (tx *Tx) Meta() *core.TxMeta { return tx.meta }

// Done reports whether the transaction has finished and its descriptor
// may be recycled. A nil receiver counts as done.
func (tx *Tx) Done() bool { return tx == nil || tx.done }

// CT returns a copy of the tentative commit timestamp (tests).
func (tx *Tx) CT() vclock.TS { return tx.ct.Clone() }

// CTInto copies the tentative commit timestamp into dst, reusing dst's
// storage when it is wide enough, and returns the result (the zero-alloc
// sibling of CT).
func (tx *Tx) CTInto(dst vclock.TS) vclock.TS { return tx.ct.CopyInto(dst) }

// Watches appends the transaction's read footprint to buf as (object,
// read-version Seq) pairs and returns the extended slice. It must be
// called before the descriptor is recycled by the thread's next Begin.
func (tx *Tx) Watches(buf []core.Watch) []core.Watch {
	for i := range tx.reads {
		r := &tx.reads[i]
		buf = append(buf, core.Watch{ID: r.obj.ID(), Seq: r.ver.Seq, Obj: r.obj})
	}
	return buf
}

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time. CS-STM never recycles version nodes (only
// descriptors — their timestamps escape into VC_p), so reading the
// current version's Seq needs no epoch pin.
func (tx *Tx) WatchesStale(ws []core.Watch) bool {
	for i := range ws {
		if ws[i].Obj.(*Object).cur.Load().Seq != ws[i].Seq {
			return true
		}
	}
	return false
}

// stabilize waits until o has no committing writer, so that versions from
// in-flight multi-object installs are never observed partially.
func (tx *Tx) stabilize(o *Object) {
	for round := 0; ; round++ {
		w := o.wr.Load()
		if w == nil || w == tx.meta || w.Status() != core.StatusCommitting {
			return
		}
		cm.Backoff(round)
	}
}

// finish marks the transaction done and leaves the epoch critical
// section entered by Begin.
func (tx *Tx) finish() {
	tx.done = true
	tx.th.rec.Unpin()
}

func (tx *Tx) fail(err error) error {
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.finish()
	tx.th.ctbuf = tx.ct // never published: recover the buffer
	tx.ct = nil
	tx.th.shard.Inc(cntAborts)
	return err
}

// Read opens o in read mode (Algorithm 1 lines 6-8, 16-17): the last
// committed version is returned, T.ct is raised to dominate its
// timestamp, and the read is recorded for commit-time validation.
func (tx *Tx) Read(o *Object) (any, error) {
	if tx.done {
		return nil, core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return nil, tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		return tx.writes[i].val, nil
	}
	if i, ok := tx.rindex.Get(o.ID()); ok {
		return tx.reads[i].ver.Value, nil
	}
	tx.meta.Prio.Add(1)
	tx.stabilize(o)
	cur := o.cur.Load()
	v := tx.pick(cur)
	if v != cur {
		tx.allCurrent = false
	}
	tx.ct.MaxInto(v.CT)
	tx.rindex.Put(o.ID(), len(tx.reads))
	tx.reads = append(tx.reads, readEntry{obj: o, ver: v})
	return v.Value, nil
}

// pick returns the version of o the transaction reads. With a single
// retained version this is the current version (Algorithm 1 line 7).
// With Config.Versions > 1 it implements §4.1 footnote 1: walk the
// retained chain from newest to oldest and take the first version whose
// adoption keeps the transaction validatable — folding the candidate's
// timestamp into T.ct must not make the successor of the candidate, or
// of any version already read, precede the raised T.ct. The current
// version has no successor yet, so when every candidate fails the fold
// check the current version is still returned and the conflict is left
// to commit-time validation (it may resolve if the blocking reads are
// upgraded to writes of the same objects).
func (tx *Tx) pick(cur *Version) *Version {
	if tx.stm.cfg.Versions <= 1 {
		return cur
	}
	if tx.scratch == nil {
		tx.scratch = make(vclock.TS, len(tx.ct))
	}
	for v := cur; v != nil; v = v.prev.Load() {
		copy(tx.scratch, tx.ct)
		tx.scratch.MaxInto(v.CT)
		if tx.admissible(v, tx.scratch, !tx.scratch.Equal(tx.ct)) {
			return v
		}
	}
	return cur
}

// admissible reports whether reading v — raising T.ct to ct — leaves
// every read (v itself and all previous reads) passing the Algorithm 1
// line 22 validation test at the raised timestamp. When the fold did not
// raise T.ct (raised == false) previous reads were already checked at
// this timestamp, so only v's own successor needs inspection — the
// common case on quiescent objects, keeping long scans near-linear.
func (tx *Tx) admissible(v *Version, ct vclock.TS, raised bool) bool {
	if s := v.next.Load(); s != nil && s.CT.LessEq(ct) {
		return false
	}
	if !raised {
		return true
	}
	for _, r := range tx.reads {
		if s := r.ver.next.Load(); s != nil && s.CT.LessEq(ct) {
			return false
		}
	}
	return true
}

// Write opens o in write mode (Algorithm 1 lines 9-15): a single writer
// is enforced, conflicts are arbitrated by the contention manager, and
// the tentative value is buffered until commit.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.ro {
		return core.ErrReadOnly
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		tx.writes[i].val = val
		return nil
	}
	tx.meta.Prio.Add(1)

	for round := 0; ; round++ {
		if tx.meta.Status() == core.StatusAborted {
			return tx.fail(core.ErrAborted)
		}
		w := o.wr.Load()
		switch {
		case w == nil:
			if o.wr.CompareAndSwap(nil, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		case w == tx.meta:
			tx.recordWrite(o, val)
			return nil
		case w.Status().Terminal():
			if o.wr.CompareAndSwap(w, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		default:
			if !cm.Resolve(tx.stm.cfg.CM, tx.meta, w) {
				tx.th.shard.Inc(cntConflicts)
				return tx.fail(core.ErrAborted)
			}
		}
		cm.Backoff(round)
	}
}

func (tx *Tx) recordWrite(o *Object, val any) {
	v := o.cur.Load()
	tx.ct.MaxInto(v.CT)
	tx.windex.Put(o.ID(), len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{obj: o, base: v, val: val})
}

// validate implements Algorithm 1 lines 20-26: the transaction aborts if
// any version it read has a successor whose timestamp precedes (or
// equals) T.ct — the transaction would causally both precede and follow
// the successor's writer. Checking the immediate successor suffices:
// later successors dominate earlier ones, so any v_{i+k} ≼ T.ct implies
// v_{i+1} ≼ T.ct.
//
// The paper's test is strictly ≺; it assumes each object is opened
// exactly once, so a transaction never observes the successor of one of
// its own reads. Our API separates Read and Write, and a read-then-write
// upgrade that re-acquires the lock after an enemy commit folds the
// successor's timestamp into T.ct (making them equal). Committed
// timestamps are unique — each contains a fresh clock tick — so equality
// means T.ct absorbed the successor itself: a true conflict, hence ≼.
func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		tx.stabilize(r.obj)
		if succ := r.ver.next.Load(); succ != nil && succ.CT.LessEq(tx.ct) {
			return false
		}
	}
	return true
}

// Commit implements Algorithm 1 lines 27-32: validate, tick the thread's
// vector-clock entry, install tentative versions, and remember the commit
// timestamp in VC_p.
func (tx *Tx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitting) {
		return tx.fail(core.ErrAborted)
	}
	// Commit-log fast path: when every read returned a current version
	// and no commit claimed between Begin and here touched the read
	// footprint, no read version can have acquired a successor whose
	// timestamp our (frozen) T.ct dominates — the successor walk is
	// trivially clean. Commits claimed after the window bound carry a
	// fresh clock tick T.ct cannot contain, so missing them is harmless.
	fastOK := false
	log := tx.stm.log
	if log != nil && tx.allCurrent {
		switch log.Check(tx.lb, log.Claimed(), &tx.rindex) {
		case core.LogClear:
			fastOK = true
		case core.LogWrapped:
			tx.th.shard.Inc(cntLogWraps)
		}
	}
	if log != nil && len(tx.writes) > 0 {
		// Claim our own tick and publish the write set before validating
		// and installing, so concurrent fast paths account for our
		// in-flight installs (an abort below leaves a harmless false
		// positive behind).
		ids := tx.th.idbuf[:0]
		for i := range tx.writes {
			ids = append(ids, tx.writes[i].obj.ID())
		}
		tx.th.idbuf = ids
		log.Append(ids)
	}
	if fastOK {
		if tx.stm.cfg.CrossCheck && !tx.validate() {
			panic("cstm: commit-log fast path admitted a commit full validation rejects")
		}
		tx.th.shard.Inc(cntFastValidations)
	} else if !tx.validate() {
		tx.meta.CASStatus(core.StatusCommitting, core.StatusAborted)
		tx.releaseLocks()
		tx.finish()
		tx.th.ctbuf = tx.ct
		tx.ct = nil
		tx.th.shard.Inc(cntAborts)
		tx.th.shard.Inc(cntConflicts)
		return core.ErrConflict
	}
	if len(tx.writes) > 0 {
		// Increment p's component with a global get-and-increment so that
		// threads sharing a plausible-clock entry never generate the same
		// timestamp (§4.3). Stamp also advances the Lamport entry of a
		// comb clock.
		tx.stm.clock.Stamp(tx.th.id, tx.ct)
		for _, w := range tx.writes {
			nv := &Version{Value: w.val, CT: tx.ct, Seq: w.base.Seq + 1, WriterID: tx.meta.ID}
			if tx.stm.cfg.Versions > 1 {
				nv.prev.Store(w.base)
			}
			w.base.next.Store(nv)
			w.obj.cur.Store(nv)
			trim(nv, tx.stm.cfg.Versions)
		}
	}
	tx.meta.CASStatus(core.StatusCommitting, core.StatusCommitted)
	tx.releaseLocks()
	tx.finish()
	if lot := tx.stm.cfg.Lot; lot != nil {
		for _, w := range tx.writes {
			lot.Wake(w.obj.ID())
		}
	}
	if !tx.th.vcEscaped {
		// The displaced vc buffer was never published; recover it.
		tx.th.ctbuf = tx.th.vc
	}
	tx.th.vc = tx.ct // VC_p ← T.ct (line 31)
	// An update commit's ct escaped into the installed versions above; a
	// write-free commit's ct stayed thread-private.
	tx.th.vcEscaped = len(tx.writes) > 0
	tx.th.shard.Inc(cntCommits)
	return nil
}

// Abort aborts the transaction explicitly; no-op when already finished.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.finish()
	tx.th.ctbuf = tx.ct
	tx.ct = nil
	tx.th.shard.Inc(cntAborts)
}

// trim severs the retained version chain keep versions behind nv, so at
// most keep versions stay reachable through Prev. Concurrent pickers may
// observe the chain shortening mid-walk; they simply see fewer
// candidates, which is always safe.
func trim(nv *Version, keep int) {
	node := nv
	for i := 1; i < keep; i++ {
		p := node.prev.Load()
		if p == nil {
			return
		}
		node = p
	}
	node.prev.Store(nil)
}

func (tx *Tx) releaseLocks() {
	for _, w := range tx.writes {
		w.obj.wr.CompareAndSwap(tx.meta, nil)
	}
}
