package cstm

import (
	"errors"
	"testing"

	"tbtm/internal/core"
)

// TestCommitLogFastValidationDisjoint: a commit whose window avoided its
// read footprint skips the successor walk.
func TestCommitLogFastValidationDisjoint(t *testing.T) {
	s := New(Config{Threads: 4})
	if s.Log() == nil {
		t.Fatal("commit log not armed by default")
	}
	a, b := s.NewObject(int64(0)), s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(a); err != nil {
		t.Fatalf("Read: %v", err)
	}

	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(b, int64(9)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := s.Stats()
	if st.FastValidations < 1 {
		t.Fatalf("FastValidations = %d, want >= 1 (stats %+v)", st.FastValidations, st)
	}
}

// TestCommitLogConflictStillDetected: the read-then-write upgrade whose
// T.ct absorbs the successor's timestamp must still abort — the window
// hits the footprint and full validation runs.
func TestCommitLogConflictStillDetected(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(o); err != nil {
		t.Fatalf("Read: %v", err)
	}

	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(o, int64(1)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	// The upgrade re-locks o and folds the successor's timestamp into
	// T.ct: a true causal cycle.
	if err := tx.Write(o, int64(2)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
	st := s.Stats()
	if st.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1 (stats %+v)", st.Conflicts, st)
	}
}

// TestCommitLogMultiVersionPickDisablesFastPath: a read served by an
// older retained version carries a pre-existing successor the log
// window cannot see; such transactions must take the full walk.
func TestCommitLogMultiVersionPickDisablesFastPath(t *testing.T) {
	s := New(Config{Threads: 4, Versions: 4})
	o := s.NewObject(int64(0))
	x := s.NewObject(int64(0))

	// Build history on o so a picker can land on an old version: the
	// reader absorbs x's writer timestamp first, then o is overwritten
	// concurrently.
	rd := s.NewThread().Begin(core.Short, false)
	if _, err := rd.Read(x); err != nil {
		t.Fatalf("Read x: %v", err)
	}

	wr := s.NewThread()
	w1 := wr.Begin(core.Short, false)
	if err := w1.Write(o, int64(1)); err != nil {
		t.Fatalf("w1 Write: %v", err)
	}
	if err := w1.Commit(); err != nil {
		t.Fatalf("w1 Commit: %v", err)
	}

	if _, err := rd.Read(o); err != nil {
		t.Fatalf("Read o: %v", err)
	}
	if err := rd.Commit(); err != nil {
		t.Fatalf("rd Commit: %v", err)
	}
	// Whether rd picked the old or the new version of o, the suite-level
	// invariant is that a non-current pick never fast-validates; the
	// cross-check harness in internal/conformance pins it under load.
	// Here we only require that the commit succeeded and counted.
	if st := s.Stats(); st.Commits != 2 {
		t.Fatalf("Commits = %d, want 2 (stats %+v)", st.Commits, st)
	}
}
