package cstm

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/cm"
	"tbtm/internal/core"
)

func atomically(t *testing.T, th *Thread, ro bool, fn func(tx *Tx) error) {
	t.Helper()
	for i := 0; ; i++ {
		tx := th.Begin(core.Short, ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return
		}
		if !core.IsRetryable(err) {
			t.Errorf("non-retryable error: %v", err)
			return
		}
		if i > 20000 {
			t.Error("transaction did not commit after 20000 retries")
			return
		}
	}
}

func TestBasicReadWrite(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(int64(1))
	th := s.NewThread()
	atomically(t, th, false, func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int64)+1)
	})
	tx := th.Begin(core.Short, true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(2) {
		t.Fatalf("value = %v, want 2", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(1)
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Write(o, 2); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("read-own-write = %v", v)
	}
	tx.Abort()
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(0)
	tx := s.NewThread().Begin(core.Short, true)
	if err := tx.Write(o, 1); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	tx.Abort()
}

func TestUseAfterDone(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(0)
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(o); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Read after done = %v", err)
	}
	if err := tx.Write(o, 1); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Write after done = %v", err)
	}
	tx.Abort() // no-op
}

// TestFigure1AllCommit replays the paper's Figure 1 under CS-STM: T1 and
// T2 update disjoint objects while the long transaction TL reads across
// them. Linearizable TBTMs abort TL; CS-STM commits all three because T1
// and T2 are not causally ordered (paper §4, discussion around Figure 1).
func TestFigure1AllCommit(t *testing.T) {
	s := New(Config{Threads: 3})
	o1, o2 := s.NewObject("o1v0"), s.NewObject("o2v0")
	o3, o4 := s.NewObject("o3v0"), s.NewObject("o4v0")
	p1, p2, p3 := s.NewThread(), s.NewThread(), s.NewThread()

	// TL reads o1 and o2 first (their initial versions).
	tl := p3.Begin(core.Long, false)
	if _, err := tl.Read(o1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(o2); err != nil {
		t.Fatal(err)
	}

	// T1 : w(o1) w(o2), commits.
	t1 := p1.Begin(core.Short, false)
	if err := t1.Write(o1, "o1v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(o2, "o2v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("T1 commit: %v", err)
	}

	// T2 : w(o3) w(o3), commits after T1 in real time.
	t2 := p2.Begin(core.Short, false)
	if err := t2.Write(o3, "o3v1a"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(o3, "o3v1b"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("T2 commit: %v", err)
	}

	// T1.ct and T2.ct are concurrent: disjoint object sets.
	if !t1.CT().Concurrent(t2.CT()) {
		t.Fatalf("T1.ct %v and T2.ct %v not concurrent", t1.CT(), t2.CT())
	}

	// TL reads o3 (T2's version) and writes o4. The valid serialization
	// is T2 → TL → T1, so TL must commit.
	v, err := tl.Read(o3)
	if err != nil {
		t.Fatal(err)
	}
	if v != "o3v1b" {
		t.Fatalf("TL read o3 = %v", v)
	}
	if err := tl.Write(o4, "o4v1"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Commit(); err != nil {
		t.Fatalf("TL commit: %v (CS-STM must allow the serialization T2→TL→T1)", err)
	}
	if got := s.Stats().Commits; got != 3 {
		t.Fatalf("commits = %d, want 3", got)
	}
}

// TestFigure3StyleAbort builds the conflict pattern of the paper's
// Figure 3 discussion: a transaction that reads a version overwritten by
// a transaction it causally follows cannot construct a consistent view
// and must abort.
func TestFigure3StyleAbort(t *testing.T) {
	s := New(Config{Threads: 3})
	o1, o3 := s.NewObject("o1v0"), s.NewObject("o3v0")
	p1, p2 := s.NewThread(), s.NewThread()

	// T1 reads o3's initial version.
	t1 := p1.Begin(core.Short, false)
	if _, err := t1.Read(o3); err != nil {
		t.Fatal(err)
	}

	// T2 overwrites both o1 and o3 and commits.
	t2 := p2.Begin(core.Short, false)
	if err := t2.Write(o1, "o1v1"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(o3, "o3v1"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// T1 now reads o1 — T2's version — so T1 causally follows T2, yet the
	// version of o3 it read was overwritten by T2: both before and after.
	if _, err := t1.Read(o1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(o1, "o1v2"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("T1 commit = %v, want ErrConflict", err)
	}
	if s.Stats().Conflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

func TestConcurrentUnrelatedUpdatesBothCommit(t *testing.T) {
	// Two transactions on different threads updating disjoint objects are
	// never ordered: both commit regardless of interleaving.
	s := New(Config{Threads: 2})
	a, b := s.NewObject(0), s.NewObject(0)
	p1, p2 := s.NewThread(), s.NewThread()

	t1 := p1.Begin(core.Short, false)
	t2 := p2.Begin(core.Short, false)
	if err := t1.Write(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(b, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !t1.CT().Concurrent(t2.CT()) {
		t.Fatalf("timestamps ordered: %v vs %v", t1.CT(), t2.CT())
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	// Read-then-write upgrade whose lock is re-acquired after an enemy
	// commit must abort (the ≼ validation case documented on validate).
	s := New(Config{Threads: 2, CM: cm.Timestamp{}})
	o := s.NewObject(int64(100))
	p1, p2 := s.NewThread(), s.NewThread()

	t1 := p1.Begin(core.Short, false)
	if _, err := t1.Read(o); err != nil {
		t.Fatal(err)
	}
	// Enemy commits a new version.
	atomically(t, p2, false, func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int64)-10)
	})
	// t1 writes based on its stale read; it must not commit.
	if err := t1.Write(o, int64(100-10)); err != nil {
		if !core.IsRetryable(err) {
			t.Fatalf("Write = %v", err)
		}
		return // aborted at open: also fine
	}
	if err := t1.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("stale committer = %v, want ErrConflict", err)
	}
}

func TestWriteWriteSingleWriter(t *testing.T) {
	s := New(Config{Threads: 2, CM: cm.Timestamp{}})
	o := s.NewObject(0)
	p1, p2 := s.NewThread(), s.NewThread()

	older := p1.Begin(core.Short, false)
	if err := older.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	younger := p2.Begin(core.Short, false)
	if err := younger.Write(o, 2); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("younger = %v, want ErrAborted", err)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCausalityThroughThreads(t *testing.T) {
	// A thread's next transaction starts from VC_p, so same-thread
	// transactions are always causally ordered.
	s := New(Config{Threads: 2})
	a := s.NewObject(0)
	p := s.NewThread()
	tx1 := p.Begin(core.Short, false)
	if err := tx1.Write(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	ct1 := tx1.CT()
	tx2 := p.Begin(core.Short, false)
	if err := tx2.Write(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !ct1.Less(tx2.CT()) {
		t.Fatalf("same-thread commits not ordered: %v vs %v", ct1, tx2.CT())
	}
}

func TestMoneyConservation(t *testing.T) {
	// Write/write conflicts are single-writer and stale read-then-write
	// upgrades abort, so transfers conserve the total even under the
	// weaker causal-serializability criterion.
	for _, entries := range []int{0, 1, 2} { // full VC, scalar, plausible r=2
		entries := entries
		t.Run(map[int]string{0: "vector", 1: "scalar", 2: "plausible2"}[entries], func(t *testing.T) {
			s := New(Config{Threads: 4, Entries: entries})
			const accounts, transfers, workers = 8, 60, 4
			objs := make([]*Object, accounts)
			for i := range objs {
				objs[i] = s.NewObject(int64(100))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					th := s.NewThread()
					for i := 0; i < transfers; i++ {
						from := (seed + i) % accounts
						to := (seed + i*5 + 1) % accounts
						if from == to {
							continue
						}
						atomically(t, th, false, func(tx *Tx) error {
							fv, err := tx.Read(objs[from])
							if err != nil {
								return err
							}
							tv, err := tx.Read(objs[to])
							if err != nil {
								return err
							}
							if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
								return err
							}
							return tx.Write(objs[to], tv.(int64)+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total int64
			th := s.NewThread()
			atomically(t, th, true, func(tx *Tx) error {
				total = 0
				for _, o := range objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					total += v.(int64)
				}
				return nil
			})
			if total != accounts*100 {
				t.Fatalf("total = %d, want %d", total, accounts*100)
			}
		})
	}
}

func TestPlausibleClockMoreAborts(t *testing.T) {
	// §4.3: plausible clocks may order concurrent events, causing
	// unnecessary aborts — but never missed conflicts. Compare conflict
	// counts between r=1 (total order) and full vector clocks on a
	// Figure-1-like pattern where false ordering matters.
	run := func(entries int) uint64 {
		s := New(Config{Threads: 3, Entries: entries})
		o1, o3 := s.NewObject(0), s.NewObject(0)
		p1, p2, p3 := s.NewThread(), s.NewThread(), s.NewThread()
		var conflicts uint64
		for i := 0; i < 50; i++ {
			tl := p3.Begin(core.Long, false)
			if _, err := tl.Read(o1); err != nil {
				t.Fatal(err)
			}
			// Two causally unrelated updates on different threads.
			atomically(t, p1, false, func(tx *Tx) error { return tx.Write(o1, i) })
			atomically(t, p2, false, func(tx *Tx) error { return tx.Write(o3, i) })
			if _, err := tl.Read(o3); err != nil {
				t.Fatal(err)
			}
			if err := tl.Commit(); err != nil {
				conflicts++
			}
		}
		return conflicts
	}
	full := run(0)   // exact vector clocks
	scalar := run(1) // single shared counter (r=1)
	if full > scalar {
		t.Fatalf("vector clocks aborted more (%d) than scalar (%d)", full, scalar)
	}
	if scalar == 0 {
		t.Fatal("scalar clock produced no false conflicts in a pattern designed to trigger them")
	}
	if full != 0 {
		t.Fatalf("vector clocks produced %d conflicts on causally unrelated updates", full)
	}
}

func TestStatsAndAccessors(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Threads != 16 || cfg.Entries != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if !s.Clock().Exact() {
		t.Fatal("default clock not exact")
	}
	th := s.NewThread()
	if th.STM() != s {
		t.Fatal("backlink wrong")
	}
	if len(th.VC()) != 16 {
		t.Fatalf("VC width = %d", len(th.VC()))
	}
	o := s.NewObject("x")
	if o.ID() == 0 {
		t.Fatal("object ID zero")
	}
	if o.Current().Value != "x" || o.Current().Seq != 1 {
		t.Fatalf("initial version = %+v", o.Current())
	}
	if o.Writer() != nil {
		t.Fatal("fresh object has writer")
	}
	if o.Current().Next() != nil {
		t.Fatal("fresh version has successor")
	}
}
