// Package conformance drives randomized concurrent workloads against any
// of the STM implementations, records the committed history, and hands it
// to the offline checkers (DESIGN.md §6). It is used both by the test
// suite and by the cmd/stmcheck fuzzing CLI.
//
// Recording works without instrumenting the STMs: every write installs a
// globally unique value, so the committed history can be reconstructed
// after the run by walking each object's version chain and mapping
// observed read values back to version sequence numbers. A read value
// that appears in no chain is a dirty read; a committed write value
// missing from its chain is a lost update — both are reported as errors.
package conformance

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"tbtm/internal/checker"
	"tbtm/internal/core"
	"tbtm/internal/cstm"
	"tbtm/internal/lsa"
	"tbtm/internal/sistm"
	"tbtm/internal/sstm"
	"tbtm/internal/vclock"
	"tbtm/internal/zstm"
)

// System names an STM implementation under test.
type System int

// Systems.
const (
	// LSA is the linearizable baseline.
	LSA System = iota + 1
	// LSANoReadSets is LSA with the read-only fast path.
	LSANoReadSets
	// LSAFast is LSA with the RSTM-style commit validation fast path.
	LSAFast
	// CSTM is the causally serializable STM (exact vector clocks).
	CSTM
	// CSTMPlausible is CS-STM on a 2-entry plausible clock.
	CSTMPlausible
	// CSTMPlausibleBlock is CS-STM on a 2-entry plausible clock with the
	// block processor→entry mapping.
	CSTMPlausibleBlock
	// CSTMMulti is CS-STM with eight retained versions per object — the
	// multi-version variant of paper §4.1 footnote 1. Still causally
	// serializable.
	CSTMMulti
	// CSTMComb is CS-STM on a 2-entry plausible clock with the comb
	// second segment (§4.3's "other types of plausible clocks").
	CSTMComb
	// SSTM is the serializable STM.
	SSTM
	// ZSTM is the z-linearizable STM with mixed long/short transactions.
	ZSTM
	// SISTM is the snapshot-isolation comparator, checked against the
	// timestamp-exact SI criterion.
	SISTM
)

// String returns the system name.
func (s System) String() string {
	switch s {
	case LSA:
		return "lsa"
	case LSANoReadSets:
		return "lsa-noreadsets"
	case LSAFast:
		return "lsa-fastpath"
	case CSTM:
		return "cstm"
	case CSTMPlausible:
		return "cstm-plausible"
	case CSTMPlausibleBlock:
		return "cstm-plausible-block"
	case CSTMMulti:
		return "cstm-multiversion"
	case CSTMComb:
		return "cstm-comb"
	case SSTM:
		return "sstm"
	case ZSTM:
		return "zstm"
	case SISTM:
		return "sistm"
	default:
		return "invalid"
	}
}

// ParseSystem maps a name to a System.
func ParseSystem(name string) (System, error) {
	for _, s := range []System{LSA, LSANoReadSets, LSAFast, CSTM, CSTMPlausible, CSTMPlausibleBlock, CSTMMulti, CSTMComb, SSTM, ZSTM, SISTM} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("conformance: unknown system %q", name)
}

// Config parameterizes one fuzz run.
type Config struct {
	System      System
	Threads     int   // worker goroutines (default 4)
	TxPerThread int   // transactions each worker commits (default 50)
	Objects     int   // object universe size (default 6)
	LongEvery   int   // every n-th transaction is long (0: never; ZSTM default 10)
	Seed        int64 // randomness seed
	// Yield inserts a scheduling point before every transactional
	// operation. On a single CPU, goroutines otherwise run whole short
	// transactions without preemption, so commits almost never interleave
	// with a transaction's reads and the snapshot-extension / validation
	// machinery sits idle; yielding forces op-granularity interleavings,
	// which is what the commit-log cross-check needs to bite.
	Yield bool
}

func (c *Config) defaults() {
	if c.Threads < 1 {
		c.Threads = 4
	}
	if c.TxPerThread < 1 {
		c.TxPerThread = 50
	}
	if c.Objects < 2 {
		c.Objects = 6
	}
	if c.LongEvery == 0 && c.System == ZSTM {
		c.LongEvery = 10
	}
}

// Check runs the workload and verifies the system's advertised criterion.
// It returns the history size checked and the first violation found.
func Check(cfg Config) (int, error) {
	hist, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	if err := checkHistory(cfg.System, hist); err != nil {
		return len(hist.Txs), err
	}
	return len(hist.Txs), nil
}

// CheckHistory verifies one committed history against the system's
// advertised criterion. Exposed so cmd/stmcheck can dump failing
// histories before reporting.
func CheckHistory(sys System, hist *checker.History) error {
	return checkHistory(sys, hist)
}

// checkHistory verifies one committed history against the system's
// advertised criterion.
func checkHistory(sys System, hist *checker.History) error {
	var res checker.Result
	switch sys {
	case LSA, LSANoReadSets, LSAFast:
		res = checker.Linearizable(hist)
	case CSTM, CSTMPlausible, CSTMPlausibleBlock, CSTMMulti, CSTMComb:
		res = checker.CausallySerializable(hist)
	case SSTM:
		res = checker.Serializable(hist)
	case ZSTM:
		if res = checker.Serializable(hist); res.Ok {
			res = checker.ZLinearizable(hist)
		}
	case SISTM:
		res = checker.SnapshotIsolated(hist)
	default:
		return fmt.Errorf("conformance: unknown system %d", sys)
	}
	if !res.Ok {
		return fmt.Errorf("conformance: %s: %s", sys, res.Reason)
	}
	return nil
}

// Run executes the workload and returns the committed history.
func Run(cfg Config) (*checker.History, error) {
	cfg.defaults()
	d, err := newDriver(cfg)
	if err != nil {
		return nil, err
	}

	var (
		clockCtr atomic.Int64
		idCtr    atomic.Uint64
		valCtr   atomic.Uint64
		mu       sync.Mutex
		txs      []committedTx
		firstErr atomic.Pointer[error]
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, &err)
	}

	var wg sync.WaitGroup
	for p := 0; p < cfg.Threads; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
			for n := 0; n < cfg.TxPerThread; n++ {
				long := cfg.LongEvery > 0 && n%cfg.LongEvery == cfg.LongEvery-1
				nops := 2 + rng.Intn(4)
				if long {
					nops = cfg.Objects
				}
				perm := rng.Perm(cfg.Objects)
				type opKind struct {
					obj   int
					write bool
				}
				ops := make([]opKind, 0, nops)
				hasWrite := false
				for i := 0; i < nops && i < len(perm); i++ {
					wr := rng.Intn(3) == 0
					if long && rng.Intn(4) != 0 {
						wr = false
					}
					hasWrite = hasWrite || wr
					ops = append(ops, opKind{obj: perm[i], write: wr})
				}
				ro := !hasWrite

				for attempt := 0; attempt < 500; attempt++ {
					start := clockCtr.Add(1)
					tx := d.begin(p, long, ro)
					rec := committedTx{thread: p, long: long, start: start,
						writes: make(map[int]any)}
					failed := false
					for _, op := range ops {
						if cfg.Yield {
							runtime.Gosched()
						}
						if op.write {
							v := fmt.Sprintf("v%d", valCtr.Add(1))
							if err := tx.write(op.obj, v); err != nil {
								failed = true
								break
							}
							rec.writes[op.obj] = v
						} else {
							v, err := tx.read(op.obj)
							if err != nil {
								failed = true
								break
							}
							if own, ok := rec.writes[op.obj]; !ok || own != v {
								rec.reads = append(rec.reads, obsRead{obj: op.obj, val: v})
							}
						}
					}
					if failed {
						tx.abort()
						continue
					}
					if err := tx.commit(); err != nil {
						if !core.IsRetryable(err) {
							fail(fmt.Errorf("non-retryable commit error: %w", err))
							return
						}
						continue
					}
					rec.end = clockCtr.Add(1)
					rec.zone = tx.zone()
					rec.id = idCtr.Add(1)
					if tr, ok := tx.(tsReporter); ok {
						rec.snapTS, rec.commitTS = tr.times()
						rec.hasTS = true
					}
					mu.Lock()
					txs = append(txs, rec)
					mu.Unlock()
					break
				}
			}
		}(p)
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}

	return reconstruct(d.chains(), txs)
}

type obsRead struct {
	obj int
	val any
}

type committedTx struct {
	id               uint64
	thread           int
	long             bool
	zone             uint64
	start, end       int64
	snapTS, commitTS uint64
	hasTS            bool
	reads            []obsRead
	writes           map[int]any
}

type chainVer struct {
	seq uint64
	val any
}

// reconstruct maps observed values back to version sequence numbers and
// builds the checker history.
func reconstruct(chains [][]chainVer, txs []committedTx) (*checker.History, error) {
	type verKey struct {
		obj int
		seq uint64
	}
	valIndex := make(map[any]verKey)
	initVal := make(map[int]any)
	for obj, ch := range chains {
		if len(ch) == 0 || ch[0].seq != 1 {
			return nil, fmt.Errorf("conformance: object %d version chain truncated", obj)
		}
		for _, cv := range ch {
			if cv.seq == 1 {
				initVal[obj] = cv.val
				continue
			}
			if _, dup := valIndex[cv.val]; dup {
				return nil, fmt.Errorf("conformance: duplicate committed value %v", cv.val)
			}
			valIndex[cv.val] = verKey{obj: obj, seq: cv.seq}
		}
	}
	hist := &checker.History{}
	for _, rec := range txs {
		tx := checker.Tx{ID: rec.id, Thread: rec.thread, Long: rec.long, Zone: rec.zone,
			Start: rec.start, End: rec.end,
			SnapTS: rec.snapTS, CommitTS: rec.commitTS, HasTS: rec.hasTS}
		for _, rd := range rec.reads {
			if initVal[rd.obj] == rd.val {
				tx.Reads = append(tx.Reads, checker.Read{Obj: uint64(rd.obj), Seq: 1})
				continue
			}
			vk, found := valIndex[rd.val]
			if !found {
				return nil, fmt.Errorf("conformance: tx %d read value %v never committed (dirty read)", rec.id, rd.val)
			}
			if vk.obj != rd.obj {
				return nil, fmt.Errorf("conformance: tx %d read value %v from object %d, belongs to %d",
					rec.id, rd.val, rd.obj, vk.obj)
			}
			tx.Reads = append(tx.Reads, checker.Read{Obj: uint64(rd.obj), Seq: vk.seq})
		}
		for obj, val := range rec.writes {
			vk, found := valIndex[val]
			if !found {
				return nil, fmt.Errorf("conformance: tx %d write value %v missing from chain (lost update)", rec.id, val)
			}
			tx.Writes = append(tx.Writes, checker.Write{Obj: uint64(obj), Seq: vk.seq})
		}
		hist.Txs = append(hist.Txs, tx)
	}
	return hist, nil
}

// --- drivers ---

type fuzzTx interface {
	read(obj int) (any, error)
	write(obj int, v any) error
	commit() error
	abort()
	zone() uint64
}

// tsReporter is implemented by drivers whose STM exposes scalar snapshot
// and commit timestamps (SI-STM); times is valid after a successful
// commit.
type tsReporter interface {
	times() (snap, commit uint64)
}

type driver interface {
	begin(thread int, long, ro bool) fuzzTx
	chains() [][]chainVer
}

func newDriver(cfg Config) (driver, error) {
	switch cfg.System {
	case LSA:
		return newLSADriver(cfg, false, false), nil
	case LSANoReadSets:
		return newLSADriver(cfg, true, false), nil
	case LSAFast:
		return newLSADriver(cfg, false, true), nil
	case CSTM:
		return newCSDriver(cfg, 0, vclock.Modulo, 1), nil
	case CSTMPlausible:
		return newCSDriver(cfg, 2, vclock.Modulo, 1), nil
	case CSTMPlausibleBlock:
		return newCSDriver(cfg, 2, vclock.Block, 1), nil
	case CSTMMulti:
		return newCSDriver(cfg, 0, vclock.Modulo, 8), nil
	case CSTMComb:
		return newCSCombDriver(cfg), nil
	case SSTM:
		return newSSDriver(cfg), nil
	case ZSTM:
		return newZDriver(cfg), nil
	case SISTM:
		return newSIDriver(cfg), nil
	default:
		return nil, fmt.Errorf("conformance: unknown system %d", cfg.System)
	}
}

// retainAll keeps every version so chains can be reconstructed.
const retainAll = 1 << 20

type lsaDriver struct {
	stm  *lsa.STM
	objs []*core.Object
	ths  []*lsa.Thread
}

func newLSADriver(cfg Config, noReadSets, fastPath bool) *lsaDriver {
	// CrossCheck: every commit-log fast-path decision re-runs the full
	// read-set walk and panics on disagreement, so each fuzz workload
	// doubles as the fast-path soundness property test.
	s := lsa.New(lsa.Config{Versions: retainAll, NoReadSets: noReadSets, ValidationFastPath: fastPath, CrossCheck: true})
	d := &lsaDriver{stm: s}
	for i := 0; i < cfg.Objects; i++ {
		d.objs = append(d.objs, s.NewObject(fmt.Sprintf("init%d", i)))
	}
	for i := 0; i < cfg.Threads; i++ {
		d.ths = append(d.ths, s.NewThread())
	}
	return d
}

func (d *lsaDriver) begin(thread int, long, ro bool) fuzzTx {
	kind := core.Short
	if long {
		kind = core.Long
	}
	return &lsaFuzzTx{d: d, tx: d.ths[thread].Begin(kind, ro)}
}

func (d *lsaDriver) chains() [][]chainVer { return coreChains(d.objs) }

func coreChains(objs []*core.Object) [][]chainVer {
	out := make([][]chainVer, len(objs))
	for i, o := range objs {
		var ch []chainVer
		for v := o.Current(); v != nil; v = v.Prev() {
			ch = append(ch, chainVer{seq: v.Seq, val: v.Value})
		}
		for a, b := 0, len(ch)-1; a < b; a, b = a+1, b-1 {
			ch[a], ch[b] = ch[b], ch[a]
		}
		out[i] = ch
	}
	return out
}

type lsaFuzzTx struct {
	d  *lsaDriver
	tx *lsa.Tx
}

func (f *lsaFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *lsaFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *lsaFuzzTx) commit() error              { return f.tx.Commit() }
func (f *lsaFuzzTx) abort()                     { f.tx.Abort() }
func (f *lsaFuzzTx) zone() uint64               { return 0 }

type csDriver struct {
	stm  *cstm.STM
	objs []*cstm.Object
	ths  []*cstm.Thread
	init []*cstm.Version
}

func newCSCombDriver(cfg Config) *csDriver {
	return csDriverFor(cfg, cstm.New(cstm.Config{Threads: cfg.Threads, Entries: 2, Comb: true, CrossCheck: true}))
}

func newCSDriver(cfg Config, entries int, mapping vclock.Mapping, versions int) *csDriver {
	return csDriverFor(cfg, cstm.New(cstm.Config{Threads: cfg.Threads, Entries: entries, Mapping: mapping, Versions: versions, CrossCheck: true}))
}

func csDriverFor(cfg Config, s *cstm.STM) *csDriver {
	d := &csDriver{stm: s}
	for i := 0; i < cfg.Objects; i++ {
		o := s.NewObject(fmt.Sprintf("init%d", i))
		d.objs = append(d.objs, o)
		d.init = append(d.init, o.Current())
	}
	for i := 0; i < cfg.Threads; i++ {
		d.ths = append(d.ths, s.NewThread())
	}
	return d
}

func (d *csDriver) begin(thread int, long, ro bool) fuzzTx {
	kind := core.Short
	if long {
		kind = core.Long
	}
	return &csFuzzTx{d: d, tx: d.ths[thread].Begin(kind, ro)}
}

func (d *csDriver) chains() [][]chainVer {
	out := make([][]chainVer, len(d.objs))
	for i := range d.objs {
		var ch []chainVer
		for v := d.init[i]; v != nil; v = v.Next() {
			ch = append(ch, chainVer{seq: v.Seq, val: v.Value})
		}
		out[i] = ch
	}
	return out
}

type csFuzzTx struct {
	d  *csDriver
	tx *cstm.Tx
}

func (f *csFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *csFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *csFuzzTx) commit() error              { return f.tx.Commit() }
func (f *csFuzzTx) abort()                     { f.tx.Abort() }
func (f *csFuzzTx) zone() uint64               { return 0 }

type ssDriver struct {
	stm  *sstm.STM
	objs []*sstm.Object
	ths  []*sstm.Thread
	init []*sstm.Version
}

func newSSDriver(cfg Config) *ssDriver {
	s := sstm.New(sstm.Config{Threads: cfg.Threads, CrossCheck: true})
	d := &ssDriver{stm: s}
	for i := 0; i < cfg.Objects; i++ {
		o := s.NewObject(fmt.Sprintf("init%d", i))
		d.objs = append(d.objs, o)
		d.init = append(d.init, o.Current())
	}
	for i := 0; i < cfg.Threads; i++ {
		d.ths = append(d.ths, s.NewThread())
	}
	return d
}

func (d *ssDriver) begin(thread int, long, ro bool) fuzzTx {
	kind := core.Short
	if long {
		kind = core.Long
	}
	return &ssFuzzTx{d: d, tx: d.ths[thread].Begin(kind, ro)}
}

func (d *ssDriver) chains() [][]chainVer {
	out := make([][]chainVer, len(d.objs))
	for i := range d.objs {
		var ch []chainVer
		for v := d.init[i]; v != nil; v = v.Next() {
			ch = append(ch, chainVer{seq: v.Seq, val: v.Value})
		}
		out[i] = ch
	}
	return out
}

type ssFuzzTx struct {
	d  *ssDriver
	tx *sstm.Tx
}

func (f *ssFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *ssFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *ssFuzzTx) commit() error              { return f.tx.Commit() }
func (f *ssFuzzTx) abort()                     { f.tx.Abort() }
func (f *ssFuzzTx) zone() uint64               { return 0 }

type siDriver struct {
	stm  *sistm.STM
	objs []*core.Object
	ths  []*sistm.Thread
}

func newSIDriver(cfg Config) *siDriver {
	s := sistm.New(sistm.Config{Versions: retainAll, CrossCheck: true})
	d := &siDriver{stm: s}
	for i := 0; i < cfg.Objects; i++ {
		d.objs = append(d.objs, s.NewObject(fmt.Sprintf("init%d", i)))
	}
	for i := 0; i < cfg.Threads; i++ {
		d.ths = append(d.ths, s.NewThread())
	}
	return d
}

func (d *siDriver) begin(thread int, long, ro bool) fuzzTx {
	kind := core.Short
	if long {
		kind = core.Long
	}
	return &siFuzzTx{d: d, tx: d.ths[thread].Begin(kind, ro)}
}

func (d *siDriver) chains() [][]chainVer { return coreChains(d.objs) }

type siFuzzTx struct {
	d  *siDriver
	tx *sistm.Tx
}

func (f *siFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *siFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *siFuzzTx) commit() error              { return f.tx.Commit() }
func (f *siFuzzTx) abort()                     { f.tx.Abort() }
func (f *siFuzzTx) zone() uint64               { return 0 }
func (f *siFuzzTx) times() (uint64, uint64)    { return f.tx.SnapshotTime(), f.tx.CommitTime() }

type zDriver struct {
	stm  *zstm.STM
	objs []*core.Object
	ths  []*zstm.Thread
}

func newZDriver(cfg Config) *zDriver {
	s := zstm.New(zstm.Config{Versions: retainAll, ZonePatience: 8, CrossCheck: true})
	d := &zDriver{stm: s}
	for i := 0; i < cfg.Objects; i++ {
		d.objs = append(d.objs, s.NewObject(fmt.Sprintf("init%d", i)))
	}
	for i := 0; i < cfg.Threads; i++ {
		d.ths = append(d.ths, s.NewThread())
	}
	return d
}

func (d *zDriver) begin(thread int, long, ro bool) fuzzTx {
	if long {
		return &zLongFuzzTx{d: d, tx: d.ths[thread].BeginLong(ro)}
	}
	return &zShortFuzzTx{d: d, tx: d.ths[thread].BeginShort(ro)}
}

func (d *zDriver) chains() [][]chainVer { return coreChains(d.objs) }

type zShortFuzzTx struct {
	d  *zDriver
	tx *zstm.ShortTx
}

func (f *zShortFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *zShortFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *zShortFuzzTx) commit() error              { return f.tx.Commit() }
func (f *zShortFuzzTx) abort()                     { f.tx.Abort() }
func (f *zShortFuzzTx) zone() uint64               { return f.tx.ZC() }

type zLongFuzzTx struct {
	d  *zDriver
	tx *zstm.LongTx
}

func (f *zLongFuzzTx) read(obj int) (any, error)  { return f.tx.Read(f.d.objs[obj]) }
func (f *zLongFuzzTx) write(obj int, v any) error { return f.tx.Write(f.d.objs[obj], v) }
func (f *zLongFuzzTx) commit() error              { return f.tx.Commit() }
func (f *zLongFuzzTx) abort()                     { f.tx.Abort() }
func (f *zLongFuzzTx) zone() uint64               { return f.tx.ZC() }
