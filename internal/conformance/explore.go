package conformance

import (
	"fmt"

	"tbtm/internal/core"
)

// Exhaustive small-scope exploration: run a scripted scenario under
// EVERY interleaving of its threads' operations and check each committed
// history against the system's criterion. The random fuzzer (Run/Check)
// samples deep schedules; Explore covers shallow ones completely, which
// is where ordering bugs like the Figure 2/3 anomalies live.
//
// Execution is sequential — one operation at a time in interleaving
// order — which is sound because every blocking path in the
// implementations is bounded (contention managers escalate after finitely
// many rounds and zone patience is finite), so a conflicting operation
// resolves to success or a retryable error without needing the enemy to
// run concurrently.

// ScriptOp is one scripted operation.
type ScriptOp struct {
	// Obj is the object index.
	Obj int
	// Write selects write (true) or read (false).
	Write bool
}

// Script is one thread's transaction: its operations in program order,
// followed by an implicit commit. Long marks the transaction long.
type Script struct {
	Long bool
	Ops  []ScriptOp
}

// ExploreResult summarizes an exhaustive exploration.
type ExploreResult struct {
	// Interleavings is the number of schedules executed.
	Interleavings int
	// Committed is the total number of committed transactions across all
	// schedules; Aborted counts transactions that failed an operation or
	// commit.
	Committed, Aborted int
}

// Explore runs every interleaving of the scripts against cfg.System and
// verifies each committed history. It returns the first violation
// encountered, identifying the offending schedule.
func Explore(cfg Config, scripts []Script) (ExploreResult, error) {
	cfg.defaults()
	total := 0
	for _, s := range scripts {
		total += len(s.Ops) + 1 // ops + commit
	}
	var res ExploreResult

	// An interleaving is a sequence over thread indices where thread i
	// appears len(scripts[i].Ops)+1 times. Enumerate by DFS.
	remaining := make([]int, len(scripts))
	for i, s := range scripts {
		remaining[i] = len(s.Ops) + 1
	}
	schedule := make([]int, 0, total)

	var dfs func() error
	dfs = func() error {
		if len(schedule) == total {
			res.Interleavings++
			committed, aborted, err := runSchedule(cfg, scripts, schedule)
			res.Committed += committed
			res.Aborted += aborted
			return err
		}
		for i := range scripts {
			if remaining[i] == 0 {
				continue
			}
			remaining[i]--
			schedule = append(schedule, i)
			if err := dfs(); err != nil {
				return err
			}
			schedule = schedule[:len(schedule)-1]
			remaining[i]++
		}
		return nil
	}
	if err := dfs(); err != nil {
		return res, err
	}
	return res, nil
}

// runSchedule executes one interleaving and checks the history.
func runSchedule(cfg Config, scripts []Script, schedule []int) (committed, aborted int, err error) {
	d, err := newDriver(cfg)
	if err != nil {
		return 0, 0, err
	}

	type state struct {
		tx     fuzzTx
		rec    committedTx
		next   int // next op index; len(ops) means commit is next
		failed bool
		done   bool
	}
	states := make([]*state, len(scripts))
	valCtr := 0
	step := 0
	var clockCtr int64
	nextClock := func() int64 { clockCtr++; return clockCtr }

	var txs []committedTx
	for _, ti := range schedule {
		step++
		st := states[ti]
		if st == nil {
			st = &state{
				tx: d.begin(ti, scripts[ti].Long, false),
				rec: committedTx{
					thread: ti, long: scripts[ti].Long, start: nextClock(),
					writes: make(map[int]any),
				},
			}
			states[ti] = st
		}
		if st.done {
			continue
		}
		script := scripts[ti]
		if st.failed {
			// Skip remaining steps; abort at the commit slot.
			if st.next >= len(script.Ops) {
				st.tx.abort()
				st.done = true
				aborted++
			} else {
				st.next++
			}
			continue
		}
		if st.next < len(script.Ops) {
			op := script.Ops[st.next]
			st.next++
			if op.Write {
				valCtr++
				v := fmt.Sprintf("x%d-%d", ti, valCtr)
				if werr := st.tx.write(op.Obj, v); werr != nil {
					if !isRetryableForExplore(werr) {
						return committed, aborted, fmt.Errorf("schedule %v step %d: non-retryable write error: %w", schedule, step, werr)
					}
					st.failed = true
					continue
				}
				st.rec.writes[op.Obj] = v
			} else {
				v, rerr := st.tx.read(op.Obj)
				if rerr != nil {
					if !isRetryableForExplore(rerr) {
						return committed, aborted, fmt.Errorf("schedule %v step %d: non-retryable read error: %w", schedule, step, rerr)
					}
					st.failed = true
					continue
				}
				if own, ok := st.rec.writes[op.Obj]; !ok || own != v {
					st.rec.reads = append(st.rec.reads, obsRead{obj: op.Obj, val: v})
				}
			}
			continue
		}
		// Commit slot.
		st.done = true
		if cerr := st.tx.commit(); cerr != nil {
			if !isRetryableForExplore(cerr) {
				return committed, aborted, fmt.Errorf("schedule %v step %d: non-retryable commit error: %w", schedule, step, cerr)
			}
			aborted++
			continue
		}
		committed++
		st.rec.end = nextClock()
		st.rec.zone = st.tx.zone()
		st.rec.id = uint64(ti + 1)
		if tr, ok := st.tx.(tsReporter); ok {
			st.rec.snapTS, st.rec.commitTS = tr.times()
			st.rec.hasTS = true
		}
		txs = append(txs, st.rec)
	}

	hist, err := reconstruct(d.chains(), txs)
	if err != nil {
		return committed, aborted, fmt.Errorf("schedule %v: %w", schedule, err)
	}
	if err := checkHistory(cfg.System, hist); err != nil {
		return committed, aborted, fmt.Errorf("schedule %v: %w", schedule, err)
	}
	return committed, aborted, nil
}

func isRetryableForExplore(err error) bool {
	return core.IsRetryable(err)
}
