package zstm

import (
	"sync"
	"sync/atomic"
	"testing"

	"tbtm/internal/core"
)

// TestLongSnapshotNeverTornRegression is the regression test for two
// torn-snapshot races found by fuzzing (always manifesting as a long
// Compute-Total observing sum+1):
//
//  1. A same-zone short could commit a write to an object in the window
//     between the long's zone stamp (RaiseZC) and the long's read of
//     o.Current(); the long then saw the short's value for this object
//     but pre-short values for objects read earlier. Fixed by tagging
//     versions with the writer's zone and skipping same-zone versions in
//     LongTx.Read.
//
//  2. A short's open-time zone check and its lock acquisition are not
//     atomic: a long could stamp and read the object in between, after
//     which the short (with a stale zone view) committed writes the long
//     had already read around. Fixed by re-validating the write-set's
//     zones while committing (ShortTx.revalidateZones), when the write
//     locks make the check race-free against the long's arbitration.
//
// The workload reproduces the trigger: back-to-back long scans over a
// wide object set with concurrent transfer shorts. Before the fixes this
// failed within a few hundred scans.
func TestLongSnapshotNeverTornRegression(t *testing.T) {
	const (
		items   = 128
		initial = int64(10)
		scans   = 1500
		movers  = 3
	)
	s := New(Config{})
	stock := make([]*core.Object, items)
	for i := range stock {
		stock[i] = s.NewObject(initial)
	}
	want := int64(items) * initial

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < movers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.NewThread()
			i := 0
			for !stop.Load() {
				i++
				src := (w*5 + i) % items
				dst := (w*11 + i*3 + 1) % items
				if src == dst {
					continue
				}
				for attempt := 0; attempt < 10000; attempt++ {
					tx := th.BeginShort(false)
					ok := func() bool {
						sv, err := tx.Read(stock[src])
						if err != nil {
							return false
						}
						dv, err := tx.Read(stock[dst])
						if err != nil {
							return false
						}
						if err := tx.Write(stock[src], sv.(int64)-1); err != nil {
							return false
						}
						return tx.Write(stock[dst], dv.(int64)+1) == nil
					}()
					if !ok {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}

	th := s.NewThread()
	for rep := 0; rep < scans; rep++ {
		for attempt := 0; ; attempt++ {
			tx := th.BeginLong(true)
			var sum int64
			failed := false
			for _, o := range stock {
				v, err := tx.Read(o)
				if err != nil {
					failed = true
					break
				}
				sum += v.(int64)
			}
			if failed {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil {
				continue
			}
			if sum != want {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("scan %d: torn long snapshot: sum = %d, want %d", rep, sum, want)
			}
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}
