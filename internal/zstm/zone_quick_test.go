package zstm

import (
	"testing"
	"testing/quick"

	"tbtm/internal/core"
)

// TestQuickZoneAlgebra drives random single-threaded scripts of long
// transactions (begin / touch objects / commit-or-abort) and checks the
// zone-counter invariants of §5.1 after every step:
//
//   - CT <= ZC always (the active interval (CT, ZC] is well-formed)
//   - committed long transactions carry strictly increasing zone numbers
//   - a committed or aborted zone is no longer reported active
//   - the thread's LZC equals the zone of its last committed transaction
func TestQuickZoneAlgebra(t *testing.T) {
	prop := func(script []uint8) bool {
		s := New(Config{})
		th := s.NewThread()
		objs := []*core.Object{s.NewObject(0), s.NewObject(1), s.NewObject(2)}
		var lastCommitted uint64
		for _, b := range script {
			tx := th.BeginLong(false)
			zone := tx.ZC()
			if zone <= s.CT() {
				return false // fresh zone must lie inside (CT, ZC]
			}
			if zone > s.ZC() {
				return false
			}
			for i := 0; i < int(b%4); i++ {
				if _, err := tx.Read(objs[i%len(objs)]); err != nil {
					return false // single-threaded longs never conflict
				}
			}
			if b%2 == 0 {
				if err := tx.Commit(); err != nil {
					return false
				}
				if zone <= lastCommitted {
					return false // commit order must follow zone order
				}
				lastCommitted = zone
				if th.LZC() != zone {
					return false
				}
				if s.CT() != zone {
					return false
				}
			} else {
				tx.Abort()
			}
			if s.zoneActive(zone) {
				return false // finished zones must be pruned
			}
			if s.CT() > s.ZC() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShortZoneStamp checks Algorithm 3's stamping rule for random
// short scripts in a quiescent system (no active longs): a short
// transaction adopts the zone of the first object it opens, which in a
// quiescent system is at most CT, and committing never moves CT.
func TestQuickShortZoneStamp(t *testing.T) {
	prop := func(script []uint8, commits []bool) bool {
		s := New(Config{})
		th := s.NewThread()
		objs := []*core.Object{s.NewObject(0), s.NewObject(1), s.NewObject(2), s.NewObject(3)}
		for i, b := range script {
			tx := th.BeginShort(false)
			first := objs[int(b)%len(objs)]
			if _, err := tx.Read(first); err != nil {
				return false
			}
			if tx.ZC() > s.CT() {
				return false // quiescent system: every zone is past
			}
			if _, err := tx.Read(objs[int(b/4)%len(objs)]); err != nil {
				return false // no active zones, crossing impossible
			}
			ctBefore := s.CT()
			if i < len(commits) && commits[i] {
				if err := tx.Commit(); err != nil {
					return false
				}
			} else {
				tx.Abort()
			}
			if s.CT() != ctBefore {
				return false // shorts never advance the long commit counter
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
