package zstm

import (
	"errors"
	"testing"

	"tbtm/internal/core"
)

// TestLongCommitPublishesToLog pins the seam between long commits and
// short-transaction snapshot extension: a long transaction ticks the
// same time base as the short-side LSA, so its write set must land in
// the same commit log. If it did not, every tick a long acquired would
// sit unpublished in the ring and shorts could never fast-extend across
// it (an unpublished slot degrades to the full walk — safe, but the
// whole point of the log is lost).
func TestLongCommitPublishesToLog(t *testing.T) {
	s := New(Config{})
	if s.LSA().Log() == nil {
		t.Fatal("commit log not armed on the default counter clock")
	}
	o1 := s.NewObject(int64(0))
	o2 := s.NewObject(int64(0))
	o3 := s.NewObject(int64(0))

	short := s.NewThread().BeginShort(false)
	if v, err := short.Read(o1); err != nil || v != int64(0) {
		t.Fatalf("short Read o1 = %v, %v", v, err)
	}

	// A long transaction commits a disjoint write: its record must be
	// readable in the log window.
	long := s.NewThread().BeginLong(false)
	if err := long.Write(o3, int64(3)); err != nil {
		t.Fatalf("long Write o3: %v", err)
	}
	if err := long.Commit(); err != nil {
		t.Fatalf("long Commit: %v", err)
	}

	// A short writer moves o2 past the reader's snapshot, forcing an
	// extension whose window spans the long's tick.
	wr := s.NewThread().BeginShort(false)
	if err := wr.Write(o2, int64(2)); err != nil {
		t.Fatalf("wr Write o2: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("wr Commit: %v", err)
	}

	if v, err := short.Read(o2); err != nil || v != int64(2) {
		t.Fatalf("short Read o2 = %v, %v", v, err)
	}
	if err := short.Commit(); err != nil {
		t.Fatalf("short Commit: %v", err)
	}
	st := s.Stats()
	if st.Short.ExtensionsFast != 1 {
		t.Fatalf("ExtensionsFast = %d, want 1 — a fallback here means the long's tick sat unpublished in the log (stats %+v)",
			st.Short.ExtensionsFast, st)
	}
}

// TestShortExtensionRejectedAcrossLongWrite: when the long's write set
// does hit the short's read footprint, the extension falls back to the
// full walk and the stale snapshot is rejected.
func TestShortExtensionRejectedAcrossLongWrite(t *testing.T) {
	s := New(Config{})
	o1, o2 := s.NewObject(int64(0)), s.NewObject(int64(0))

	short := s.NewThread().BeginShort(false)
	if v, err := short.Read(o1); err != nil || v != int64(0) {
		t.Fatalf("short Read o1 = %v, %v", v, err)
	}

	long := s.NewThread().BeginLong(false)
	if err := long.Write(o1, int64(1)); err != nil {
		t.Fatalf("long Write o1: %v", err)
	}
	if err := long.Write(o2, int64(2)); err != nil {
		t.Fatalf("long Write o2: %v", err)
	}
	if err := long.Commit(); err != nil {
		t.Fatalf("long Commit: %v", err)
	}

	if _, err := short.Read(o2); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("short Read o2 err = %v, want ErrConflict", err)
	}
	if st := s.Stats(); st.Short.ExtensionsFast != 0 {
		t.Fatalf("ExtensionsFast = %d, want 0 (stats %+v)", st.Short.ExtensionsFast, st)
	}
}
