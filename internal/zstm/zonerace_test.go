package zstm

import (
	"errors"
	"testing"

	"tbtm/internal/core"
)

// TestCrossingWaitsForLongInstalls pins the zoneActive semantics the
// crossing path relies on: a zone stays active while its owner is
// Committing — including after the commit counter has been raised to
// its zone but before its buffered writes are installed. The old
// `z <= CT → inactive` early-out let a short cross into the zone in
// that window, draw a commit time below the long's install timestamps,
// and validate a read the long was about to overwrite.
func TestCrossingWaitsForLongInstalls(t *testing.T) {
	s := New(Config{})
	long := s.NewThread().BeginLong(false)
	z := long.ZC()

	if !s.zoneActive(z) {
		t.Fatal("freshly begun long's zone not active")
	}
	// Simulate the long mid-commit: status Committing, CT already raised
	// to its zone (the real Commit does exactly this before installing).
	if !long.Meta().CASStatus(core.StatusActive, core.StatusCommitting) {
		t.Fatal("CAS to committing failed")
	}
	s.ct.Store(z)
	if !s.zoneActive(z) {
		t.Fatal("zone inactive while its owner is still committing (CT raised, installs pending)")
	}
	if !long.Meta().CASStatus(core.StatusCommitting, core.StatusCommitted) {
		t.Fatal("CAS to committed failed")
	}
	if s.zoneActive(z) {
		t.Fatal("zone still active after its owner committed")
	}
	s.unregisterZone(z)
	if s.zoneActive(z) {
		t.Fatal("unregistered zone active")
	}
}

// TestRevalidateSeesMaskedActiveZone: the per-object zone stamp is a
// CAS-max, so a later (even aborted) long masks the stamp of an
// earlier, still-active long that read the object. A short committing a
// write to such an object must still detect the masked active zone and
// abort — otherwise the active long's validation-free read is torn.
func TestRevalidateSeesMaskedActiveZone(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(int64(0))

	// L1 (low zone) reads o and stays active.
	l1 := s.NewThread().BeginLong(false)
	if v, err := l1.Read(o); err != nil || v != int64(0) {
		t.Fatalf("l1 Read = %v, %v", v, err)
	}
	// L2 (higher zone) stamps o past L1's stamp, then aborts.
	l2 := s.NewThread().BeginLong(false)
	if v, err := l2.Read(o); err != nil || v != int64(0) {
		t.Fatalf("l2 Read = %v, %v", v, err)
	}
	l2.Abort()
	if got := o.ZC(); got != l2.ZC() {
		t.Fatalf("o.ZC() = %d, want the aborted long's stamp %d (CAS-max)", got, l2.ZC())
	}

	// A short writing o sees only the dead stamp; the masked active L1
	// must still force a conflict at commit.
	sh := s.NewThread().BeginShort(false)
	if err := sh.Write(o, int64(7)); err != nil {
		t.Fatalf("short Write: %v", err)
	}
	if err := sh.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("short Commit err = %v, want ErrConflict (active zone %d masked by dead stamp %d)",
			err, l1.ZC(), l2.ZC())
	}

	// L1's snapshot is intact (its read of o was never overwritten) and
	// it commits. (A re-read of o would abort l1 by the Thomas rule —
	// the higher stamp passed it — which is the paper's intended
	// behaviour, orthogonal to this regression.)
	if err := l1.Commit(); err != nil {
		t.Fatalf("l1 Commit: %v", err)
	}
}

// TestReadOnlyFallbackRespectsZoneOrder: a read-only short labeled with
// zone z serializes after every long with zone <= z, so its
// multi-version fallback must not serve a version older than such a
// long's install — even though the scalar snapshot at ub is perfectly
// LSA-consistent (the long's versions land late on the scalar
// timeline).
func TestReadOnlyFallbackRespectsZoneOrder(t *testing.T) {
	s := New(Config{})
	a := s.NewObject(int64(10))
	c := s.NewObject(int64(20))
	d := s.NewObject(int64(30))

	long := s.NewThread().BeginLong(false)
	if _, err := long.Read(d); err != nil {
		t.Fatalf("long Read d: %v", err)
	}
	if _, err := long.Read(c); err != nil {
		t.Fatalf("long Read c: %v", err)
	}
	if err := long.Write(a, int64(11)); err != nil {
		t.Fatalf("long Write a: %v", err)
	}

	// The read-only short joins the long's zone via its first open.
	ro := s.NewThread().BeginShort(true)
	if v, err := ro.Read(d); err != nil || v != int64(30) {
		t.Fatalf("ro Read d = %v, %v", v, err)
	}
	if v, err := ro.Read(c); err != nil || v != int64(20) {
		t.Fatalf("ro Read c = %v, %v", v, err)
	}

	// A same-zone writer moves c past the reader's snapshot so the
	// upcoming extension fails and the old-version fallback kicks in.
	wr := s.NewThread().BeginShort(false)
	if err := wr.Write(c, int64(21)); err != nil {
		t.Fatalf("wr Write c: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("wr Commit: %v", err)
	}

	if err := long.Commit(); err != nil {
		t.Fatalf("long Commit: %v", err)
	}

	// Reading a now forces an extension (a changed at the long's commit
	// time), which fails on c; the fallback would serve the pre-long
	// version of a — ordering this zone-labeled reader before the long
	// it is labeled after. It must conflict instead.
	if _, err := ro.Read(a); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("ro Read a err = %v, want ErrConflict (fallback past a long install)", err)
	}
}
