package zstm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"tbtm/internal/cm"
	"tbtm/internal/core"
)

// shortAtomically retries a short transaction until it commits.
func shortAtomically(t *testing.T, th *Thread, ro bool, fn func(tx *ShortTx) error) {
	t.Helper()
	for i := 0; ; i++ {
		tx := th.BeginShort(ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return
		}
		if !core.IsRetryable(err) {
			t.Errorf("non-retryable error: %v", err)
			return
		}
		if i > 20000 {
			t.Error("short transaction did not commit after 20000 retries")
			return
		}
	}
}

// longAtomically retries a long transaction until it commits.
func longAtomically(t *testing.T, th *Thread, ro bool, fn func(tx *LongTx) error) {
	t.Helper()
	for i := 0; ; i++ {
		tx := th.BeginLong(ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return
		}
		if !core.IsRetryable(err) {
			t.Errorf("non-retryable error: %v", err)
			return
		}
		if i > 20000 {
			t.Error("long transaction did not commit after 20000 retries")
			return
		}
	}
}

func TestShortBasicReadWrite(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(int64(7))
	th := s.NewThread()
	shortAtomically(t, th, false, func(tx *ShortTx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int64)+1)
	})
	tx := th.BeginShort(true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(8) {
		t.Fatalf("value = %v, want 8", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Short.Commits != 2 {
		t.Fatalf("short commits = %d, want 2", s.Stats().Short.Commits)
	}
}

func TestLongBasicReadWrite(t *testing.T) {
	s := New(Config{})
	a, b := s.NewObject(int64(1)), s.NewObject(int64(0))
	th := s.NewThread()
	longAtomically(t, th, false, func(tx *LongTx) error {
		v, err := tx.Read(a)
		if err != nil {
			return err
		}
		return tx.Write(b, v.(int64)*10)
	})
	if s.Stats().LongCommits != 1 {
		t.Fatalf("long commits = %d", s.Stats().LongCommits)
	}
	if s.CT() == 0 {
		t.Fatal("CT not advanced by long commit")
	}
	tx := th.BeginShort(true)
	v, err := tx.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(10) {
		t.Fatalf("b = %v, want 10", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLongReadOwnWriteAndCache(t *testing.T) {
	s := New(Config{})
	a := s.NewObject(int64(5))
	tx := s.NewThread().BeginLong(false)
	v, err := tx.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("Read = %v", v)
	}
	if err := tx.Write(a, int64(6)); err != nil {
		t.Fatal(err)
	}
	v, err = tx.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(6) {
		t.Fatalf("read-own-write = %v, want 6", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLongReadOnlyRejectsWrites(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(0)
	tx := s.NewThread().BeginLong(true)
	if err := tx.Write(o, 1); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("Write in RO long = %v, want ErrReadOnly", err)
	}
	tx.Abort()
}

func TestLongUseAfterDone(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(0)
	tx := s.NewThread().BeginLong(false)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(o); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Read after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Commit after commit = %v", err)
	}
	tx.Abort() // no-op
}

func TestLongPassedByHigherZoneAborts(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(0)
	th1, th2 := s.NewThread(), s.NewThread()

	older := th1.BeginLong(true) // zc = 1
	newer := th2.BeginLong(true) // zc = 2
	if _, err := newer.Read(o); err != nil {
		t.Fatal(err)
	}
	// The older long transaction opens an object already stamped by a
	// higher zone: it was passed and must abort (Algorithm 2 line 19).
	if _, err := older.Read(o); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("passed long Read = %v, want ErrConflict", err)
	}
	if s.Stats().LongPassed == 0 {
		t.Fatal("LongPassed not counted")
	}
	if err := newer.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLongCommitOrderEnforced(t *testing.T) {
	s := New(Config{})
	th1, th2 := s.NewThread(), s.NewThread()
	older := th1.BeginLong(true) // zc = 1
	newer := th2.BeginLong(true) // zc = 2
	// Disjoint objects, so no zone-stamp conflict; but the newer long
	// commits first, setting CT = 2, so the older can no longer commit.
	if err := newer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := older.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("older commit after being passed = %v, want ErrConflict", err)
	}
	if got := s.CT(); got != 2 {
		t.Fatalf("CT = %d, want 2", got)
	}
}

func TestShortAdoptsZoneOfFirstObject(t *testing.T) {
	s := New(Config{})
	a, b := s.NewObject(0), s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(true)
	if _, err := long.Read(a); err != nil {
		t.Fatal(err)
	}
	// a is stamped with the long's zone; a short opening a first joins it.
	short := thS.BeginShort(false)
	if _, err := short.Read(a); err != nil {
		t.Fatal(err)
	}
	if short.ZC() != long.ZC() {
		t.Fatalf("short zone = %d, want %d", short.ZC(), long.ZC())
	}
	short.Abort()
	// A short opening only b (unstamped) stays in the primordial zone.
	short2 := thS.BeginShort(false)
	if _, err := short2.Read(b); err != nil {
		t.Fatal(err)
	}
	if short2.ZC() != 0 {
		t.Fatalf("short2 zone = %d, want 0", short2.ZC())
	}
	short2.Abort()
	long.Abort()
}

func TestShortCrossingActiveZoneAborts(t *testing.T) {
	s := New(Config{ZonePatience: 2})
	a, b := s.NewObject(0), s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(true)
	if _, err := long.Read(a); err != nil {
		t.Fatal(err)
	}
	// Short joins the long's zone via a, then tries to open b, which is
	// in the primordial zone while the long is still active: crossing.
	short := thS.BeginShort(false)
	if _, err := short.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := short.Read(b); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("crossing Read = %v, want ErrConflict", err)
	}
	if s.Stats().ZoneCrosses == 0 {
		t.Fatal("ZoneCrosses not counted")
	}
	long.Abort()
}

func TestShortCrossingResolvedAfterLongCommits(t *testing.T) {
	s := New(Config{ZonePatience: 5000})
	a, b := s.NewObject(0), s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(true)
	if _, err := long.Read(a); err != nil {
		t.Fatal(err)
	}
	short := thS.BeginShort(false)
	if _, err := short.Read(a); err != nil {
		t.Fatal(err)
	}
	// Commit the long in the background while the short waits on the
	// crossing; with enough patience the short proceeds at CT.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = long.Commit()
	}()
	if _, err := short.Read(b); err != nil {
		t.Fatalf("crossing after long commit = %v", err)
	}
	wg.Wait()
	if short.ZC() != s.CT() {
		t.Fatalf("short zone = %d, want CT %d", short.ZC(), s.CT())
	}
	if err := short.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ZoneWaits == 0 {
		t.Fatal("ZoneWaits not counted")
	}
}

func TestThreadCannotCrossBackwards(t *testing.T) {
	// §5.4 property 4 / Algorithm 3 line 9: a thread that committed in an
	// active long transaction's zone cannot start a transaction in an
	// older zone while the long transaction is still running.
	s := New(Config{ZonePatience: 2})
	a, b := s.NewObject(0), s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(true)
	if _, err := long.Read(a); err != nil {
		t.Fatal(err)
	}
	// Short 1 commits inside the long's zone.
	shortAtomically(t, thS, false, func(tx *ShortTx) error { return tx.Write(a, 1) })
	if thS.LZC() != long.ZC() {
		t.Fatalf("LZC = %d, want %d", thS.LZC(), long.ZC())
	}
	// Short 2 on the same thread first-opens b from the primordial zone:
	// moving to the past while the zone is active must abort.
	short2 := thS.BeginShort(false)
	if _, err := short2.Read(b); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("backwards crossing = %v, want ErrConflict", err)
	}
	// After the long commits, the same access succeeds.
	if err := long.Commit(); err != nil {
		t.Fatal(err)
	}
	shortAtomically(t, thS, false, func(tx *ShortTx) error { return tx.Write(b, 2) })
}

func TestAbortedLongDoesNotBlockZoneForever(t *testing.T) {
	// A long transaction that aborts leaves its zone stamps behind; the
	// zone registry must report the zone inactive so shorts proceed.
	s := New(Config{ZonePatience: 4})
	a, b := s.NewObject(0), s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(false)
	if _, err := long.Read(a); err != nil {
		t.Fatal(err)
	}
	long.Abort()

	// A short spanning the stamped object and a fresh one must succeed:
	// the stamping zone is dead.
	shortAtomically(t, thS, false, func(tx *ShortTx) error {
		if _, err := tx.Read(a); err != nil {
			return err
		}
		return tx.Write(b, 1)
	})
}

func TestShortUpdatesObjectAfterLongReadIt(t *testing.T) {
	// §5.5: "transfers can update an object right after the long
	// transaction has completed its read access" — the Figure 7 win.
	s := New(Config{})
	a, b := s.NewObject(int64(10)), s.NewObject(int64(20))
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(true)
	va, err := long.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := long.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	// Both objects are now in the long's zone; a short transfer touching
	// only them can commit while the long is still active.
	shortAtomically(t, thS, false, func(tx *ShortTx) error {
		if err := tx.Write(a, int64(5)); err != nil {
			return err
		}
		return tx.Write(b, int64(25))
	})
	// The long's snapshot is unaffected (it serializes before the short).
	if va.(int64)+vb.(int64) != 30 {
		t.Fatalf("long snapshot sum = %d, want 30", va.(int64)+vb.(int64))
	}
	if err := long.Commit(); err != nil {
		t.Fatalf("long commit after in-zone update = %v", err)
	}
}

func TestLongArbitratesWithActiveShortWriter(t *testing.T) {
	s := New(Config{CM: &cm.ZoneAware{ShortPatience: 4}})
	o := s.NewObject(0)
	thL, thS := s.NewThread(), s.NewThread()

	short := thS.BeginShort(false)
	if err := short.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	long := thL.BeginLong(true)
	// The long opens the short-locked object: ZoneAware aborts the short
	// after a brief grace period.
	if _, err := long.Read(o); err != nil {
		t.Fatalf("long Read vs short writer = %v", err)
	}
	if short.Meta().Status() != core.StatusAborted {
		t.Fatal("short writer not aborted by long's arbitration")
	}
	if err := long.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestShortReadBlockedByActiveLongWriter(t *testing.T) {
	// GuardLongWriters: a short must not read around an active long
	// writer (DESIGN.md §5). With a short-patience CM the short aborts.
	s := New(Config{CM: &cm.ZoneAware{ShortPatience: 2}})
	o := s.NewObject(int64(1))
	thL, thS := s.NewThread(), s.NewThread()

	long := thL.BeginLong(false)
	if err := long.Write(o, int64(2)); err != nil {
		t.Fatal(err)
	}
	short := thS.BeginShort(true)
	if _, err := short.Read(o); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("short read vs long writer = %v, want ErrAborted", err)
	}
	if err := long.Commit(); err != nil {
		t.Fatal(err)
	}
	// After the long commits the short sees its value.
	var got any
	shortAtomically(t, thS, true, func(tx *ShortTx) error {
		var err error
		got, err = tx.Read(o)
		return err
	})
	if got != int64(2) {
		t.Fatalf("value after long commit = %v, want 2", got)
	}
}

func TestConcurrentTransfersWithLongTotals(t *testing.T) {
	// The core z-linearizability property exercised end to end: transfer
	// shorts conserve the total; concurrent long Compute-Total
	// transactions (both read-only and update flavour) must always
	// observe the exact invariant sum.
	s := New(Config{})
	const accounts = 20
	const initial = int64(100)
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(initial)
	}
	totalObj := s.NewObject(int64(0))
	want := int64(accounts) * initial

	var stop atomic.Bool
	var wg sync.WaitGroup
	// 3 transfer workers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := s.NewThread()
			i := 0
			for !stop.Load() {
				i++
				from := (seed*7 + i) % accounts
				to := (seed*13 + i*3 + 1) % accounts
				if from == to {
					continue
				}
				shortAtomically(t, th, false, func(tx *ShortTx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int64)+1)
				})
			}
		}(w)
	}
	// 1 long-total worker, alternating read-only and update flavour.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := s.NewThread()
		for round := 0; round < 30; round++ {
			update := round%2 == 1
			longAtomically(t, th, !update, func(tx *LongTx) error {
				var sum int64
				for _, o := range objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					sum += v.(int64)
				}
				if sum != want {
					t.Errorf("long observed inconsistent total %d, want %d", sum, want)
				}
				if update {
					return tx.Write(totalObj, sum)
				}
				return nil
			})
		}
		stop.Store(true)
	}()
	wg.Wait()

	if got := s.Stats().LongCommits; got != 30 {
		t.Fatalf("long commits = %d, want 30", got)
	}
	// Final total still conserved.
	th := s.NewThread()
	var sum int64
	shortAtomically(t, th, false, func(tx *ShortTx) error {
		sum = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			sum += v.(int64)
		}
		return tx.Write(totalObj, sum)
	})
	if sum != want {
		t.Fatalf("final total = %d, want %d", sum, want)
	}
}

func TestStatsAndAccessors(t *testing.T) {
	s := New(Config{})
	if s.Config().ZonePatience != 64 {
		t.Fatalf("default ZonePatience = %d, want 64", s.Config().ZonePatience)
	}
	if s.LSA() == nil {
		t.Fatal("LSA() nil")
	}
	th := s.NewThread()
	if th.STM() != s {
		t.Fatal("thread backlink wrong")
	}
	long := th.BeginLong(true)
	if long.ZC() != 1 || s.ZC() != 1 {
		t.Fatalf("zone numbers: tx %d stm %d", long.ZC(), s.ZC())
	}
	if !long.ReadOnly() {
		t.Fatal("ReadOnly lost")
	}
	long.Abort()
	if s.Stats().LongAborts != 1 {
		t.Fatalf("LongAborts = %d", s.Stats().LongAborts)
	}
	// Aborting twice is a no-op.
	long.Abort()
	if s.Stats().LongAborts != 1 {
		t.Fatalf("double abort counted: %d", s.Stats().LongAborts)
	}
}

func TestZoneRegistryPruned(t *testing.T) {
	s := New(Config{})
	th := s.NewThread()
	for i := 0; i < 10; i++ {
		long := th.BeginLong(true)
		if i%2 == 0 {
			if err := long.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			long.Abort()
		}
	}
	s.mu.Lock()
	n := len(s.zones)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("zone registry holds %d stale entries", n)
	}
}
