package zstm

import (
	"tbtm/internal/cm"
	"tbtm/internal/core"
)

// LongTx is a long transaction (Algorithm 2). Long transactions maintain
// no validated read set and no commit-time validation (§6): consistency
// follows from the strictly monotonic per-object zone stamps raised at
// open, the arbitration with any active writer at open, and the
// commit-order check against CT.
//
// The paper assumes each object is opened exactly once (§5.1); Algorithm
// 2 would abort on re-open (o.zc is no longer < T.zc). We tolerate
// re-opens instead: the first-open values are recorded in an append-only
// log, and a re-open — detected for free because o.zc == T.zc happens
// only for objects this transaction opened (zone numbers are unique) —
// is served from the log with a linear scan. The common path therefore
// stays a plain append, preserving the paper's "no read set" performance
// claim, while re-reads remain snapshot-consistent.
type LongTx struct {
	th   *Thread
	meta *core.TxMeta
	ro   bool
	zc   uint64

	reads  []longRead
	writes []longWrite
	windex core.SmallIndex
	done   bool
}

type longRead struct {
	obj *core.Object
	val any
	// seq is the Seq of the version the read returned, recorded while
	// the version was protected by the transaction's epoch pin so the
	// blocking layer can watch the object without retaining the (possibly
	// recycled) version node.
	seq uint64
}

type longWrite struct {
	obj *core.Object
	val any
}

// ZC returns the transaction's reserved zone number T.zc.
func (tx *LongTx) ZC() uint64 { return tx.zc }

// Meta exposes the shared descriptor.
func (tx *LongTx) Meta() *core.TxMeta { return tx.meta }

// Done reports whether the transaction has finished and its descriptor
// may be recycled. A nil receiver counts as done.
func (tx *LongTx) Done() bool { return tx == nil || tx.done }

// ReadOnly reports whether the transaction was declared read-only.
func (tx *LongTx) ReadOnly() bool { return tx.ro }

// finish marks the transaction done and leaves the epoch critical
// section entered by BeginLong.
func (tx *LongTx) finish() {
	tx.done = true
	tx.th.inner.Recycler().Unpin()
}

// fail aborts the transaction and returns err.
func (tx *LongTx) fail(err error) error {
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.th.stm.unregisterZone(tx.zc)
	tx.finish()
	tx.th.shard.Inc(cntLongAborts)
	return err
}

// open implements Algorithm 2 lines 5-22: raise the object's zone stamp
// (abort if a higher zone already passed us), arbitrate with any active
// writer, and for writes acquire ownership. reopened reports that this
// transaction had already opened o (o.zc equals our unique zone number).
//
// Ordering is load-bearing for write opens: ownership is acquired
// BEFORE the zone stamp is raised. The stamp tells same-zone shorts "o
// belongs to my zone, read freely", while the guard that keeps a short
// from reading around an active long writer (lsa GuardLongWriters) is
// the writer word — stamping first opened a window (stamp published,
// lock not yet held) in which a same-zone short slipped past both
// checks, read the value this transaction was about to overwrite, and
// committed a validation the long never re-checks: a serializability
// cycle (regression: the hot conformance workloads and
// TestCrossingWaitsForLongInstalls). Read opens keep stamp-first — a
// read-opened object is never overwritten by this transaction, so a
// short reading it behind the stamp is safe. A write open of an object
// this transaction previously read-opened (the stamp is already out)
// retains a residual window; see Write.
func (tx *LongTx) open(o *core.Object, write bool) (reopened bool, err error) {
	if tx.done {
		return false, core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return false, tx.fail(core.ErrAborted)
	}
	tx.meta.Prio.Add(1)
	if o.ZC() == tx.zc {
		reopened = true
	} else if !write && !o.RaiseZC(tx.zc) {
		// A long transaction with a higher zone number beat us to this
		// object (Algorithm 2 lines 19-20).
		tx.th.shard.Inc(cntLongPassed)
		return false, tx.fail(core.ErrConflict)
	} else if write && o.ZC() > tx.zc {
		// Same rule for write opens, checked non-mutatingly before the
		// lock loop: the stamp is a CAS-max, so a higher stamp means we
		// can never own this object — abort now instead of arbitrating
		// with (and possibly killing) the object's innocent writer only
		// for stampOwned to discover the pass after winning the lock.
		tx.th.shard.Inc(cntLongPassed)
		return false, tx.fail(core.ErrConflict)
	}
	for round := 0; ; round++ {
		if tx.meta.Status() == core.StatusAborted {
			return reopened, tx.fail(core.ErrAborted)
		}
		w := o.Writer()
		switch {
		case w == nil:
			if !write {
				return reopened, nil
			}
			if o.CASWriter(nil, tx.meta) {
				return reopened, tx.stampOwned(o)
			}
		case w == tx.meta:
			return reopened, nil
		case w.Status().Terminal():
			if !write {
				// Terminal leftover lock: a committed writer has already
				// installed its versions; an aborted one never will.
				return reopened, nil
			}
			if o.CASWriter(w, tx.meta) {
				return reopened, tx.stampOwned(o)
			}
		default:
			// Active or committing writer: arbitrate (Algorithm 2 lines
			// 8-11). Resolve returns once the enemy is terminal, or
			// aborts us.
			if !cm.Resolve(tx.th.stm.cfg.CM, tx.meta, w) {
				return reopened, tx.fail(core.ErrAborted)
			}
		}
		cm.Backoff(round)
	}
}

// stampOwned raises o's zone stamp with write ownership already held
// (the write-open order above). On failure — a higher zone passed us
// between the lock and the stamp — the ownership just acquired is
// released before aborting, so the passing transaction is not blocked
// by a dead lock holder longer than a stabilize round.
func (tx *LongTx) stampOwned(o *core.Object) error {
	if o.ZC() == tx.zc || o.RaiseZC(tx.zc) {
		return nil
	}
	o.ReleaseWriter(tx.meta)
	tx.th.shard.Inc(cntLongPassed)
	return tx.fail(core.ErrConflict)
}

// Read opens o in read mode and returns its current committed value. The
// returned version cannot change under us: updates create new versions,
// and concurrent writers were arbitrated with at open (§5.1). A re-read
// is served from the first-open log so the transaction's snapshot stays
// consistent even if a same-zone short transaction updated the object in
// the meantime.
func (tx *LongTx) Read(o *core.Object) (any, error) {
	if tx.done {
		return nil, core.ErrTxDone
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		return tx.writes[i].val, nil
	}
	reopened, err := tx.open(o, false)
	if err != nil {
		return nil, err
	}
	if reopened {
		for _, r := range tx.reads {
			if r.obj == o {
				return r.val, nil
			}
		}
		// Opened before but never read (write-opened objects are caught
		// by windex above; this covers a read after an arbitration-only
		// open): fall through to the current version.
	}
	// Skip versions installed by short transactions of our own zone: a
	// same-zone short may legally commit between our zone stamp and this
	// read (it saw o.zc == T.zc and passed its zone check), but it
	// serializes after us, so observing its write here would tear our
	// snapshot against objects read earlier. The pre-stamp version is the
	// newest version not tagged with our zone.
	v := o.Current()
	for v != nil && v.Zone == tx.zc {
		v = v.Prev()
	}
	if v == nil {
		// The retained chain holds only same-zone versions: the pre-stamp
		// version was truncated. Abort and retry with a fresh zone.
		return nil, tx.fail(core.ErrSnapshotUnavailable)
	}
	tx.reads = append(tx.reads, longRead{obj: o, val: v.Value, seq: v.Seq})
	return v.Value, nil
}

// Watches appends the transaction's read footprint to buf as (object,
// read-version Seq) pairs and returns the extended slice. It must be
// called before the descriptor is recycled by the thread's next Begin.
func (tx *LongTx) Watches(buf []core.Watch) []core.Watch {
	for i := range tx.reads {
		r := &tx.reads[i]
		buf = append(buf, core.Watch{ID: r.obj.ID(), Seq: r.seq, Obj: r.obj})
	}
	return buf
}

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time, re-entering the thread's epoch critical
// section for the duration of the check (see lsa.Tx.WatchesStale).
func (tx *LongTx) WatchesStale(ws []core.Watch) bool {
	rec := tx.th.inner.Recycler()
	rec.Pin()
	defer rec.Unpin()
	return core.StaleScalar(ws)
}

// Write opens o in write mode and buffers the update (the "private copy"
// of Algorithm 2 line 14; values are immutable so buffering the new value
// is equivalent to duplicating the object).
//
// Caveat (inherited from the paper's §5.1 exactly-once-open model): a
// write of an object this transaction previously READ-opened upgrades
// an already-published zone stamp, so a same-zone short may have read
// the object between the read-open and this write's lock acquisition —
// a window the stamp-after-lock ordering of first-time write opens
// cannot close. Long transactions should write-open read-modify-write
// objects directly (Write then Read is served from the private copy);
// the conformance workloads and the paper's algorithms open each
// object exactly once.
func (tx *LongTx) Write(o *core.Object, val any) error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.ro {
		return core.ErrReadOnly
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		tx.writes[i].val = val
		return nil
	}
	if _, err := tx.open(o, true); err != nil {
		return err
	}
	tx.windex.Put(o.ID(), len(tx.writes))
	tx.writes = append(tx.writes, longWrite{obj: o, val: val})
	return nil
}

// Commit implements Algorithm 2 lines 23-31: the transaction commits iff
// its zone number is greater than the commit counter, which it then
// raises to its own zone. No validation is needed — any conflict with
// another long transaction was detected through the zone stamps, and
// short transactions cannot have crossed us (§5.4). After the commit
// counter is raised the commit is irrevocable; buffered writes are then
// installed at a fresh scalar commit time so that short transactions
// validate against them as usual.
func (tx *LongTx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	s := tx.th.stm
	if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitting) {
		return tx.fail(core.ErrAborted)
	}
	for {
		cur := s.ct.Load()
		if tx.zc <= cur {
			// A long transaction with a higher zone number committed
			// first: we were passed (Algorithm 2 lines 28-29).
			tx.meta.CASStatus(core.StatusCommitting, core.StatusAborted)
			tx.releaseLocks()
			s.unregisterZone(tx.zc)
			tx.finish()
			tx.th.shard.Inc(cntLongAborts)
			tx.th.shard.Inc(cntLongPassed)
			return core.ErrConflict
		}
		if s.ct.CompareAndSwap(cur, tx.zc) {
			break
		}
	}
	if len(tx.writes) > 0 {
		ct := s.inner.Clock().CommitTime(tx.th.inner.ID())
		tx.meta.CommitTick = ct
		// Long transactions tick the same time base as the short-side LSA,
		// so their write sets must reach the same commit log: a short
		// transaction fast-extending across ct would otherwise never see
		// these installs. Published before installing, like lsa.Tx.Commit.
		if log := s.inner.Log(); log != nil {
			ids := tx.th.idbuf[:0]
			for i := range tx.writes {
				ids = append(ids, tx.writes[i].obj.ID())
			}
			tx.th.idbuf = ids
			log.Publish(ct, ids)
		}
		rec := tx.th.inner.Recycler()
		for _, w := range tx.writes {
			// The LongZoneTag marks these versions as long-installed: a
			// short labeled with this zone (or a later one) must never
			// read around them via the old-version fallback, while the
			// same-zone-skip in LongTx.Read (which matches the plain zone
			// number) keeps ignoring only short installs.
			w.obj.InstallRecycled(rec, w.val, ct, tx.meta.ID, tx.zc|core.LongZoneTag)
		}
	}
	tx.meta.CASStatus(core.StatusCommitting, core.StatusCommitted)
	tx.releaseLocks()
	s.unregisterZone(tx.zc)
	tx.finish()
	if lot := s.cfg.Lot; lot != nil {
		for _, w := range tx.writes {
			lot.Wake(w.obj.ID())
		}
	}
	tx.th.commitZone(tx.zc) // LZC_p ← T.zc (Algorithm 2 line 27)
	tx.th.shard.Inc(cntLongCommits)
	return nil
}

// Abort aborts the transaction explicitly; it is a no-op on a finished
// transaction.
func (tx *LongTx) Abort() {
	if tx.done {
		return
	}
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.th.stm.unregisterZone(tx.zc)
	tx.finish()
	tx.th.shard.Inc(cntLongAborts)
}

func (tx *LongTx) releaseLocks() {
	for _, w := range tx.writes {
		w.obj.ReleaseWriter(tx.meta)
	}
}
