package zstm

import (
	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/lsa"
)

// ShortTx is a short transaction: the LSA protocol plus the zone-crossing
// detection of Algorithm 3, performed entirely at open time (§5.2: "the
// decision of whether a transaction can commit is performed by the
// underlying LSA algorithm").
type ShortTx struct {
	th      *Thread
	inner   *lsa.Tx
	zc      uint64
	zoneSet bool
	wobjs   []*core.Object // write-opened objects, re-validated at commit
	// check caches the revalidateZones method value so installing the
	// commit hook does not allocate a closure on every first write; the
	// bound receiver is this (recycled, hence stable) descriptor.
	check func() error
}

// ZC returns the transaction's zone label (0 until the first open).
func (tx *ShortTx) ZC() uint64 { return tx.zc }

// Meta exposes the shared descriptor.
func (tx *ShortTx) Meta() *core.TxMeta { return tx.inner.Meta() }

// Done reports whether the transaction has finished and its descriptor
// may be recycled. A nil receiver counts as done.
func (tx *ShortTx) Done() bool { return tx == nil || tx.inner.Done() }

// Watches appends the read footprint of the underlying LSA transaction
// to buf (see lsa.Tx.Watches).
func (tx *ShortTx) Watches(buf []core.Watch) []core.Watch { return tx.inner.Watches(buf) }

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time (see lsa.Tx.WatchesStale).
func (tx *ShortTx) WatchesStale(ws []core.Watch) bool { return tx.inner.WatchesStale(ws) }

// Read opens o in read mode and returns the transaction's view of it.
func (tx *ShortTx) Read(o *core.Object) (any, error) {
	if err := tx.zoneCheck(o); err != nil {
		return nil, err
	}
	tx.inner.SetZone(tx.zc)
	return tx.inner.Read(o)
}

// Write opens o in write mode and buffers the update.
func (tx *ShortTx) Write(o *core.Object, val any) error {
	if err := tx.zoneCheck(o); err != nil {
		return err
	}
	tx.inner.SetZone(tx.zc)
	if err := tx.inner.Write(o, val); err != nil {
		return err
	}
	if len(tx.wobjs) == 0 {
		if tx.check == nil {
			tx.check = tx.revalidateZones
		}
		tx.inner.SetCommitCheck(tx.check)
	}
	tx.wobjs = append(tx.wobjs, o)
	return nil
}

// revalidateZones runs while the transaction is committing (write locks
// held): if a long transaction stamped one of our written objects after
// our open-time zone check — the check and the lock acquisition are not
// atomic — and that zone is still active, the long may have read the
// object's pre-write value without arbitrating with us, so committing our
// write would tear its snapshot. Abort instead; once we are committing,
// any later stamp arbitrates against our lock and observes our installs
// atomically.
func (tx *ShortTx) revalidateZones() error {
	// The object zone stamps are CAS-max registers: each shows only the
	// HIGHEST zone that ever opened the object. An active long whose
	// stamp was overwritten by a later (possibly already aborted) long
	// is invisible in o.ZC() but still depends on the object — it
	// read-stamped it and reads around our buffered write — so the
	// check must cover every still-active zone at or below the stamp,
	// not just the stamp's own zone (regression:
	// TestRevalidateSeesMaskedActiveZone and the hot conformance
	// workloads). The check never relates an active zone to a specific
	// object, so one registry scan at the maximum stamp over the write
	// set is equivalent to a scan per object.
	var maxZC uint64
	for _, o := range tx.wobjs {
		if z := o.ZC(); z > maxZC {
			maxZC = z
		}
	}
	if tx.th.stm.activeZoneAtOrBelow(maxZC, tx.zc) {
		tx.th.shard.Inc(cntZoneCrosses)
		return core.ErrConflict
	}
	return nil
}

// Commit delegates to LSA and, on success, records the transaction's zone
// in the thread's LZC (Algorithm 3 lines 27-29).
func (tx *ShortTx) Commit() error {
	if err := tx.inner.Commit(); err != nil {
		return err
	}
	if tx.zoneSet {
		tx.th.commitZone(tx.zc)
	}
	return nil
}

// Abort aborts the transaction.
func (tx *ShortTx) Abort() { tx.inner.Abort() }

// zoneCheck implements Algorithm 3 lines 6-22 before each open.
func (tx *ShortTx) zoneCheck(o *core.Object) error {
	s := tx.th.stm
	if !tx.zoneSet {
		// First open determines the zone (§5.2).
		ozc := o.ZC()
		if ozc < tx.th.lzc {
			if s.zoneActive(tx.th.lzc) {
				// Cannot move to a zone in the past of the thread's last
				// commit while that zone's long transaction is active
				// (Algorithm 3 line 9): the serialization order must
				// observe the thread's program order.
				tx.th.shard.Inc(cntZoneCrosses)
				tx.inner.Abort()
				return core.ErrConflict
			}
			tx.zc = s.ct.Load()
		} else {
			tx.zc = ozc
		}
		tx.zoneSet = true
		return nil
	}

	if tx.zc == o.ZC() {
		return nil
	}
	// Crossing zones (Algorithm 3 lines 16-22): permitted only once both
	// zones are in the past. The contention manager's role here is played
	// by a bounded delay — the blocking long transaction is given time to
	// commit — followed by an abort.
	waited := false
	for round := 0; ; round++ {
		ozc := o.ZC()
		if tx.zc == ozc {
			// The object joined our zone meanwhile (our zone's long
			// transaction opened it).
			return nil
		}
		if !s.zoneActive(tx.zc) && !s.zoneActive(ozc) {
			tx.zc = s.ct.Load()
			if waited {
				tx.th.shard.Inc(cntZoneWaits)
			}
			return nil
		}
		if round >= s.cfg.ZonePatience {
			tx.th.shard.Inc(cntZoneCrosses)
			tx.inner.Abort()
			return core.ErrConflict
		}
		waited = true
		// Cap the wait per round: the blocking long transaction usually
		// commits soon, and a long stale sleep would idle the processor
		// past that commit (unlike write conflicts, crossings resolve
		// globally via CT, so frequent re-checks are cheap).
		cm.Backoff(min(round, 5))
	}
}
