// Package zstm implements Z-STM, the z-linearizable transactional memory
// of paper §5 (Algorithms 2 and 3).
//
// Long transactions reserve a unique logical time T.zc from a global zone
// counter ZC and must commit in zc order, checked against a global commit
// counter CT; conflicts between long transactions are resolved through a
// per-object zone stamp o.zc raised on open (optimistic timestamp
// ordering à la Thomas [11]). Short transactions run on LSA [8] and carry
// a zone label: the first object opened determines the zone, and opening
// an object from a different zone while either zone is still active is a
// crossing, resolved by delaying and finally aborting the short
// transaction. A per-thread LZC value prevents a thread from crossing an
// active long transaction backwards, which makes the serialization order
// observe per-thread program order (§5.4 property 4).
//
// The resulting guarantees are: the set of long transactions is
// linearizable; the short transactions between two long transactions are
// linearizable; the set of all transactions is serializable; and the
// serialization order observes per-thread order — z-linearizability.
package zstm

import (
	"sync"
	"sync/atomic"

	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/lsa"
	"tbtm/internal/stats"
)

// Config parameterizes a Z-STM instance.
type Config struct {
	// Clock is the scalar time base for the short-transaction LSA. Nil
	// means a fresh shared counter.
	Clock clock.TimeBase
	// CM arbitrates conflicts. Nil means the zone-aware default policy.
	CM cm.Manager
	// Versions is the per-object retention depth for LSA (default 8).
	Versions int
	// NoReadSets enables the read-only fast path for short transactions.
	NoReadSets bool
	// ZonePatience bounds how many backoff rounds a short transaction
	// waits on a zone crossing before aborting (default 64). The wait
	// gives the blocking long transaction time to commit, after which the
	// short proceeds in the new zone (Algorithm 3 line 20).
	ZonePatience int
	// ValidationFastPath enables the RSTM-style commit fast path for
	// short transactions (see lsa.Config.ValidationFastPath).
	ValidationFastPath bool
	// Lot, when non-nil, receives a wakeup for every object an update
	// commit installs a version into — short transactions publish through
	// the inner LSA, long transactions from their own commit path. Nil
	// keeps both commit paths wake-free.
	Lot *core.ParkingLot
	// CommitLog sizes the commit log of the inner LSA (see
	// lsa.Config.CommitLog): 0 default-on, >0 explicit size, <0 off.
	// Long transactions publish their write sets into the same log.
	CommitLog int
	// CrossCheck forwards lsa.Config.CrossCheck to the inner LSA.
	CrossCheck bool
}

// Stats is a snapshot of a Z-STM instance's cumulative counters. Short
// transaction commit/abort counts are those of the underlying LSA.
type Stats struct {
	Short       lsa.Stats
	LongCommits uint64 // long transactions committed
	LongAborts  uint64 // long transactions aborted
	LongPassed  uint64 // long aborts because a higher zone passed them
	ZoneCrosses uint64 // short aborts due to zone crossing
	ZoneWaits   uint64 // zone crossings resolved by waiting
}

// STM is a Z-STM instance.
type STM struct {
	cfg   Config
	inner *lsa.STM

	// zc is the zone counter ZC; ct is the commit counter CT. All active
	// long transactions have zone numbers in (CT, ZC].
	zc atomic.Uint64
	ct atomic.Uint64

	// zones maps an active long transaction's zone number to its
	// descriptor so that zones whose owner aborted are not treated as
	// active forever (liveness; see DESIGN.md §5). Entries are removed
	// when the owner finishes.
	mu    sync.Mutex
	zones map[uint64]*core.TxMeta

	// shards holds the per-thread counter shards for the zone-layer
	// counters; the short-transaction counters live in the inner LSA.
	shards stats.Set
}

// Counter slots within a thread's stats shard (zone layer only).
const (
	cntLongCommits = iota
	cntLongAborts
	cntLongPassed
	cntZoneCrosses
	cntZoneWaits
)

// New returns a Z-STM instance, applying defaults for zero fields.
func New(cfg Config) *STM {
	if cfg.CM == nil {
		cfg.CM = &cm.ZoneAware{}
	}
	if cfg.ZonePatience <= 0 {
		cfg.ZonePatience = 64
	}
	inner := lsa.New(lsa.Config{
		Clock:              cfg.Clock,
		CM:                 cfg.CM,
		Versions:           cfg.Versions,
		NoReadSets:         cfg.NoReadSets,
		GuardLongWriters:   true,
		ValidationFastPath: cfg.ValidationFastPath,
		Lot:                cfg.Lot,
		CommitLog:          cfg.CommitLog,
		CrossCheck:         cfg.CrossCheck,
	})
	return &STM{cfg: cfg, inner: inner, zones: make(map[uint64]*core.TxMeta)}
}

// Config returns the effective configuration.
func (s *STM) Config() Config { return s.cfg }

// LSA exposes the short-transaction engine (tests, harness).
func (s *STM) LSA() *lsa.STM { return s.inner }

// CT returns the current commit counter value.
func (s *STM) CT() uint64 { return s.ct.Load() }

// ZC returns the current zone counter value.
func (s *STM) ZC() uint64 { return s.zc.Load() }

// NewObject allocates a transactional object.
func (s *STM) NewObject(initial any) *core.Object { return s.inner.NewObject(initial) }

// NewThread returns a per-goroutine handle carrying LZC_p.
func (s *STM) NewThread() *Thread {
	return &Thread{stm: s, inner: s.inner.NewThread(), shard: s.shards.NewShard()}
}

// Stats returns a snapshot of the cumulative counters, aggregated across
// the per-thread shards.
func (s *STM) Stats() Stats {
	c := s.shards.Snapshot()
	return Stats{
		Short:       s.inner.Stats(),
		LongCommits: c[cntLongCommits],
		LongAborts:  c[cntLongAborts],
		LongPassed:  c[cntLongPassed],
		ZoneCrosses: c[cntZoneCrosses],
		ZoneWaits:   c[cntZoneWaits],
	}
}

func (s *STM) registerZone(z uint64, m *core.TxMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z] = m
}

func (s *STM) unregisterZone(z uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, z)
}

// zoneActive reports whether zone z might still be defined by a running
// long transaction. Zone 0 is the primordial zone and never active. A
// zone is active while its registered owner is Active or Committing —
// deliberately including the window after the owner won the commit-order
// race (CT raised to z) but before its buffered writes are installed.
// Treating the zone as settled in that window was a serializability
// hole: a short transaction holding a stale invisible read of an object
// the long was about to overwrite could cross into the zone the moment
// CT moved, draw a commit time below the long's install timestamps, and
// validate successfully — ordering itself before the long on the object
// it read and after the long on the objects it wrote, a cycle the
// validation-free long can never detect (regression:
// TestCrossingWaitsForLongInstalls and the hot conformance workloads).
// A zone with no registered owner has finished: at or below CT it
// committed, above CT it aborted (owners unregister only after CT is
// updated on commit, so a missing entry above CT means an abort).
func (s *STM) zoneActive(z uint64) bool {
	if z == 0 {
		return false
	}
	s.mu.Lock()
	m := s.zones[z]
	s.mu.Unlock()
	if m == nil {
		return false
	}
	st := m.Status()
	return st == core.StatusActive || st == core.StatusCommitting
}

// activeZoneAtOrBelow reports whether any long transaction with a zone
// number at or below limit — other than except, the caller's own zone —
// is still Active or Committing. Any such long may have opened (and
// stamped) the object whose current stamp is limit before a higher zone
// re-stamped it; only the registry remembers it. The registry holds one
// entry per in-flight long, so the scan is short.
func (s *STM) activeZoneAtOrBelow(limit, except uint64) bool {
	if limit == 0 {
		// Zone numbers start at 1: an unstamped object (the common case
		// in workloads without long transactions) can never hide a
		// masked zone, and skipping the registry mutex here keeps short
		// update commits lock-free on that path.
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for z, m := range s.zones {
		if z == except || z > limit {
			continue
		}
		if st := m.Status(); st == core.StatusActive || st == core.StatusCommitting {
			return true
		}
	}
	return false
}

// Thread is a per-goroutine handle. It carries LZC_p, the zone of the
// thread's most recently committed transaction (Algorithms 2 and 3),
// plus a stats shard and reusable short/long transaction descriptors so
// the begin→commit hot paths perform no descriptor allocation.
type Thread struct {
	stm   *STM
	inner *lsa.Thread
	lzc   uint64
	shard *stats.Shard
	stx   ShortTx  // reusable short descriptor, recycled by BeginShort
	ltx   LongTx   // reusable long descriptor, recycled by BeginLong
	idbuf []uint64 // reusable write-set ID buffer for long commit-log publication
}

// ID returns the thread's index in the time base.
func (th *Thread) ID() int { return th.inner.ID() }

// STM returns the owning instance.
func (th *Thread) STM() *STM { return th.stm }

// LZC returns the thread's last-committed-zone value (tests).
func (th *Thread) LZC() uint64 { return th.lzc }

func (th *Thread) commitZone(z uint64) {
	if z > th.lzc {
		th.lzc = z
	}
}

// BeginShort starts a short transaction (Algorithm 3) on the LSA engine.
//
// BeginShort may recycle the thread's previous short descriptor: a
// *ShortTx is invalid after Commit or Abort and must not be retained
// across the next BeginShort on the same thread.
func (th *Thread) BeginShort(readOnly bool) *ShortTx {
	tx := &th.stx
	if !tx.inner.Done() {
		tx = new(ShortTx)
	}
	tx.th = th
	tx.inner = th.inner.Begin(core.Short, readOnly)
	tx.zc = 0
	tx.zoneSet = false
	clear(tx.wobjs) // release the previous transaction's objects
	tx.wobjs = tx.wobjs[:0]
	return tx
}

// BeginLong starts a long transaction (Algorithm 2), reserving the next
// zone number.
//
// BeginLong may recycle the thread's previous long descriptor: a *LongTx
// is invalid after Commit or Abort and must not be retained across the
// next BeginLong on the same thread. The meta comes from the thread's
// epoch-gated pool — it is published through the zone registry and
// object writer words, so the previous transaction's meta is retired
// here and reused only after its reclamation grace period.
func (th *Thread) BeginLong(readOnly bool) *LongTx {
	tx := &th.ltx
	if tx.meta != nil && !tx.done {
		tx = new(LongTx)
	}
	rec := th.inner.Recycler()
	rec.Pin() // read-side critical section: BeginLong → finish
	if tx.meta != nil {
		rec.RetireMeta(tx.meta) // previous long finished and unregistered
	}
	tx.th = th
	tx.meta = rec.NewMeta(core.Long, th.inner.ID())
	tx.ro = readOnly
	tx.zc = th.stm.zc.Add(1)
	clear(tx.reads) // release the previous transaction's objects/values
	clear(tx.writes)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex.Reset()
	tx.done = false
	// registerZone takes stm.mu while this thread is pinned. The
	// critical section is a bounded map insert (no I/O, no waits), so
	// it cannot stall epoch advancement for longer than a map write;
	// registration cannot move before Pin because the meta comes from
	// the epoch-gated recycler.
	th.stm.registerZone(tx.zc, tx.meta) //tbtm:ignore epochpin — bounded map-insert critical section under pin
	return tx
}
