package zstm

import (
	"fmt"
	"testing"

	"tbtm/internal/core"
)

func BenchmarkShortTransfer(b *testing.B) {
	s := New(Config{})
	oa, ob := s.NewObject(int64(100)), s.NewObject(int64(100))
	th := s.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.BeginShort(false)
		av, err := tx.Read(oa)
		if err != nil {
			b.Fatal(err)
		}
		bv, err := tx.Read(ob)
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(oa, av.(int64)-1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(ob, bv.(int64)+1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongScanN(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			s := New(Config{})
			objs := make([]*core.Object, n)
			for i := range objs {
				objs[i] = s.NewObject(int64(i))
			}
			th := s.NewThread()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := th.BeginLong(true)
				for _, o := range objs {
					if _, err := tx.Read(o); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLongCommitOnly(b *testing.B) {
	// The O(1) commit check of Algorithm 2 (§6 factor 2): a long
	// transaction with no accesses.
	s := New(Config{})
	th := s.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.BeginLong(true)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZoneCheckOverhead(b *testing.B) {
	// Pure-short workload: the zone machinery's overhead over plain LSA
	// is the per-open zc comparison (Figure 6's "negligible" claim).
	s := New(Config{})
	o := s.NewObject(int64(0))
	th := s.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.BeginShort(true)
		if _, err := tx.Read(o); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
