package zstm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tbtm/internal/cm"
	"tbtm/internal/core"
)

// TestTortureMixedKindsAggressive floods a small object set with short
// transfers and long scans/updates under the Aggressive contention
// manager (every conflict kills the holder), with random explicit aborts
// sprinkled in. Invariants: conservation of the transfer sum, consistent
// long snapshots, no leaked locks, no orphaned zones.
func TestTortureMixedKindsAggressive(t *testing.T) {
	s := New(Config{CM: cm.Aggressive{}, ZonePatience: 8})
	const accounts, workers = 5, 5
	iters := 80
	if testing.Short() {
		iters = 24
	}
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(int64(100))
	}
	want := int64(accounts) * 100
	auditSink := s.NewObject(int64(0))

	var inconsistent atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			th := s.NewThread()
			for i := 0; i < iters; i++ {
				if rng.Intn(5) == 0 {
					// Long transaction: scan all accounts; half the time
					// also write the sum.
					for attempt := 0; attempt < 50000; attempt++ {
						tx := th.BeginLong(rng.Intn(2) == 0)
						var sum int64
						bad := false
						for _, o := range objs {
							v, err := tx.Read(o)
							if err != nil {
								bad = true
								break
							}
							sum += v.(int64)
						}
						if bad {
							continue // tx already aborted
						}
						if rng.Intn(4) == 0 {
							tx.Abort() // random explicit abort
							continue
						}
						if !tx.ReadOnly() {
							if err := tx.Write(auditSink, sum); err != nil {
								continue
							}
						}
						if tx.Commit() != nil {
							continue
						}
						if sum != want {
							inconsistent.Add(1)
						}
						break
					}
					continue
				}
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				for attempt := 0; attempt < 50000; attempt++ {
					tx := th.BeginShort(false)
					fv, err := tx.Read(objs[from])
					if err != nil {
						tx.Abort()
						continue
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						tx.Abort()
						continue
					}
					if rng.Intn(10) == 0 {
						tx.Abort() // random explicit abort
						continue
					}
					if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Write(objs[to], tv.(int64)+1); err != nil {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if n := inconsistent.Load(); n != 0 {
		t.Fatalf("%d long transactions observed inconsistent totals", n)
	}
	// No leaked locks, no orphaned zone registrations.
	for i, o := range objs {
		if w := o.Writer(); w != nil && !w.Status().Terminal() {
			t.Fatalf("object %d locked by live tx after quiesce", i)
		}
	}
	s.mu.Lock()
	zones := len(s.zones)
	s.mu.Unlock()
	if zones != 0 {
		t.Fatalf("%d zones still registered after quiesce", zones)
	}
	// Conservation.
	th := s.NewThread()
	for attempt := 0; ; attempt++ {
		tx := th.BeginLong(true)
		var sum int64
		bad := false
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				bad = true
				break
			}
			sum += v.(int64)
		}
		if bad {
			continue
		}
		if err := tx.Commit(); err != nil {
			continue
		}
		if sum != want {
			t.Fatalf("final total = %d, want %d", sum, want)
		}
		break
	}
	st := s.Stats()
	if st.LongAborts == 0 && st.Short.Aborts == 0 {
		t.Fatal("torture produced no aborts; test is vacuous")
	}
}

// TestTortureLongKilledMidScan kills long transactions from outside mid
// scan; shorts must keep making progress (the zone registry reports dead
// zones inactive) and state stays conserved.
func TestTortureLongKilledMidScan(t *testing.T) {
	s := New(Config{ZonePatience: 8})
	const accounts = 8
	scans, transfers := 150, 300
	if testing.Short() {
		scans, transfers = 50, 100
	}
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(int64(10))
	}

	var cur atomic.Pointer[core.TxMeta]
	stop := make(chan struct{})
	var killerWg sync.WaitGroup
	killerWg.Add(1)
	go func() {
		defer killerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m := cur.Load(); m != nil {
				m.TryAbortActive()
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := s.NewThread()
		for i := 0; i < scans; i++ {
			tx := th.BeginLong(true)
			cur.Store(tx.Meta())
			var sum int64
			ok := true
			for _, o := range objs {
				v, err := tx.Read(o)
				if err != nil {
					ok = false
					break
				}
				sum += v.(int64)
			}
			cur.Store(nil)
			if !ok {
				tx.Abort()
				continue
			}
			if tx.Commit() != nil {
				continue
			}
			if sum != accounts*10 {
				t.Errorf("iteration %d: killed-scan run saw sum %d", i, sum)
			}
		}
	}()

	// Concurrent transfers throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := s.NewThread()
		for i := 0; i < transfers; i++ {
			from, to := i%accounts, (i*3+1)%accounts
			if from == to {
				continue
			}
			for attempt := 0; attempt < 50000; attempt++ {
				tx := th.BeginShort(false)
				fv, err := tx.Read(objs[from])
				if err != nil {
					tx.Abort()
					continue
				}
				tv, err := tx.Read(objs[to])
				if err != nil {
					tx.Abort()
					continue
				}
				if tx.Write(objs[from], fv.(int64)-1) != nil {
					tx.Abort()
					continue
				}
				if tx.Write(objs[to], tv.(int64)+1) != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					break
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	killerWg.Wait()

	s.mu.Lock()
	zones := len(s.zones)
	s.mu.Unlock()
	if zones != 0 {
		t.Fatalf("%d zones leaked", zones)
	}
	// Conservation after the storm.
	th := s.NewThread()
	var sum int64
	for attempt := 0; ; attempt++ {
		tx := th.BeginLong(true)
		sum = 0
		ok := true
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				ok = false
				break
			}
			sum += v.(int64)
		}
		if ok && tx.Commit() == nil {
			break
		}
	}
	if sum != accounts*10 {
		t.Fatalf("total = %d, want %d", sum, accounts*10)
	}
}
