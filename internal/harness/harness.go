// Package harness runs the paper's evaluation (§5.5) and the ablation
// experiments: duration-based throughput measurements of the bank
// benchmark over configurable STM variants and thread counts, with
// formatted output matching the figures' series.
//
// The workload reproduces the paper's setup: one thread executes
// transfers with 80% probability and Compute-Total transactions with 20%
// probability; every other thread executes only transfers; 1,000
// accounts by default.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/bank"
	"tbtm/internal/metrics"
	"tbtm/internal/workload"
)

// BankConfig parameterizes one bank-benchmark run.
type BankConfig struct {
	// Name labels the series (e.g. "Z-STM").
	Name string
	// Options configure the TM under test.
	Options []tbtm.Option
	// Threads is the worker count.
	Threads int
	// Accounts is the account count (default 1,000).
	Accounts int
	// Duration is the measurement window (default 200ms).
	Duration time.Duration
	// TotalPct is the probability (percent) that the mixed thread runs a
	// Compute-Total instead of a transfer (default 20, per the paper).
	TotalPct int
	// UpdateTotals makes Compute-Total an update transaction writing to
	// private transactional state (the Figure 7 variant).
	UpdateTotals bool
	// YieldEvery makes Compute-Total scans yield every N accounts,
	// simulating hardware parallelism on few-core hosts (see
	// bank.Bank.YieldEvery). Zero disables yielding.
	YieldEvery int
	// Seed makes runs repeatable.
	Seed int64
}

func (c *BankConfig) defaults() {
	if c.Accounts == 0 {
		c.Accounts = 1000
	}
	if c.Duration == 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.TotalPct == 0 {
		c.TotalPct = 20
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
}

// BankResult is one measurement point.
type BankResult struct {
	Name      string
	Threads   int
	Transfers uint64 // committed transfer transactions
	Totals    uint64 // committed Compute-Total transactions
	Elapsed   time.Duration
	Stats     tbtm.Stats
	// TransferLat and TotalLat are end-to-end (including internal
	// retries) latency histograms of the committed operations.
	TransferLat, TotalLat *metrics.Histogram
	// InvariantOK records the post-run conservation check.
	InvariantOK bool
}

// TransfersPerSec returns the committed transfer throughput.
func (r BankResult) TransfersPerSec() float64 {
	return float64(r.Transfers) / r.Elapsed.Seconds()
}

// TotalsPerSec returns the committed Compute-Total throughput.
func (r BankResult) TotalsPerSec() float64 {
	return float64(r.Totals) / r.Elapsed.Seconds()
}

// RunBank executes one bank-benchmark measurement.
func RunBank(cfg BankConfig) (BankResult, error) {
	cfg.defaults()
	tm, err := tbtm.New(cfg.Options...)
	if err != nil {
		return BankResult{}, fmt.Errorf("harness: building TM: %w", err)
	}
	b := bank.New(tm, cfg.Accounts, 1000)
	b.YieldEvery = cfg.YieldEvery

	var (
		transfers   atomic.Uint64
		totals      atomic.Uint64
		stop        atomic.Bool
		wg          sync.WaitGroup
		transferLat metrics.Histogram
		totalLat    metrics.Histogram
	)

	start := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			pick := workload.NewPicker(cfg.Accounts, workload.Uniform, cfg.Seed+int64(w)*104729)
			mix := workload.NewMix(cfg.TotalPct, cfg.Seed+int64(w)*94261+1)
			// Private destination for update totals (paper: "private but
			// transactional state").
			private := tbtm.NewVar(tm, int64(0))
			mixed := w == 0
			for !stop.Load() {
				// With scan yielding enabled, workers yield after every
				// transaction too, so the single-CPU scheduler
				// round-robins at transaction granularity instead of
				// handing each runnable goroutine a full quantum — the
				// closest simulation of the paper's hardware parallelism
				// (DESIGN.md §7).
				if cfg.YieldEvery > 0 {
					runtime.Gosched()
				}
				if mixed && mix.Special() {
					var err error
					begin := time.Now()
					if cfg.UpdateTotals {
						_, err = b.ComputeTotalUpdate(th, private)
					} else {
						_, err = b.ComputeTotal(th)
					}
					if err == nil {
						totals.Add(1)
						totalLat.Observe(time.Since(begin))
					}
					continue
				}
				from, to := pick.NextPair()
				if from == to {
					continue
				}
				begin := time.Now()
				if err := b.Transfer(th, from, to, 1); err == nil {
					transfers.Add(1)
					transferLat.Observe(time.Since(begin))
				}
			}
		}(w)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	res := BankResult{
		Name:        cfg.Name,
		Threads:     cfg.Threads,
		Transfers:   transfers.Load(),
		Totals:      totals.Load(),
		Elapsed:     elapsed,
		Stats:       tm.Stats(),
		TransferLat: &transferLat,
		TotalLat:    &totalLat,
	}
	res.InvariantOK = b.CheckInvariant(tm.NewThread()) == nil
	return res, nil
}

// Series is one figure line: a name plus one result per thread count.
type Series struct {
	Name    string
	Results []BankResult
}

// RunSeries measures cfg at every thread count.
func RunSeries(base BankConfig, threads []int) (Series, error) {
	s := Series{Name: base.Name}
	for _, n := range threads {
		cfg := base
		cfg.Threads = n
		r, err := RunBank(cfg)
		if err != nil {
			return Series{}, err
		}
		if !r.InvariantOK {
			return Series{}, fmt.Errorf("harness: %s at %d threads: bank invariant violated", base.Name, n)
		}
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// Metric selects which throughput a table shows.
type Metric int

// Metrics.
const (
	// MetricTotals reports Compute-Total transactions per second.
	MetricTotals Metric = iota + 1
	// MetricTransfers reports transfer transactions per second.
	MetricTransfers
)

// FormatTable renders series as an aligned text table with one row per
// thread count and one column per series, matching the layout of the
// paper's figures.
func FormatTable(title string, metric Metric, threads []int, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-8s", "Threads")
	for _, s := range series {
		fmt.Fprintf(&sb, " %20s", s.Name)
	}
	sb.WriteByte('\n')
	for i, n := range threads {
		fmt.Fprintf(&sb, "%-8d", n)
		for _, s := range series {
			if i >= len(s.Results) {
				fmt.Fprintf(&sb, " %20s", "-")
				continue
			}
			var v float64
			switch metric {
			case MetricTransfers:
				v = s.Results[i].TransfersPerSec()
			default:
				v = s.Results[i].TotalsPerSec()
			}
			fmt.Fprintf(&sb, " %20.1f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatLatencyTable renders per-series latency summaries (committed
// operations, end-to-end including retries) for one thread count — the
// distributional companion to the figures' throughput numbers.
func FormatLatencyTable(title string, metric Metric, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, s := range series {
		for _, r := range s.Results {
			h := r.TotalLat
			if metric == MetricTransfers {
				h = r.TransferLat
			}
			if h == nil {
				continue
			}
			fmt.Fprintf(&sb, "%-20s threads=%-3d %s\n", s.Name, r.Threads, h.Summary())
		}
	}
	return sb.String()
}

// PaperThreads is the thread axis of Figures 6 and 7.
var PaperThreads = []int{1, 2, 8, 16, 32}
