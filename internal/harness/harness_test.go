package harness

import (
	"strings"
	"testing"
	"time"

	"tbtm"
)

func quick(name string, level tbtm.Consistency, update bool) BankConfig {
	return BankConfig{
		Name:         name,
		Options:      []tbtm.Option{tbtm.WithConsistency(level)},
		Accounts:     50,
		Duration:     30 * time.Millisecond,
		UpdateTotals: update,
		Seed:         1,
	}
}

func TestRunBankBasics(t *testing.T) {
	cfg := quick("Z-STM", tbtm.ZLinearizable, false)
	cfg.Threads = 2
	res, err := RunBank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers == 0 {
		t.Fatal("no transfers committed")
	}
	if !res.InvariantOK {
		t.Fatal("invariant violated")
	}
	if res.TransfersPerSec() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Threads != 2 || res.Name != "Z-STM" {
		t.Fatalf("result metadata wrong: %+v", res)
	}
}

func TestRunBankMixedThreadProducesTotals(t *testing.T) {
	cfg := quick("Z-STM", tbtm.ZLinearizable, true)
	cfg.Threads = 2
	cfg.Accounts = 20
	cfg.TotalPct = 50
	cfg.YieldEvery = 10
	cfg.Duration = 150 * time.Millisecond
	res, err := RunBank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals == 0 {
		t.Fatal("mixed thread committed no Compute-Total transactions")
	}
	if res.Stats.LongCommits == 0 {
		t.Fatal("no long commits recorded")
	}
}

func TestRunBankRejectsBadOptions(t *testing.T) {
	cfg := BankConfig{Options: []tbtm.Option{tbtm.WithVersions(-1)}}
	if _, err := RunBank(cfg); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestRunSeriesAndFormat(t *testing.T) {
	threads := []int{1, 2}
	s1, err := RunSeries(quick("LSA-STM", tbtm.Linearizable, false), threads)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunSeries(quick("Z-STM", tbtm.ZLinearizable, false), threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Results) != 2 || len(s2.Results) != 2 {
		t.Fatalf("series lengths: %d, %d", len(s1.Results), len(s2.Results))
	}
	out := FormatTable("Transfer transactions", MetricTransfers, threads, []Series{s1, s2})
	for _, want := range []string{"Transfer transactions", "Threads", "LSA-STM", "Z-STM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Missing results render as "-".
	short := Series{Name: "partial"}
	out = FormatTable("x", MetricTotals, threads, []Series{short})
	if !strings.Contains(out, "-") {
		t.Fatalf("missing results not rendered:\n%s", out)
	}
}

func TestPaperThreadsAxis(t *testing.T) {
	want := []int{1, 2, 8, 16, 32}
	if len(PaperThreads) != len(want) {
		t.Fatal("paper thread axis changed")
	}
	for i, n := range want {
		if PaperThreads[i] != n {
			t.Fatalf("PaperThreads[%d] = %d, want %d", i, PaperThreads[i], n)
		}
	}
}

func TestFigure7ShapeQuick(t *testing.T) {
	// The headline result at miniature scale: with update Compute-Total
	// transactions, Z-STM sustains long-transaction throughput while
	// LSA-STM starves (its long update transactions are invalidated by
	// concurrent transfers). A tiny run suffices to show totals(Z) > 0;
	// LSA may commit a few totals at this scale, so only Z-STM's
	// liveness is asserted here — the full shape is cmd/bankbench's job.
	cfg := quick("Z-STM", tbtm.ZLinearizable, true)
	cfg.Threads = 3
	cfg.Accounts = 100
	cfg.TotalPct = 30
	cfg.Duration = 80 * time.Millisecond
	res, err := RunBank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals == 0 {
		t.Fatal("Z-STM committed no update totals under contention")
	}
}
