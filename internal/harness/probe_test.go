package harness

import (
	"strings"
	"testing"

	"tbtm"
)

func TestProbeCommitProbabilityDeclinesWithLength(t *testing.T) {
	// The paper's motivating claim: under a linearizable TBTM with
	// background churn, the first-attempt commit probability of an
	// update transaction falls as its read set grows.
	res, err := RunProbe(ProbeConfig{
		Name:     "LSA",
		Options:  []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable), tbtm.WithVersions(64)},
		Lengths:  []int{2, 1000},
		Attempts: 150,
		Churn:    2,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	short, long := res.Points[0], res.Points[1]
	if short.Attempts != 150 || long.Attempts != 150 {
		t.Fatalf("attempts: %d, %d; want 150 each", short.Attempts, long.Attempts)
	}
	if short.Probability < 0.5 {
		t.Fatalf("short-tx commit probability = %.3f, want >= 0.5", short.Probability)
	}
	if long.Probability >= short.Probability {
		t.Fatalf("commit probability did not decline with length: short %.3f, long %.3f",
			short.Probability, long.Probability)
	}
}

func TestProbeZSTMLongSustains(t *testing.T) {
	// Under Z-STM the same 1,000-object update transaction, classified
	// Long, commits with high probability: zones order it instead of
	// validating it.
	res, err := RunProbe(ProbeConfig{
		Name:     "Z-STM(long)",
		Options:  []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(64)},
		Long:     true,
		Lengths:  []int{1000},
		Attempts: 100,
		Churn:    2,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Points[0].Probability; p < 0.9 {
		t.Fatalf("Z-STM long commit probability = %.3f, want >= 0.9", p)
	}
}

func TestProbeDefaultsAndTable(t *testing.T) {
	res, err := RunProbe(ProbeConfig{
		Name:     "quick",
		Options:  []tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable)},
		Lengths:  []int{2},
		Attempts: 10,
		Churn:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := FormatProbeTable("A7: first-attempt commit probability", []ProbeResult{res})
	if !strings.Contains(table, "quick") || !strings.Contains(table, "Length") {
		t.Fatalf("table malformed:\n%s", table)
	}
	if res.Points[0].Latency <= 0 {
		t.Fatalf("latency = %v, want > 0", res.Points[0].Latency)
	}
}

func TestLatencyHistogramsPopulated(t *testing.T) {
	r, err := RunBank(BankConfig{
		Name:    "lat",
		Options: []tbtm.Option{tbtm.WithConsistency(tbtm.ZLinearizable)},
		Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TransferLat == nil || r.TransferLat.Count() == 0 {
		t.Fatal("transfer latency histogram empty")
	}
	if r.TransferLat.Count() != r.Transfers {
		t.Fatalf("latency count %d != committed transfers %d", r.TransferLat.Count(), r.Transfers)
	}
	table := FormatLatencyTable("latency", MetricTransfers, []Series{{Name: "lat", Results: []BankResult{r}}})
	if !strings.Contains(table, "p95") {
		t.Fatalf("latency table malformed:\n%s", table)
	}
}
