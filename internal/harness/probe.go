package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/bank"
	"tbtm/internal/metrics"
	"tbtm/internal/workload"
)

// ProbeConfig parameterizes a commit-probability measurement: the
// paper's motivating claim ("long transactions can have a much lower
// likelihood of committing than smaller transactions") made measurable.
// A probe transaction reads Length accounts and writes private state;
// it is attempted exactly once (no retry), under a fixed background
// transfer load, and the first-attempt commit rate is recorded.
type ProbeConfig struct {
	// Name labels the series.
	Name string
	// Options configure the TM under test.
	Options []tbtm.Option
	// Long classifies the probe transaction as Long (Z-STM routes it
	// through zone ordering; elsewhere it only informs the contention
	// manager).
	Long bool
	// Lengths is the read-set-size axis (default {2, 10, 50, 200, 1000}).
	Lengths []int
	// Accounts is the object universe (default 1,000; Lengths are capped
	// to it).
	Accounts int
	// Churn is the number of background transfer goroutines (default 2).
	Churn int
	// Attempts is the number of single-shot probes per length (default
	// 200).
	Attempts int
	// Seed makes runs repeatable.
	Seed int64
}

func (c *ProbeConfig) defaults() {
	if len(c.Lengths) == 0 {
		c.Lengths = []int{2, 10, 50, 200, 1000}
	}
	if c.Accounts == 0 {
		c.Accounts = 1000
	}
	if c.Churn == 0 {
		c.Churn = 2
	}
	if c.Attempts == 0 {
		c.Attempts = 200
	}
}

// ProbePoint is the measurement for one transaction length.
type ProbePoint struct {
	Length      int
	Probability float64
	Attempts    uint64
	Breakdown   string
	Latency     time.Duration // mean attempt latency
}

// ProbeResult is one series of the commit-probability experiment.
type ProbeResult struct {
	Name   string
	Points []ProbePoint
}

// RunProbe measures first-attempt commit probability as a function of
// transaction length for one TM configuration.
func RunProbe(cfg ProbeConfig) (ProbeResult, error) {
	cfg.defaults()
	res := ProbeResult{Name: cfg.Name}
	for _, length := range cfg.Lengths {
		if length > cfg.Accounts {
			length = cfg.Accounts
		}
		point, err := runProbePoint(cfg, length)
		if err != nil {
			return ProbeResult{}, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

func runProbePoint(cfg ProbeConfig, length int) (ProbePoint, error) {
	tm, err := tbtm.New(cfg.Options...)
	if err != nil {
		return ProbePoint{}, fmt.Errorf("harness: building TM: %w", err)
	}
	b := bank.New(tm, cfg.Accounts, 1000)

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < cfg.Churn; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			pick := workload.NewPicker(cfg.Accounts, workload.Uniform, cfg.Seed+int64(w)*50021)
			for !stop.Load() {
				runtime.Gosched() // transaction-granularity round-robin
				from, to := pick.NextPair()
				_ = b.Transfer(th, from, to, 1)
			}
		}(w)
	}

	kind := tbtm.Short
	if cfg.Long {
		kind = tbtm.Long
	}
	th := tm.NewThread()
	private := tbtm.NewVar(tm, int64(0))
	var rec metrics.Recorder
	for i := 0; i < cfg.Attempts; i++ {
		runtime.Gosched()
		start := time.Now()
		tx := th.Begin(kind)
		err := func() error {
			var sum int64
			for k := 0; k < length; k++ {
				if k > 0 && k%50 == 0 {
					runtime.Gosched() // simulate physical concurrency (DESIGN.md §7)
				}
				v, err := b.Account(k).Read(tx)
				if err != nil {
					return err
				}
				sum += v
			}
			if err := private.Write(tx, sum); err != nil {
				return err
			}
			return tx.Commit()
		}()
		if err != nil {
			tx.Abort()
		}
		rec.Record(time.Since(start), err)
	}
	stop.Store(true)
	wg.Wait()

	var all metrics.Histogram
	all.Merge(&rec.Success)
	all.Merge(&rec.Failure)
	return ProbePoint{
		Length:      length,
		Probability: rec.CommitProbability(),
		Attempts:    rec.Attempts(),
		Breakdown:   rec.Breakdown(),
		Latency:     all.Mean(),
	}, nil
}

// FormatProbeTable renders probe series as an aligned table: one row per
// transaction length, one column per series, cells showing the
// first-attempt commit probability.
func FormatProbeTable(title string, series []ProbeResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-8s", "Length")
	for _, s := range series {
		fmt.Fprintf(&sb, " %20s", s.Name)
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for i, p := range series[0].Points {
		fmt.Fprintf(&sb, "%-8d", p.Length)
		for _, s := range series {
			if i >= len(s.Points) {
				fmt.Fprintf(&sb, " %20s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %20.3f", s.Points[i].Probability)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
