package bank

import (
	"strings"
	"testing"

	"tbtm"
)

// TestAccountAccessorComposes verifies Account exposes the live
// transactional variable: a write through it is visible to Transfer's
// invariant machinery.
func TestAccountAccessorComposes(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 4, 10)
	th := tm.NewThread()
	if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return b.Account(0).Write(tx, 50)
	}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Balance(th, 0)
	if err != nil || got != 50 {
		t.Fatalf("balance = %d, %v; want 50, nil", got, err)
	}
}

// TestCheckInvariantDetectsViolation verifies CheckInvariant reports a
// broken total with a diagnostic rather than succeeding silently.
func TestCheckInvariantDetectsViolation(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 4, 10)
	th := tm.NewThread()
	if err := b.CheckInvariant(th); err != nil {
		t.Fatalf("fresh bank: %v", err)
	}
	// Inject money out of band.
	if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return b.Account(2).Write(tx, 11)
	}); err != nil {
		t.Fatal(err)
	}
	err := b.CheckInvariant(th)
	if err == nil {
		t.Fatal("invariant violation not detected")
	}
	if !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
}

// TestTransferBubblesRetryExhaustion verifies Transfer surfaces the
// facade's retry-limit error instead of looping forever when the TM is
// configured with a retry budget and the transfer keeps losing.
func TestTransferBubblesRetryExhaustion(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithMaxRetries(1))
	b := New(tm, 2, 10)
	th := tm.NewThread()
	blocker := tm.NewThread()

	// Hold a write lock on account 0 with an open transaction so the
	// transfer's single attempt conflicts and the budget is spent.
	tx := blocker.Begin(tbtm.Short)
	if err := b.Account(0).Write(tx, 99); err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()

	if err := b.Transfer(th, 0, 1, 1); err == nil {
		t.Fatal("transfer against a held lock succeeded within 1 attempt")
	}
}
