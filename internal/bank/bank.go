// Package bank implements the paper's bank micro-benchmark (§5.5): a set
// of accounts manipulated by short Transfer transactions (withdraw from
// one account, deposit to another) and long Compute-Total transactions
// that sum every account, in a read-only variant and an update variant
// that writes the result to private but transactional state.
package bank

import (
	"fmt"
	"runtime"

	"tbtm"
)

// Bank is a transactional bank over a TM instance.
type Bank struct {
	tm       *tbtm.TM
	accounts []*tbtm.Var[int64]
	initial  int64

	// YieldEvery, when positive, makes Compute-Total scans yield the
	// processor every YieldEvery accounts. On a single-CPU host this
	// simulates the physical concurrency of the paper's 32-hardware-
	// thread testbed, where transfers execute during a long scan; without
	// it a scan completes within one scheduler quantum and never
	// experiences interference (see DESIGN.md §7). It applies identically
	// to every STM under test.
	YieldEvery int
}

// New creates a bank with accounts accounts of initialBalance each.
func New(tm *tbtm.TM, accounts int, initialBalance int64) *Bank {
	b := &Bank{tm: tm, initial: initialBalance}
	b.accounts = make([]*tbtm.Var[int64], accounts)
	for i := range b.accounts {
		b.accounts[i] = tbtm.NewVar(tm, initialBalance)
	}
	return b
}

// TM returns the owning TM instance.
func (b *Bank) TM() *tbtm.TM { return b.tm }

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return len(b.accounts) }

// ExpectedTotal returns the invariant total balance.
func (b *Bank) ExpectedTotal() int64 { return int64(len(b.accounts)) * b.initial }

// Account returns the transactional variable of one account, for callers
// that compose their own transactions (e.g. the commit-probability probe
// in internal/harness).
func (b *Bank) Account(i int) *tbtm.Var[int64] { return b.accounts[i] }

// Transfer moves amount from one account to another in a short update
// transaction, retrying on conflicts.
func (b *Bank) Transfer(th *tbtm.Thread, from, to int, amount int64) error {
	if from == to {
		return fmt.Errorf("bank: transfer to self (account %d)", from)
	}
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		f, err := b.accounts[from].Read(tx)
		if err != nil {
			return err
		}
		g, err := b.accounts[to].Read(tx)
		if err != nil {
			return err
		}
		if err := b.accounts[from].Write(tx, f-amount); err != nil {
			return err
		}
		return b.accounts[to].Write(tx, g+amount)
	})
}

// ComputeTotal sums all accounts in a long read-only transaction.
func (b *Bank) ComputeTotal(th *tbtm.Thread) (int64, error) {
	var total int64
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		sum, err := b.sum(tx)
		if err != nil {
			return err
		}
		total = sum
		return nil
	})
	return total, err
}

// ComputeTotalUpdate sums all accounts in a long update transaction that
// writes the result to dest — the paper's "update transactions that write
// to private but transactional state" variant (Figure 7).
func (b *Bank) ComputeTotalUpdate(th *tbtm.Thread, dest *tbtm.Var[int64]) (int64, error) {
	var total int64
	err := th.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
		sum, err := b.sum(tx)
		if err != nil {
			return err
		}
		total = sum
		return dest.Write(tx, sum)
	})
	return total, err
}

func (b *Bank) sum(tx tbtm.Tx) (int64, error) {
	var sum int64
	for i, a := range b.accounts {
		if b.YieldEvery > 0 && i > 0 && i%b.YieldEvery == 0 {
			runtime.Gosched()
		}
		v, err := a.Read(tx)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// CheckInvariant verifies that the total balance equals the invariant,
// using a long transaction. It returns an error describing the deficit
// when the invariant is violated.
func (b *Bank) CheckInvariant(th *tbtm.Thread) error {
	total, err := b.ComputeTotal(th)
	if err != nil {
		return fmt.Errorf("bank: computing total: %w", err)
	}
	if want := b.ExpectedTotal(); total != want {
		return fmt.Errorf("bank: invariant violated: total %d, want %d", total, want)
	}
	return nil
}

// Balance reads one account in a short read-only transaction.
func (b *Bank) Balance(th *tbtm.Thread, account int) (int64, error) {
	var v int64
	err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		v, err = b.accounts[account].Read(tx)
		return err
	})
	return v, err
}
