package bank

import (
	"sync"
	"testing"

	"tbtm"
)

func TestTransferAndBalance(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 4, 100)
	th := tm.NewThread()
	if err := b.Transfer(th, 0, 1, 25); err != nil {
		t.Fatal(err)
	}
	v0, err := b.Balance(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := b.Balance(th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 75 || v1 != 125 {
		t.Fatalf("balances = %d, %d; want 75, 125", v0, v1)
	}
}

func TestTransferToSelfRejected(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 2, 100)
	if err := b.Transfer(tm.NewThread(), 1, 1, 5); err == nil {
		t.Fatal("self transfer accepted")
	}
}

func TestComputeTotalVariants(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 10, 50)
	th := tm.NewThread()
	total, err := b.ComputeTotal(th)
	if err != nil {
		t.Fatal(err)
	}
	if total != 500 {
		t.Fatalf("total = %d, want 500", total)
	}
	dest := tbtm.NewVar(tm, int64(0))
	total, err = b.ComputeTotalUpdate(th, dest)
	if err != nil {
		t.Fatal(err)
	}
	if total != 500 {
		t.Fatalf("update total = %d", total)
	}
	var stored int64
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		stored, err = dest.Read(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if stored != 500 {
		t.Fatalf("dest = %d, want 500", stored)
	}
	if got := tm.Stats().LongCommits; got != 2 {
		t.Fatalf("long commits = %d, want 2", got)
	}
}

func TestInvariantHolds(t *testing.T) {
	for _, level := range []tbtm.Consistency{tbtm.Linearizable, tbtm.ZLinearizable} {
		tm := tbtm.MustNew(tbtm.WithConsistency(level))
		b := New(tm, 8, 100)
		var wg sync.WaitGroup
		for wkr := 0; wkr < 4; wkr++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				th := tm.NewThread()
				for i := 0; i < 40; i++ {
					from := (seed + i) % 8
					to := (seed + i*3 + 1) % 8
					if from == to {
						continue
					}
					if err := b.Transfer(th, from, to, 1); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(wkr)
		}
		wg.Wait()
		if err := b.CheckInvariant(tm.NewThread()); err != nil {
			t.Fatalf("%v: %v", level, err)
		}
	}
}

func TestAccessors(t *testing.T) {
	tm := tbtm.MustNew()
	b := New(tm, 3, 10)
	if b.Accounts() != 3 || b.ExpectedTotal() != 30 || b.TM() != tm {
		t.Fatalf("accessors: %d accounts, total %d", b.Accounts(), b.ExpectedTotal())
	}
}
