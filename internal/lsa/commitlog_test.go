package lsa

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/core"
)

// TestCommitLogFastValidationDisjoint: a disjoint interleaved commit
// leaves the log window clear, so commit-time validation skips the
// read-set walk even though the bare RSTM ct==ub+1 rule does not apply.
func TestCommitLogFastValidationDisjoint(t *testing.T) {
	s := New(Config{})
	if s.Log() == nil {
		t.Fatal("commit log not armed on the default counter clock")
	}
	a, b := s.NewObject(int64(0)), s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(a); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := tx.Write(a, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}

	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(b, int64(9)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := s.Stats()
	if st.FastValidations < 1 {
		t.Fatalf("FastValidations = %d, want >= 1 (log window was clear)", st.FastValidations)
	}
	if st.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", st.Commits)
	}
}

// TestCommitLogExtensionFast: reading an object updated after the
// snapshot extends via the log window alone when nothing in the read
// footprint changed.
func TestCommitLogExtensionFast(t *testing.T) {
	s := New(Config{})
	o1, o2 := s.NewObject(int64(0)), s.NewObject(int64(0))

	rd := s.NewThread().Begin(core.Short, false)
	if _, err := rd.Read(o1); err != nil {
		t.Fatalf("Read o1: %v", err)
	}

	// A writer moves o2 past the reader's snapshot.
	wr := s.NewThread().Begin(core.Short, false)
	if err := wr.Write(o2, int64(7)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("wr Commit: %v", err)
	}

	// Reading o2 requires extending past the writer's commit; o2 is not
	// yet in the footprint, so the window is clear.
	v, err := rd.Read(o2)
	if err != nil {
		t.Fatalf("Read o2: %v", err)
	}
	if v != int64(7) {
		t.Fatalf("Read o2 = %v, want 7", v)
	}
	if err := rd.Commit(); err != nil {
		t.Fatalf("rd Commit: %v", err)
	}
	st := s.Stats()
	if st.ExtensionsFast != 1 || st.ExtensionsFull != 0 {
		t.Fatalf("ExtensionsFast/Full = %d/%d, want 1/0 (stats %+v)", st.ExtensionsFast, st.ExtensionsFull, st)
	}
	if st.Extensions != st.ExtensionsFast+st.ExtensionsFull {
		t.Fatalf("Extensions = %d, want fast+full = %d", st.Extensions, st.ExtensionsFast+st.ExtensionsFull)
	}
}

// TestCommitLogExtensionHitFallsBack: when the window hits the read
// footprint the extension falls back to the full walk, which correctly
// rejects it — the update transaction aborts with a conflict.
func TestCommitLogExtensionHitFallsBack(t *testing.T) {
	s := New(Config{})
	o1, o2 := s.NewObject(int64(0)), s.NewObject(int64(0))

	rd := s.NewThread().Begin(core.Short, false)
	if _, err := rd.Read(o1); err != nil {
		t.Fatalf("Read o1: %v", err)
	}

	// The writer updates both the read object and the trigger object.
	wr := s.NewThread().Begin(core.Short, false)
	if err := wr.Write(o1, int64(1)); err != nil {
		t.Fatalf("Write o1: %v", err)
	}
	if err := wr.Write(o2, int64(2)); err != nil {
		t.Fatalf("Write o2: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("wr Commit: %v", err)
	}

	if _, err := rd.Read(o2); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Read o2 err = %v, want ErrConflict (footprint changed)", err)
	}
	st := s.Stats()
	if st.ExtensionsFast != 0 {
		t.Fatalf("ExtensionsFast = %d, want 0 (the window hit o1)", st.ExtensionsFast)
	}
}

// TestCommitLogWrapFallsBack: a reader that falls further behind than
// the ring holds must take the full-walk path (and succeed when its
// footprint is genuinely untouched), counting the wrap.
func TestCommitLogWrapFallsBack(t *testing.T) {
	s := New(Config{CommitLog: 2}) // tiny ring: wraps immediately
	ring := s.Log().Cap()
	o1 := s.NewObject(int64(0))
	hot := s.NewObject(int64(0))
	trigger := s.NewObject(int64(0))

	rd := s.NewThread().Begin(core.Short, false)
	if _, err := rd.Read(o1); err != nil {
		t.Fatalf("Read o1: %v", err)
	}

	wr := s.NewThread()
	for i := 0; i < 2*ring; i++ {
		tx := wr.Begin(core.Short, false)
		if err := tx.Write(hot, int64(i)); err != nil {
			t.Fatalf("Write hot: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit hot: %v", err)
		}
	}
	last := wr.Begin(core.Short, false)
	if err := last.Write(trigger, int64(1)); err != nil {
		t.Fatalf("Write trigger: %v", err)
	}
	if err := last.Commit(); err != nil {
		t.Fatalf("Commit trigger: %v", err)
	}

	if _, err := rd.Read(trigger); err != nil {
		t.Fatalf("Read trigger: %v", err)
	}
	if err := rd.Commit(); err != nil {
		t.Fatalf("rd Commit: %v", err)
	}
	st := s.Stats()
	if st.LogWraps == 0 {
		t.Fatalf("LogWraps = 0, want > 0 (stats %+v)", st)
	}
	if st.ExtensionsFull == 0 {
		t.Fatalf("ExtensionsFull = 0, want > 0 (wrap must fall back to the walk)")
	}
}

// TestCommitLogCrossCheckUnderLoad runs a contended mixed workload with
// CrossCheck on: every fast-path decision re-runs full validation and
// panics on disagreement.
func TestCommitLogCrossCheckUnderLoad(t *testing.T) {
	s := New(Config{CrossCheck: true})
	objs := make([]*core.Object, 8)
	for i := range objs {
		objs[i] = s.NewObject(int64(0))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < 400; i++ {
				tx := th.Begin(core.Short, false)
				ok := true
				for j := 0; j < 3 && ok; j++ {
					o := objs[(w*3+i+j*5)%len(objs)]
					if j == 2 {
						ok = tx.Write(o, int64(i)) == nil
					} else {
						_, err := tx.Read(o)
						ok = err == nil
					}
				}
				if ok {
					_ = tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
}
