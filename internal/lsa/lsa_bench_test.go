package lsa

import (
	"fmt"
	"testing"

	"tbtm/internal/core"
)

func BenchmarkReadUncontended(b *testing.B) {
	s := New(Config{})
	o := s.NewObject(int64(1))
	th := s.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.Begin(core.Short, true)
		if _, err := tx.Read(o); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCommitUncontended(b *testing.B) {
	s := New(Config{})
	o := s.NewObject(int64(1))
	th := s.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.Begin(core.Short, false)
		if err := tx.Write(o, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanN(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, noReadSets := range []bool{false, true} {
			name := fmt.Sprintf("objects=%d/readsets=%v", n, !noReadSets)
			b.Run(name, func(b *testing.B) {
				s := New(Config{NoReadSets: noReadSets})
				objs := make([]*core.Object, n)
				for i := range objs {
					objs[i] = s.NewObject(int64(i))
				}
				th := s.NewThread()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx := th.Begin(core.Long, true)
					for _, o := range objs {
						if _, err := tx.Read(o); err != nil {
							b.Fatal(err)
						}
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSnapshotExtension(b *testing.B) {
	// Each iteration forces one extension: read a, bump b's version from
	// another thread handle, then read b.
	s := New(Config{})
	oa, ob := s.NewObject(int64(0)), s.NewObject(int64(0))
	th1, th2 := s.NewThread(), s.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th1.Begin(core.Short, false)
		if _, err := tx.Read(oa); err != nil {
			b.Fatal(err)
		}
		w := th2.Begin(core.Short, false)
		if err := w.Write(ob, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Read(ob); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
