package lsa

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
)

func newSTM(t *testing.T, cfg Config) *STM {
	t.Helper()
	return New(cfg)
}

// atomically retries fn until the transaction commits.
func atomically(t *testing.T, th *Thread, ro bool, fn func(tx *Tx) error) {
	t.Helper()
	for i := 0; ; i++ {
		tx := th.Begin(core.Short, ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return
		}
		if !core.IsRetryable(err) {
			t.Fatalf("non-retryable error: %v", err)
		}
		if i > 10000 {
			t.Fatal("transaction did not commit after 10000 retries")
		}
	}
}

func TestReadInitialValue(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject(42)
	th := s.NewThread()
	tx := th.Begin(core.Short, true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("Read = %v, want 42", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThenReadOwnWrite(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject(1)
	th := s.NewThread()
	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, 2); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("read-own-write = %v, want 2", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed value visible to a fresh transaction.
	tx2 := th.Begin(core.Short, true)
	v, err = tx2.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("after commit = %v, want 2", v)
	}
	tx2.Abort()
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject("old")
	th := s.NewThread()
	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, "new"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if o.Writer() != nil {
		t.Fatal("write lock not released on abort")
	}
	tx2 := th.Begin(core.Short, true)
	v, _ := tx2.Read(o)
	if v != "old" {
		t.Fatalf("aborted write visible: %v", v)
	}
	tx2.Abort()
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject(0)
	tx := s.NewThread().Begin(core.Short, true)
	if err := tx.Write(o, 1); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("Write in RO tx = %v, want ErrReadOnly", err)
	}
}

func TestUseAfterCommit(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject(0)
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(o); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Read after commit = %v, want ErrTxDone", err)
	}
	if err := tx.Write(o, 1); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Write after commit = %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Commit after commit = %v, want ErrTxDone", err)
	}
	tx.Abort() // no-op, no panic
}

func TestFirstCommitterWins(t *testing.T) {
	// Two transactions read the same object; one updates it and commits.
	// The other, validating later, must abort (the "first committer wins"
	// rule the paper's §1 problem statement builds on).
	s := newSTM(t, Config{})
	o := s.NewObject(10)
	th1, th2 := s.NewThread(), s.NewThread()

	tx1 := th1.Begin(core.Short, false)
	if _, err := tx1.Read(o); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(o, 11); err != nil {
		t.Fatal(err)
	}

	tx2 := th2.Begin(core.Short, false)
	if _, err := tx2.Read(o); err != nil {
		t.Fatal(err)
	}

	if err := tx1.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	// tx2 read the old version, which is no longer current at commit time.
	tx3 := th2.Begin(core.Short, false) // unrelated tx to bump nothing
	tx3.Abort()
	// tx2 writes something else so it is an update transaction.
	o2 := s.NewObject(0)
	if err := tx2.Write(o2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("second committer = %v, want ErrConflict", err)
	}
}

func TestSnapshotExtension(t *testing.T) {
	s := newSTM(t, Config{})
	a, b := s.NewObject(1), s.NewObject(2)
	th1, th2 := s.NewThread(), s.NewThread()

	// tx reads a at snapshot time 0.
	tx := th1.Begin(core.Short, false)
	if _, err := tx.Read(a); err != nil {
		t.Fatal(err)
	}
	// Another transaction bumps b's version (advancing the clock).
	atomically(t, th2, false, func(tx2 *Tx) error { return tx2.Write(b, 20) })
	// tx can still read b: extension succeeds because a is unchanged.
	v, err := tx.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Fatalf("Read(b) = %v, want 20", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Extensions == 0 {
		t.Fatal("no extension recorded")
	}
}

func TestExtensionFailsOnInvalidatedRead(t *testing.T) {
	s := newSTM(t, Config{})
	a, b := s.NewObject(1), s.NewObject(2)
	th1, th2 := s.NewThread(), s.NewThread()

	tx := th1.Begin(core.Short, false) // update tx: no old-version fallback
	if _, err := tx.Read(a); err != nil {
		t.Fatal(err)
	}
	// Both a and b move forward: reading b requires extending the
	// snapshot, which fails because a (already read) was overwritten.
	atomically(t, th2, false, func(tx2 *Tx) error {
		if err := tx2.Write(a, 10); err != nil {
			return err
		}
		return tx2.Write(b, 20)
	})
	if _, err := tx.Read(b); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Read(b) after invalidation = %v, want ErrConflict", err)
	}
}

func TestReadOnlyFallsBackToOldVersion(t *testing.T) {
	s := newSTM(t, Config{Versions: 8})
	a, b := s.NewObject(1), s.NewObject(2)
	th1, th2 := s.NewThread(), s.NewThread()

	ro := th1.Begin(core.Short, true)
	if _, err := ro.Read(a); err != nil {
		t.Fatal(err)
	}
	// Both objects move forward; extension fails (a changed), so the read
	// of b must be served by the old version consistent with the snapshot.
	atomically(t, th2, false, func(tx *Tx) error {
		if err := tx.Write(a, 100); err != nil {
			return err
		}
		return tx.Write(b, 200)
	})
	v, err := ro.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("RO read of b = %v, want old version 2", v)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().OldVersions == 0 {
		t.Fatal("old-version read not recorded")
	}
}

func TestSingleVersionReadOnlyAborts(t *testing.T) {
	// With Versions=1 the old-version fallback is impossible: the paper's
	// §4.4 observation that single-version objects hurt long read-only
	// transactions.
	s := newSTM(t, Config{Versions: 1, NoExtension: true})
	a, b := s.NewObject(1), s.NewObject(2)
	th1, th2 := s.NewThread(), s.NewThread()

	ro := th1.Begin(core.Short, true)
	if _, err := ro.Read(a); err != nil {
		t.Fatal(err)
	}
	atomically(t, th2, false, func(tx *Tx) error {
		if err := tx.Write(a, 100); err != nil {
			return err
		}
		return tx.Write(b, 200)
	})
	if _, err := ro.Read(b); !errors.Is(err, core.ErrSnapshotUnavailable) {
		t.Fatalf("single-version RO read = %v, want ErrSnapshotUnavailable", err)
	}
	if s.Stats().SnapshotMiss == 0 {
		t.Fatal("snapshot miss not recorded")
	}
}

func TestNoReadSetsFastPath(t *testing.T) {
	s := newSTM(t, Config{NoReadSets: true})
	a, b := s.NewObject(1), s.NewObject(2)
	th1, th2 := s.NewThread(), s.NewThread()

	ro := th1.Begin(core.Short, true)
	if _, err := ro.Read(a); err != nil {
		t.Fatal(err)
	}
	if ro.ReadSetSize() != 0 {
		t.Fatalf("read set size = %d on no-readset path", ro.ReadSetSize())
	}
	// Snapshot is fixed at start: concurrent updates are invisible.
	atomically(t, th2, false, func(tx *Tx) error { return tx.Write(b, 99) })
	v, err := ro.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("fixed-snapshot read = %v, want 2", v)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	// Update transactions still track reads.
	up := th1.Begin(core.Short, false)
	if _, err := up.Read(a); err != nil {
		t.Fatal(err)
	}
	if up.ReadSetSize() != 1 {
		t.Fatalf("update tx read set = %d, want 1", up.ReadSetSize())
	}
	up.Abort()
}

func TestWriteWriteConflictArbitration(t *testing.T) {
	// With the Timestamp manager the younger transaction aborts itself.
	s := newSTM(t, Config{CM: cm.Timestamp{}})
	o := s.NewObject(0)
	th1, th2 := s.NewThread(), s.NewThread()

	older := th1.Begin(core.Short, false)
	if err := older.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	younger := th2.Begin(core.Short, false)
	if err := younger.Write(o, 2); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("younger Write = %v, want ErrAborted", err)
	}
	if err := older.Commit(); err != nil {
		t.Fatalf("older commit = %v", err)
	}
}

func TestAggressiveStealsLock(t *testing.T) {
	s := newSTM(t, Config{CM: cm.Aggressive{}})
	o := s.NewObject(0)
	th1, th2 := s.NewThread(), s.NewThread()

	victim := th1.Begin(core.Short, false)
	if err := victim.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	attacker := th2.Begin(core.Short, false)
	if err := attacker.Write(o, 2); err != nil {
		t.Fatalf("attacker Write = %v", err)
	}
	if victim.Meta().Status() != core.StatusAborted {
		t.Fatal("victim not aborted by aggressive CM")
	}
	if err := attacker.Commit(); err != nil {
		t.Fatal(err)
	}
	// Victim's commit must fail.
	if err := victim.Commit(); err == nil {
		t.Fatal("aborted victim committed")
	}
}

func TestStaleLockSteal(t *testing.T) {
	// A writer that aborts without releasing (simulated via meta) leaves a
	// stale lock; the next writer steals it.
	s := newSTM(t, Config{})
	o := s.NewObject(0)
	dead := core.NewTxMeta(core.Short, 9)
	dead.TryAbort()
	if !o.CASWriter(nil, dead) {
		t.Fatal("setup failed")
	}
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Write(o, 5); err != nil {
		t.Fatalf("Write over stale lock = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterStats(t *testing.T) {
	s := newSTM(t, Config{})
	o := s.NewObject(0)
	th := s.NewThread()
	atomically(t, th, false, func(tx *Tx) error { return tx.Write(o, 1) })
	tx := th.Begin(core.Short, false)
	tx.Abort()
	st := s.Stats()
	if st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v, want 1 commit / 1 abort", st)
	}
}

func TestConcurrentCountersConsistent(t *testing.T) {
	// N workers increment a shared counter M times each; the final value
	// must be exactly N*M (atomicity + isolation under contention).
	s := newSTM(t, Config{})
	o := s.NewObject(int64(0))
	const workers, increments = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < increments; i++ {
				atomically(t, th, false, func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int64)+1)
				})
			}
		}()
	}
	wg.Wait()
	tx := s.NewThread().Begin(core.Short, true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(workers*increments) {
		t.Fatalf("counter = %v, want %d", v, workers*increments)
	}
}

func TestConcurrentDisjointWritesAllCommit(t *testing.T) {
	s := newSTM(t, Config{})
	const n = 16
	objs := make([]*core.Object, n)
	for i := range objs {
		objs[i] = s.NewObject(0)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := s.NewThread()
			atomically(t, th, false, func(tx *Tx) error { return tx.Write(objs[i], i) })
		}(i)
	}
	wg.Wait()
	if got := s.Stats().Commits; got != n {
		t.Fatalf("commits = %d, want %d", got, n)
	}
}

func TestMoneyConservation(t *testing.T) {
	// Transfers between accounts must conserve the total.
	s := newSTM(t, Config{})
	const accounts, transfers, workers = 10, 100, 4
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(int64(100))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < transfers; i++ {
				from := (seed + i) % accounts
				to := (seed + i*7 + 1) % accounts
				if from == to {
					continue
				}
				atomically(t, th, false, func(tx *Tx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int64)+1)
				})
			}
		}(w)
	}
	wg.Wait()

	var total int64
	th := s.NewThread()
	atomically(t, th, true, func(tx *Tx) error {
		total = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			total += v.(int64)
		}
		return nil
	})
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
}

func TestSimRealTimeBase(t *testing.T) {
	// The STM stays correct on the simulated real-time base with clock
	// deviation (paper §2 / [9]).
	s := newSTM(t, Config{Clock: clock.NewSimRealTime(8, 4, 0)})
	o := s.NewObject(int64(0))
	const workers, increments = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < increments; i++ {
				atomically(t, th, false, func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int64)+1)
				})
			}
		}()
	}
	wg.Wait()
	// A read-only transaction on a deviated clock may observe a slightly
	// stale (but consistent) snapshot — the paper's "snapshot in the
	// past". An update transaction must extend to the present, so it sees
	// the final value.
	var v any
	atomically(t, s.NewThread(), false, func(tx *Tx) error {
		var err error
		v, err = tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v)
	})
	if v != int64(workers*increments) {
		t.Fatalf("counter = %v, want %d", v, workers*increments)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Clock == nil || cfg.CM == nil {
		t.Fatal("defaults not applied")
	}
	if cfg.Versions != 8 {
		t.Fatalf("default Versions = %d, want 8", cfg.Versions)
	}
	if s.NewObject(nil).Retain() != 8 {
		t.Fatal("object retention does not match config")
	}
}

func TestThreadIDsDistinct(t *testing.T) {
	s := New(Config{})
	a, b := s.NewThread(), s.NewThread()
	if a.ID() == b.ID() {
		t.Fatal("thread IDs collide")
	}
	if a.STM() != s {
		t.Fatal("thread STM backlink wrong")
	}
}
