package lsa

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tbtm/internal/cm"
	"tbtm/internal/core"
)

// Torture tests: hostile contention management and external aborts must
// never break atomicity or leak locks.

func TestTortureAggressiveCM(t *testing.T) {
	// Every write conflict kills the lock holder: lots of mid-flight
	// aborts, but committed state must stay consistent.
	s := New(Config{CM: cm.Aggressive{}})
	const accounts, workers = 6, 6
	iters := 120
	if testing.Short() {
		iters = 40
	}
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(int64(100))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < iters; i++ {
				from := (seed + i) % accounts
				to := (seed + 3*i + 1) % accounts
				if from == to {
					continue
				}
				for attempt := 0; attempt < 50000; attempt++ {
					tx := th.Begin(core.Short, false)
					fv, err := tx.Read(objs[from])
					if err != nil {
						tx.Abort()
						continue
					}
					runtime.Gosched() // force interleaving on one CPU
					tv, err := tx.Read(objs[to])
					if err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Write(objs[to], tv.(int64)+1); err != nil {
						tx.Abort()
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// No leaked locks.
	for i, o := range objs {
		if w := o.Writer(); w != nil && !w.Status().Terminal() {
			t.Fatalf("object %d still locked by live tx after quiesce", i)
		}
	}
	// Conservation.
	var total int64
	tx := s.NewThread().Begin(core.Short, true)
	for _, o := range objs {
		v, err := tx.Read(o)
		if err != nil {
			t.Fatal(err)
		}
		total += v.(int64)
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
	if s.Stats().Aborts == 0 {
		t.Fatal("torture produced no aborts; test is vacuous")
	}
}

func TestTortureExternalKiller(t *testing.T) {
	// A killer goroutine aborts random active transactions from outside
	// (as a contention manager on another thread would). Victims must
	// fail cleanly with retryable errors and state must stay consistent.
	s := New(Config{})
	o1, o2 := s.NewObject(int64(0)), s.NewObject(int64(0))

	var cur atomic.Pointer[core.TxMeta]
	stop := make(chan struct{})
	var killerWg sync.WaitGroup
	killerWg.Add(1)
	go func() {
		defer killerWg.Done()
		kills := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m := cur.Load(); m != nil && m.TryAbortActive() {
				kills++
			}
		}
	}()

	th := s.NewThread()
	committed := 0
	for i := 0; i < 400; i++ {
		tx := th.Begin(core.Short, false)
		cur.Store(tx.Meta())
		err := func() error {
			v, err := tx.Read(o1)
			if err != nil {
				return err
			}
			if err := tx.Write(o1, v.(int64)+1); err != nil {
				return err
			}
			w, err := tx.Read(o2)
			if err != nil {
				return err
			}
			return tx.Write(o2, w.(int64)+1)
		}()
		cur.Store(nil)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			committed++
		} else if !core.IsRetryable(err) {
			t.Fatalf("non-retryable error from killed tx: %v", err)
		}
	}
	close(stop)
	killerWg.Wait()

	// Both counters must be equal (each committed tx bumped both).
	tx := th.Begin(core.Short, true)
	v1, err := tx.Read(o1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tx.Read(o2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("torn state after kills: o1=%v o2=%v", v1, v2)
	}
	if v1 != int64(committed) {
		t.Fatalf("o1 = %v, committed = %d", v1, committed)
	}
}

func TestTortureStaleLockStorm(t *testing.T) {
	// Repeatedly abandon aborted transactions holding locks; later
	// writers must steal them and proceed.
	s := New(Config{})
	o := s.NewObject(int64(0))
	th := s.NewThread()
	for i := 0; i < 100; i++ {
		tx := th.Begin(core.Short, false)
		if err := tx.Write(o, int64(i)); err != nil {
			t.Fatal(err)
		}
		// Kill it without releasing (simulates a crashed thread): Abort
		// releases, so emulate via meta directly.
		tx.Meta().TryAbort()
		// Next writer steals the stale lock.
		tx2 := th.Begin(core.Short, false)
		if err := tx2.Write(o, int64(i)); err != nil {
			t.Fatalf("iteration %d: steal failed: %v", i, err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatalf("iteration %d: commit after steal: %v", i, err)
		}
	}
	v, err := th.Begin(core.Short, true).Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(99) {
		t.Fatalf("final value = %v", v)
	}
}
