// Package lsa implements LSA-STM, the multi-version time-based STM of
// Riegel, Felber and Fetzer (DISC 2006 [8]) that the paper uses both as
// its linearizable baseline and as the engine for Z-STM's short
// transactions (§5.1).
//
// The algorithm follows the TBTM template of paper §2: transactions build
// a consistent snapshot at a scalar snapshot time, extend the snapshot's
// validity on demand by revalidating the read set, buffer updates locally
// under eagerly-acquired write ownership, and validate the read set at an
// atomically acquired commit time. Multi-version objects let read-only
// transactions fall back to old versions instead of aborting.
//
// Two configuration points reproduce the paper's variants:
//
//   - Versions=1 and NoExtension=true yield the lean single-version TBTM
//     of TL2 (paper §3).
//   - NoReadSets=true makes declared read-only transactions skip read-set
//     maintenance entirely and read at a fixed snapshot time, the
//     "LSA-STM (no readsets)" series of Figure 6.
package lsa

import (
	"sync/atomic"

	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/epoch"
	"tbtm/internal/stats"
)

// Config parameterizes an STM instance.
type Config struct {
	// Clock is the scalar time base. Nil means a fresh shared counter.
	Clock clock.TimeBase
	// CM arbitrates write/write conflicts. Nil means Polite.
	CM cm.Manager
	// Versions is the per-object retention depth. Values below 1 mean the
	// default of 8; exactly 1 gives single-version (TL2-like) objects.
	Versions int
	// NoExtension disables snapshot extension (TL2-like).
	NoExtension bool
	// NoReadSets makes read-only transactions skip read-set maintenance
	// and read at their fixed start-time snapshot (Figure 6's optimized
	// LSA-STM variant).
	NoReadSets bool
	// GuardLongWriters makes reads arbitrate with active writers whose
	// kind is Long. Z-STM sets this: long transactions skip commit-time
	// validation, so a short transaction must not read around an active
	// long writer (see DESIGN.md §5). Plain LSA-STM leaves it off —
	// invisible reads plus commit validation already give
	// linearizability.
	GuardLongWriters bool
	// ValidationFastPath enables the RSTM-style commit fast path
	// (paper §3): when the time base is strictly commit-counting and the
	// acquired commit time is exactly the snapshot time plus one, no
	// other transaction committed in between and per-object read-set
	// validation is skipped. Ignored (with no loss of correctness) on
	// time bases that do not implement clock.StrictCommitCounting.
	ValidationFastPath bool
	// Lot, when non-nil, receives a wakeup for every object an update
	// commit installs a version into, unblocking transactions parked in
	// the facade's Retry. Nil keeps the commit path wake-free.
	Lot *core.ParkingLot
	// CommitLog sizes the global commit log backing O(1) snapshot
	// extension: every update commit publishes (commit time, written
	// object IDs) into a fixed ring, and tryExtend validates by scanning
	// only the log window between the snapshot and the target time
	// against the transaction's read footprint, falling back to the full
	// read-set walk when the window wrapped or hit the footprint. 0
	// enables the log at core.DefaultCommitLogSlots, positive values set
	// the ring size, and negative values disable the log. The log
	// requires a dense tick sequence, so it is only armed on strictly
	// commit-counting time bases (clock.StrictCommitCounting); elsewhere
	// it is ignored with no loss of correctness, like ValidationFastPath.
	CommitLog int
	// CrossCheck makes every commit-log fast-path decision re-run the
	// full read-set walk and panic if the two disagree (the log admitted
	// an extension full validation would reject). Test harness only: the
	// conformance fuzzer keeps it on so the torture workloads prove the
	// fast path sound on every extension.
	CrossCheck bool
}

// Stats is a snapshot of an STM instance's cumulative counters.
type Stats struct {
	Commits         uint64 // transactions committed
	Aborts          uint64 // transactions aborted, any reason
	Conflicts       uint64 // aborts due to validation failure or lost arbitration
	Extensions      uint64 // successful snapshot extensions
	OldVersions     uint64 // reads served by a non-current version
	SnapshotMiss    uint64 // aborts because no retained version was old enough
	FastValidations uint64 // commits that skipped read-set validation (fast path)
	ExtensionsFast  uint64 // extensions validated by the commit-log window alone
	ExtensionsFull  uint64 // extensions that walked the full read set
	LogWraps        uint64 // fast-path fallbacks because the log window wrapped
}

// Counter slots within a thread's stats shard.
const (
	cntCommits = iota
	cntAborts
	cntConflicts
	cntExtensions
	cntOldVersions
	cntSnapshotMiss
	cntFastValidations
	cntExtensionsFast
	cntExtensionsFull
	cntLogWraps
)

// STM is an LSA-STM instance. Create one with New; objects and threads
// are bound to the instance that created them.
type STM struct {
	cfg Config
	// fastOK caches whether the fast path is usable: configured on and
	// running on a strictly commit-counting time base.
	fastOK bool
	// log is the global commit log, nil when disabled (Config.CommitLog
	// < 0) or when the time base is not strictly commit-counting.
	log *core.CommitLog

	nextThread atomic.Int64

	// shards holds the per-thread counter shards; see internal/stats.
	shards stats.Set

	// domain is the epoch-based reclamation domain: threads pin around
	// every transaction so retired versions and descriptors are reused
	// only after their grace period (see internal/epoch).
	domain epoch.Domain
}

// New returns an STM instance with the given configuration, applying
// defaults for zero fields.
func New(cfg Config) *STM {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewCounter()
	}
	if cfg.CM == nil {
		cfg.CM = &cm.Polite{}
	}
	if cfg.Versions < 1 {
		cfg.Versions = 8
	}
	_, strict := cfg.Clock.(clock.StrictCommitCounting)
	s := &STM{cfg: cfg, fastOK: cfg.ValidationFastPath && strict}
	if cfg.CommitLog >= 0 && strict {
		s.log = core.NewCommitLog(cfg.CommitLog)
	}
	return s
}

// Log returns the commit log, or nil when disabled. Z-STM's long
// transactions commit through the same time base and must publish their
// write sets here so that short-transaction extensions account for them.
func (s *STM) Log() *core.CommitLog { return s.log }

// Config returns the effective configuration.
func (s *STM) Config() Config { return s.cfg }

// Clock returns the instance's time base (shared with Z-STM wrappers).
func (s *STM) Clock() clock.TimeBase { return s.cfg.Clock }

// NewObject allocates a transactional object with the given initial value
// and the instance's retention depth.
func (s *STM) NewObject(initial any) *core.Object {
	return core.NewObject(initial, s.cfg.Versions)
}

// NewThread returns a handle for one worker goroutine. Handles carry the
// per-thread state of the paper's algorithms and must not be shared.
func (s *STM) NewThread() *Thread {
	th := &Thread{stm: s, id: int(s.nextThread.Add(1) - 1), shard: s.shards.NewShard()}
	th.rec.Init(&s.domain)
	return th
}

// Stats returns a snapshot of the cumulative counters, aggregated across
// the per-thread shards.
func (s *STM) Stats() Stats {
	c := s.shards.Snapshot()
	return Stats{
		Commits:         c[cntCommits],
		Aborts:          c[cntAborts],
		Conflicts:       c[cntConflicts],
		Extensions:      c[cntExtensions],
		OldVersions:     c[cntOldVersions],
		SnapshotMiss:    c[cntSnapshotMiss],
		FastValidations: c[cntFastValidations],
		ExtensionsFast:  c[cntExtensionsFast],
		ExtensionsFull:  c[cntExtensionsFull],
		LogWraps:        c[cntLogWraps],
	}
}

// Thread is a per-goroutine handle. Besides the algorithm's per-thread
// state it owns a stats shard and a reusable transaction descriptor, so
// the begin→commit hot path performs no descriptor allocation.
type Thread struct {
	stm   *STM
	id    int
	shard *stats.Shard
	tx    Tx            // reusable descriptor, recycled by Begin once finished
	rec   core.Recycler // epoch-gated version/descriptor pools
	idbuf []uint64      // reusable write-set ID buffer for commit-log publication
}

// ID returns the thread's index in the time base.
func (th *Thread) ID() int { return th.id }

// Recycler exposes the thread's reclamation handle (Z-STM's long
// transactions share it).
func (th *Thread) Recycler() *core.Recycler { return &th.rec }

// STM returns the owning instance.
func (th *Thread) STM() *STM { return th.stm }

// Begin starts a transaction. kind is the short/long classification used
// by contention managers; readOnly declares that the transaction will not
// write, enabling the no-readset fast path and old-version fallbacks.
//
// Begin may recycle the thread's previous transaction descriptor: a *Tx
// is invalid after Commit or Abort and must not be retained across the
// next Begin on the same thread.
func (th *Thread) Begin(kind core.TxKind, readOnly bool) *Tx {
	tx := &th.tx
	if tx.stm != nil && !tx.done {
		// The previous transaction is still in flight (a contract
		// violation, but tolerated): leave its descriptor alone. Note
		// that the abandoned transaction keeps the thread's epoch slot
		// pinned (nested) until it finishes; if it never does, the
		// domain stops advancing and every pool in the instance falls
		// back to plain GC allocation — a graceful performance
		// degradation, never a safety issue.
		tx = new(Tx)
	}
	tx.reset(th, kind, readOnly)
	return tx
}

// reset re-initializes a descriptor in place, retaining the read/write
// logs' backing arrays and the write index's storage from the previous
// transaction. The descriptor metadata comes from the thread's
// epoch-gated pool: TxMeta is published to other threads through object
// writer words and contention managers, so naive recycling would invite
// ABA races on lock stealing — the previous transaction's meta is
// therefore retired here and reused only after every pin concurrent
// with the retirement has been released (see core.Recycler).
func (tx *Tx) reset(th *Thread, kind core.TxKind, readOnly bool) {
	th.rec.Pin() // read-side critical section: Begin → finish
	if tx.meta != nil {
		// The previous transaction on this descriptor has finished and
		// released its writer words; its meta is unreachable for new
		// readers and may enter the reclamation pipeline.
		th.rec.RetireMeta(tx.meta)
	}
	tx.stm = th.stm
	tx.th = th
	tx.meta = th.rec.NewMeta(kind, th.id)
	tx.ro = readOnly
	tx.ub = th.stm.cfg.Clock.Now(th.id)
	clear(tx.reads) // release the previous transaction's objects/values
	clear(tx.writes)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex.Reset()
	tx.rindex.Reset()
	tx.zone = 0
	tx.commitCheck = nil
	tx.done = false
	tx.retries = 0
}

// readEntry records one read: the version observed and its object.
type readEntry struct {
	obj *core.Object
	ver *core.Version
}

// writeEntry buffers one tentative update.
type writeEntry struct {
	obj *core.Object
	val any
}

// Tx is an LSA transaction. A Tx is used by a single goroutine; after
// Commit or Abort it is invalid — the next Begin on the owning thread
// recycles the descriptor in place.
type Tx struct {
	stm  *STM
	th   *Thread
	meta *core.TxMeta
	ro   bool

	// ub is the snapshot time: every read is consistent at time ub.
	ub uint64

	reads       []readEntry
	writes      []writeEntry
	windex      core.SmallIndex // object ID → index into writes
	rindex      core.SmallIndex // object ID → index into reads (footprint membership)
	zone        uint64          // z-linearizability zone tag for installs
	commitCheck func() error    // extra validation while committing
	done        bool
	retries     int
}

// SetZone tags the transaction's future installs with the given
// z-linearizability zone (used by Z-STM's short transactions so that an
// active long transaction can distinguish same-zone writes; plain LSA
// leaves it zero).
func (tx *Tx) SetZone(z uint64) { tx.zone = z }

// SetCommitCheck installs an additional validation hook, invoked during
// Commit after the transaction has entered the committing state (write
// locks held) and before its updates install. A non-nil error aborts the
// commit with that error. Z-STM uses it to re-validate zone membership of
// the write set: a long transaction may have stamped an object between
// the zone check at open and the lock acquisition, and once we are
// committing, the long's open-time arbitration serializes against us.
func (tx *Tx) SetCommitCheck(fn func() error) { tx.commitCheck = fn }

// Meta exposes the shared descriptor (used by Z-STM and tests).
func (tx *Tx) Meta() *core.TxMeta { return tx.meta }

// Done reports whether the transaction has finished (committed or
// aborted) and its descriptor may be recycled. A nil receiver counts as
// done, so a never-used handle slot can be recycled uniformly.
func (tx *Tx) Done() bool { return tx == nil || tx.done }

// ReadOnly reports whether the transaction was declared read-only.
func (tx *Tx) ReadOnly() bool { return tx.ro }

// SnapshotTime returns the current snapshot time ub.
func (tx *Tx) SnapshotTime() uint64 { return tx.ub }

// ReadSetSize returns the number of tracked read entries (zero on the
// no-readset fast path), exposed for tests and the ablation benches.
func (tx *Tx) ReadSetSize() int { return len(tx.reads) }

// Watches appends the transaction's read footprint to buf as (object,
// read-version Seq) pairs and returns the extended slice. It must be
// called before the descriptor is recycled by the thread's next Begin;
// the recorded Seqs stay meaningful afterwards (they are plain values,
// not version pointers). Declared read-only transactions on the
// no-readset fast path have no footprint to report.
func (tx *Tx) Watches(buf []core.Watch) []core.Watch {
	for i := range tx.reads {
		r := &tx.reads[i]
		buf = append(buf, core.Watch{ID: r.obj.ID(), Seq: r.ver.Seq, Obj: r.obj})
	}
	return buf
}

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time. It is called after the transaction
// finished, so it briefly re-enters the thread's epoch critical section:
// a version displaced after the pin cannot be recycled until the
// matching unpin, which keeps the Current().Seq read safe against the
// version pools.
func (tx *Tx) WatchesStale(ws []core.Watch) bool {
	tx.th.rec.Pin()
	defer tx.th.rec.Unpin()
	return core.StaleScalar(ws)
}

// noReadSetFastPath reports whether this transaction skips read tracking.
func (tx *Tx) noReadSetFastPath() bool { return tx.ro && tx.stm.cfg.NoReadSets }

// stabilize waits until o has no committing writer (its install is in
// flight) and returns the current writer, which is nil, tx's own meta, a
// still-active enemy, or a terminal leftover.
//
//tbtm:pinned
func (tx *Tx) stabilize(o *core.Object) *core.TxMeta {
	for round := 0; ; round++ {
		w := o.Writer()
		if w == nil || w == tx.meta {
			return w
		}
		if w.Status() == core.StatusCommitting {
			cm.Backoff(round)
			continue
		}
		return w
	}
}

// newestAt returns the newest version of o with TS <= t, or nil.
//
//tbtm:pinned
//tbtm:noalloc
func newestAt(o *core.Object, t uint64) *core.Version {
	for v := o.Current(); v != nil; v = v.Prev() {
		if v.TS <= t {
			return v
		}
	}
	return nil
}

// fail aborts the transaction and returns err.
func (tx *Tx) fail(err error) error {
	tx.abortInternal(true)
	return err
}

// Read returns the transaction's view of o.
//
//tbtm:pinned
func (tx *Tx) Read(o *core.Object) (any, error) {
	if tx.done {
		return nil, core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return nil, tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		return tx.writes[i].val, nil // read-own-writes
	}
	if i, ok := tx.rindex.Get(o.ID()); ok {
		// Re-read: return the version recorded first. Serving the logged
		// entry keeps the read set free of duplicate (and potentially
		// diverging) entries for one object and is exactly the value the
		// snapshot at ub is committed to.
		return tx.reads[i].ver.Value, nil
	}
	tx.meta.Prio.Add(1)

	for {
		w := tx.stabilize(o)
		if w != nil && w != tx.meta && w.Status() == core.StatusActive &&
			w.Kind == core.Long && tx.stm.cfg.GuardLongWriters {
			// Under Z-STM, reading around an active long writer would let
			// this transaction both precede and follow it; arbitrate.
			if !cm.Resolve(tx.stm.cfg.CM, tx.meta, w) {
				return nil, tx.fail(core.ErrAborted)
			}
			continue // enemy terminal; re-examine
		}

		if tx.noReadSetFastPath() {
			v := newestAt(o, tx.ub)
			if v == nil {
				tx.th.shard.Inc(cntSnapshotMiss)
				return nil, tx.fail(core.ErrSnapshotUnavailable)
			}
			if tx.zoneUnsafe(o, v) {
				tx.th.shard.Inc(cntConflicts)
				return nil, tx.fail(core.ErrConflict)
			}
			if v != o.Current() {
				tx.th.shard.Inc(cntOldVersions)
			}
			return v.Value, nil
		}

		v := o.Current()
		if v.TS > tx.ub {
			// The current version is newer than our snapshot: try to
			// extend the snapshot's validity to now.
			if tx.tryExtend() {
				continue // re-examine with the larger ub
			}
			if tx.ro {
				// Multi-version fallback: serve an old version valid at ub.
				v = newestAt(o, tx.ub)
				if v == nil {
					tx.th.shard.Inc(cntSnapshotMiss)
					return nil, tx.fail(core.ErrSnapshotUnavailable)
				}
				if tx.zoneUnsafe(o, v) {
					tx.th.shard.Inc(cntConflicts)
					return nil, tx.fail(core.ErrConflict)
				}
				tx.th.shard.Inc(cntOldVersions)
			} else {
				tx.th.shard.Inc(cntConflicts)
				return nil, tx.fail(core.ErrConflict)
			}
		}
		tx.rindex.Put(o.ID(), len(tx.reads))
		tx.reads = append(tx.reads, readEntry{obj: o, ver: v})
		return v.Value, nil
	}
}

// tryExtend attempts to move the snapshot time forward to the time base's
// current value, revalidating every read. It returns false without side
// effects if any read version is no longer current (or extension is
// disabled).
//
// With the commit log armed, the common extension is O(commits since
// ub): the log window (ub, now] is scanned against the read footprint,
// and only a wrapped window or a footprint hit falls back to the full
// read-set walk. The window is complete because on a strictly
// commit-counting time base every tick at or below the observed now was
// acquired — and its record claimed — before Now returned it.
//
//tbtm:pinned
func (tx *Tx) tryExtend() bool {
	if tx.stm.cfg.NoExtension {
		return false
	}
	now := tx.stm.cfg.Clock.Now(tx.th.id)
	if now <= tx.ub {
		return false
	}
	if tx.logClear(tx.ub, now) {
		tx.ub = now
		tx.th.shard.Inc(cntExtensions)
		tx.th.shard.Inc(cntExtensionsFast)
		return true
	}
	if !tx.validateAt(now) {
		return false
	}
	tx.ub = now
	tx.th.shard.Inc(cntExtensions)
	tx.th.shard.Inc(cntExtensionsFull)
	return true
}

// logClear reports whether the commit log proves no transaction that
// committed (or is committing) with a tick in (lb, ub] wrote any object
// in the transaction's read footprint — in which case every read is
// still the newest version at ub and the snapshot extends without
// touching the read set. Any other outcome (hit, wrap, unpublished
// record) means "validate the slow way", never "conflict": records are
// published before their writer's own validation, so a hit may stem
// from a writer that went on to abort.
//
//tbtm:pinned
func (tx *Tx) logClear(lb, ub uint64) bool {
	log := tx.stm.log
	if log == nil {
		return false
	}
	verdict := log.Check(lb, ub, &tx.rindex)
	if verdict == core.LogWrapped {
		tx.th.shard.Inc(cntLogWraps)
	}
	if verdict != core.LogClear {
		return false
	}
	if tx.stm.cfg.CrossCheck && !tx.validateAt(ub) {
		panic("lsa: commit-log fast path admitted an extension full validation rejects")
	}
	return true
}

// zoneUnsafe reports whether serving v — an old version of o, valid at
// the scalar snapshot time — would tear the zone serialization: a
// version newer than v installed by a long transaction whose zone is at
// or below this transaction's label (tagged core.LongZoneTag by Z-STM's
// long commit) must be visible to us, because every long with zone <= z
// serializes before every short labeled z. The scalar snapshot at ub
// can legally predate such an install — longs commit "in the past",
// their versions landing late on the scalar timeline — so old-version
// reads must refuse to skip them even though LSA's own linearizability
// at ub holds. Plain LSA transactions carry zone 0 and skip the walk.
//
//tbtm:pinned
//tbtm:noalloc
func (tx *Tx) zoneUnsafe(o *core.Object, v *core.Version) bool {
	if tx.zone == 0 {
		return false
	}
	for w := o.Current(); w != nil && w != v; w = w.Prev() {
		if w.Zone&core.LongZoneTag != 0 && w.Zone&^core.LongZoneTag <= tx.zone {
			return true
		}
	}
	return false
}

// validateAt reports whether every read version is still the newest
// version at time t. Committing writers are waited out first so that
// in-flight installs (whose commit time may be <= t) are observed.
//
//tbtm:pinned
func (tx *Tx) validateAt(t uint64) bool {
	for _, r := range tx.reads {
		tx.stabilize(r.obj)
		if newestAt(r.obj, t) != r.ver {
			return false
		}
	}
	return true
}

// Write buffers an update of o to val, acquiring write ownership eagerly
// so write/write conflicts are detected at open time (paper §2).
func (tx *Tx) Write(o *core.Object, val any) error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.ro {
		return core.ErrReadOnly
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		tx.writes[i].val = val
		return nil
	}
	tx.meta.Prio.Add(1)

	for round := 0; ; round++ {
		if tx.meta.Status() == core.StatusAborted {
			return tx.fail(core.ErrAborted)
		}
		w := o.Writer()
		switch {
		case w == nil:
			if o.CASWriter(nil, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		case w == tx.meta:
			tx.recordWrite(o, val)
			return nil
		case w.Status().Terminal():
			if o.CASWriter(w, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		default:
			if !cm.Resolve(tx.stm.cfg.CM, tx.meta, w) {
				tx.th.shard.Inc(cntConflicts)
				return tx.fail(core.ErrAborted)
			}
		}
		// The same progression as the stabilize/Resolve spin loops: round
		// 0 merely yields, every later round sleeps. The earlier round/4
		// damping made the first four conflict rounds zero-delay spins,
		// hammering the writer word while the enemy tried to finish.
		cm.Backoff(round)
	}
}

func (tx *Tx) recordWrite(o *core.Object, val any) {
	tx.windex.Put(o.ID(), len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
}

// Commit attempts to commit the transaction. On success the buffered
// writes are installed atomically at a fresh commit time. On failure the
// transaction is aborted and a retryable error returned.
func (tx *Tx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}

	// Read-only (or write-free) transactions commit directly after the
	// snapshot phase (paper §2): the snapshot is consistent at ub.
	if len(tx.writes) == 0 {
		if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitted) {
			return tx.fail(core.ErrAborted)
		}
		tx.finish()
		tx.th.shard.Inc(cntCommits)
		return nil
	}

	if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitting) {
		return tx.fail(core.ErrAborted)
	}
	if tx.commitCheck != nil {
		if err := tx.commitCheck(); err != nil {
			tx.meta.CASStatus(core.StatusCommitting, core.StatusAborted)
			tx.releaseLocks()
			tx.finish()
			tx.th.shard.Inc(cntAborts)
			tx.th.shard.Inc(cntConflicts)
			return err
		}
	}
	ct := tx.stm.cfg.Clock.CommitTime(tx.th.id)
	tx.meta.CommitTick = ct
	// Publish the write set into the commit log immediately after
	// acquiring the commit time and before validating: the tick is the
	// claim, so a concurrent extension scanning past ct finds the record
	// (or spins briefly on it) instead of missing our in-flight installs.
	// If validation fails below, the record stays behind as a false
	// positive — extensions that hit it merely fall back to the full
	// walk.
	tx.publishLog(ct)
	// RSTM fast path: on a strictly commit-counting time base,
	// ct == ub+1 means no transaction committed between the (validated)
	// snapshot at ub and our commit — versions with TS <= ub were all
	// installed or lock-protected when read (stabilize), so the read set
	// is trivially still valid at ct. The commit log generalizes it: any
	// commits in (ub, ct-1] that avoided the read footprint leave the
	// read set just as valid at ct (tick ct is ours).
	if (tx.stm.fastOK && ct == tx.ub+1) || tx.logClear(tx.ub, ct-1) {
		tx.th.shard.Inc(cntFastValidations)
	} else if !tx.validateAt(ct) {
		tx.meta.CASStatus(core.StatusCommitting, core.StatusAborted)
		tx.releaseLocks()
		tx.finish()
		tx.th.shard.Inc(cntAborts)
		tx.th.shard.Inc(cntConflicts)
		return core.ErrConflict
	}
	for _, w := range tx.writes {
		w.obj.InstallRecycled(&tx.th.rec, w.val, ct, tx.meta.ID, tx.zone)
	}
	tx.meta.CASStatus(core.StatusCommitting, core.StatusCommitted)
	tx.releaseLocks()
	tx.finish()
	tx.wake()
	tx.th.shard.Inc(cntCommits)
	return nil
}

// publishLog records the transaction's write set in the commit log
// under its freshly acquired commit time, reusing the thread's ID
// buffer so the hot path allocates nothing once warm.
//
//tbtm:noalloc
func (tx *Tx) publishLog(ct uint64) {
	log := tx.stm.log
	if log == nil {
		return
	}
	ids := tx.th.idbuf[:0]
	for i := range tx.writes {
		ids = append(ids, tx.writes[i].obj.ID())
	}
	tx.th.idbuf = ids
	log.Publish(ct, ids)
}

// wake publishes a wakeup for every written object once the commit is
// fully visible (versions installed, status committed, locks released),
// so a parked reader that re-runs immediately neither misses the new
// values nor collides with our writer words.
func (tx *Tx) wake() {
	lot := tx.stm.cfg.Lot
	if lot == nil {
		return
	}
	for _, w := range tx.writes {
		lot.Wake(w.obj.ID())
	}
}

// Abort aborts the transaction explicitly. Aborting a finished
// transaction is a no-op.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.abortInternal(false)
}

func (tx *Tx) abortInternal(countConflict bool) {
	_ = countConflict
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.finish()
	tx.th.shard.Inc(cntAborts)
}

func (tx *Tx) releaseLocks() {
	for _, w := range tx.writes {
		w.obj.ReleaseWriter(tx.meta)
	}
}

func (tx *Tx) finish() {
	tx.done = true
	tx.th.rec.Unpin()
}
