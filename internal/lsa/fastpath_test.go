package lsa

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/clock"
	"tbtm/internal/core"
)

func TestFastPathTakenWhenNoProgress(t *testing.T) {
	s := New(Config{ValidationFastPath: true})
	objs := make([]*core.Object, 16)
	for i := range objs {
		objs[i] = s.NewObject(int64(i))
	}
	th := s.NewThread()

	tx := th.Begin(core.Short, false)
	for _, o := range objs {
		if _, err := tx.Read(o); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if err := tx.Write(objs[0], int64(100)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := s.Stats().FastValidations; got != 1 {
		t.Fatalf("FastValidations = %d, want 1 (uncontended commit)", got)
	}
}

func TestFastPathSkippedAfterInterleavedCommit(t *testing.T) {
	// Log off: this test pins the bare RSTM ct==ub+1 rule, which the
	// commit log deliberately generalizes (a disjoint interleaved commit
	// leaves the log window clear and the fast path fires — see
	// TestCommitLogFastValidationDisjoint).
	s := New(Config{ValidationFastPath: true, CommitLog: -1})
	a := s.NewObject(int64(0))
	b := s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(a); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := tx.Write(a, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// A disjoint transaction commits in between: progress happened, the
	// fast path must not fire, and slow validation must still pass.
	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(b, int64(9)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := s.Stats()
	// The disjoint commit may itself have used the fast path; ours must
	// not have (2 commits, at most 1 fast).
	if st.FastValidations > 1 {
		t.Fatalf("FastValidations = %d, want <= 1", st.FastValidations)
	}
	if st.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", st.Commits)
	}
}

func TestFastPathStillDetectsRealConflict(t *testing.T) {
	s := New(Config{ValidationFastPath: true})
	o := s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(o); err != nil {
		t.Fatalf("Read: %v", err)
	}

	// Enemy overwrites what tx read and commits.
	enemy := s.NewThread().Begin(core.Short, false)
	if err := enemy.Write(o, int64(1)); err != nil {
		t.Fatalf("enemy Write: %v", err)
	}
	if err := enemy.Commit(); err != nil {
		t.Fatalf("enemy Commit: %v", err)
	}

	// tx writes another object; its commit time is enemy's + 1, but the
	// snapshot is stale: ct != ub+1, so the slow path runs and aborts.
	o2 := s.NewObject(int64(0))
	if err := tx.Write(o2, int64(2)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
}

func TestFastPathIgnoredOnNonCountingClock(t *testing.T) {
	// SharingCounter can hand two committers the same tick; the fast
	// path must stay off even when requested.
	s := New(Config{ValidationFastPath: true, Clock: clock.NewSharingCounter()})
	o := s.NewObject(int64(0))
	th := s.NewThread()
	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := s.Stats().FastValidations; got != 0 {
		t.Fatalf("FastValidations = %d, want 0 on sharing counter", got)
	}
}

func TestFastPathInvariantUnderContention(t *testing.T) {
	// The bank invariant must hold with the fast path on: concurrent
	// transfers conserve the total.
	s := New(Config{ValidationFastPath: true})
	const accounts = 8
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = s.NewObject(int64(100))
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < 200; i++ {
				from := (seed + i) % accounts
				to := (seed + 3*i + 1) % accounts
				if from == to {
					continue
				}
				for {
					tx := th.Begin(core.Short, false)
					f, err := tx.Read(objs[from])
					if err == nil {
						var g any
						g, err = tx.Read(objs[to])
						if err == nil {
							if err = tx.Write(objs[from], f.(int64)-1); err == nil {
								if err = tx.Write(objs[to], g.(int64)+1); err == nil {
									err = tx.Commit()
								}
							}
						}
					}
					if err == nil {
						break
					}
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	tx := s.NewThread().Begin(core.Short, true)
	for _, o := range objs {
		v, err := tx.Read(o)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		total += v.(int64)
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d (fast path broke isolation)", total, accounts*100)
	}
}
