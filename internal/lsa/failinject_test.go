package lsa

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tbtm/internal/cm"
	"tbtm/internal/core"
)

// Failure injection: transactions that stall, get abandoned, or are
// killed mid-flight must never wedge the system or corrupt isolation.
// The paper's liveness story delegates to the contention manager (§4.1)
// and to waiting out committing transactions (§4.2); these tests pin the
// corresponding behaviours in LSA.

// TestAbandonedWriterLockIsStolen abandons a transaction that holds a
// write lock (its goroutine "crashes" without calling Abort). Another
// writer must arbitrate, kill it, and steal the lock.
func TestAbandonedWriterLockIsStolen(t *testing.T) {
	s := New(Config{CM: &cm.Polite{Attempts: 2}})
	o := s.NewObject(int64(0))

	zombie := s.NewThread().Begin(core.Short, false)
	if err := zombie.Write(o, int64(1)); err != nil {
		t.Fatalf("zombie Write: %v", err)
	}
	// The zombie never commits and never aborts.

	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Write(o, int64(2)); err != nil {
		t.Fatalf("Write against zombie: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// The zombie descriptor was force-aborted by the contention manager.
	if got := zombie.Meta().Status(); got != core.StatusAborted {
		t.Fatalf("zombie status = %v, want aborted", got)
	}
	// Its own later operations observe the kill.
	if err := zombie.Commit(); err == nil {
		t.Fatal("zombie committed after being killed")
	}
}

// TestKilledTransactionWritesNeverVisible kills a transaction that
// buffered writes; none of them may become visible.
func TestKilledTransactionWritesNeverVisible(t *testing.T) {
	s := New(Config{CM: cm.Aggressive{}})
	a := s.NewObject(int64(0))
	b := s.NewObject(int64(0))

	victim := s.NewThread().Begin(core.Short, false)
	if err := victim.Write(a, int64(7)); err != nil {
		t.Fatalf("victim Write a: %v", err)
	}
	if err := victim.Write(b, int64(7)); err != nil {
		t.Fatalf("victim Write b: %v", err)
	}

	killer := s.NewThread().Begin(core.Short, false)
	if err := killer.Write(a, int64(1)); err != nil {
		t.Fatalf("killer Write: %v", err)
	}
	if err := killer.Commit(); err != nil {
		t.Fatalf("killer Commit: %v", err)
	}

	if err := victim.Commit(); err == nil {
		t.Fatal("victim survived an aggressive kill")
	}

	rd := s.NewThread().Begin(core.Short, true)
	va, err := rd.Read(a)
	if err != nil {
		t.Fatalf("Read a: %v", err)
	}
	vb, err := rd.Read(b)
	if err != nil {
		t.Fatalf("Read b: %v", err)
	}
	if va != int64(1) || vb != int64(0) {
		t.Fatalf("a=%v b=%v; victim writes leaked", va, vb)
	}
}

// TestDelayedCommitterIsWaitedOut injects a long pause between a
// committer acquiring its commit time and installing its versions, by
// holding it in the committing state via a commit check. Readers must
// wait (stabilize) rather than observe a half-installed commit.
func TestDelayedCommitterIsWaitedOut(t *testing.T) {
	s := New(Config{})
	a := s.NewObject(int64(0))
	b := s.NewObject(int64(0))

	slow := s.NewThread().Begin(core.Short, false)
	if err := slow.Write(a, int64(5)); err != nil {
		t.Fatalf("slow Write a: %v", err)
	}
	if err := slow.Write(b, int64(-5)); err != nil {
		t.Fatalf("slow Write b: %v", err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	slow.SetCommitCheck(func() error {
		close(entered)
		<-release // stall in StatusCommitting, locks held
		return nil
	})

	done := make(chan error, 1)
	go func() { done <- slow.Commit() }()
	<-entered

	// A reader starting now must either see both writes or neither.
	readerDone := make(chan error, 1)
	go func() {
		th := s.NewThread()
		for i := 0; i < 50; i++ {
			tx := th.Begin(core.Short, true)
			va, err := tx.Read(a)
			if err != nil {
				readerDone <- err
				return
			}
			vb, err := tx.Read(b)
			if err != nil {
				readerDone <- err
				return
			}
			if va.(int64)+vb.(int64) != 0 {
				readerDone <- errors.New("torn commit observed")
				return
			}
			tx.Abort()
		}
		readerDone <- nil
	}()

	time.Sleep(5 * time.Millisecond) // give the reader time to collide
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slow Commit: %v", err)
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
}

// TestManyAbandonedTransactionsNoLeakOfProgress abandons a batch of
// lock holders; the system must still make progress afterwards for every
// object.
func TestManyAbandonedTransactionsNoLeakOfProgress(t *testing.T) {
	s := New(Config{CM: &cm.Polite{Attempts: 1}})
	const n = 16
	objs := make([]*core.Object, n)
	for i := range objs {
		objs[i] = s.NewObject(int64(0))
	}
	// Abandon a writer on every object.
	for i := range objs {
		z := s.NewThread().Begin(core.Short, false)
		if err := z.Write(objs[i], int64(-1)); err != nil {
			t.Fatalf("zombie %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := range objs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := s.NewThread()
			for {
				tx := th.Begin(core.Short, false)
				err := tx.Write(objs[i], int64(i))
				if err == nil {
					err = tx.Commit()
				}
				if err == nil {
					return
				}
				if !core.IsRetryable(err) {
					errs <- err
					return
				}
				tx.Abort()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rd := s.NewThread().Begin(core.Short, true)
	for i, o := range objs {
		v, err := rd.Read(o)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if v != int64(i) {
			t.Fatalf("obj %d = %v, want %d", i, v, i)
		}
	}
}
