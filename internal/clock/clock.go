// Package clock provides the scalar global time bases of a time-based
// transactional memory (paper §2): a shared linearizable integer counter,
// a TL2-style counter that lets transactions share commit times, and a
// simulated set of internally-synchronized real-time clocks with bounded
// deviation (substituting for the hardware clocks of Riegel et al.,
// SPAA 2007 [9] — see DESIGN.md §7).
package clock

import (
	"sync/atomic"
	"time"
)

// TimeBase is the global time base a scalar-clock TBTM reasons with.
// Implementations must be safe for concurrent use.
//
// thread identifies the calling Thread handle; counter-based time bases
// ignore it, while per-thread real-time clocks use it to select the
// thread's (possibly deviating) clock.
type TimeBase interface {
	// Now returns the current time as perceived by thread.
	Now(thread int) uint64
	// CommitTime acquires a commit time for an update transaction run by
	// thread. Acquiring a commit time models progress: the time returned
	// is greater than any time previously returned by Now on a thread
	// that has since synchronized with the time base.
	CommitTime(thread int) uint64
}

// StrictCommitCounting marks a time base whose value advances exactly
// once per acquired commit time and never otherwise. On such a time base
// a transaction whose commit time equals its snapshot time plus one
// knows that no other transaction committed in between, enabling the
// RSTM-style validation fast path (paper §3: "it reads the counter when
// opening a transactional object and skips object-level validation if
// there has been no progress in the system").
//
// Counter qualifies. SharingCounter does not (two committers may share a
// tick), nor do the real-time clocks (they advance with time, not
// commits).
type StrictCommitCounting interface {
	// StrictCommitCounting is a marker; it carries no behaviour.
	StrictCommitCounting()
}

// Counter is the simplest time base: a global shared linearizable integer
// counter, atomically incremented whenever a commit time is acquired
// (paper §2). It does not scale well under contention but has minimal
// space overhead and cheap comparisons.
type Counter struct {
	c atomic.Uint64
}

var (
	_ TimeBase             = (*Counter)(nil)
	_ StrictCommitCounting = (*Counter)(nil)
)

// StrictCommitCounting marks Counter as advancing only on commits.
func (c *Counter) StrictCommitCounting() {}

// NewCounter returns a counter time base starting at 0.
func NewCounter() *Counter { return &Counter{} }

// Now returns the counter's current value.
//
//tbtm:noalloc
func (c *Counter) Now(int) uint64 { return c.c.Load() }

// CommitTime atomically increments the counter and returns the new value.
//
//tbtm:noalloc
func (c *Counter) CommitTime(int) uint64 { return c.c.Add(1) }

// SharingCounter approximates TL2's commit-time sharing (paper §3: "at
// least parts of the overhead of the shared integer counter are avoided
// in TL2 by letting transactions share commit times"): a committer whose
// increment CAS fails adopts the value installed by the winner instead of
// retrying, so heavily contended commits share a tick.
//
// Sharing preserves correctness for the validation rule "no concurrent
// update with snapshot < ts <= commit" because two transactions sharing a
// commit time have both already acquired their write locks, hence access
// disjoint write sets.
type SharingCounter struct {
	c atomic.Uint64
}

var _ TimeBase = (*SharingCounter)(nil)

// NewSharingCounter returns a sharing counter time base starting at 0.
func NewSharingCounter() *SharingCounter { return &SharingCounter{} }

// Now returns the counter's current value.
//
//tbtm:noalloc
func (s *SharingCounter) Now(int) uint64 { return s.c.Load() }

// CommitTime increments the counter once; on CAS failure it adopts the
// concurrent winner's value rather than retrying.
//
//tbtm:noalloc
func (s *SharingCounter) CommitTime(int) uint64 {
	cur := s.c.Load()
	if s.c.CompareAndSwap(cur, cur+1) {
		return cur + 1
	}
	return s.c.Load()
}

// StripedCounter is a scalable commit-counting time base: K cache-line-
// padded slots, each owning the congruence class {t : t ≡ slot (mod K)}
// of commit times. A committing thread writes only its own slot — the
// single shared hot line of Counter (the very contention §4's "scalable
// time bases" discussion warns about) is replaced by K independent
// lines — and reads all K to jump past the global maximum, so slots
// deviate from each other only transiently (a TL2-GV5-style tolerance:
// the time a thread perceives may lag the true maximum by in-flight
// commits, which costs at most spurious extensions/aborts, never
// correctness).
//
// The properties the TBTM template needs survive striping:
//
//   - Uniqueness: slot e only ever returns times ≡ e (mod K), and each
//     slot's values strictly increase.
//   - Commit ordering: CommitTime reads every slot and returns a value
//     greater than the maximum it saw, so a commit time acquired after
//     another CommitTime or Now completed is strictly greater than it.
//     Two overlapping acquisitions may be numerically inverted relative
//     to real time, which is indistinguishable from scheduling: LSA's
//     commit-time validation stabilizes on writer locks that are held
//     from open to release, so an install with a smaller commit time is
//     always observed (or waited out) by the validation at the larger
//     one.
//
// StripedCounter deliberately does not implement StrictCommitCounting:
// ticks are spread across slots, so "commit time = snapshot + 1" does
// not imply quiescence.
type StripedCounter struct {
	slots []paddedCounter
}

// paddedCounter keeps each slot on its own cache line.
type paddedCounter struct {
	v atomic.Uint64
	_ [56]byte
}

var _ TimeBase = (*StripedCounter)(nil)

// NewStripedCounter returns a striped time base with k slots (values
// below 1 mean the default of 8). Threads map to slots by thread ID
// modulo k, so with k at or above the worker count every committer owns
// its slot exclusively.
func NewStripedCounter(k int) *StripedCounter {
	if k < 1 {
		k = 8
	}
	return &StripedCounter{slots: make([]paddedCounter, k)}
}

// Slots returns the slot count K.
func (s *StripedCounter) Slots() int { return len(s.slots) }

// max returns the maximum time any slot has issued.
//
//tbtm:noalloc
func (s *StripedCounter) max() uint64 {
	var m uint64
	for i := range s.slots {
		if v := s.slots[i].v.Load(); v > m {
			m = v
		}
	}
	return m
}

// Now returns the newest commit time issued anywhere: K uncontended
// loads, no stores.
//
//tbtm:noalloc
func (s *StripedCounter) Now(int) uint64 { return s.max() }

// CommitTime returns a fresh commit time from thread's slot: the
// smallest value in the slot's congruence class that exceeds every time
// issued so far. Only threads sharing a slot contend on the CAS.
//
//tbtm:noalloc
func (s *StripedCounter) CommitTime(thread int) uint64 {
	k := uint64(len(s.slots))
	if thread < 0 {
		thread = -thread
	}
	e := uint64(thread) % k
	slot := &s.slots[e].v
	for {
		m := s.max()
		// Smallest t > m with t ≡ e (mod K).
		t := m + 1 + (e+k-(m+1)%k)%k
		cur := slot.Load()
		if cur >= t {
			// A slot-mate raced past the maximum we saw; retry from its
			// newer value.
			continue
		}
		if slot.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// SimRealTime simulates a set of per-thread internally-synchronized
// real-time clocks with bounded deviation, the scalable time base of [9].
// Thread p's clock reads base(t) + dev[p] ticks, where base advances with
// wall-clock time and |dev[p]| <= Epsilon. Spurious aborts grow with the
// deviation (paper §2), which the tests and ablation benches exercise.
//
// Commit times must still be unique and monotonic, so CommitTime combines
// the thread's clock with a global watermark: the returned time is
// max(now_p, watermark+1), which [9] obtains by waiting out the deviation
// bound; simulating the wait with a watermark preserves the ordering
// properties without real delays.
type SimRealTime struct {
	// Epsilon is the deviation bound in ticks.
	epsilon uint64
	// tick is the real-time length of one tick.
	tick time.Duration
	// dev[p] is thread p's fixed deviation in [-epsilon, +epsilon].
	dev []int64

	start     time.Time
	watermark atomic.Uint64
}

var _ TimeBase = (*SimRealTime)(nil)

// NewSimRealTime returns a simulated real-time time base for up to
// maxThreads threads, one tick per tick duration, and per-thread
// deviations spread deterministically over [-epsilon, +epsilon].
// tick <= 0 defaults to 100ns.
func NewSimRealTime(maxThreads int, epsilon uint64, tick time.Duration) *SimRealTime {
	if maxThreads < 1 {
		maxThreads = 1
	}
	if tick <= 0 {
		tick = 100 * time.Nanosecond
	}
	s := &SimRealTime{
		epsilon: epsilon,
		tick:    tick,
		dev:     make([]int64, maxThreads),
		start:   time.Now(),
	}
	// Deterministic spread: alternate signs, magnitudes stepping through
	// [0, epsilon]. Thread 0 has zero deviation.
	for p := 1; p < maxThreads; p++ {
		mag := int64(uint64(p) % (epsilon + 1))
		if p%2 == 0 {
			mag = -mag
		}
		s.dev[p] = mag
	}
	return s
}

// base returns the shared underlying clock in ticks, always >= 1 so that
// initial object versions (TS 0) predate every reading.
func (s *SimRealTime) base() uint64 {
	return uint64(time.Since(s.start)/s.tick) + 1 + s.epsilon
}

// Now returns thread's deviated view of the clock.
func (s *SimRealTime) Now(thread int) uint64 {
	b := s.base()
	var d int64
	if thread >= 0 && thread < len(s.dev) {
		d = s.dev[thread]
	}
	return uint64(int64(b) + d)
}

// CommitTime returns a unique, monotonically increasing commit time that
// exceeds every snapshot time any thread may already have taken. Because
// thread clocks deviate by at most epsilon from the shared base, a commit
// time of now_p + 2*epsilon is in the future of every thread's Now; [9]
// achieves the same by waiting out the deviation bound, which we simulate
// without the real delay (see DESIGN.md §7). This keeps snapshot
// validation sound while preserving the paper's property that spurious
// aborts grow with the deviation (the gap between a transaction's
// snapshot time and its commit time widens with epsilon).
func (s *SimRealTime) CommitTime(thread int) uint64 {
	for {
		now := s.Now(thread) + 2*s.epsilon
		w := s.watermark.Load()
		t := now
		if w+1 > t {
			t = w + 1
		}
		if s.watermark.CompareAndSwap(w, t) {
			return t
		}
	}
}
