package clock

import (
	"testing"
	"time"
)

func BenchmarkCounterNow(b *testing.B) {
	c := NewCounter()
	for i := 0; i < b.N; i++ {
		_ = c.Now(0)
	}
}

func BenchmarkCounterCommitTime(b *testing.B) {
	c := NewCounter()
	for i := 0; i < b.N; i++ {
		_ = c.CommitTime(0)
	}
}

func BenchmarkCounterCommitTimeParallel(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.CommitTime(0)
		}
	})
}

func BenchmarkSharingCounterCommitTimeParallel(b *testing.B) {
	c := NewSharingCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.CommitTime(0)
		}
	})
}

func BenchmarkSimRealTimeNow(b *testing.B) {
	c := NewSimRealTime(8, 4, 100*time.Nanosecond)
	for i := 0; i < b.N; i++ {
		_ = c.Now(3)
	}
}

func BenchmarkSimRealTimeCommitTime(b *testing.B) {
	c := NewSimRealTime(8, 4, 100*time.Nanosecond)
	for i := 0; i < b.N; i++ {
		_ = c.CommitTime(3)
	}
}
