package clock

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if got := c.Now(0); got != 0 {
		t.Fatalf("initial Now = %d, want 0", got)
	}
	if got := c.CommitTime(0); got != 1 {
		t.Fatalf("first CommitTime = %d, want 1", got)
	}
	if got := c.CommitTime(5); got != 2 {
		t.Fatalf("second CommitTime = %d, want 2", got)
	}
	if got := c.Now(3); got != 2 {
		t.Fatalf("Now after two commits = %d, want 2", got)
	}
}

func TestCounterCommitTimesUniqueConcurrent(t *testing.T) {
	c := NewCounter()
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.CommitTime(w))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate commit time %d", ts)
				}
				seen[ts] = true
			}
		}(w)
	}
	wg.Wait()
	if got := c.Now(0); got != workers*per {
		t.Fatalf("final Now = %d, want %d", got, workers*per)
	}
}

func TestCounterCommitTimeMonotonicPerThread(t *testing.T) {
	c := NewCounter()
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		ts := c.CommitTime(0)
		if ts <= prev {
			t.Fatalf("commit time %d not > previous %d", ts, prev)
		}
		prev = ts
	}
}

func TestSharingCounterProgress(t *testing.T) {
	s := NewSharingCounter()
	if got := s.CommitTime(0); got != 1 {
		t.Fatalf("first CommitTime = %d, want 1", got)
	}
	if got := s.Now(0); got != 1 {
		t.Fatalf("Now = %d, want 1", got)
	}
	// Sequential commits never share.
	if got := s.CommitTime(0); got != 2 {
		t.Fatalf("second sequential CommitTime = %d, want 2", got)
	}
}

func TestSharingCounterCommitTimeNeverZero(t *testing.T) {
	s := NewSharingCounter()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prev := uint64(0)
			for i := 0; i < per; i++ {
				ts := s.CommitTime(w)
				if ts == 0 {
					t.Error("commit time 0")
					return
				}
				if ts < prev {
					t.Errorf("commit time went backwards: %d after %d", ts, prev)
					return
				}
				prev = ts
			}
		}(w)
	}
	wg.Wait()
	// Shared ticks mean the final value is at most workers*per but the
	// counter must have advanced at least once.
	if now := s.Now(0); now == 0 || now > workers*per {
		t.Fatalf("final Now = %d, want in [1, %d]", now, workers*per)
	}
}

func TestSimRealTimeAdvances(t *testing.T) {
	s := NewSimRealTime(4, 0, 10*time.Nanosecond)
	t0 := s.Now(0)
	time.Sleep(time.Millisecond)
	t1 := s.Now(0)
	if t1 <= t0 {
		t.Fatalf("clock did not advance: %d -> %d", t0, t1)
	}
}

func TestSimRealTimeDeviationBounded(t *testing.T) {
	const eps = 5
	// A one-second tick keeps the shared base constant for the duration
	// of the test (a microsecond tick made the base advance between the
	// reads below, failing spuriously under -race slowdown), so the
	// per-thread deviations are observed exactly.
	s := NewSimRealTime(16, eps, time.Second)
	base := int64(s.Now(0)) // thread 0 has zero deviation
	for p := 1; p < 16; p++ {
		d := int64(s.Now(p)) - base
		if d < -eps || d > eps {
			t.Errorf("thread %d deviation %d exceeds bound %d", p, d, eps)
		}
	}
}

func TestSimRealTimeCommitTimesUnique(t *testing.T) {
	s := NewSimRealTime(8, 3, time.Microsecond)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]uint64, 0, 100)
			for i := 0; i < 100; i++ {
				local = append(local, s.CommitTime(w))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate commit time %d", ts)
				}
				seen[ts] = true
			}
		}(w)
	}
	wg.Wait()
}

func TestSimRealTimeCommitAtLeastNow(t *testing.T) {
	s := NewSimRealTime(4, 2, time.Microsecond)
	for i := 0; i < 50; i++ {
		now := s.Now(1)
		ct := s.CommitTime(1)
		if ct < now {
			t.Fatalf("commit time %d < Now %d", ct, now)
		}
	}
}

func TestSimRealTimeThreadOutOfRange(t *testing.T) {
	s := NewSimRealTime(2, 4, time.Microsecond)
	// Threads beyond maxThreads fall back to zero deviation, not panic.
	if got := s.Now(99); got == 0 {
		t.Fatal("Now(out-of-range thread) = 0")
	}
	if got := s.Now(-1); got == 0 {
		t.Fatal("Now(negative thread) = 0")
	}
}

func TestSimRealTimeDefaults(t *testing.T) {
	s := NewSimRealTime(0, 0, 0)
	if got := s.Now(0); got == 0 {
		t.Fatal("defaulted clock reads 0")
	}
}
