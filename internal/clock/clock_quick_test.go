package clock

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickSimRealTimeDeviationLaw checks the clock construction law for
// arbitrary epsilon and thread counts: every thread's Now stays within
// epsilon ticks of thread 0 (which carries zero deviation), and Now
// never returns zero (initial versions must predate every reading).
func TestQuickSimRealTimeDeviationLaw(t *testing.T) {
	prop := func(eps uint8, threads uint8) bool {
		n := int(threads%32) + 1
		s := NewSimRealTime(n, uint64(eps), time.Hour) // frozen base
		base := s.Now(0)
		if base == 0 {
			return false
		}
		for p := 0; p < n; p++ {
			v := s.Now(p)
			if v == 0 {
				return false
			}
			diff := int64(v) - int64(base)
			if diff < 0 {
				diff = -diff
			}
			if diff > int64(eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimRealTimeCommitDominatesSnapshots checks the soundness
// property CommitTime relies on: a commit time issued by any thread is
// at least every snapshot any thread took before the commit (never in
// any thread's past), for arbitrary epsilon, and successive commit
// times are strictly increasing.
func TestQuickSimRealTimeCommitDominatesSnapshots(t *testing.T) {
	prop := func(eps uint8, threads uint8) bool {
		n := int(threads%16) + 2
		s := NewSimRealTime(n, uint64(eps), time.Hour)
		snapshots := make([]uint64, n)
		for p := 0; p < n; p++ {
			snapshots[p] = s.Now(p)
		}
		ct := s.CommitTime(n - 1)
		for _, snap := range snapshots {
			if ct < snap {
				return false
			}
		}
		// And commit times keep strictly increasing across threads.
		prev := ct
		for p := 0; p < n; p++ {
			next := s.CommitTime(p)
			if next <= prev {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCountersMonotone checks both counter time bases for arbitrary
// interleavings of Now and CommitTime from one goroutine: Now never
// exceeds the last commit time issued, and commit times never decrease.
func TestQuickCountersMonotone(t *testing.T) {
	prop := func(script []bool, shared bool) bool {
		var tb TimeBase = NewCounter()
		if shared {
			tb = NewSharingCounter()
		}
		var lastCommit uint64
		for _, doCommit := range script {
			if doCommit {
				ct := tb.CommitTime(0)
				if ct < lastCommit {
					return false
				}
				lastCommit = ct
			} else if tb.Now(0) > lastCommit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
