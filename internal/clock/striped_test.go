package clock

import (
	"sort"
	"sync"
	"testing"
)

func TestStripedCounterCongruence(t *testing.T) {
	const k = 8
	s := NewStripedCounter(k)
	for thread := 0; thread < 2*k; thread++ {
		ct := s.CommitTime(thread)
		if ct%k != uint64(thread%k) {
			t.Fatalf("thread %d got commit time %d, want ≡ %d (mod %d)", thread, ct, thread%k, k)
		}
	}
}

func TestStripedCounterCommitExceedsCompletedNow(t *testing.T) {
	s := NewStripedCounter(4)
	for i := 0; i < 100; i++ {
		now := s.Now(i % 4)
		ct := s.CommitTime(i % 3)
		if ct <= now {
			t.Fatalf("CommitTime %d not greater than completed Now %d", ct, now)
		}
		if s.Now(0) < ct {
			t.Fatalf("Now %d below issued commit time %d", s.Now(0), ct)
		}
	}
}

func TestStripedCounterUniqueUnderConcurrency(t *testing.T) {
	s := NewStripedCounter(4)
	const (
		workers = 8
		perW    = 2000
	)
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := make([]uint64, 0, perW)
			for i := 0; i < perW; i++ {
				ts = append(ts, s.CommitTime(w))
			}
			out[w] = ts
		}(w)
	}
	wg.Wait()
	var all []uint64
	for w, ts := range out {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("worker %d: commit times not increasing: %d then %d", w, ts[i-1], ts[i])
			}
		}
		all = append(all, ts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate commit time %d", all[i])
		}
	}
}

func TestStripedCounterNotStrict(t *testing.T) {
	var tb TimeBase = NewStripedCounter(4)
	if _, ok := tb.(StrictCommitCounting); ok {
		t.Fatal("StripedCounter must not advertise strict commit counting")
	}
}

func TestStripedCounterDefaultSlots(t *testing.T) {
	if got := NewStripedCounter(0).Slots(); got != 8 {
		t.Fatalf("default slots = %d, want 8", got)
	}
}

func BenchmarkCommitTimeShared(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.CommitTime(0)
		}
	})
}

func BenchmarkCommitTimeStriped(b *testing.B) {
	s := NewStripedCounter(16)
	var id int64
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		me := int(id)
		id++
		mu.Unlock()
		for pb.Next() {
			s.CommitTime(me)
		}
	})
}
