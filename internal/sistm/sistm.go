// Package sistm implements SI-STM, a multi-version snapshot-isolation
// STM on a scalar time base. The paper positions snapshot isolation [1]
// as the closest database criterion to causal serializability (§4.1:
// "causal serializability provides semantics comparable to snapshot
// isolation"); SI-STM makes that comparison concrete. It is a comparator
// substrate, not one of the paper's contributions.
//
// Under snapshot isolation a transaction reads from a fixed snapshot
// taken at its start and writes are governed by first-committer-wins:
// a transaction aborts iff another transaction that committed between
// its snapshot and its commit wrote an object it also writes. Reads are
// never validated — read/write conflicts (and hence write skew) are
// invisible, which is exactly what distinguishes SI from serializability
// and linearizability.
//
// The implementation reuses the scalar-clock object header of
// internal/core (version chains + writer ownership) and enforces
// first-committer-wins eagerly: write ownership is acquired at open and
// the object's current version is checked against the snapshot time once
// the lock is held; holding the lock until commit then guarantees no
// concurrent version can be installed, so commit needs no validation at
// all. This mirrors the first-updater-wins realization of SI used by
// production MVCC systems.
package sistm

import (
	"sync/atomic"

	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/epoch"
	"tbtm/internal/stats"
)

// Config parameterizes an SI-STM instance.
type Config struct {
	// Clock is the scalar time base. Nil means a fresh shared counter.
	Clock clock.TimeBase
	// CM arbitrates write/write conflicts between two active
	// transactions. Nil means Polite.
	CM cm.Manager
	// Versions is the per-object retention depth (default 8). Snapshot
	// reads need history: a depth of 1 makes any overwritten read fail
	// with ErrSnapshotUnavailable.
	Versions int
	// Lot, when non-nil, receives a wakeup for every object an update
	// commit installs a version into, unblocking transactions parked in
	// the facade's Retry. Snapshot-isolation reads are invisible and
	// normally leave no trace, so a non-nil Lot additionally makes every
	// transaction record a minimal (object, Seq) read footprint for the
	// blocking layer to watch. Nil keeps reads trace-free and the commit
	// path wake-free.
	Lot *core.ParkingLot
	// CommitLog sizes the global commit log (see lsa.Config.CommitLog: 0
	// default-on, >0 explicit size, <0 off; armed only on strictly
	// commit-counting time bases). With the log on, SI gains snapshot
	// advance: a transaction that would fail with ErrSnapshotUnavailable
	// or lose first-committer-wins first tries to move its snapshot
	// forward to now, which is sound exactly when no object it has read
	// changed in (st, now] — the log window proves that in O(commits in
	// the window). Every read then logs an (object, Seq) pair, as under
	// a parking lot.
	CommitLog int
	// CrossCheck makes every log-clear advance re-verify each read
	// against the object chains and panic on disagreement (conformance
	// harness only).
	CrossCheck bool
}

// Stats is a snapshot of an instance's cumulative counters.
type Stats struct {
	Commits      uint64 // transactions committed
	Aborts       uint64 // transactions aborted, any reason
	Conflicts    uint64 // first-committer-wins losses and lost arbitrations
	OldVersions  uint64 // reads served by a non-current version
	SnapshotMiss uint64 // aborts because no retained version was old enough
	Advances     uint64 // successful snapshot advances (commit log on)
	AdvancesFast uint64 // advances proven by the log window alone
	AdvancesFull uint64 // advances that walked the recorded reads
	LogWraps     uint64 // fast-path fallbacks because the log window wrapped
}

// Counter slots within a thread's stats shard.
const (
	cntCommits = iota
	cntAborts
	cntConflicts
	cntOldVersions
	cntSnapshotMiss
	cntAdvances
	cntAdvancesFast
	cntAdvancesFull
	cntLogWraps
)

// STM is an SI-STM instance. Objects and threads are bound to the
// instance that created them.
type STM struct {
	cfg Config
	// log is the global commit log, nil when disabled or the time base
	// is not strictly commit-counting.
	log *core.CommitLog

	nextThread atomic.Int64

	// shards holds the per-thread counter shards; see internal/stats.
	shards stats.Set

	// domain is the epoch-based reclamation domain gating version and
	// descriptor reuse (see internal/epoch).
	domain epoch.Domain
}

// New returns an SI-STM instance, applying defaults for zero fields.
func New(cfg Config) *STM {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewCounter()
	}
	if cfg.CM == nil {
		cfg.CM = &cm.Polite{}
	}
	if cfg.Versions < 1 {
		cfg.Versions = 8
	}
	s := &STM{cfg: cfg}
	if _, strict := cfg.Clock.(clock.StrictCommitCounting); strict && cfg.CommitLog >= 0 {
		s.log = core.NewCommitLog(cfg.CommitLog)
	}
	return s
}

// Log returns the commit log, or nil when disabled (tests).
func (s *STM) Log() *core.CommitLog { return s.log }

// Config returns the effective configuration.
func (s *STM) Config() Config { return s.cfg }

// Clock returns the instance's time base.
func (s *STM) Clock() clock.TimeBase { return s.cfg.Clock }

// NewObject allocates a transactional object with the given initial
// value and the instance's retention depth.
func (s *STM) NewObject(initial any) *core.Object {
	return core.NewObject(initial, s.cfg.Versions)
}

// NewThread returns a handle for one worker goroutine.
func (s *STM) NewThread() *Thread {
	th := &Thread{stm: s, id: int(s.nextThread.Add(1) - 1), shard: s.shards.NewShard()}
	th.rec.Init(&s.domain)
	return th
}

// Stats returns a snapshot of the cumulative counters, aggregated across
// the per-thread shards.
func (s *STM) Stats() Stats {
	c := s.shards.Snapshot()
	return Stats{
		Commits:      c[cntCommits],
		Aborts:       c[cntAborts],
		Conflicts:    c[cntConflicts],
		OldVersions:  c[cntOldVersions],
		SnapshotMiss: c[cntSnapshotMiss],
		Advances:     c[cntAdvances],
		AdvancesFast: c[cntAdvancesFast],
		AdvancesFull: c[cntAdvancesFull],
		LogWraps:     c[cntLogWraps],
	}
}

// Thread is a per-goroutine handle. It owns a stats shard and a reusable
// transaction descriptor, so the begin→commit hot path performs no
// descriptor allocation.
type Thread struct {
	stm   *STM
	id    int
	shard *stats.Shard
	tx    Tx            // reusable descriptor, recycled by Begin once finished
	rec   core.Recycler // epoch-gated version/descriptor pools
	idbuf []uint64      // reusable write-set ID buffer for commit-log publication
}

// ID returns the thread's index in the time base.
func (th *Thread) ID() int { return th.id }

// STM returns the owning instance.
func (th *Thread) STM() *STM { return th.stm }

// Begin starts a transaction whose snapshot is the time base's current
// value. kind feeds the contention manager; readOnly rejects writes.
//
// Begin may recycle the thread's previous transaction descriptor: a *Tx
// is invalid after Commit or Abort and must not be retained across the
// next Begin on the same thread.
func (th *Thread) Begin(kind core.TxKind, readOnly bool) *Tx {
	tx := &th.tx
	if tx.stm != nil && !tx.done {
		tx = new(Tx)
	}
	th.rec.Pin() // read-side critical section: Begin → finish
	if tx.meta != nil {
		th.rec.RetireMeta(tx.meta) // previous transaction finished
	}
	tx.stm = th.stm
	tx.th = th
	tx.meta = th.rec.NewMeta(kind, th.id)
	tx.ro = readOnly
	tx.st = th.stm.cfg.Clock.Now(th.id)
	tx.ct = 0
	clear(tx.writes) // release the previous transaction's objects/values
	clear(tx.reads)
	tx.writes = tx.writes[:0]
	tx.reads = tx.reads[:0]
	tx.windex.Reset()
	tx.rindex.Reset()
	tx.done = false
	return tx
}

// writeEntry buffers one tentative update.
type writeEntry struct {
	obj *core.Object
	val any
}

// readEntry records one read for the blocking layer and for snapshot
// advance (maintained when the instance has a parking lot or a commit
// log): the object, the Seq of the version the snapshot served, and its
// value so re-reads are answered without re-walking the chain. Plain SI
// without either feature keeps reads trace-free.
type readEntry struct {
	obj *core.Object
	seq uint64
	val any
}

// Tx is an SI-STM transaction. A Tx is used by a single goroutine; after
// Commit or Abort it must not be reused.
type Tx struct {
	stm  *STM
	th   *Thread
	meta *core.TxMeta
	ro   bool

	// st is the snapshot time: every read observes the version current
	// at st. Unlike LSA there is no extension — the snapshot is fixed.
	st uint64
	// ct is the commit time, set by Commit for update transactions.
	ct uint64

	writes []writeEntry
	// reads is the read-footprint log, maintained when the instance has
	// a parking lot (see Config.Lot) or a commit log (snapshot advance
	// re-validates against it).
	reads  []readEntry
	windex core.SmallIndex
	rindex core.SmallIndex // object ID → index into reads (footprint membership)
	done   bool
}

// Meta exposes the shared descriptor.
func (tx *Tx) Meta() *core.TxMeta { return tx.meta }

// Done reports whether the transaction has finished and its descriptor
// may be recycled. A nil receiver counts as done.
func (tx *Tx) Done() bool { return tx == nil || tx.done }

// SnapshotTime returns the fixed snapshot time.
func (tx *Tx) SnapshotTime() uint64 { return tx.st }

// CommitTime returns the commit time, or the snapshot time for
// transactions that committed without writes. Valid after Commit.
func (tx *Tx) CommitTime() uint64 {
	if tx.ct != 0 {
		return tx.ct
	}
	return tx.st
}

// stabilize waits until o has no committing writer, so in-flight
// multi-object installs (whose commit time may precede our snapshot) are
// never observed partially. It returns the current writer.
func (tx *Tx) stabilize(o *core.Object) *core.TxMeta {
	for round := 0; ; round++ {
		w := o.Writer()
		if w == nil || w == tx.meta {
			return w
		}
		if w.Status() == core.StatusCommitting {
			cm.Backoff(round)
			continue
		}
		return w
	}
}

// finish marks the transaction done and leaves the epoch critical
// section entered by Begin.
func (tx *Tx) finish() {
	tx.done = true
	tx.th.rec.Unpin()
}

func (tx *Tx) fail(err error) error {
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.finish()
	tx.th.shard.Inc(cntAborts)
	return err
}

// Read returns the version of o current at the snapshot time. Reads are
// invisible and never validated; they can only fail when the chain no
// longer retains a version old enough — and with the commit log on, the
// transaction first tries to advance its snapshot to now, which often
// brings the needed version back into the retained window.
func (tx *Tx) Read(o *core.Object) (any, error) {
	if tx.done {
		return nil, core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return nil, tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		return tx.writes[i].val, nil // read-own-writes
	}
	if i, ok := tx.rindex.Get(o.ID()); ok {
		// Re-read: the snapshot only ever advances past changes to
		// objects outside the footprint, so the first-read value is
		// still the one current at st.
		return tx.reads[i].val, nil
	}
	tx.meta.Prio.Add(1)
	tx.stabilize(o)
	v := o.FindAt(tx.st)
	if v == nil && tx.tryAdvance() {
		tx.stabilize(o)
		v = o.FindAt(tx.st)
	}
	if v == nil {
		tx.th.shard.Inc(cntSnapshotMiss)
		return nil, tx.fail(core.ErrSnapshotUnavailable)
	}
	if v != o.Current() {
		tx.th.shard.Inc(cntOldVersions)
	}
	if tx.tracking() {
		tx.rindex.Put(o.ID(), len(tx.reads))
		tx.reads = append(tx.reads, readEntry{obj: o, seq: v.Seq, val: v.Value})
	}
	return v.Value, nil
}

// tracking reports whether reads are footprint-logged: for the blocking
// layer (parking lot) and/or for snapshot advance (commit log).
func (tx *Tx) tracking() bool {
	return tx.stm.cfg.Lot != nil || tx.stm.log != nil
}

// tryAdvance attempts to move the snapshot time forward to now. The move
// is sound iff no object the transaction has read changed in (st, now]:
// every earlier read then still observes the newest version at the new
// snapshot time, and objects not yet read are simply served at the later
// time. Write-opened objects cannot have changed — their writer locks
// have been held since open. The common proof is the commit-log window;
// a hit or wrap falls back to walking the recorded reads.
func (tx *Tx) tryAdvance() bool {
	log := tx.stm.log
	if log == nil {
		return false
	}
	now := tx.stm.cfg.Clock.Now(tx.th.id)
	if now <= tx.st {
		return false
	}
	verdict := log.Check(tx.st, now, &tx.rindex)
	if verdict == core.LogWrapped {
		tx.th.shard.Inc(cntLogWraps)
	}
	if verdict == core.LogClear {
		if tx.stm.cfg.CrossCheck && !tx.readsNewestAt(now) {
			panic("sistm: commit-log fast path admitted an advance the read walk rejects")
		}
		tx.st = now
		tx.th.shard.Inc(cntAdvances)
		tx.th.shard.Inc(cntAdvancesFast)
		return true
	}
	// Slow path: each recorded read must still be the object's newest
	// version (conservative — a version installed after now also blocks
	// the advance, costing only a missed opportunity, never soundness).
	for i := range tx.reads {
		r := &tx.reads[i]
		tx.stabilize(r.obj)
		if r.obj.Current().Seq != r.seq {
			return false
		}
	}
	tx.st = now
	tx.th.shard.Inc(cntAdvances)
	tx.th.shard.Inc(cntAdvancesFull)
	return true
}

// readsNewestAt reports whether every recorded read is still the newest
// version at time t (the cross-check twin of the log window: exact, not
// conservative). A read whose chain was truncated past recognition is
// skipped — nothing can be asserted about it.
func (tx *Tx) readsNewestAt(t uint64) bool {
	for i := range tx.reads {
		r := &tx.reads[i]
		tx.stabilize(r.obj)
		if v := r.obj.FindAt(t); v != nil && v.Seq != r.seq {
			return false
		}
	}
	return true
}

// Watches appends the transaction's read footprint to buf as (object,
// read-version Seq) pairs and returns the extended slice. The footprint
// is recorded only on instances with a parking lot; elsewhere Watches
// returns buf unchanged and the facade falls back to polling.
func (tx *Tx) Watches(buf []core.Watch) []core.Watch {
	for i := range tx.reads {
		r := &tx.reads[i]
		buf = append(buf, core.Watch{ID: r.obj.ID(), Seq: r.seq, Obj: r.obj})
	}
	return buf
}

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time, re-entering the thread's epoch critical
// section for the duration of the check (see lsa.Tx.WatchesStale).
func (tx *Tx) WatchesStale(ws []core.Watch) bool {
	tx.th.rec.Pin()
	defer tx.th.rec.Unpin()
	return core.StaleScalar(ws)
}

// Write buffers an update of o to val. Ownership is acquired eagerly and
// first-committer-wins is enforced once the lock is held: if a version
// newer than the snapshot has been installed, a concurrent transaction
// committed first and we abort.
func (tx *Tx) Write(o *core.Object, val any) error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.ro {
		return core.ErrReadOnly
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		tx.writes[i].val = val
		return nil
	}
	tx.meta.Prio.Add(1)

	for round := 0; ; round++ {
		if tx.meta.Status() == core.StatusAborted {
			return tx.fail(core.ErrAborted)
		}
		w := o.Writer()
		switch {
		case w == nil:
			if o.CASWriter(nil, tx.meta) {
				return tx.checkFirstCommitter(o, val)
			}
		case w == tx.meta:
			return tx.checkFirstCommitter(o, val)
		case w.Status().Terminal():
			if o.CASWriter(w, tx.meta) {
				return tx.checkFirstCommitter(o, val)
			}
		default:
			if !cm.Resolve(tx.stm.cfg.CM, tx.meta, w) {
				tx.th.shard.Inc(cntConflicts)
				return tx.fail(core.ErrAborted)
			}
		}
		cm.Backoff(round)
	}
}

// checkFirstCommitter runs with write ownership of o held. A current
// version newer than the snapshot means a concurrent transaction
// committed an update to o after we took our snapshot: under
// first-committer-wins we lose — unless the snapshot can advance past
// that commit (possible exactly when nothing we read changed), which
// dissolves the concurrency the rule exists to police. Ownership is held
// from here to commit, so no later version can appear and commit needs
// no re-check.
func (tx *Tx) checkFirstCommitter(o *core.Object, val any) error {
	if o.Current().TS > tx.st && !tx.tryAdvance() {
		tx.th.shard.Inc(cntConflicts)
		return tx.fail(core.ErrConflict)
	}
	if o.Current().TS > tx.st {
		// The advance moved st forward but not past this install (another
		// commit landed in between): still a first-committer loss.
		tx.th.shard.Inc(cntConflicts)
		return tx.fail(core.ErrConflict)
	}
	tx.windex.Put(o.ID(), len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
	return nil
}

// Commit attempts to commit. Read-only (or write-free) transactions
// commit immediately: their snapshot is consistent by construction.
// Update transactions draw a commit time and install their writes; no
// validation is needed because first-committer-wins was enforced at
// open and ownership has been held since.
func (tx *Tx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if len(tx.writes) == 0 {
		if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitted) {
			return tx.fail(core.ErrAborted)
		}
		tx.finish()
		tx.th.shard.Inc(cntCommits)
		return nil
	}
	if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitting) {
		return tx.fail(core.ErrAborted)
	}
	tx.ct = tx.stm.cfg.Clock.CommitTime(tx.th.id)
	tx.meta.CommitTick = tx.ct
	// Publish the write set before installing, so snapshot advances
	// scanning past tx.ct find the record instead of missing the
	// in-flight installs (see lsa.Tx.Commit).
	if log := tx.stm.log; log != nil {
		ids := tx.th.idbuf[:0]
		for i := range tx.writes {
			ids = append(ids, tx.writes[i].obj.ID())
		}
		tx.th.idbuf = ids
		log.Publish(tx.ct, ids)
	}
	for _, w := range tx.writes {
		w.obj.InstallRecycled(&tx.th.rec, w.val, tx.ct, tx.meta.ID, 0)
	}
	tx.meta.CASStatus(core.StatusCommitting, core.StatusCommitted)
	tx.releaseLocks()
	tx.finish()
	if lot := tx.stm.cfg.Lot; lot != nil {
		for _, w := range tx.writes {
			lot.Wake(w.obj.ID())
		}
	}
	tx.th.shard.Inc(cntCommits)
	return nil
}

// Abort aborts the transaction explicitly; no-op when already finished.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.finish()
	tx.th.shard.Inc(cntAborts)
}

func (tx *Tx) releaseLocks() {
	for _, w := range tx.writes {
		w.obj.ReleaseWriter(tx.meta)
	}
}
