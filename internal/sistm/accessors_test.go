package sistm

import (
	"testing"

	"tbtm/internal/core"
)

// TestAccessorsAndWriteEdges pins the accessor surface and the Write
// edge cases not covered by the behavioural tests.
func TestAccessorsAndWriteEdges(t *testing.T) {
	s := New(Config{})
	if s.Clock() == nil {
		t.Fatal("Clock() = nil")
	}
	th := s.NewThread()
	if th.STM() != s {
		t.Fatal("Thread.STM mismatch")
	}
	if th2 := s.NewThread(); th2.ID() == th.ID() {
		t.Fatalf("thread IDs collide: %d", th.ID())
	}

	o := s.NewObject(int64(1))
	tx := th.Begin(core.Short, false)
	if tx.Meta() == nil {
		t.Fatal("Meta() = nil")
	}

	// Re-writing the same object replaces the buffered value, not the
	// write-set entry.
	if err := tx.Write(o, int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o, int64(3)); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(o)
	if err != nil || v != int64(3) {
		t.Fatalf("read-own-write = %v, %v; want 3", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.CommitTime() <= tx.SnapshotTime() {
		t.Fatalf("update commit time %d not after snapshot %d", tx.CommitTime(), tx.SnapshotTime())
	}

	// Writes after completion and on read-only transactions fail fast.
	if err := tx.Write(o, int64(4)); err != core.ErrTxDone {
		t.Fatalf("write after done = %v, want ErrTxDone", err)
	}
	ro := th.Begin(core.Short, true)
	if err := ro.Write(o, int64(5)); err != core.ErrReadOnly {
		t.Fatalf("read-only write = %v, want ErrReadOnly", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	// A read-only transaction's commit time equals its snapshot time.
	if ro.CommitTime() != ro.SnapshotTime() {
		t.Fatalf("read-only commit time %d != snapshot %d", ro.CommitTime(), ro.SnapshotTime())
	}
}

// TestWriteOnAbortedTx verifies a transaction killed by an enemy
// contention manager fails its next write with a retryable error.
func TestWriteOnAbortedTx(t *testing.T) {
	s := New(Config{})
	o := s.NewObject(0)
	th := s.NewThread()
	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	tx.Meta().TryAbort() // enemy kill
	err := tx.Write(o, 2)
	if err == nil || !core.IsRetryable(err) {
		t.Fatalf("write on killed tx = %v, want retryable error", err)
	}
}
