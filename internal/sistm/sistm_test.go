package sistm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tbtm/internal/clock"
	"tbtm/internal/cm"
	"tbtm/internal/core"
)

func newSTM(t *testing.T, opts ...func(*Config)) *STM {
	t.Helper()
	cfg := Config{}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Clock == nil {
		t.Fatal("default clock not applied")
	}
	if cfg.CM == nil {
		t.Fatal("default contention manager not applied")
	}
	if cfg.Versions != 8 {
		t.Fatalf("default versions = %d, want 8", cfg.Versions)
	}
}

func TestReadInitialValue(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject("init")
	tx := s.NewThread().Begin(core.Short, false)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != "init" {
		t.Fatalf("Read = %v, want init", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestWriteCommitRead(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(1))
	th := s.NewThread()

	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, int64(2)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx2 := th.Begin(core.Short, false)
	v, err := tx2.Read(o)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != int64(2) {
		t.Fatalf("Read = %v, want 2", v)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestReadOwnWrites(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject("a")
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Write(o, "b"); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := tx.Read(o)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != "b" {
		t.Fatalf("Read = %v, want own write b", v)
	}
	tx.Abort()
	// The aborted write must not be visible.
	tx2 := s.NewThread().Begin(core.Short, false)
	v, err = tx2.Read(o)
	if err != nil {
		t.Fatalf("Read after abort: %v", err)
	}
	if v != "a" {
		t.Fatalf("Read after abort = %v, want a", v)
	}
}

func TestSnapshotReadsIgnoreLaterCommits(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(10))
	reader := s.NewThread()
	writer := s.NewThread()

	rd := reader.Begin(core.Short, true)

	// A concurrent writer commits a new version after rd's snapshot.
	wr := writer.Begin(core.Short, false)
	if err := wr.Write(o, int64(20)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("writer Commit: %v", err)
	}

	// rd still sees the snapshot value, and commits (reads are never
	// validated under SI).
	v, err := rd.Read(o)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != int64(10) {
		t.Fatalf("snapshot read = %v, want 10", v)
	}
	if err := rd.Commit(); err != nil {
		t.Fatalf("reader Commit: %v", err)
	}
	if got := s.Stats().OldVersions; got != 1 {
		t.Fatalf("OldVersions = %d, want 1", got)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	// Without the commit log there is no snapshot advance: the baseline
	// first-committer-wins conflict must surface. (With the log, t2's
	// empty read footprint lets its snapshot advance past t1's commit —
	// see TestAdvanceResolvesFirstCommitter.)
	s := newSTM(t, func(c *Config) { c.CommitLog = -1 })
	o := s.NewObject(int64(0))
	t1 := s.NewThread().Begin(core.Short, false)
	t2 := s.NewThread().Begin(core.Short, false)

	// t1 writes and commits first.
	if err := t1.Write(o, int64(1)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}

	// t2, whose snapshot predates t1's commit, must lose on open.
	err := t2.Write(o, int64(2))
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("t2 Write err = %v, want ErrConflict", err)
	}
	if got := s.Stats().Conflicts; got != 1 {
		t.Fatalf("Conflicts = %d, want 1", got)
	}
}

func TestFirstCommitterWinsAfterRelock(t *testing.T) {
	// Even when the earlier committer has already released its lock, the
	// version timestamp betrays it (log off: no advance, see above).
	s := newSTM(t, func(c *Config) { c.CommitLog = -1 })
	o := s.NewObject(int64(0))

	t2 := s.NewThread().Begin(core.Short, false)

	t1 := s.NewThread().Begin(core.Short, false)
	if err := t1.Write(o, int64(1)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}

	if err := t2.Write(o, int64(2)); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("t2 Write err = %v, want ErrConflict", err)
	}
}

func TestWriteSkewAdmitted(t *testing.T) {
	// The classic SI anomaly: two transactions each read {x, y} and write
	// the other object. Serializable systems abort one; SI commits both.
	s := newSTM(t)
	x := s.NewObject(int64(50))
	y := s.NewObject(int64(50))

	t1 := s.NewThread().Begin(core.Short, false)
	t2 := s.NewThread().Begin(core.Short, false)

	for _, o := range []*core.Object{x, y} {
		if _, err := t1.Read(o); err != nil {
			t.Fatalf("t1 Read: %v", err)
		}
		if _, err := t2.Read(o); err != nil {
			t.Fatalf("t2 Read: %v", err)
		}
	}
	// Each withdraws 60 believing the combined balance (100) covers it.
	if err := t1.Write(x, int64(-10)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t2.Write(y, int64(-10)); err != nil {
		t.Fatalf("t2 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v (SI must admit write skew)", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 Commit: %v (SI must admit write skew)", err)
	}

	// Both committed: the invariant x+y >= 0 is broken, which is exactly
	// the anomaly.
	tx := s.NewThread().Begin(core.Short, true)
	vx, _ := tx.Read(x)
	vy, _ := tx.Read(y)
	if sum := vx.(int64) + vy.(int64); sum != -20 {
		t.Fatalf("x+y = %d, want -20 (write skew outcome)", sum)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	// SI forbids lost updates: two read-modify-writes of the same object
	// cannot both commit.
	s := newSTM(t)
	o := s.NewObject(int64(0))

	t1 := s.NewThread().Begin(core.Short, false)
	t2 := s.NewThread().Begin(core.Short, false)
	v1, _ := t1.Read(o)
	v2, _ := t2.Read(o)

	if err := t1.Write(o, v1.(int64)+1); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}

	err := t2.Write(o, v2.(int64)+1)
	if err == nil {
		err = t2.Commit()
	}
	if !core.IsRetryable(err) || err == nil {
		t.Fatalf("t2 outcome = %v, want retryable conflict (lost update)", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(1)
	tx := s.NewThread().Begin(core.Short, true)
	if err := tx.Write(o, 2); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("Write err = %v, want ErrReadOnly", err)
	}
}

func TestTxDoneAfterCommit(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(1)
	tx := s.NewThread().Begin(core.Short, false)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if _, err := tx.Read(o); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Read err = %v, want ErrTxDone", err)
	}
	if err := tx.Write(o, 2); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Write err = %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("second Commit err = %v, want ErrTxDone", err)
	}
	tx.Abort() // must be a no-op
}

func TestAbortReleasesOwnership(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(1)
	t1 := s.NewThread().Begin(core.Short, false)
	if err := t1.Write(o, 2); err != nil {
		t.Fatalf("Write: %v", err)
	}
	t1.Abort()

	t2 := s.NewThread().Begin(core.Short, false)
	if err := t2.Write(o, 3); err != nil {
		t.Fatalf("Write after enemy abort: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestSnapshotMissOnTruncatedChain(t *testing.T) {
	// Log off: no snapshot advance, the truncated chain is fatal.
	s := newSTM(t, func(c *Config) { c.Versions = 1; c.CommitLog = -1 })
	o := s.NewObject(int64(0))
	th := s.NewThread()

	rd := th.Begin(core.Short, true)
	// Overwrite with a single-version object: the old version is gone.
	wr := s.NewThread().Begin(core.Short, false)
	if err := wr.Write(o, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	if _, err := rd.Read(o); !errors.Is(err, core.ErrSnapshotUnavailable) {
		t.Fatalf("Read err = %v, want ErrSnapshotUnavailable", err)
	}
	if got := s.Stats().SnapshotMiss; got != 1 {
		t.Fatalf("SnapshotMiss = %d, want 1", got)
	}
}

func TestCommitTimesMonotonicPerObject(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(0))
	th := s.NewThread()
	var last uint64
	for i := 0; i < 20; i++ {
		tx := th.Begin(core.Short, false)
		if err := tx.Write(o, int64(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if ct := tx.CommitTime(); ct <= last {
			t.Fatalf("commit time %d not greater than predecessor %d", ct, last)
		} else {
			last = ct
		}
	}
}

func TestCommitTimeOfReadOnly(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(1)
	tx := s.NewThread().Begin(core.Short, true)
	if _, err := tx.Read(o); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if tx.CommitTime() != tx.SnapshotTime() {
		t.Fatalf("read-only CommitTime = %d, want snapshot time %d", tx.CommitTime(), tx.SnapshotTime())
	}
}

func TestStatsCounters(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(0))
	th := s.NewThread()

	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx2 := th.Begin(core.Short, false)
	tx2.Abort()

	st := s.Stats()
	if st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("Stats = %+v, want 1 commit, 1 abort", st)
	}
}

func TestContentionManagerArbitration(t *testing.T) {
	// With an Aggressive manager, the second writer kills the first
	// (still-active) writer and proceeds.
	s := newSTM(t, func(c *Config) { c.CM = cm.Aggressive{} })
	o := s.NewObject(int64(0))

	t1 := s.NewThread().Begin(core.Short, false)
	if err := t1.Write(o, int64(1)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	t2 := s.NewThread().Begin(core.Short, false)
	if err := t2.Write(o, int64(2)); err != nil {
		t.Fatalf("t2 Write: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 Commit: %v", err)
	}
	if err := t1.Commit(); err == nil {
		t.Fatal("t1 Commit succeeded, want abort (killed by aggressive enemy)")
	}
}

func TestSharedClockAcrossInstances(t *testing.T) {
	// Two STMs sharing one time base see each other's progress.
	c := clock.NewCounter()
	s1 := New(Config{Clock: c})
	s2 := New(Config{Clock: c})
	o1 := s1.NewObject(int64(0))

	tx := s1.NewThread().Begin(core.Short, false)
	if err := tx.Write(o1, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx2 := s2.NewThread().Begin(core.Short, false)
	if tx2.SnapshotTime() == 0 {
		t.Fatal("s2 snapshot time did not observe s1 progress through the shared clock")
	}
}

// TestSnapshotNeverTorn is the SI analogue of the bank invariant: a pair
// of objects is updated atomically (always summing to zero) by many
// writers while readers take snapshots; every snapshot must sum to zero
// even though reads are never validated.
func TestSnapshotNeverTorn(t *testing.T) {
	s := newSTM(t, func(c *Config) { c.Versions = 64 })
	a := s.NewObject(int64(0))
	b := s.NewObject(int64(0))

	const (
		writers = 4
		readers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < rounds; i++ {
				delta := int64(w*rounds + i + 1)
				for {
					tx := th.Begin(core.Short, false)
					va, err := tx.Read(a)
					if err == nil {
						var vb any
						vb, err = tx.Read(b)
						if err == nil {
							if err = tx.Write(a, va.(int64)+delta); err == nil {
								if err = tx.Write(b, vb.(int64)-delta); err == nil {
									err = tx.Commit()
								}
							}
						}
					}
					if err == nil {
						break
					}
					if !core.IsRetryable(err) {
						errs <- fmt.Errorf("writer: non-retryable: %w", err)
						return
					}
					tx.Abort()
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < rounds; i++ {
				tx := th.Begin(core.Short, true)
				va, err := tx.Read(a)
				if err != nil {
					tx.Abort()
					continue // snapshot miss is legal under truncation
				}
				vb, err := tx.Read(b)
				if err != nil {
					tx.Abort()
					continue
				}
				if sum := va.(int64) + vb.(int64); sum != 0 {
					errs <- fmt.Errorf("torn snapshot: a+b = %d", sum)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("read-only commit failed: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWriteWriteConcurrencyOneWinner checks that of n concurrent
// increments of a single counter, every committed one is preserved (no
// lost updates) under heavy contention.
func TestWriteWriteConcurrencyOneWinner(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(0))

	const (
		goroutines = 8
		increments = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread()
			for i := 0; i < increments; i++ {
				for {
					tx := th.Begin(core.Short, false)
					v, err := tx.Read(o)
					if err == nil {
						if err = tx.Write(o, v.(int64)+1); err == nil {
							err = tx.Commit()
						}
					}
					if err == nil {
						break
					}
					tx.Abort()
				}
			}
		}()
	}
	wg.Wait()

	tx := s.NewThread().Begin(core.Short, true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != int64(goroutines*increments) {
		t.Fatalf("counter = %v, want %d (lost update)", v, goroutines*increments)
	}
}

// TestAdvanceResolvesFirstCommitter: with the commit log on (the
// default), a transaction with no reads advances its snapshot past a
// concurrent commit instead of losing first-committer-wins — the
// concurrency the rule polices has dissolved.
func TestAdvanceResolvesFirstCommitter(t *testing.T) {
	s := newSTM(t)
	if s.Log() == nil {
		t.Fatal("commit log not armed on the default counter clock")
	}
	o := s.NewObject(int64(0))
	t1 := s.NewThread().Begin(core.Short, false)
	t2 := s.NewThread().Begin(core.Short, false)

	if err := t1.Write(o, int64(1)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}

	if err := t2.Write(o, int64(2)); err != nil {
		t.Fatalf("t2 Write err = %v, want nil (snapshot advanced)", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 Commit: %v", err)
	}
	st := s.Stats()
	if st.Advances < 1 || st.AdvancesFast < 1 {
		t.Fatalf("Advances/Fast = %d/%d, want >= 1 each (stats %+v)", st.Advances, st.AdvancesFast, st)
	}
}

// TestAdvanceResolvesTruncatedChain: a single-version overwrite no
// longer kills a fresh reader — its snapshot advances to now and reads
// the new value.
func TestAdvanceResolvesTruncatedChain(t *testing.T) {
	s := newSTM(t, func(c *Config) { c.Versions = 1 })
	o := s.NewObject(int64(0))
	rd := s.NewThread().Begin(core.Short, true)

	wr := s.NewThread().Begin(core.Short, false)
	if err := wr.Write(o, int64(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	v, err := rd.Read(o)
	if err != nil {
		t.Fatalf("Read err = %v, want nil (snapshot advanced)", err)
	}
	if v != int64(1) {
		t.Fatalf("Read = %v, want 1 (the advanced snapshot's value)", v)
	}
	if err := rd.Commit(); err != nil {
		t.Fatalf("rd Commit: %v", err)
	}
	if st := s.Stats(); st.Advances != 1 {
		t.Fatalf("Advances = %d, want 1 (stats %+v)", st.Advances, st)
	}
}

// TestAdvanceBlockedByReadChange: the snapshot must NOT advance past a
// change to an object the transaction has read — first-committer-wins
// stands, keeping SI's per-snapshot consistency intact.
func TestAdvanceBlockedByReadChange(t *testing.T) {
	s := newSTM(t)
	o := s.NewObject(int64(0))
	t2 := s.NewThread().Begin(core.Short, false)
	if v, err := t2.Read(o); err != nil || v != int64(0) {
		t.Fatalf("t2 Read = %v, %v", v, err)
	}

	t1 := s.NewThread().Begin(core.Short, false)
	if err := t1.Write(o, int64(1)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}

	if err := t2.Write(o, int64(2)); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("t2 Write err = %v, want ErrConflict (o is in t2's read footprint)", err)
	}
	if st := s.Stats(); st.Advances != 0 {
		t.Fatalf("Advances = %d, want 0 (stats %+v)", st.Advances, st)
	}
}
