package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAdvanceNoSlots(t *testing.T) {
	var d Domain
	e := d.Epoch()
	if !d.TryAdvance() {
		t.Fatal("TryAdvance with no slots should succeed")
	}
	if got := d.Epoch(); got != e+1 {
		t.Fatalf("Epoch = %d, want %d", got, e+1)
	}
}

func TestPinBlocksAdvanceBeyondOne(t *testing.T) {
	var d Domain
	s := d.Register()
	s.Pin()
	e := d.Epoch()
	// The pinned slot observed e, so e → e+1 may proceed...
	if !d.TryAdvance() {
		t.Fatal("advance with all pinned slots at current epoch should succeed")
	}
	// ...but e+1 → e+2 must not: the slot still shows e.
	if d.TryAdvance() {
		t.Fatal("advance past a pinned slot's epoch must fail")
	}
	if got := d.Epoch(); got != e+1 {
		t.Fatalf("Epoch = %d, want %d", got, e+1)
	}
	s.Unpin()
	if d.TryAdvance() && d.Epoch() != e+2 {
		t.Fatalf("Epoch = %d after unpin+advance, want %d", d.Epoch(), e+2)
	}
}

func TestSafeLagsPinnedReader(t *testing.T) {
	var d Domain
	s := d.Register()
	s.Pin()
	retireEpoch := d.Epoch()
	// No matter how often we try, Safe must stay below retireEpoch while
	// the reader stays pinned (reuse of a node retired now would race it).
	for i := 0; i < 10; i++ {
		d.TryAdvance()
	}
	if d.Safe() >= retireEpoch {
		t.Fatalf("Safe = %d with reader pinned at %d", d.Safe(), retireEpoch)
	}
	s.Unpin()
	for i := 0; i < 3; i++ {
		d.TryAdvance()
	}
	if d.Safe() < retireEpoch {
		t.Fatalf("Safe = %d after unpin, want >= %d", d.Safe(), retireEpoch)
	}
}

func TestPinNesting(t *testing.T) {
	var d Domain
	s := d.Register()
	s.Pin()
	s.Pin()
	s.Unpin()
	if !s.Pinned() {
		t.Fatal("slot unpinned after inner Unpin of a nested pair")
	}
	if s.pinned.Load() == 0 {
		t.Fatal("published epoch cleared by inner Unpin")
	}
	s.Unpin()
	if s.Pinned() || s.pinned.Load() != 0 {
		t.Fatal("slot still pinned after outermost Unpin")
	}
}

func TestQuiescentSlotsDoNotBlock(t *testing.T) {
	var d Domain
	for i := 0; i < 8; i++ {
		d.Register() // registered but never pinned
	}
	e := d.Epoch()
	for i := 0; i < 5; i++ {
		if !d.TryAdvance() {
			t.Fatalf("advance %d blocked by quiescent slots", i)
		}
	}
	if got := d.Epoch(); got != e+5 {
		t.Fatalf("Epoch = %d, want %d", got, e+5)
	}
}

// TestConcurrentGraceProtocol hammers the full retire/reuse protocol: a
// writer retires nodes and reuses them only once Safe allows, readers
// pin, capture the current node, and verify it is not mutated-for-reuse
// while they hold it.
func TestConcurrentGraceProtocol(t *testing.T) {
	type node struct {
		val atomic.Uint64 // even = live value; odd = poisoned (reused)
	}
	var d Domain

	var cur atomic.Pointer[node]
	cur.Store(new(node))

	const (
		readers = 4
		rounds  = 20000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	var bad atomic.Uint64
	for r := 0; r < readers; r++ {
		s := d.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.Pin()
				n := cur.Load()
				v := n.val.Load()
				if v%2 == 1 {
					bad.Add(1)
				}
				// Re-read while still pinned: reuse must be impossible.
				if v2 := n.val.Load(); v2%2 == 1 {
					bad.Add(1)
				}
				s.Unpin()
			}
		}()
	}

	// Writer: displace, retire, reuse after grace (poisoning at reuse).
	type retired struct {
		epoch uint64
		n     *node
	}
	var limbo []retired
	ws := d.Register()
	for i := 0; i < rounds; i++ {
		ws.Pin()
		var n *node
		for len(limbo) > 0 && limbo[0].epoch <= d.Safe() {
			n = limbo[0].n
			limbo = limbo[1:]
			n.val.Store(1) // poison: visible iff reused too early
		}
		if n == nil {
			n = new(node)
		}
		n.val.Store(uint64(i+1) * 2)
		old := cur.Swap(n)
		limbo = append(limbo, retired{epoch: d.Epoch(), n: old})
		ws.Unpin()
		d.TryAdvance()
	}
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d reads observed a node reused during their pin", bad.Load())
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	var d Domain
	s := d.Register()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Pin()
		s.Unpin()
	}
}

func BenchmarkPinUnpinParallel(b *testing.B) {
	var d Domain
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		s := d.Register()
		for pb.Next() {
			s.Pin()
			s.Unpin()
			d.TryAdvance()
		}
	})
}
