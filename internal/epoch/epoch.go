// Package epoch provides epoch-based reclamation (EBR) for the STM hot
// paths. The scalar-clock backends retire a committed version on every
// update of a single-version object, and every backend retires a
// transaction descriptor per transaction; neither can be recycled naively
// because invisible readers may still hold references — a version sits in
// a concurrent transaction's read set for pointer-identity validation,
// and a descriptor sits in an object's writer word where an acquirer may
// CAS against it. Go's garbage collector makes dangling pointers
// memory-safe, but *reuse* is only safe once no reader obtained before
// the retirement can still be holding the pointer: recycling earlier
// invites ABA on pointer-identity comparisons and visible mutation of a
// node mid-walk.
//
// The classic EBR discipline (Fraser; as used by crossbeam-epoch and the
// Linux kernel's RCU relatives) provides exactly that guarantee with a
// per-thread cost of two uncontended atomics per critical section:
//
//   - A Domain holds a global epoch counter E.
//   - Each thread owns a Slot. It pins the slot (publishing E) before
//     touching any shared node and unpins it when its transaction ends.
//   - The epoch advances from e to e+1 only when every pinned slot has
//     observed e. Hence once E reaches e+2, no thread can still hold a
//     reference obtained before a retirement that happened at epoch e:
//     such a thread would have been pinned at an epoch < e+1 and blocked
//     the advance.
//
// Reclaimers therefore bucket retired nodes by retirement epoch and
// recycle a bucket once Domain.Epoch() ≥ retireEpoch+2 (Safe). Dropping a
// bucket on the floor instead of recycling it is always safe — the
// garbage collector handles liveness — so pools may cap their size
// freely; epochs only gate reuse.
package epoch

import (
	"sync"
	"sync/atomic"
)

// pad keeps neighbouring per-thread state off one cache line.
type pad [64]byte

// Domain is one reclamation domain: a global epoch plus the registry of
// participating slots. Each STM instance owns a Domain; its threads
// register one Slot each. The zero value is ready to use.
type Domain struct {
	global atomic.Uint64 // current epoch; initialized lazily to firstEpoch

	// slots is the registry, published as an immutable snapshot so
	// TryAdvance scans without taking mu. Slots are never unregistered —
	// they live as long as the Domain, like the stats shards.
	mu    sync.Mutex
	slots atomic.Pointer[[]*Slot]
}

// firstEpoch is the initial epoch. Starting at 2 keeps Safe() from
// underflowing and makes epoch 0 "the distant past".
const firstEpoch = 2

// Slot is one thread's participation handle. All methods except the
// Domain's scan of the pinned epoch must be called by the owning thread.
type Slot struct {
	_ pad
	// pinned holds the epoch the owner observed when it entered its
	// current critical section, or 0 when quiescent.
	pinned atomic.Uint64
	// depth counts nested Pin calls (owner-only; no atomicity needed).
	depth int
	d     *Domain
	_     pad
}

// Register allocates and registers a new slot. Each worker thread calls
// this once and keeps the slot for its lifetime.
func (d *Domain) Register() *Slot {
	s := &Slot{d: d}
	d.mu.Lock()
	old := d.slots.Load()
	var next []*Slot
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	d.slots.Store(&next)
	d.mu.Unlock()
	return s
}

// Epoch returns the current global epoch.
//
//tbtm:noalloc
func (d *Domain) Epoch() uint64 {
	if e := d.global.Load(); e != 0 {
		return e
	}
	d.global.CompareAndSwap(0, firstEpoch)
	return d.global.Load()
}

// Safe returns the newest epoch whose retirements are reclaimable: nodes
// retired at an epoch ≤ Safe() can no longer be referenced by any reader
// and may be reused.
//
//tbtm:noalloc
func (d *Domain) Safe() uint64 { return d.Epoch() - 2 }

// TryAdvance attempts to move the global epoch forward by one. It fails
// (harmlessly) if some pinned slot has not yet observed the current
// epoch, or if it loses the CAS to a concurrent advancer. It reports
// whether the epoch moved.
//
//tbtm:noalloc
func (d *Domain) TryAdvance() bool {
	e := d.Epoch()
	slots := d.slots.Load()
	if slots != nil {
		for _, s := range *slots {
			if p := s.pinned.Load(); p != 0 && p != e {
				return false
			}
		}
	}
	return d.global.CompareAndSwap(e, e+1)
}

// Pin enters a critical section: until the matching Unpin, any node
// reachable now, or retired after this point, will not be reused. Pin
// nests; only the outermost publishes.
//
//tbtm:noalloc
func (s *Slot) Pin() {
	s.depth++
	if s.depth != 1 {
		return
	}
	d := s.d
	for {
		e := d.Epoch()
		s.pinned.Store(e)
		// Re-check: if the epoch advanced between the load and the store
		// we may have published a stale epoch. Publishing stale is safe
		// for readers (it only blocks advances conservatively), but
		// converging on the current epoch keeps the domain moving.
		if d.global.Load() == e {
			return
		}
	}
}

// Unpin leaves the critical section entered by the matching Pin.
//
//tbtm:noalloc
func (s *Slot) Unpin() {
	s.depth--
	if s.depth == 0 {
		s.pinned.Store(0)
	}
}

// Pinned reports whether the slot is currently inside a critical section
// (owner thread's view; for assertions and tests).
func (s *Slot) Pinned() bool { return s.depth > 0 }

// Domain returns the owning domain.
func (s *Slot) Domain() *Domain { return s.d }
