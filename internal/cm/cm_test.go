package cm

import (
	"sync"
	"testing"
	"time"

	"tbtm/internal/core"
)

func active(kind core.TxKind) *core.TxMeta { return core.NewTxMeta(kind, 0) }

func TestDecisionString(t *testing.T) {
	tests := []struct {
		d    Decision
		want string
	}{
		{Wait, "wait"},
		{AbortSelf, "abort-self"},
		{AbortOther, "abort-other"},
		{Decision(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Decision(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestAggressive(t *testing.T) {
	if got := (Aggressive{}).Arbitrate(active(core.Short), active(core.Short), 0); got != AbortOther {
		t.Fatalf("Aggressive = %v", got)
	}
}

func TestSuicide(t *testing.T) {
	if got := (Suicide{}).Arbitrate(active(core.Short), active(core.Short), 99); got != AbortSelf {
		t.Fatalf("Suicide = %v", got)
	}
}

func TestPoliteEscalates(t *testing.T) {
	p := &Polite{Attempts: 3}
	me, other := active(core.Short), active(core.Short)
	for a := 0; a < 3; a++ {
		if got := p.Arbitrate(me, other, a); got != Wait {
			t.Fatalf("attempt %d = %v, want wait", a, got)
		}
	}
	if got := p.Arbitrate(me, other, 3); got != AbortOther {
		t.Fatalf("attempt 3 = %v, want abort-other", got)
	}
}

func TestPoliteDefaultAttempts(t *testing.T) {
	p := &Polite{}
	if got := p.Arbitrate(nil, nil, 7); got != Wait {
		t.Fatalf("attempt 7 = %v, want wait (default 8)", got)
	}
	if got := p.Arbitrate(nil, nil, 8); got != AbortOther {
		t.Fatalf("attempt 8 = %v, want abort-other", got)
	}
}

func TestKarma(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	me.Prio.Store(10)
	other.Prio.Store(3)
	if got := (Karma{}).Arbitrate(me, other, 0); got != AbortOther {
		t.Fatalf("richer me = %v, want abort-other", got)
	}
	// Poorer me waits until attempts exceed the gap.
	me.Prio.Store(1)
	if got := (Karma{}).Arbitrate(me, other, 0); got != Wait {
		t.Fatalf("poorer me attempt 0 = %v, want wait", got)
	}
	if got := (Karma{}).Arbitrate(me, other, 3); got != AbortOther {
		t.Fatalf("poorer me attempt 3 = %v, want abort-other (gap 2)", got)
	}
}

func TestTimestamp(t *testing.T) {
	older := active(core.Short)
	younger := active(core.Short) // created later → larger ID
	if got := (Timestamp{}).Arbitrate(older, younger, 0); got != AbortOther {
		t.Fatalf("older vs younger = %v, want abort-other", got)
	}
	if got := (Timestamp{}).Arbitrate(younger, older, 0); got != AbortSelf {
		t.Fatalf("younger vs older = %v, want abort-self", got)
	}
}

func TestZoneAware(t *testing.T) {
	z := &ZoneAware{ShortPatience: 4}
	long1 := active(core.Long)
	long2 := active(core.Long)
	short1 := active(core.Short)
	short2 := active(core.Short)

	t.Run("long beats short after grace", func(t *testing.T) {
		if got := z.Arbitrate(long1, short1, 0); got != Wait {
			t.Fatalf("grace round = %v", got)
		}
		if got := z.Arbitrate(long1, short1, 2); got != AbortOther {
			t.Fatalf("post-grace = %v", got)
		}
	})
	t.Run("short waits then yields to long", func(t *testing.T) {
		if got := z.Arbitrate(short1, long1, 3); got != Wait {
			t.Fatalf("within patience = %v", got)
		}
		if got := z.Arbitrate(short1, long1, 4); got != AbortSelf {
			t.Fatalf("past patience = %v", got)
		}
	})
	t.Run("long vs long by start order", func(t *testing.T) {
		if got := z.Arbitrate(long1, long2, 0); got != AbortOther {
			t.Fatalf("older long = %v", got)
		}
		if got := z.Arbitrate(long2, long1, 0); got != AbortSelf {
			t.Fatalf("younger long = %v", got)
		}
	})
	t.Run("short vs short politely", func(t *testing.T) {
		if got := z.Arbitrate(short1, short2, 0); got != Wait {
			t.Fatalf("early = %v", got)
		}
		if got := z.Arbitrate(short1, short2, 4); got != AbortOther {
			t.Fatalf("older short late = %v", got)
		}
		if got := z.Arbitrate(short2, short1, 4); got != AbortSelf {
			t.Fatalf("younger short late = %v", got)
		}
	})
}

func TestZoneAwareDefaultPatience(t *testing.T) {
	z := &ZoneAware{}
	s, l := active(core.Short), active(core.Long)
	if got := z.Arbitrate(s, l, 15); got != Wait {
		t.Fatalf("attempt 15 = %v, want wait (default 16)", got)
	}
	if got := z.Arbitrate(s, l, 16); got != AbortSelf {
		t.Fatalf("attempt 16 = %v, want abort-self", got)
	}
}

func TestResolveEnemyTerminal(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	other.TryAbort()
	if !Resolve(Suicide{}, me, other) {
		t.Fatal("Resolve against aborted enemy = false")
	}
	if me.Status() != core.StatusActive {
		t.Fatal("me was aborted despite terminal enemy")
	}
}

func TestResolveNilEnemy(t *testing.T) {
	me := active(core.Short)
	if !Resolve(Aggressive{}, me, nil) {
		t.Fatal("Resolve(nil enemy) = false")
	}
}

func TestResolveAbortSelf(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	if Resolve(Suicide{}, me, other) {
		t.Fatal("Resolve with Suicide = true")
	}
	if me.Status() != core.StatusAborted {
		t.Fatalf("me status = %v, want aborted", me.Status())
	}
	if other.Status() != core.StatusActive {
		t.Fatalf("other status = %v, want active", other.Status())
	}
}

func TestResolveAbortOther(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	if !Resolve(Aggressive{}, me, other) {
		t.Fatal("Resolve with Aggressive = false")
	}
	if other.Status() != core.StatusAborted {
		t.Fatalf("other status = %v, want aborted", other.Status())
	}
}

func TestResolveDoesNotKillCommitting(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	other.CASStatus(core.StatusActive, core.StatusCommitting)
	done := make(chan bool, 1)
	go func() {
		done <- Resolve(Aggressive{}, me, other)
	}()
	// Let Resolve spin a little against the committing enemy.
	time.Sleep(2 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Resolve returned while enemy was committing")
	default:
	}
	other.CASStatus(core.StatusCommitting, core.StatusCommitted)
	if ok := <-done; !ok {
		t.Fatal("Resolve = false after enemy committed")
	}
	if other.Status() != core.StatusCommitted {
		t.Fatalf("enemy status = %v, want committed (not killed)", other.Status())
	}
}

func TestResolveMeAlreadyAborted(t *testing.T) {
	me, other := active(core.Short), active(core.Short)
	me.TryAbort()
	if Resolve(Aggressive{}, me, other) {
		t.Fatal("Resolve with aborted self = true")
	}
	if other.Status() != core.StatusActive {
		t.Fatal("enemy was aborted by an already-dead transaction")
	}
}

func TestResolveConcurrentDuel(t *testing.T) {
	// Two transactions resolving against each other with Timestamp must
	// end with exactly one survivor.
	for i := 0; i < 100; i++ {
		a, b := active(core.Short), active(core.Short)
		var wg sync.WaitGroup
		var aWon, bWon bool
		wg.Add(2)
		go func() { defer wg.Done(); aWon = Resolve(Timestamp{}, a, b) }()
		go func() { defer wg.Done(); bWon = Resolve(Timestamp{}, b, a) }()
		wg.Wait()
		if !aWon || bWon {
			// a is older, so a must win and b must abort itself.
			t.Fatalf("iteration %d: aWon=%v bWon=%v", i, aWon, bWon)
		}
		if a.Status() == core.StatusAborted && b.Status() == core.StatusAborted {
			t.Fatalf("iteration %d: both aborted", i)
		}
	}
}

func TestBackoffDoesNotPanic(t *testing.T) {
	for _, round := range []int{-1, 0, 1, 5, 100} {
		Backoff(round)
	}
}

// TestBackoffSleepsAfterRoundZero pins the backoff progression the
// write-acquisition loops of every backend rely on: round 0 only yields,
// but every round from 1 on must actually sleep (jitter keeps the delay
// in (d/2, d], so round 1 sleeps at least 1µs — time.Sleep never returns
// early). The old write loops passed round/4, silently turning the first
// four conflict rounds into zero-delay spins on the contended writer
// word.
func TestBackoffSleepsAfterRoundZero(t *testing.T) {
	for _, round := range []int{1, 2, 3} {
		start := time.Now()
		Backoff(round)
		if d := time.Since(start); d < time.Microsecond {
			t.Fatalf("Backoff(%d) returned after %v, want >= 1µs of real sleep", round, d)
		}
	}
}

// TestBackoffCapped pins the spin-loop sweep: the exponent is capped, so
// even the unbounded rounds of the stabilize/Resolve wait loops never
// sleep longer than ~256µs per call (plus scheduler slop), and repeated
// calls draw jittered (non-identical) delays rather than backing off in
// lockstep.
func TestBackoffCapped(t *testing.T) {
	for _, round := range []int{8, 64, 1 << 20} {
		start := time.Now()
		Backoff(round)
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("Backoff(%d) slept %v, want capped near 256µs", round, d)
		}
	}
}

// TestNegativeAttemptsClamp pins the Attempts/patience clamp: an
// explicitly negative limit must behave like the documented default, not
// degenerate to round-0 escalation (Polite → Aggressive, ZoneAware
// shorts → instant suicide).
func TestNegativeAttemptsClamp(t *testing.T) {
	a, b := active(core.Short), active(core.Short)
	p := &Polite{Attempts: -3}
	if got := p.Arbitrate(a, b, 0); got != Wait {
		t.Fatalf("Polite{-3} round 0 = %v, want Wait (default limit)", got)
	}
	if got := p.Arbitrate(a, b, 8); got != AbortOther {
		t.Fatalf("Polite{-3} round 8 = %v, want AbortOther", got)
	}
	z := &ZoneAware{ShortPatience: -1}
	shortMe, longOther := active(core.Short), active(core.Long)
	if got := z.Arbitrate(shortMe, longOther, 0); got != Wait {
		t.Fatalf("ZoneAware{-1} short-vs-long round 0 = %v, want Wait", got)
	}
	if got := z.Arbitrate(shortMe, longOther, 16); got != AbortSelf {
		t.Fatalf("ZoneAware{-1} short-vs-long round 16 = %v, want AbortSelf", got)
	}
	r := &Randomized{Attempts: -2}
	// With a negative limit clamped to the default of 4, round 0 must
	// never yield AbortSelf (that decision only exists past the limit).
	for i := 0; i < 256; i++ {
		if got := r.Arbitrate(a, b, 0); got == AbortSelf {
			t.Fatal("Randomized{-2} escalated to AbortSelf on round 0")
		}
	}
}

func TestGreedy(t *testing.T) {
	older := core.NewTxMeta(core.Short, 0)
	younger := core.NewTxMeta(core.Short, 1)
	if got := (Greedy{}).Arbitrate(older, younger, 0); got != AbortOther {
		t.Fatalf("older vs younger = %v, want AbortOther", got)
	}
	if got := (Greedy{}).Arbitrate(younger, older, 0); got != AbortSelf {
		t.Fatalf("younger vs older = %v, want AbortSelf", got)
	}
	// Greedy never waits, at any attempt count.
	for attempt := 0; attempt < 20; attempt++ {
		if got := (Greedy{}).Arbitrate(younger, older, attempt); got == Wait {
			t.Fatal("greedy waited")
		}
	}
}

func TestRandomizedTerminates(t *testing.T) {
	a := core.NewTxMeta(core.Short, 0)
	b := core.NewTxMeta(core.Short, 1)
	r := &Randomized{Attempts: 2}
	// Before escalation only Wait/AbortOther; after it only
	// AbortSelf/AbortOther — so arbitration always terminates.
	for i := 0; i < 200; i++ {
		switch r.Arbitrate(a, b, 0) {
		case Wait, AbortOther:
		default:
			t.Fatal("pre-escalation decision out of range")
		}
		switch r.Arbitrate(a, b, 5) {
		case AbortSelf, AbortOther:
		default:
			t.Fatal("post-escalation decision waited")
		}
	}
}

func TestRandomizedBothOutcomesOccur(t *testing.T) {
	a := core.NewTxMeta(core.Short, 0)
	b := core.NewTxMeta(core.Short, 1)
	r := &Randomized{}
	seen := map[Decision]bool{}
	for i := 0; i < 500; i++ {
		seen[r.Arbitrate(a, b, 10)] = true
	}
	if !seen[AbortSelf] || !seen[AbortOther] {
		t.Fatalf("coin is not fair enough: %v", seen)
	}
}
