package cm

import (
	"testing"
	"testing/quick"

	"tbtm/internal/core"
)

// metaWith builds an active descriptor with controlled arbitration
// inputs. ID is overwritten after construction: descriptors here never
// enter a shared structure, so start-order uniqueness is irrelevant.
func metaWith(kind core.TxKind, id uint64, prio int64) *core.TxMeta {
	m := core.NewTxMeta(kind, 0)
	m.ID = id
	m.Prio.Store(prio)
	return m
}

func kindOf(b bool) core.TxKind {
	if b {
		return core.Long
	}
	return core.Short
}

// TestQuickPoliciesTotal checks that every deterministic policy is a
// total function: any combination of kinds, IDs, priorities and attempt
// counts yields a valid decision.
func TestQuickPoliciesTotal(t *testing.T) {
	policies := []struct {
		name string
		m    Manager
	}{
		{"aggressive", Aggressive{}},
		{"suicide", Suicide{}},
		{"polite", &Polite{}},
		{"karma", Karma{}},
		{"timestamp", Timestamp{}},
		{"greedy", Greedy{}},
		{"randomized", &Randomized{}},
		{"zone-aware", &ZoneAware{}},
	}
	prop := func(meLong, otherLong bool, meID, otherID uint64, mePrio, otherPrio int64, attempt uint16) bool {
		me := metaWith(kindOf(meLong), meID, mePrio)
		other := metaWith(kindOf(otherLong), otherID, otherPrio)
		for _, p := range policies {
			switch p.m.Arbitrate(me, other, int(attempt)) {
			case Wait, AbortSelf, AbortOther:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAgeAntisymmetric checks the livelock-freedom core of the
// age-based policies: for any two distinct IDs, Timestamp and Greedy
// kill in exactly one direction — never both AbortOther (mutual kill)
// nor both AbortSelf (mutual suicide).
func TestQuickAgeAntisymmetric(t *testing.T) {
	for _, p := range []struct {
		name string
		m    Manager
	}{
		{"timestamp", Timestamp{}},
		{"greedy", Greedy{}},
	} {
		prop := func(idA, idB uint64, attempt uint8) bool {
			if idA == idB {
				return true
			}
			a := metaWith(core.Short, idA, 0)
			b := metaWith(core.Short, idB, 0)
			ab := p.m.Arbitrate(a, b, int(attempt))
			ba := p.m.Arbitrate(b, a, int(attempt))
			return (ab == AbortOther && ba == AbortSelf) ||
				(ab == AbortSelf && ba == AbortOther)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
	}
}

// TestQuickKarmaEventualProgress checks Karma's escalation rule: for any
// priorities, once the attempt count exceeds the karma gap the decision
// is AbortOther, so a conflict can never wait forever.
func TestQuickKarmaEventualProgress(t *testing.T) {
	prop := func(mePrio, otherPrio int32) bool {
		me := metaWith(core.Short, 1, int64(mePrio))
		other := metaWith(core.Short, 2, int64(otherPrio))
		gap := int64(otherPrio) - int64(mePrio)
		if gap < 0 {
			gap = 0
		}
		attempt := int(gap) + 1
		return Karma{}.Arbitrate(me, other, attempt) == AbortOther
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKarmaRicherWins checks that a strictly richer transaction
// kills immediately regardless of attempt.
func TestQuickKarmaRicherWins(t *testing.T) {
	prop := func(base int32, extra uint16, attempt uint8) bool {
		me := metaWith(core.Short, 1, int64(base)+int64(extra)+1)
		other := metaWith(core.Short, 2, int64(base))
		return Karma{}.Arbitrate(me, other, int(attempt)) == AbortOther
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickZoneAwareLongBeatsShort checks the Z-STM design intent for
// arbitrary patience configurations: past the waiting window, a long
// transaction kills a blocking short, and a short blocked by a long
// aborts itself.
func TestQuickZoneAwareLongBeatsShort(t *testing.T) {
	prop := func(patience uint8, meID, otherID uint64, prio int64) bool {
		z := &ZoneAware{ShortPatience: int(patience)}
		effective := int(patience)
		if effective == 0 {
			effective = 16
		}
		long := metaWith(core.Long, meID, prio)
		short := metaWith(core.Short, otherID, prio)
		if z.Arbitrate(long, short, 2) != AbortOther {
			return false
		}
		return z.Arbitrate(short, long, effective) == AbortSelf
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickZoneAwareLongDuelAntisymmetric checks long-vs-long conflicts
// resolve by zone (start) order in exactly one direction.
func TestQuickZoneAwareLongDuelAntisymmetric(t *testing.T) {
	z := &ZoneAware{}
	prop := func(idA, idB uint64, attempt uint8) bool {
		if idA == idB {
			return true
		}
		a := metaWith(core.Long, idA, 0)
		b := metaWith(core.Long, idB, 0)
		ab := z.Arbitrate(a, b, int(attempt))
		ba := z.Arbitrate(b, a, int(attempt))
		return (ab == AbortOther && ba == AbortSelf) ||
			(ab == AbortSelf && ba == AbortOther)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
