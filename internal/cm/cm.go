// Package cm provides pluggable contention managers in the DSTM style
// referenced by the paper (§4.1: "conflict arbitration is performed by a
// configurable module called contention manager, which is responsible for
// the liveness of the system").
//
// A contention manager decides, for a transaction that found an object
// held by an enemy transaction, whether to wait, abort itself, or abort
// the enemy. The Resolve helper runs the standard arbitration loop shared
// by all STM implementations in this repository.
package cm

import (
	"runtime"
	"sync/atomic"
	"time"

	"tbtm/internal/core"
)

// Decision is a contention manager's verdict for one arbitration attempt.
type Decision int

const (
	// Wait backs off and re-examines the conflict.
	Wait Decision = iota + 1
	// AbortSelf gives up: the calling transaction aborts.
	AbortSelf
	// AbortOther kills the enemy transaction if it is still active.
	AbortOther
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Wait:
		return "wait"
	case AbortSelf:
		return "abort-self"
	case AbortOther:
		return "abort-other"
	default:
		return "invalid"
	}
}

// Manager arbitrates conflicts between transactions. Implementations must
// be safe for concurrent use. attempt counts arbitration rounds for this
// particular conflict, starting at 0, letting policies escalate.
type Manager interface {
	Arbitrate(me, other *core.TxMeta, attempt int) Decision
}

// Aggressive always aborts the enemy (if it cannot be aborted because it
// is already committing, Resolve waits for it to finish).
type Aggressive struct{}

var _ Manager = Aggressive{}

// Arbitrate returns AbortOther unconditionally.
func (Aggressive) Arbitrate(_, _ *core.TxMeta, _ int) Decision { return AbortOther }

// Suicide always aborts the calling transaction. Useful as the most
// conservative policy and for tests.
type Suicide struct{}

var _ Manager = Suicide{}

// Arbitrate returns AbortSelf unconditionally.
func (Suicide) Arbitrate(_, _ *core.TxMeta, _ int) Decision { return AbortSelf }

// Polite backs off with exponentially increasing patience and, after
// Attempts rounds, aborts the enemy.
type Polite struct {
	// Attempts before escalating to AbortOther. Non-positive values
	// (including an explicitly negative one) select the default of 8: a
	// negative limit would make round 0's attempt < limit test false and
	// silently degenerate the policy to Aggressive.
	Attempts int
}

var _ Manager = (*Polite)(nil)

// Arbitrate waits for the configured number of attempts, then kills.
func (p *Polite) Arbitrate(_, _ *core.TxMeta, attempt int) Decision {
	limit := p.Attempts
	if limit <= 0 {
		limit = 8
	}
	if attempt < limit {
		return Wait
	}
	return AbortOther
}

// Karma favours the transaction that has performed more work (tracked as
// TxMeta.Prio, which the STMs increment on every open). The poorer
// transaction waits for as many rounds as the karma difference, then
// aborts the richer enemy anyway (the DSTM Karma escalation rule).
type Karma struct{}

var _ Manager = Karma{}

// Arbitrate compares karma and escalates after attempt rounds exceed the
// karma gap.
func (Karma) Arbitrate(me, other *core.TxMeta, attempt int) Decision {
	mine, theirs := me.Prio.Load(), other.Prio.Load()
	if mine > theirs {
		return AbortOther
	}
	if int64(attempt) > theirs-mine {
		return AbortOther
	}
	return Wait
}

// Timestamp favours the older transaction (smaller start-ordered ID): the
// younger transaction aborts itself when conflicting with an older one,
// which guarantees freedom from livelock.
type Timestamp struct{}

var _ Manager = Timestamp{}

// Arbitrate lets the older transaction win.
func (Timestamp) Arbitrate(me, other *core.TxMeta, _ int) Decision {
	if me.ID < other.ID {
		return AbortOther
	}
	return AbortSelf
}

// Greedy implements the Guerraoui–Herlihy–Pochon policy with provable
// O(s²) contention bounds: every transaction carries a start-ordered
// priority (TxMeta.ID — smaller is older) and a conflict is always
// resolved immediately, in favour of the older transaction, without
// waiting. Unlike Timestamp it never waits at all, which is what yields
// the bound: at any moment the oldest active transaction runs
// unimpeded.
type Greedy struct{}

var _ Manager = Greedy{}

// Arbitrate resolves instantly by age.
func (Greedy) Arbitrate(me, other *core.TxMeta, _ int) Decision {
	if me.ID < other.ID {
		return AbortOther
	}
	return AbortSelf
}

// Randomized flips a per-descriptor coin: abort the enemy or back off,
// escalating to a coin flip between self and enemy after Attempts
// rounds. Randomized arbitration breaks symmetric livelock patterns that
// deterministic policies can fall into when two transactions repeatedly
// collide in the same order.
type Randomized struct {
	// Attempts before escalating. Non-positive values select the default
	// of 4 (a negative limit would escalate on round 0, see
	// Polite.Attempts).
	Attempts int
}

var _ Manager = (*Randomized)(nil)

// rngState drives a package-level splitmix64 sequence. Contention
// arbitration only needs statistical asymmetry, not cryptographic or
// even per-goroutine-independent randomness, so one shared atomic is
// enough and keeps the policy allocation-free.
var rngState atomic.Uint64

func nextRand() uint64 {
	x := rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Arbitrate waits or kills at random, then escalates to a fair coin.
func (r *Randomized) Arbitrate(_, _ *core.TxMeta, attempt int) Decision {
	limit := r.Attempts
	if limit <= 0 {
		limit = 4
	}
	x := nextRand()
	if attempt < limit {
		if x&1 == 0 {
			return Wait
		}
		return AbortOther
	}
	if x&1 == 0 {
		return AbortSelf
	}
	return AbortOther
}

// ZoneAware is the default policy for Z-STM: long transactions beat short
// ones (the paper's design intent is that long transactions, being rare,
// should commit; §5), long-vs-long falls back to zone order via IDs, and
// short-vs-short behaves like Polite. Shorts blocked by a long wait a few
// rounds (the long may be about to commit) and then abort themselves,
// matching "the contention manager, which would typically abort T"
// (§5.2).
type ZoneAware struct {
	// ShortPatience is how many rounds a short transaction waits on a
	// long one before aborting itself. Non-positive values select the
	// default of 16 (a negative patience would abort on round 0, see
	// Polite.Attempts).
	ShortPatience int
}

var _ Manager = (*ZoneAware)(nil)

// Arbitrate implements the zone-aware policy.
func (z *ZoneAware) Arbitrate(me, other *core.TxMeta, attempt int) Decision {
	patience := z.ShortPatience
	if patience <= 0 {
		patience = 16
	}
	switch {
	case me.Kind == core.Long && other.Kind == core.Short:
		if attempt < 2 {
			return Wait // give the short a chance to finish its commit
		}
		return AbortOther
	case me.Kind == core.Short && other.Kind == core.Long:
		if attempt < patience {
			return Wait
		}
		return AbortSelf
	case me.Kind == core.Long && other.Kind == core.Long:
		// Zone order == start order for long transactions.
		if me.ID < other.ID {
			return AbortOther
		}
		return AbortSelf
	default:
		if attempt < 4 {
			return Wait
		}
		if me.ID < other.ID {
			return AbortOther
		}
		return AbortSelf
	}
}

// Backoff sleeps with truncated, jittered exponential backoff for the
// given round: round 0 merely yields the processor; later rounds sleep a
// uniformly random duration in (512ns << r, 1µs << r] with the exponent r
// capped at 8, i.e. at most 256µs. The cap bounds the stall any single
// wait contributes (the unbounded spin loops around stabilize/Resolve
// call this with an ever-growing round), and the jitter desynchronizes
// co-scheduled threads: with deterministic delays, transactions that
// collide once keep re-colliding on the same schedule — the symmetric
// livelock class behind the old single-TL2 ablation hang. All STMs use
// Backoff between arbitration attempts.
func Backoff(round int) {
	if round <= 0 {
		runtime.Gosched()
		return
	}
	d := time.Microsecond << uint(min(round, 8))
	// Jitter into (d/2, d]: nextRand is a shared splitmix64 sequence, so
	// consecutive callers — in particular distinct threads backing off
	// from the same conflict — draw uncorrelated delays.
	d = d/2 + time.Duration(nextRand()%uint64(d/2)) + 1
	time.Sleep(d)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Resolve runs the arbitration loop for me against the holder other.
// It returns true when the conflict is gone: the enemy reached a terminal
// state (committed or aborted) — the caller re-examines the object and
// may steal the lock. It returns false when me must abort (and me's
// status has already been moved to aborted).
//
// Resolve never aborts an enemy that has reached StatusCommitting; per
// the paper's §4.2 liveness note the caller waits for (helps) committing
// transactions instead of killing them.
func Resolve(m Manager, me, other *core.TxMeta) bool {
	for attempt := 0; ; attempt++ {
		if me.Status() == core.StatusAborted {
			return false
		}
		if other == nil || other.Status().Terminal() {
			return true
		}
		switch m.Arbitrate(me, other, attempt) {
		case AbortOther:
			if other.TryAbortActive() {
				return true
			}
			// Enemy is committing (or just committed): wait it out.
			Backoff(attempt)
		case AbortSelf:
			me.TryAbort()
			return false
		default:
			Backoff(attempt)
		}
	}
}
