package checker_test

import (
	"testing"

	"tbtm/internal/conformance"
)

// Conformance fuzzing: random concurrent workloads against every STM,
// validated against its advertised criterion (DESIGN.md §6). The harness
// lives in internal/conformance so that cmd/stmcheck shares it.

func TestConformanceLSALinearizable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n, err := conformance.Check(conformance.Config{System: conformance.LSA, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == 0 {
			t.Fatal("no transactions committed")
		}
	}
}

func TestConformanceLSANoReadSetsLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.LSANoReadSets, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceLSAFastPathLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.LSAFast, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceCSTMCausallySerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.CSTM, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceCSTMPlausibleCausallySerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.CSTMPlausible, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceCSTMBlockMappingCausallySerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.CSTMPlausibleBlock, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceCSTMCombCausallySerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.CSTMComb, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceCSTMMultiVersionCausallySerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.CSTMMulti, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceSSTMSerializable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := conformance.Check(conformance.Config{System: conformance.SSTM, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestConformanceZSTMZLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n, err := conformance.Check(conformance.Config{System: conformance.ZSTM, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == 0 {
			t.Fatal("no transactions committed")
		}
	}
}

func TestConformanceSISTMSnapshotIsolated(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n, err := conformance.Check(conformance.Config{System: conformance.SISTM, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == 0 {
			t.Fatal("no transactions committed")
		}
	}
}

func TestConformanceHighContention(t *testing.T) {
	// Two objects, many threads: maximum conflict pressure.
	for _, sys := range []conformance.System{conformance.LSA, conformance.ZSTM, conformance.SSTM, conformance.SISTM} {
		if _, err := conformance.Check(conformance.Config{
			System: sys, Threads: 6, TxPerThread: 30, Objects: 2, Seed: 99,
		}); err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
	}
}
