package checker

import (
	"encoding/json"
	"fmt"
	"io"
)

// History serialization: failing fuzz histories can be dumped by
// cmd/stmcheck and re-examined offline (re-run through the checkers,
// minimized by hand, or attached to a bug report). The format is plain
// JSON of the History structure.

// historyJSON is the serialized form; it mirrors History with explicit
// field names so the format is stable against internal renames.
type historyJSON struct {
	Txs []txJSON `json:"txs"`
}

type txJSON struct {
	ID       uint64      `json:"id"`
	Thread   int         `json:"thread"`
	Long     bool        `json:"long,omitempty"`
	Zone     uint64      `json:"zone,omitempty"`
	Start    int64       `json:"start"`
	End      int64       `json:"end"`
	SnapTS   uint64      `json:"snapTs,omitempty"`
	CommitTS uint64      `json:"commitTs,omitempty"`
	HasTS    bool        `json:"hasTs,omitempty"`
	Reads    [][2]uint64 `json:"reads,omitempty"`  // [obj, seq]
	Writes   [][2]uint64 `json:"writes,omitempty"` // [obj, seq]
}

// SaveJSON writes h to w as JSON.
func SaveJSON(w io.Writer, h *History) error {
	out := historyJSON{Txs: make([]txJSON, 0, len(h.Txs))}
	for _, t := range h.Txs {
		tj := txJSON{
			ID: t.ID, Thread: t.Thread, Long: t.Long, Zone: t.Zone,
			Start: t.Start, End: t.End,
			SnapTS: t.SnapTS, CommitTS: t.CommitTS, HasTS: t.HasTS,
		}
		for _, r := range t.Reads {
			tj.Reads = append(tj.Reads, [2]uint64{r.Obj, r.Seq})
		}
		for _, wr := range t.Writes {
			tj.Writes = append(tj.Writes, [2]uint64{wr.Obj, wr.Seq})
		}
		out.Txs = append(out.Txs, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("checker: encoding history: %w", err)
	}
	return nil
}

// LoadJSON reads a history written by SaveJSON.
func LoadJSON(r io.Reader) (*History, error) {
	var in historyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("checker: decoding history: %w", err)
	}
	h := &History{Txs: make([]Tx, 0, len(in.Txs))}
	for _, tj := range in.Txs {
		t := Tx{
			ID: tj.ID, Thread: tj.Thread, Long: tj.Long, Zone: tj.Zone,
			Start: tj.Start, End: tj.End,
			SnapTS: tj.SnapTS, CommitTS: tj.CommitTS, HasTS: tj.HasTS,
		}
		for _, p := range tj.Reads {
			t.Reads = append(t.Reads, Read{Obj: p[0], Seq: p[1]})
		}
		for _, p := range tj.Writes {
			t.Writes = append(t.Writes, Write{Obj: p[0], Seq: p[1]})
		}
		h.Txs = append(h.Txs, t)
	}
	return h, nil
}
