package checker_test

import (
	"testing"

	"tbtm/internal/conformance"
)

// Exhaustive small-scope exploration: every interleaving of a scripted
// scenario, each committed history checked against the system's
// criterion. Complements the random fuzzer with complete coverage of
// shallow schedules.

func rd(obj int) conformance.ScriptOp { return conformance.ScriptOp{Obj: obj} }
func wr(obj int) conformance.ScriptOp { return conformance.ScriptOp{Obj: obj, Write: true} }

// writeSkewScripts is the canonical anomaly: both transactions read both
// objects, each writes the one the other read.
func writeSkewScripts() []conformance.Script {
	return []conformance.Script{
		{Ops: []conformance.ScriptOp{rd(0), rd(1), wr(0)}},
		{Ops: []conformance.ScriptOp{rd(0), rd(1), wr(1)}},
	}
}

// lostUpdateScripts is the read-modify-write collision.
func lostUpdateScripts() []conformance.Script {
	return []conformance.Script{
		{Ops: []conformance.ScriptOp{rd(0), wr(0)}},
		{Ops: []conformance.ScriptOp{rd(0), wr(0)}},
	}
}

func TestExploreWriteSkewAllSystems(t *testing.T) {
	for _, sys := range []conformance.System{
		conformance.LSA, conformance.LSAFast, conformance.CSTM,
		conformance.CSTMPlausible, conformance.CSTMMulti, conformance.SSTM,
		conformance.ZSTM, conformance.SISTM,
	} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			res, err := conformance.Explore(conformance.Config{System: sys, Objects: 2}, writeSkewScripts())
			if err != nil {
				t.Fatal(err)
			}
			// 2 threads x 4 slots each: C(8,4) = 70 interleavings.
			if res.Interleavings != 70 {
				t.Fatalf("interleavings = %d, want 70", res.Interleavings)
			}
			if res.Committed == 0 {
				t.Fatal("nothing committed across 70 schedules")
			}
		})
	}
}

func TestExploreLostUpdateAllSystems(t *testing.T) {
	for _, sys := range []conformance.System{
		conformance.LSA, conformance.CSTM, conformance.CSTMMulti,
		conformance.SSTM, conformance.ZSTM, conformance.SISTM,
	} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			res, err := conformance.Explore(conformance.Config{System: sys, Objects: 1}, lostUpdateScripts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Interleavings != 20 { // C(6,3)
				t.Fatalf("interleavings = %d, want 20", res.Interleavings)
			}
		})
	}
}

// TestExploreFigure1Shape runs the Figure 1 scenario — a long reader
// spanning two disjoint writers — under the systems where it is
// interesting. Every interleaving must satisfy the criterion; the long
// transaction's commit success varies by schedule, which is the figure's
// point.
func TestExploreFigure1Shape(t *testing.T) {
	scripts := []conformance.Script{
		{Long: true, Ops: []conformance.ScriptOp{rd(0), rd(1), rd(2), wr(3)}},
		{Ops: []conformance.ScriptOp{wr(0), wr(1)}},
		{Ops: []conformance.ScriptOp{wr(2)}},
	}
	systems := []conformance.System{
		conformance.LSA, conformance.SSTM, conformance.ZSTM,
	}
	if testing.Short() {
		// Z-STM pays real backoff waits on zone crossings in every one of
		// the 2520 interleavings, dominating the race lane (~7s of the
		// package's runtime); the full sweep keeps it, the short lane
		// covers the LSA and S-STM engines.
		systems = systems[:2]
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			res, err := conformance.Explore(conformance.Config{System: sys, Objects: 4}, scripts)
			if err != nil {
				t.Fatal(err)
			}
			// Slots: 5 + 3 + 2 = 10; 10!/(5!·3!·2!) = 2520 interleavings.
			if res.Interleavings != 2520 {
				t.Fatalf("interleavings = %d, want 2520", res.Interleavings)
			}
			if res.Committed == 0 || res.Aborted == 0 {
				t.Fatalf("want both commits and aborts across schedules, got %d/%d",
					res.Committed, res.Aborted)
			}
		})
	}
}

// TestExploreMultiVersionCommitsMore quantifies §4.1 footnote 1 in the
// exhaustive small scope. The scenario builds a causal chain across
// threads — T2 writes o1 after reading T1's write to o0 — so a reader
// that saw o0's initial version and then o1's current version folds a
// timestamp dominating o0's successor and must abort under base CS-STM.
// The multi-version variant picks o1's retained initial version in those
// schedules. Both variants must satisfy causal serializability in every
// interleaving (Explore checks this); the retained versions strictly
// increase the number of committed transactions.
func TestExploreMultiVersionCommitsMore(t *testing.T) {
	scripts := []conformance.Script{
		{Long: true, Ops: []conformance.ScriptOp{rd(0), rd(1)}},
		{Ops: []conformance.ScriptOp{wr(0)}},
		{Ops: []conformance.ScriptOp{rd(0), wr(1)}},
	}
	committed := map[conformance.System]int{}
	for _, sys := range []conformance.System{conformance.CSTM, conformance.CSTMMulti} {
		res, err := conformance.Explore(conformance.Config{System: sys, Objects: 2}, scripts)
		if err != nil {
			t.Fatal(err)
		}
		// Slots: 3 + 2 + 3 = 8; 8!/(3!·2!·3!) = 560 interleavings.
		if res.Interleavings != 560 {
			t.Fatalf("%s: interleavings = %d, want 560", sys, res.Interleavings)
		}
		committed[sys] = res.Committed
	}
	if committed[conformance.CSTMMulti] <= committed[conformance.CSTM] {
		t.Fatalf("multi-version committed %d, single-version %d; want strictly more",
			committed[conformance.CSTMMulti], committed[conformance.CSTM])
	}
}

// TestExploreReadersNeverAbortUnderSI pins the SI property that pure
// readers always commit: reads are never validated.
func TestExploreReadersNeverAbortUnderSI(t *testing.T) {
	scripts := []conformance.Script{
		{Ops: []conformance.ScriptOp{rd(0), rd(1)}},
		{Ops: []conformance.ScriptOp{wr(0), wr(1)}},
	}
	res, err := conformance.Explore(conformance.Config{System: conformance.SISTM, Objects: 2}, scripts)
	if err != nil {
		t.Fatal(err)
	}
	// Both transactions commit in every schedule: the reader reads its
	// snapshot, the writer has no competition.
	if res.Aborted != 0 {
		t.Fatalf("aborts = %d, want 0 (SI readers never validate)", res.Aborted)
	}
	if res.Committed != 2*res.Interleavings {
		t.Fatalf("commits = %d, want %d", res.Committed, 2*res.Interleavings)
	}
}
