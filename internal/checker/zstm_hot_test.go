package checker_test

import (
	"testing"

	"tbtm/internal/conformance"
)

// TestZSTMHotSerializable is the regression net for the PR4 Z-STM
// serializability sweep: a hot, op-interleaved (Yield) workload over
// few objects, which is what exposed four distinct holes in the
// zone machinery — a zone treated as settled while its long was still
// installing, the stamp-before-lock window in long write opens, the
// read-only fallback skipping past a long's install, and an active
// zone masked by a later aborted long's higher stamp. Each has a
// deterministic unit regression in internal/zstm; this test keeps the
// interleaving pressure on the whole protocol.
func TestZSTMHotSerializable(t *testing.T) {
	seeds, perThread := 8, 150
	if testing.Short() {
		seeds, perThread = 3, 80
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		cfg := conformance.Config{
			System:      conformance.ZSTM,
			Threads:     4,
			TxPerThread: perThread,
			Objects:     4,
			Seed:        seed,
			Yield:       true,
		}
		if _, err := conformance.Check(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
