// Package checker provides offline consistency checkers for committed
// transaction histories: conflict-serializability, linearizability,
// causal serializability, and the paper's z-linearizability. The fuzz
// and conformance tests use them to validate each STM implementation
// against its advertised criterion (DESIGN.md §6).
//
// A history lists committed transactions with the object versions they
// read and the objects they wrote, plus per-object total version orders
// (recovered from the version chains the STMs maintain). From these the
// checker derives the classical conflict edges:
//
//	wr: writer of version s  → any reader of version s
//	ww: writer of version s  → writer of version s+1
//	rw: reader of version s  → writer of version s+1
//
// and combines them with real-time and program-order edges as each
// criterion requires. All checks are precedence-graph acyclicity tests,
// polynomial and exact for conflict-serializability (which soundly
// upper-bounds the view-based criteria for these histories).
package checker

import (
	"fmt"
	"sort"
)

// Read is one observed read: object o's version with sequence Seq.
type Read struct {
	Obj uint64
	Seq uint64
}

// Write is one installed version: object o's version with sequence Seq.
type Write struct {
	Obj uint64
	Seq uint64
}

// Tx is one committed transaction.
type Tx struct {
	// ID is the transaction's unique identifier.
	ID uint64
	// Thread is the worker-thread index, defining program order.
	Thread int
	// Long marks the paper's long transactions.
	Long bool
	// Zone is the z-linearizability zone label (shorts: the T.zc the
	// transaction committed with; longs: their reserved zone number).
	Zone uint64
	// Start and End are real-time stamps: Start taken before the
	// transaction began, End after its commit returned. T precedes U in
	// real time iff T.End < U.Start.
	Start, End int64
	// SnapTS and CommitTS are the scalar time-base stamps of the
	// transaction's snapshot and commit, when the STM exposes them
	// (HasTS). SnapshotIsolated requires them; the graph-based checkers
	// ignore them.
	SnapTS, CommitTS uint64
	// HasTS reports whether SnapTS/CommitTS are valid.
	HasTS bool
	// Reads and Writes are the committed observations.
	Reads  []Read
	Writes []Write
}

// History is a set of committed transactions over versioned objects.
// Version sequence numbers start at 1 for the initial (pre-history)
// version of every object; version s+1 directly supersedes s.
type History struct {
	Txs []Tx
}

// Result is a checker verdict. When Ok is false, Cycle holds the indices
// (into History.Txs) of one offending precedence cycle and Reason a
// human-readable explanation.
type Result struct {
	Ok     bool
	Cycle  []int
	Reason string
}

// graph is a precedence graph over transaction indices.
type graph struct {
	n   int
	adj [][]int
}

func newGraph(n int) *graph {
	return &graph{n: n, adj: make([][]int, n)}
}

func (g *graph) addEdge(from, to int) {
	if from == to {
		return
	}
	g.adj[from] = append(g.adj[from], to)
}

// cycle returns one cycle as a list of node indices, or nil if acyclic.
func (g *graph) cycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	var stack []int
	for start := 0; start < g.n; start++ {
		if color[start] != white {
			continue
		}
		stack = stack[:0]
		stack = append(stack, start)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if color[u] == white {
				color[u] = gray
			}
			advanced := false
			for _, v := range g.adj[u] {
				switch color[v] {
				case white:
					parent[v] = u
					stack = append(stack, v)
					advanced = true
				case gray:
					// Found a cycle v -> ... -> u -> v.
					cyc := []int{v}
					for w := u; w != v && w != -1; w = parent[w] {
						cyc = append(cyc, w)
					}
					// Reverse into forward order.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// versionWriters maps (object, seq) to the writing transaction's index.
// The initial version (seq 1) has no writer.
type versionWriters map[uint64]map[uint64]int

func buildVersionWriters(h *History) (versionWriters, error) {
	vw := make(versionWriters)
	for i := range h.Txs {
		for _, w := range h.Txs[i].Writes {
			m := vw[w.Obj]
			if m == nil {
				m = make(map[uint64]int)
				vw[w.Obj] = m
			}
			if prev, dup := m[w.Seq]; dup {
				return nil, fmt.Errorf("objects %d version %d written by both tx %d and tx %d",
					w.Obj, w.Seq, h.Txs[prev].ID, h.Txs[i].ID)
			}
			if w.Seq <= 1 {
				return nil, fmt.Errorf("tx %d claims to write initial version of object %d", h.Txs[i].ID, w.Obj)
			}
			m[w.Seq] = i
		}
	}
	return vw, nil
}

// addConflictEdges adds wr, ww and rw edges to g.
func addConflictEdges(g *graph, h *History, vw versionWriters) {
	for i := range h.Txs {
		for _, r := range h.Txs[i].Reads {
			if wi, ok := vw[r.Obj][r.Seq]; ok && wi != i {
				g.addEdge(wi, i) // wr: version writer before reader
			}
			if wi, ok := vw[r.Obj][r.Seq+1]; ok && wi != i {
				g.addEdge(i, wi) // rw: reader before overwriter
			}
		}
		for _, w := range h.Txs[i].Writes {
			if wi, ok := vw[w.Obj][w.Seq-1]; ok && wi != i {
				g.addEdge(wi, i) // ww: predecessor writer first
			}
			if wi, ok := vw[w.Obj][w.Seq+1]; ok && wi != i {
				g.addEdge(i, wi) // ww: successor writer later
			}
		}
	}
}

// addRealTimeEdges adds T→U whenever T.End < U.Start and include(T, U).
// Transactions are sorted by start; for each T only the transactions that
// start after T ends get an edge.
func addRealTimeEdges(g *graph, h *History, include func(a, b *Tx) bool) {
	idx := make([]int, len(h.Txs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.Txs[idx[a]].Start < h.Txs[idx[b]].Start })
	for i := range h.Txs {
		t := &h.Txs[i]
		// Binary search the first transaction starting after t.End.
		lo := sort.Search(len(idx), func(k int) bool { return h.Txs[idx[k]].Start > t.End })
		for _, j := range idx[lo:] {
			if j == i {
				continue
			}
			if include(t, &h.Txs[j]) {
				g.addEdge(i, j)
			}
		}
	}
}

// addProgramOrderEdges adds edges between consecutive transactions of the
// same thread (by Start order).
func addProgramOrderEdges(g *graph, h *History) {
	byThread := make(map[int][]int)
	for i := range h.Txs {
		byThread[h.Txs[i].Thread] = append(byThread[h.Txs[i].Thread], i)
	}
	for _, txs := range byThread {
		sort.Slice(txs, func(a, b int) bool { return h.Txs[txs[a]].Start < h.Txs[txs[b]].Start })
		for k := 0; k+1 < len(txs); k++ {
			g.addEdge(txs[k], txs[k+1])
		}
	}
}

func verdict(h *History, g *graph, what string) Result {
	if cyc := g.cycle(); cyc != nil {
		ids := make([]uint64, len(cyc))
		for i, k := range cyc {
			ids[i] = h.Txs[k].ID
		}
		return Result{Ok: false, Cycle: cyc, Reason: fmt.Sprintf("%s violated: precedence cycle through txs %v", what, ids)}
	}
	return Result{Ok: true}
}

// Serializable checks conflict-serializability: the conflict graph
// derived from the per-object version orders must be acyclic.
func Serializable(h *History) Result {
	vw, err := buildVersionWriters(h)
	if err != nil {
		return Result{Ok: false, Reason: err.Error()}
	}
	g := newGraph(len(h.Txs))
	addConflictEdges(g, h, vw)
	return verdict(h, g, "serializability")
}

// Linearizable checks (transaction-level, conflict-based)
// linearizability: the conflict graph plus all real-time precedence edges
// must be acyclic, i.e. some serialization respects real-time order.
func Linearizable(h *History) Result {
	vw, err := buildVersionWriters(h)
	if err != nil {
		return Result{Ok: false, Reason: err.Error()}
	}
	g := newGraph(len(h.Txs))
	addConflictEdges(g, h, vw)
	addRealTimeEdges(g, h, func(_, _ *Tx) bool { return true })
	return verdict(h, g, "linearizability")
}

// ZLinearizable checks the paper's criterion (§5): (1) long transactions
// are linearizable among themselves; (2) short transactions sharing a
// zone are linearizable among themselves; (3) the whole history is
// serializable; (4) the serialization respects per-thread program order.
// All four fold into one acyclicity test: conflict edges + real-time
// edges among longs + real-time edges among same-zone shorts + program-
// order edges.
func ZLinearizable(h *History) Result {
	vw, err := buildVersionWriters(h)
	if err != nil {
		return Result{Ok: false, Reason: err.Error()}
	}
	g := newGraph(len(h.Txs))
	addConflictEdges(g, h, vw)
	addRealTimeEdges(g, h, func(a, b *Tx) bool {
		if a.Long && b.Long {
			return true
		}
		return !a.Long && !b.Long && a.Zone == b.Zone
	})
	addProgramOrderEdges(g, h)
	return verdict(h, g, "z-linearizability")
}

// SnapshotIsolated checks snapshot isolation exactly, using the scalar
// snapshot and commit timestamps the SI-STM exposes (Tx.SnapTS,
// Tx.CommitTS; every transaction must have HasTS). The three conditions
// are the standard definition [1]:
//
//  1. Snapshot reads: every read of (o, s) observes the version current
//     at the reader's snapshot time — the version's writer committed at
//     or before SnapTS and the successor version (if any) committed
//     strictly after SnapTS.
//  2. First-committer-wins: a transaction writing version s of o must
//     have version s-1 in its snapshot, i.e. the predecessor's writer
//     committed at or before the overwriter's SnapTS. A predecessor that
//     committed inside (SnapTS, CommitTS] is a concurrent committed
//     writer of the same object, which SI forbids.
//  3. Version order: per object, commit timestamps strictly increase
//     with the version sequence.
func SnapshotIsolated(h *History) Result {
	vw, err := buildVersionWriters(h)
	if err != nil {
		return Result{Ok: false, Reason: err.Error()}
	}
	// writerCT returns the commit timestamp of (obj, seq)'s writer; the
	// initial version has timestamp 0.
	writerCT := func(obj, seq uint64) (uint64, bool) {
		if seq <= 1 {
			return 0, true
		}
		wi, ok := vw[obj][seq]
		if !ok {
			return 0, false
		}
		return h.Txs[wi].CommitTS, true
	}
	for i := range h.Txs {
		t := &h.Txs[i]
		if !t.HasTS {
			return Result{Ok: false, Reason: fmt.Sprintf("snapshot isolation: tx %d lacks timestamps", t.ID)}
		}
		if t.CommitTS < t.SnapTS {
			return Result{Ok: false, Reason: fmt.Sprintf("snapshot isolation: tx %d commit %d precedes snapshot %d",
				t.ID, t.CommitTS, t.SnapTS)}
		}
		for _, r := range t.Reads {
			ct, ok := writerCT(r.Obj, r.Seq)
			if !ok {
				return Result{Ok: false, Reason: fmt.Sprintf("snapshot isolation: tx %d read unwritten version (%d,%d)",
					t.ID, r.Obj, r.Seq)}
			}
			if ct > t.SnapTS {
				return Result{Ok: false, Cycle: []int{i}, Reason: fmt.Sprintf(
					"snapshot isolation: tx %d read (%d,%d) committed at %d, after its snapshot %d",
					t.ID, r.Obj, r.Seq, ct, t.SnapTS)}
			}
			if succCT, ok := writerCT(r.Obj, r.Seq+1); ok && succCT <= t.SnapTS {
				return Result{Ok: false, Cycle: []int{i}, Reason: fmt.Sprintf(
					"snapshot isolation: tx %d read stale (%d,%d): successor committed at %d <= snapshot %d",
					t.ID, r.Obj, r.Seq, succCT, t.SnapTS)}
			}
		}
		for _, w := range t.Writes {
			prevCT, ok := writerCT(w.Obj, w.Seq-1)
			if !ok {
				return Result{Ok: false, Reason: fmt.Sprintf("snapshot isolation: tx %d wrote (%d,%d) with no predecessor",
					t.ID, w.Obj, w.Seq)}
			}
			if prevCT > t.SnapTS {
				return Result{Ok: false, Cycle: []int{i}, Reason: fmt.Sprintf(
					"snapshot isolation: first-committer-wins violated: tx %d overwrote (%d,%d) committed at %d inside its (%d,%d] window",
					t.ID, w.Obj, w.Seq-1, prevCT, t.SnapTS, t.CommitTS)}
			}
			if prevCT >= t.CommitTS {
				return Result{Ok: false, Cycle: []int{i}, Reason: fmt.Sprintf(
					"snapshot isolation: version order violated: tx %d committed (%d,%d) at %d, not after predecessor's %d",
					t.ID, w.Obj, w.Seq, t.CommitTS, prevCT)}
			}
		}
	}
	return Result{Ok: true}
}

// CausallySerializable checks causal serializability (Raynal et al.,
// paper §4.1): every processor must be able to build its own
// serialization of all update transactions plus its own transactions
// that (a) preserves the causality relation (program order plus
// reads-from), and (b) orders writes to the same object identically
// everywhere. Operationally: for each processor p, the graph of causal
// edges + ww edges + the read-induced (wr, rw) edges incident to p's own
// transactions must be acyclic.
func CausallySerializable(h *History) Result {
	vw, err := buildVersionWriters(h)
	if err != nil {
		return Result{Ok: false, Reason: err.Error()}
	}
	// Shared edges: causality (program order + reads-from) and ww.
	shared := newGraph(len(h.Txs))
	addProgramOrderEdges(shared, h)
	for i := range h.Txs {
		for _, r := range h.Txs[i].Reads {
			if wi, ok := vw[r.Obj][r.Seq]; ok && wi != i {
				shared.addEdge(wi, i)
			}
		}
		for _, w := range h.Txs[i].Writes {
			if wi, ok := vw[w.Obj][w.Seq-1]; ok && wi != i {
				shared.addEdge(wi, i)
			}
		}
	}

	threads := make(map[int]bool)
	for i := range h.Txs {
		threads[h.Txs[i].Thread] = true
	}
	for p := range threads {
		g := newGraph(len(h.Txs))
		for u, vs := range shared.adj {
			for _, v := range vs {
				g.addEdge(u, v)
			}
		}
		// p's own reads constrain p's view: rw edges from p's reads.
		for i := range h.Txs {
			if h.Txs[i].Thread != p {
				continue
			}
			for _, r := range h.Txs[i].Reads {
				if wi, ok := vw[r.Obj][r.Seq+1]; ok && wi != i {
					g.addEdge(i, wi)
				}
			}
		}
		if res := verdict(h, g, fmt.Sprintf("causal serializability (view of thread %d)", p)); !res.Ok {
			return res
		}
	}
	return Result{Ok: true}
}
