package checker

import (
	"testing"
)

// Shorthand builders.
func r(obj, seq uint64) Read  { return Read{Obj: obj, Seq: seq} }
func w(obj, seq uint64) Write { return Write{Obj: obj, Seq: seq} }
func h(txs ...Tx) *History    { return &History{Txs: txs} }
func ids(res Result) []int    { return res.Cycle }
func mustOk(t *testing.T, res Result, what string) {
	t.Helper()
	if !res.Ok {
		t.Fatalf("%s: unexpected violation: %s (cycle %v)", what, res.Reason, ids(res))
	}
}
func mustFail(t *testing.T, res Result, what string) {
	t.Helper()
	if res.Ok {
		t.Fatalf("%s: violation not detected", what)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	mustOk(t, Serializable(h()), "empty serializable")
	mustOk(t, Linearizable(h()), "empty linearizable")
	mustOk(t, ZLinearizable(h()), "empty z-linearizable")
	mustOk(t, CausallySerializable(h()), "empty causal")
	one := h(Tx{ID: 1, Start: 0, End: 1, Reads: []Read{r(1, 1)}, Writes: []Write{w(1, 2)}})
	mustOk(t, Serializable(one), "singleton")
	mustOk(t, Linearizable(one), "singleton")
}

func TestSimpleSerializableChain(t *testing.T) {
	// T1 writes o1v2; T2 reads it and writes o1v3.
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 0, End: 1, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Start: 2, End: 3, Reads: []Read{r(1, 2)}, Writes: []Write{w(1, 3)}},
	)
	mustOk(t, Serializable(hist), "chain")
	mustOk(t, Linearizable(hist), "chain")
}

func TestWriteSkewNotSerializable(t *testing.T) {
	// Classic write skew: T1 reads o2v1 writes o1v2; T2 reads o1v1 writes
	// o2v2. rw edges both ways: cycle.
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 0, End: 5, Reads: []Read{r(2, 1)}, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Start: 1, End: 6, Reads: []Read{r(1, 1)}, Writes: []Write{w(2, 2)}},
	)
	mustFail(t, Serializable(hist), "write skew")
	mustFail(t, Linearizable(hist), "write skew")
	mustFail(t, ZLinearizable(hist), "write skew")
}

func TestSerializableButNotLinearizable(t *testing.T) {
	// The paper's Figure 1 essence: TL reads o1v1 (old) but T1 installed
	// o1v2 and finished BEFORE TL started — impossible in real time for a
	// linearizable TBTM, but serializable as TL → T1.
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 0, End: 1, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Start: 5, End: 6, Reads: []Read{r(1, 1)}},
	)
	mustOk(t, Serializable(hist), "stale read")
	mustFail(t, Linearizable(hist), "stale read after writer finished")
}

func TestFigure1History(t *testing.T) {
	// Figure 1 as a history: T1 w(o1)w(o2); T2 w(o3); TL r(o1v1) r(o2v1)
	// r(o3v2) w(o4v2), with T1 finishing before T2 starts and TL spanning
	// both. Serialization T2 → TL → T1 exists, but linearizability
	// requires T1 → T2 (real time), and TL reads o1's initial version
	// while needing T2's o3: cycle under real-time edges.
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 1, End: 2, Writes: []Write{w(1, 2), w(2, 2)}},
		Tx{ID: 2, Thread: 1, Start: 3, End: 4, Writes: []Write{w(3, 2)}},
		Tx{ID: 3, Thread: 2, Start: 0, End: 5, Reads: []Read{r(1, 1), r(2, 1), r(3, 2)}, Writes: []Write{w(4, 2)}},
	)
	mustOk(t, Serializable(hist), "figure 1")
	mustFail(t, Linearizable(hist), "figure 1")
}

func TestFigure2History(t *testing.T) {
	// Figure 2: causally serializable but not serializable (paper §4.1).
	// T1 w(o1v2) w(o2v2); T2 w(o3v2); T3 r(o3v1) w(o2v3);
	// TL r(o1v1) r(o2v1) r(o3v2) w(o4v2).
	// Cycle: T1→T3 (ww o2), T3→T2 (rw o3), T2→TL (wr o3), TL→T1 (rw o1).
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 2, End: 3, Writes: []Write{w(1, 2), w(2, 2)}},
		Tx{ID: 2, Thread: 1, Start: 4, End: 5, Writes: []Write{w(3, 2)}},
		Tx{ID: 3, Thread: 2, Start: 1, End: 7, Reads: []Read{r(3, 1)}, Writes: []Write{w(2, 3)}},
		Tx{ID: 4, Thread: 3, Start: 0, End: 8, Reads: []Read{r(1, 1), r(2, 1), r(3, 2)}, Writes: []Write{w(4, 2)}},
	)
	mustFail(t, Serializable(hist), "figure 2 serializability")
	mustOk(t, CausallySerializable(hist), "figure 2 causal serializability")
}

func TestCausalViolation(t *testing.T) {
	// A transaction reads around a causal chain: T1 writes o1v2, o2v2.
	// T2 reads o1v2 (follows T1) but also reads o2v1 (precedes T1): T2's
	// own view has T1 both before and after it.
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 0, End: 1, Writes: []Write{w(1, 2), w(2, 2)}},
		Tx{ID: 2, Thread: 1, Start: 2, End: 3, Reads: []Read{r(1, 2), r(2, 1)}, Writes: []Write{w(3, 2)}},
	)
	mustFail(t, CausallySerializable(hist), "read around causal chain")
	mustFail(t, Serializable(hist), "read around causal chain")
}

func TestCausalAllowsDivergentViews(t *testing.T) {
	// Two read-only observers see two concurrent writers in opposite
	// orders: not serializable, but causally serializable (each view is
	// individually consistent and no object has two writers).
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 0, End: 10, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Start: 0, End: 10, Writes: []Write{w(2, 2)}},
		// Observer A: o1 new, o2 old → T1 before... T2 after A.
		Tx{ID: 3, Thread: 2, Start: 11, End: 12, Reads: []Read{r(1, 2), r(2, 1)}},
		// Observer B: o1 old, o2 new → opposite order.
		Tx{ID: 4, Thread: 3, Start: 11, End: 12, Reads: []Read{r(1, 1), r(2, 2)}},
	)
	mustFail(t, Serializable(hist), "divergent observers")
	mustOk(t, CausallySerializable(hist), "divergent observers")
}

func TestZLinearizableZones(t *testing.T) {
	// The Figure 4 anomaly, realizable by Z-STM: long TL (zone 1) reads
	// o2's initial version, then short A (in TL's zone, touching only
	// objects TL already opened) overwrites o2 and commits; later short B
	// (primordial zone, objects TL has not yet opened) writes o1 and
	// commits; finally TL opens o1 and reads B's version. Serialization:
	// TL → A (rw on o2), B → TL (wr on o1), but A finishes before B
	// starts — so linearizability needs A → B, closing the cycle
	// TL → A → B → TL. z-linearizability drops the real-time edge between
	// the different-zone shorts and accepts the history.
	hist := h(
		Tx{ID: 1, Thread: 0, Long: true, Zone: 1, Start: 0, End: 10,
			Reads: []Read{r(2, 1), r(1, 2)}, Writes: []Write{w(9, 2)}},
		// A: short in TL's zone, overwrites o2 mid-flight.
		Tx{ID: 2, Thread: 1, Zone: 1, Start: 1, End: 2, Reads: []Read{r(2, 1)}, Writes: []Write{w(2, 2)}},
		// B: short in the primordial zone, writes o1 after A finished.
		Tx{ID: 3, Thread: 2, Zone: 0, Start: 3, End: 4, Writes: []Write{w(1, 2)}},
	)
	mustFail(t, Linearizable(hist), "long vs short real time")
	mustOk(t, ZLinearizable(hist), "zone semantics")
	mustOk(t, Serializable(hist), "zone semantics serializable")
}

func TestZLinearizableLongsKeepRealTime(t *testing.T) {
	// Two long transactions in real-time order must serialize in that
	// order: L1 finishes before L2 starts, but L2's read is overwritten
	// by L1 (L2 → L1): violation.
	hist := h(
		Tx{ID: 1, Thread: 0, Long: true, Zone: 1, Start: 0, End: 1, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Long: true, Zone: 2, Start: 2, End: 3, Reads: []Read{r(1, 1)}, Writes: []Write{w(2, 2)}},
	)
	mustFail(t, ZLinearizable(hist), "long real-time order")
}

func TestZLinearizableShortsSameZoneKeepRealTime(t *testing.T) {
	// Two shorts in the same zone, S1 ends before S2 starts, but S2 reads
	// the version S1 overwrote: forbidden within a zone.
	hist := h(
		Tx{ID: 1, Thread: 0, Zone: 3, Start: 0, End: 1, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Zone: 3, Start: 2, End: 3, Reads: []Read{r(1, 1)}},
	)
	mustFail(t, ZLinearizable(hist), "same-zone real time")
	// In different zones the same pattern is allowed.
	hist.Txs[1].Zone = 4
	mustOk(t, ZLinearizable(hist), "cross-zone stale read")
}

func TestZLinearizableProgramOrder(t *testing.T) {
	// §5 property 4: the serialization must observe per-thread order.
	// Thread 0 runs S1 then S2 (different zones); S2 reads a version that
	// S1's read's overwriter... construct: S1 reads o1v1; writer W
	// installs o1v2; S2 (same thread, after S1) writes o2; W read o2v1.
	// Edges: S1→W (rw), W→S2? no... make S2's write overwritten-read by
	// W: W reads o2v1, S2 writes o2v2 ⇒ W→S2 (rw). Program order S1→S2.
	// Cycle needs S2→S1-ish: give S2 a read of o3v1 overwritten by X and
	// X→S1... keep it simple: W also writes o3v2 and S1 reads o3v2 ⇒
	// W→S1 (wr). Then W→S1→(program)→S2 and W reads o2v1 overwritten by
	// S2 ⇒ W→S2 consistent, no cycle. Instead: S2 writes o1v3 over W's
	// o1v2 while S1 read o1v1: edges S1→W (rw o1), W→S2 (ww o1). Fine.
	// True program-order violation: S2 BEFORE S1 required by conflicts:
	// S2 reads o1v1 (pre-W), S1 reads o3v2 written by W, and W overwrote
	// o1: S2→W (rw), W→S1 (wr) ⇒ S2 before S1, against program order.
	hist := h(
		Tx{ID: 1, Thread: 0, Zone: 1, Start: 0, End: 1, Reads: []Read{r(3, 2)}},
		Tx{ID: 2, Thread: 0, Zone: 2, Start: 2, End: 3, Reads: []Read{r(1, 1)}},
		Tx{ID: 3, Thread: 1, Zone: 1, Start: 0, End: 5, Writes: []Write{w(1, 2), w(3, 2)}},
	)
	// Program order: tx1 → tx2 (thread 0). Conflicts: tx3→tx1 (wr o3),
	// tx2→tx3 (rw o1). Cycle tx1→tx2→tx3→tx1? tx1→tx2 (program),
	// tx2→tx3 (rw), tx3→tx1 (wr): cycle.
	mustFail(t, ZLinearizable(hist), "program order")
	// Without program order (different threads) it is fine.
	hist.Txs[1].Thread = 2
	mustOk(t, ZLinearizable(hist), "no program-order constraint")
}

func TestDuplicateVersionWriterRejected(t *testing.T) {
	hist := h(
		Tx{ID: 1, Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Writes: []Write{w(1, 2)}},
	)
	mustFail(t, Serializable(hist), "duplicate version")
	mustFail(t, Linearizable(hist), "duplicate version")
	mustFail(t, ZLinearizable(hist), "duplicate version")
	mustFail(t, CausallySerializable(hist), "duplicate version")
}

func TestInitialVersionWriteRejected(t *testing.T) {
	hist := h(Tx{ID: 1, Writes: []Write{w(1, 1)}})
	mustFail(t, Serializable(hist), "initial version write")
}

func TestCycleReported(t *testing.T) {
	hist := h(
		Tx{ID: 7, Thread: 0, Start: 0, End: 5, Reads: []Read{r(2, 1)}, Writes: []Write{w(1, 2)}},
		Tx{ID: 9, Thread: 1, Start: 1, End: 6, Reads: []Read{r(1, 1)}, Writes: []Write{w(2, 2)}},
	)
	res := Serializable(hist)
	mustFail(t, res, "write skew")
	if len(res.Cycle) < 2 {
		t.Fatalf("cycle too short: %v", res.Cycle)
	}
	if res.Reason == "" {
		t.Fatal("no reason given")
	}
}

func TestLongChainPerformance(t *testing.T) {
	// 2000 sequential transactions: the real-time edge construction and
	// cycle detection must handle it comfortably.
	var txs []Tx
	for i := 0; i < 2000; i++ {
		txs = append(txs, Tx{
			ID:     uint64(i + 1),
			Thread: i % 4,
			Start:  int64(2 * i),
			End:    int64(2*i + 1),
			Reads:  []Read{r(1, uint64(i+1))},
			Writes: []Write{w(1, uint64(i+2))},
		})
	}
	mustOk(t, Linearizable(&History{Txs: txs}), "long chain")
	mustOk(t, Serializable(&History{Txs: txs}), "long chain")
}
