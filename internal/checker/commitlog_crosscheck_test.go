package checker_test

import (
	"testing"

	"tbtm/internal/conformance"
)

// TestCommitLogCrossCheck is the commit-log fast-path soundness property
// test: the conformance drivers build every backend with CrossCheck on,
// so each fast-path decision (snapshot extension in LSA/Z-STM, snapshot
// advance in SI-STM, validation skip in CS-/S-STM) re-runs the full
// read-set walk and panics if the log window admitted anything full
// validation would reject. The workload here is deliberately hotter
// than the plain conformance runs — few objects, many transactions —
// so windows are dense with hits, near-misses and wraps. The checked
// histories additionally prove the criteria still hold with the fast
// paths active.
func TestCommitLogCrossCheck(t *testing.T) {
	systems := []conformance.System{
		conformance.LSA,
		conformance.LSAFast,
		conformance.CSTM,
		conformance.CSTMMulti,
		conformance.SSTM,
		conformance.ZSTM,
		conformance.SISTM,
	}
	seeds, perThread := 4, 150
	if testing.Short() {
		seeds, perThread = 2, 60
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= int64(seeds); seed++ {
				cfg := conformance.Config{
					System:      sys,
					Threads:     4,
					TxPerThread: perThread,
					Objects:     4, // hot: most windows intersect some footprint
					Seed:        seed,
					Yield:       true, // op-level interleaving even on one CPU
				}
				if _, err := conformance.Check(cfg); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
