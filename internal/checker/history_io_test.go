package checker

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistoryJSONRoundTrip(t *testing.T) {
	hist := h(
		Tx{ID: 1, Thread: 0, Start: 1, End: 2,
			Reads:  []Read{r(1, 1), r(2, 3)},
			Writes: []Write{w(1, 2)}},
		Tx{ID: 2, Thread: 1, Long: true, Zone: 7, Start: 3, End: 9,
			SnapTS: 4, CommitTS: 8, HasTS: true},
	)
	var buf bytes.Buffer
	if err := SaveJSON(&buf, hist); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hist, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", hist, got)
	}
}

func TestHistoryJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveJSON(&buf, &History{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txs) != 0 {
		t.Fatalf("empty history round trip produced %d txs", len(got.Txs))
	}
}

func TestHistoryJSONGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: round trip preserves the checkers' verdicts on random
// histories.
func TestHistoryJSONPreservesVerdicts(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hist := &History{}
		cur := map[uint64]uint64{} // current version seq per object
		at := func(obj uint64) uint64 {
			if cur[obj] == 0 {
				cur[obj] = 1
			}
			return cur[obj]
		}
		clock := int64(0)
		for i := 0; i < 6; i++ {
			clock++
			tx := Tx{ID: uint64(i + 1), Thread: rng.Intn(3), Start: clock}
			for k := 0; k < 1+rng.Intn(3); k++ {
				obj := uint64(rng.Intn(3))
				if rng.Intn(2) == 0 {
					tx.Reads = append(tx.Reads, Read{Obj: obj, Seq: at(obj)})
				} else {
					cur[obj] = at(obj) + 1
					tx.Writes = append(tx.Writes, Write{Obj: obj, Seq: cur[obj]})
				}
			}
			clock++
			tx.End = clock
			hist.Txs = append(hist.Txs, tx)
		}
		var buf bytes.Buffer
		if err := SaveJSON(&buf, hist); err != nil {
			return false
		}
		got, err := LoadJSON(&buf)
		if err != nil {
			return false
		}
		return Serializable(hist).Ok == Serializable(got).Ok &&
			Linearizable(hist).Ok == Linearizable(got).Ok &&
			CausallySerializable(hist).Ok == CausallySerializable(got).Ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
