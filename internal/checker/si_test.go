package checker

import "testing"

// tsTx builds a committed transaction with snapshot/commit timestamps.
func tsTx(id uint64, snap, commit uint64, reads []Read, writes []Write) Tx {
	return Tx{ID: id, SnapTS: snap, CommitTS: commit, HasTS: true, Reads: reads, Writes: writes}
}

func TestSnapshotIsolatedAcceptsSerialHistory(t *testing.T) {
	hist := h(
		tsTx(1, 0, 1, []Read{r(1, 1)}, []Write{w(1, 2)}),
		tsTx(2, 1, 2, []Read{r(1, 2)}, []Write{w(1, 3)}),
	)
	mustOk(t, SnapshotIsolated(hist), "serial history")
}

func TestSnapshotIsolatedAcceptsWriteSkew(t *testing.T) {
	// The defining difference from serializability: both skew
	// transactions pass the SI check.
	hist := h(
		tsTx(1, 0, 1, []Read{r(1, 1), r(2, 1)}, []Write{w(1, 2)}),
		tsTx(2, 0, 2, []Read{r(1, 1), r(2, 1)}, []Write{w(2, 2)}),
	)
	mustOk(t, SnapshotIsolated(hist), "write skew under SI")
	if res := Serializable(hist); res.Ok {
		t.Fatal("write-skew history is serializable? checker disagreement")
	}
}

func TestSnapshotIsolatedRejectsStaleRead(t *testing.T) {
	// Tx 2's snapshot (ts 1) already includes version (1,2) committed at
	// 1, but it read version (1,1): stale.
	hist := h(
		tsTx(1, 0, 1, nil, []Write{w(1, 2)}),
		tsTx(2, 1, 1, []Read{r(1, 1)}, nil),
	)
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("stale read accepted")
	}
}

func TestSnapshotIsolatedRejectsFutureRead(t *testing.T) {
	// Tx 2 read a version committed after its snapshot.
	hist := h(
		tsTx(1, 0, 5, nil, []Write{w(1, 2)}),
		tsTx(2, 1, 1, []Read{r(1, 2)}, nil),
	)
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("future read accepted")
	}
}

func TestSnapshotIsolatedRejectsFirstCommitterViolation(t *testing.T) {
	// Both transactions write object 1 with overlapping (snap, commit]
	// windows: the second committer must have aborted.
	hist := h(
		tsTx(1, 0, 1, nil, []Write{w(1, 2)}),
		tsTx(2, 0, 2, nil, []Write{w(1, 3)}),
	)
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("first-committer-wins violation accepted")
	}
}

func TestSnapshotIsolatedRejectsMissingTimestamps(t *testing.T) {
	hist := h(Tx{ID: 1, Reads: []Read{r(1, 1)}})
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("history without timestamps accepted")
	}
}

func TestSnapshotIsolatedRejectsCommitBeforeSnapshot(t *testing.T) {
	hist := h(tsTx(1, 5, 3, nil, nil))
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("commit before snapshot accepted")
	}
}

func TestSnapshotIsolatedLostUpdateRejected(t *testing.T) {
	// Classic lost update: both read v1 of object 1 (snap 0) and both
	// write it. Whatever sequence numbers they got, the second one's
	// predecessor committed inside its window.
	hist := h(
		tsTx(1, 0, 1, []Read{r(1, 1)}, []Write{w(1, 2)}),
		tsTx(2, 0, 2, []Read{r(1, 1)}, []Write{w(1, 3)}),
	)
	if res := SnapshotIsolated(hist); res.Ok {
		t.Fatal("lost update accepted")
	}
}

func TestSnapshotIsolatedReadOnlyAlwaysFits(t *testing.T) {
	hist := h(
		tsTx(1, 0, 1, nil, []Write{w(1, 2)}),
		tsTx(2, 0, 0, []Read{r(1, 1)}, nil), // snapshot before tx 1's commit
		tsTx(3, 1, 1, []Read{r(1, 2)}, nil), // snapshot after
	)
	mustOk(t, SnapshotIsolated(hist), "read-only snapshots")
}
