package checker

import (
	"math/rand"
	"testing"
)

// Brute-force cross-validation: for small histories, serializability and
// linearizability verdicts are recomputed by enumerating every
// permutation of the transactions and checking legality directly — a
// permutation is legal when every transaction reads exactly the version
// current at its position and writes exactly the next version of each
// object. The graph-based checkers must agree on every random history.

// legalPerm reports whether executing h's transactions in the given
// order reproduces every recorded read and write.
func legalPerm(h *History, perm []int) bool {
	current := make(map[uint64]uint64) // object → current seq (initially 1)
	cur := func(obj uint64) uint64 {
		if s, ok := current[obj]; ok {
			return s
		}
		return 1
	}
	for _, i := range perm {
		tx := &h.Txs[i]
		for _, r := range tx.Reads {
			// A read must see the current version, unless the transaction
			// itself writes that later version (read-own-write histories
			// are not generated here, so exact match is required).
			if cur(r.Obj) != r.Seq {
				return false
			}
		}
		for _, w := range tx.Writes {
			if cur(w.Obj)+1 != w.Seq {
				return false
			}
		}
		for _, w := range tx.Writes {
			current[w.Obj] = w.Seq
		}
	}
	return true
}

// permutations calls fn with every permutation of 0..n-1 until fn
// returns true; it reports whether any call returned true.
func permutations(n int, fn func([]int) bool) bool {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return fn(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if rec(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return rec(0)
}

func bruteSerializable(h *History) bool {
	if len(h.Txs) == 0 {
		return true
	}
	return permutations(len(h.Txs), func(p []int) bool { return legalPerm(h, p) })
}

func bruteLinearizable(h *History) bool {
	if len(h.Txs) == 0 {
		return true
	}
	return permutations(len(h.Txs), func(p []int) bool {
		if !legalPerm(h, p) {
			return false
		}
		// Real-time order: if T ends before U starts, T must precede U.
		pos := make([]int, len(h.Txs))
		for idx, i := range p {
			pos[i] = idx
		}
		for i := range h.Txs {
			for j := range h.Txs {
				if i != j && h.Txs[i].End < h.Txs[j].Start && pos[i] > pos[j] {
					return false
				}
			}
		}
		return true
	})
}

// genHistory builds a random history with well-formed per-object version
// orders: each object gets a chain of versions 2..k+1 with distinct
// writers (possibly one tx writing several objects), plus random reads.
func genHistory(rng *rand.Rand) *History {
	nTx := 2 + rng.Intn(4)  // 2..5 transactions
	nObj := 1 + rng.Intn(3) // 1..3 objects
	h := &History{Txs: make([]Tx, nTx)}
	for i := range h.Txs {
		start := int64(rng.Intn(10))
		h.Txs[i] = Tx{
			ID:     uint64(i + 1),
			Thread: rng.Intn(3),
			Start:  start,
			End:    start + 1 + int64(rng.Intn(10)),
		}
	}
	// Version chains: for each object, a random number of versions, each
	// assigned to a random transaction (at most one version of one object
	// per transaction, keeping writes sets simple).
	for obj := uint64(1); obj <= uint64(nObj); obj++ {
		writers := rng.Perm(nTx)
		k := rng.Intn(nTx + 1) // 0..nTx new versions
		for v := 0; v < k; v++ {
			tx := &h.Txs[writers[v]]
			tx.Writes = append(tx.Writes, Write{Obj: obj, Seq: uint64(v + 2)})
		}
		// Random reads of any existing version by any transaction that
		// did not write the object.
		for i := range h.Txs {
			if rng.Intn(2) == 1 {
				continue
			}
			wrote := false
			for _, w := range h.Txs[i].Writes {
				if w.Obj == obj {
					wrote = true
				}
			}
			if wrote {
				continue
			}
			h.Txs[i].Reads = append(h.Txs[i].Reads, Read{Obj: obj, Seq: uint64(1 + rng.Intn(k+1))})
		}
	}
	return h
}

func TestSerializableMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	agree, violations := 0, 0
	trials := 3000
	if testing.Short() {
		trials = 800
	}
	for trial := 0; trial < trials; trial++ {
		h := genHistory(rng)
		want := bruteSerializable(h)
		got := Serializable(h).Ok
		if got != want {
			t.Fatalf("trial %d: graph says %v, brute force says %v\nhistory: %+v",
				trial, got, want, h.Txs)
		}
		agree++
		if !want {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("generator produced no non-serializable histories; test is vacuous")
	}
	t.Logf("%d histories, %d non-serializable", agree, violations)
}

func TestLinearizableMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	violations, serializableButNot := 0, 0
	trials := 3000
	if testing.Short() {
		trials = 800
	}
	for trial := 0; trial < trials; trial++ {
		h := genHistory(rng)
		want := bruteLinearizable(h)
		got := Linearizable(h).Ok
		if got != want {
			t.Fatalf("trial %d: graph says %v, brute force says %v\nhistory: %+v",
				trial, got, want, h.Txs)
		}
		if !want {
			violations++
			if bruteSerializable(h) {
				serializableButNot++
			}
		}
	}
	if violations == 0 || serializableButNot == 0 {
		t.Fatalf("generator coverage too weak: %d violations, %d serializable-but-not-linearizable",
			violations, serializableButNot)
	}
	t.Logf("%d non-linearizable, of which %d still serializable", violations, serializableButNot)
}

func TestLinearizableImpliesSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trials := 2000
	if testing.Short() {
		trials = 600
	}
	for trial := 0; trial < trials; trial++ {
		h := genHistory(rng)
		if Linearizable(h).Ok && !Serializable(h).Ok {
			t.Fatalf("trial %d: linearizable but not serializable", trial)
		}
	}
}

func TestZLinearizableBetweenSerializableAndLinearizable(t *testing.T) {
	// For histories with no zone/kind annotations (all short, zone 0),
	// z-linearizability adds same-zone real-time and program order, so:
	// linearizable ⇒ z-linearizable(with thread order folded in it is
	// weaker than linearizable only through cross-zone relaxation, absent
	// here means z == linearizable + program order ⊆ real time) and
	// z-linearizable ⇒ serializable.
	rng := rand.New(rand.NewSource(17))
	trials := 2000
	if testing.Short() {
		trials = 600
	}
	for trial := 0; trial < trials; trial++ {
		h := genHistory(rng)
		z := ZLinearizable(h).Ok
		if z && !Serializable(h).Ok {
			t.Fatalf("trial %d: z-linearizable but not serializable", trial)
		}
		// All transactions share zone 0, so same-zone real-time edges
		// equal all real-time edges; program order is implied by real
		// time within a thread (our generator can interleave same-thread
		// transactions, so only check the serializability direction and
		// the linearizable ⇒ z direction when threads do not overlap).
		if Linearizable(h).Ok {
			overlap := false
			byThread := map[int][]int{}
			for i := range h.Txs {
				byThread[h.Txs[i].Thread] = append(byThread[h.Txs[i].Thread], i)
			}
			for _, txs := range byThread {
				for a := 0; a < len(txs); a++ {
					for b := a + 1; b < len(txs); b++ {
						ta, tb := h.Txs[txs[a]], h.Txs[txs[b]]
						if ta.End >= tb.Start && tb.End >= ta.Start {
							overlap = true
						}
					}
				}
			}
			if !overlap && !z {
				t.Fatalf("trial %d: linearizable with sequential threads but not z-linearizable", trial)
			}
		}
	}
}
