// Package trace records transaction schedules and renders them as ASCII
// timelines in the style of the paper's Figures 1-5: one row per thread,
// transactions as bracketed spans, read/write operations at their global
// order positions, and commit/abort outcomes. cmd/schedviz uses it to
// replay the paper's scenario figures against the real STM
// implementations and show who commits and who aborts under each
// criterion.
//
// The recorder is purely observational: scenario code logs each
// operation as it performs it on a real transaction. A global sequence
// counter totally orders events, which is exactly the "real time" axis
// the figures draw.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op is the kind of one recorded event.
type Op int

// Event kinds.
const (
	// OpBegin opens a transaction span.
	OpBegin Op = iota + 1
	// OpRead is a read of an object.
	OpRead
	// OpWrite is a write of an object.
	OpWrite
	// OpCommit closes the span with a commit.
	OpCommit
	// OpAbort closes the span with an abort.
	OpAbort
	// OpNote is free-form annotation inside the span (e.g. "zone=2").
	OpNote
)

// Event is one recorded schedule point.
type Event struct {
	Seq    int    // global total order
	Thread string // row label
	Tx     string // transaction label, e.g. "T1", "TL"
	Long   bool
	Op     Op
	Obj    string // object label for reads/writes, text for notes
}

// Recorder collects events. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	seq    int
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events in global order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Tx is the logging handle for one transaction.
type Tx struct {
	r      *Recorder
	thread string
	label  string
	long   bool
}

// Begin records a transaction start on the given thread row and returns
// its logging handle.
func (r *Recorder) Begin(thread, label string, long bool) *Tx {
	t := &Tx{r: r, thread: thread, label: label, long: long}
	r.record(Event{Thread: thread, Tx: label, Long: long, Op: OpBegin})
	return t
}

func (t *Tx) record(op Op, obj string) {
	t.r.record(Event{Thread: t.thread, Tx: t.label, Long: t.long, Op: op, Obj: obj})
}

// Read records a read of obj.
func (t *Tx) Read(obj string) { t.record(OpRead, obj) }

// Write records a write of obj.
func (t *Tx) Write(obj string) { t.record(OpWrite, obj) }

// Note records a free-form annotation.
func (t *Tx) Note(text string) { t.record(OpNote, text) }

// Commit records a commit outcome.
func (t *Tx) Commit() { t.record(OpCommit, "") }

// Abort records an abort outcome.
func (t *Tx) Abort() { t.record(OpAbort, "") }

// token renders one event's cell text.
func token(e Event) string {
	switch e.Op {
	case OpBegin:
		open := "["
		if e.Long {
			open = "[["
		}
		return open + e.Tx
	case OpRead:
		return "r(" + e.Obj + ")"
	case OpWrite:
		return "w(" + e.Obj + ")"
	case OpCommit:
		if e.Long {
			return "C]]"
		}
		return "C]"
	case OpAbort:
		if e.Long {
			return "A]]"
		}
		return "A]"
	case OpNote:
		return "{" + e.Obj + "}"
	default:
		return "?"
	}
}

// Render lays the recorded schedule out as one ASCII row per thread.
// Each event occupies its own column on the shared real-time axis;
// within an open transaction the row is drawn with '-', outside with
// spaces. Long transactions open with "[[" and close with "C]]"/"A]]".
func (r *Recorder) Render() string {
	events := r.Events()
	if len(events) == 0 {
		return "(empty schedule)\n"
	}

	// Column widths: one column per event.
	widths := make([]int, len(events))
	for i, e := range events {
		widths[i] = len(token(e)) + 1
	}

	// Stable thread order: by first appearance.
	var threads []string
	seen := map[string]bool{}
	for _, e := range events {
		if !seen[e.Thread] {
			seen[e.Thread] = true
			threads = append(threads, e.Thread)
		}
	}
	sort.SliceStable(threads, func(a, b int) bool {
		return firstSeq(events, threads[a]) < firstSeq(events, threads[b])
	})

	labelW := 0
	for _, th := range threads {
		if len(th) > labelW {
			labelW = len(th)
		}
	}

	var sb strings.Builder
	for _, th := range threads {
		fmt.Fprintf(&sb, "%-*s ", labelW, th)
		open := false
		for i, e := range events {
			cell := strings.Repeat(" ", widths[i])
			if e.Thread == th {
				tok := token(e)
				switch e.Op {
				case OpBegin:
					open = true
				case OpCommit, OpAbort:
					open = false
					cell = tok + strings.Repeat(" ", widths[i]-len(tok))
					sb.WriteString(cell)
					continue
				}
				pad := widths[i] - len(tok)
				fill := " "
				if open {
					fill = "-"
				}
				cell = tok + strings.Repeat(fill, pad)
			} else if open {
				cell = strings.Repeat("-", widths[i])
			}
			sb.WriteString(cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func firstSeq(events []Event, thread string) int {
	for _, e := range events {
		if e.Thread == thread {
			return e.Seq
		}
	}
	return len(events)
}

// Outcomes returns a map from transaction label to "committed" or
// "aborted" (transactions without a recorded outcome are absent).
func (r *Recorder) Outcomes() map[string]string {
	out := map[string]string{}
	for _, e := range r.Events() {
		switch e.Op {
		case OpCommit:
			out[e.Tx] = "committed"
		case OpAbort:
			out[e.Tx] = "aborted"
		}
	}
	return out
}
