package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEventsTotallyOrdered(t *testing.T) {
	r := New()
	t1 := r.Begin("p1", "T1", false)
	t2 := r.Begin("p2", "T2", false)
	t1.Read("o1")
	t2.Write("o2")
	t1.Commit()
	t2.Abort()

	events := r.Events()
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6", len(events))
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestOutcomes(t *testing.T) {
	r := New()
	t1 := r.Begin("p1", "T1", false)
	t2 := r.Begin("p2", "TL", true)
	t1.Commit()
	t2.Abort()
	out := r.Outcomes()
	if out["T1"] != "committed" || out["TL"] != "aborted" {
		t.Fatalf("outcomes = %v", out)
	}
	if _, ok := out["T3"]; ok {
		t.Fatal("phantom outcome")
	}
}

func TestRenderShape(t *testing.T) {
	r := New()
	t1 := r.Begin("p1", "T1", false)
	t1.Read("o1")
	tl := r.Begin("p2", "TL", true)
	tl.Read("o2")
	t1.Write("o1")
	t1.Commit()
	tl.Commit()

	s := r.Render()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d rows, want 2:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "p1") || !strings.HasPrefix(lines[1], "p2") {
		t.Fatalf("row labels wrong:\n%s", s)
	}
	// Short transaction spans with [T1 ... C]; long with [[TL ... C]].
	if !strings.Contains(lines[0], "[T1") || !strings.Contains(lines[0], "C]") {
		t.Fatalf("short span missing:\n%s", s)
	}
	if !strings.Contains(lines[1], "[[TL") || !strings.Contains(lines[1], "C]]") {
		t.Fatalf("long span missing:\n%s", s)
	}
	// Both rows share the global axis: same rendered width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("row widths differ: %d vs %d\n%s", len(lines[0]), len(lines[1]), s)
	}
	// Open spans are drawn with dashes while other threads act.
	if !strings.Contains(lines[0], "-") {
		t.Fatalf("active span not dashed:\n%s", s)
	}
}

func TestRenderEmpty(t *testing.T) {
	if s := New().Render(); !strings.Contains(s, "empty") {
		t.Fatalf("empty render = %q", s)
	}
}

func TestRenderNote(t *testing.T) {
	r := New()
	tx := r.Begin("p1", "T1", false)
	tx.Note("zone=2")
	tx.Commit()
	if s := r.Render(); !strings.Contains(s, "{zone=2}") {
		t.Fatalf("note missing:\n%s", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := r.Begin("p", "T", false)
			for i := 0; i < 100; i++ {
				tx.Read("o")
			}
			tx.Commit()
		}(g)
	}
	wg.Wait()
	events := r.Events()
	if len(events) != 8*102 {
		t.Fatalf("events = %d, want %d", len(events), 8*102)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("seq gap at %d", i)
		}
	}
}
