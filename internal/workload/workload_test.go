package workload

import (
	"testing"
)

func TestPickerUniformInRange(t *testing.T) {
	p := NewPicker(10, Uniform, 1)
	for i := 0; i < 1000; i++ {
		v := p.Next()
		if v < 0 || v >= 10 {
			t.Fatalf("Next() = %d out of range", v)
		}
	}
}

func TestPickerZipfSkewed(t *testing.T) {
	p := NewPicker(100, Zipf, 2)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[p.Next()]++
	}
	// Zipf: object 0 must be far hotter than object 50.
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestPickerDeterministic(t *testing.T) {
	a := NewPicker(50, Uniform, 7)
	b := NewPicker(50, Uniform, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNextPairDistinct(t *testing.T) {
	p := NewPicker(5, Zipf, 3)
	for i := 0; i < 1000; i++ {
		a, b := p.NextPair()
		if a == b {
			t.Fatalf("NextPair returned equal indices %d", a)
		}
	}
}

func TestNextPairDegenerate(t *testing.T) {
	p := NewPicker(1, Uniform, 4)
	a, b := p.NextPair()
	if a != 0 || b != 0 {
		t.Fatalf("NextPair on 1 object = %d, %d", a, b)
	}
	if NewPicker(0, Uniform, 5).Next() != 0 {
		t.Fatal("zero-object picker broken")
	}
}

func TestMixPercentage(t *testing.T) {
	m := NewMix(20, 6)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Special() {
			hits++
		}
	}
	if hits < n*15/100 || hits > n*25/100 {
		t.Fatalf("20%% mix produced %d/%d specials", hits, n)
	}
}

func TestMixClamping(t *testing.T) {
	always := NewMix(150, 1)
	never := NewMix(-5, 1)
	for i := 0; i < 100; i++ {
		if !always.Special() {
			t.Fatal("clamped-100 mix returned false")
		}
		if never.Special() {
			t.Fatal("clamped-0 mix returned true")
		}
	}
}
