package workload

import (
	"testing"
	"testing/quick"
)

// TestQuickPickerInRange generalizes the range invariant over arbitrary
// universe sizes, seeds and both distributions.
func TestQuickPickerInRange(t *testing.T) {
	prop := func(n uint8, seed int64, zipf bool) bool {
		size := int(n%64) + 1
		d := Uniform
		if zipf {
			d = Zipf
		}
		p := NewPicker(size, d, seed)
		for i := 0; i < 200; i++ {
			if v := p.Next(); v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPickerDeterministic checks that equal seeds give equal
// sequences and the pair invariant (distinct indices for any universe
// of at least two) holds for arbitrary seeds.
func TestQuickPickerDeterministic(t *testing.T) {
	prop := func(n uint8, seed int64, zipf bool) bool {
		size := int(n%64) + 2
		d := Uniform
		if zipf {
			d = Zipf
		}
		a := NewPicker(size, d, seed)
		b := NewPicker(size, d, seed)
		for i := 0; i < 100; i++ {
			af, at := a.NextPair()
			bf, bt := b.NextPair()
			if af != bf || at != bt {
				return false
			}
			if af == at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMixBounds checks Special's long-run frequency stays within a
// loose tolerance of the requested percentage for arbitrary percentages
// and seeds.
func TestQuickMixBounds(t *testing.T) {
	prop := func(pct uint8, seed int64) bool {
		p := int(pct % 101)
		m := NewMix(p, seed)
		const trials = 4000
		hits := 0
		for i := 0; i < trials; i++ {
			if m.Special() {
				hits++
			}
		}
		got := float64(hits) / trials * 100
		diff := got - float64(p)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
