// Package workload provides deterministic random generators for the
// benchmark harness: account-pair pickers with uniform or zipfian skew
// and a transaction-mix switch.
package workload

import (
	"math/rand"
)

// Distribution selects how objects are picked.
type Distribution int

const (
	// Uniform picks objects uniformly at random.
	Uniform Distribution = iota + 1
	// Zipf picks objects with zipfian skew (s=1.07, matching common STM
	// benchmark practice), concentrating traffic on a few hot objects.
	Zipf
)

// Picker generates object indices for one worker. Not safe for
// concurrent use: create one per worker goroutine.
type Picker struct {
	n    int
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewPicker returns a picker over n objects with the given distribution
// and seed.
func NewPicker(n int, d Distribution, seed int64) *Picker {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Picker{n: n, rng: rng}
	if d == Zipf {
		p.zipf = rand.NewZipf(rng, 1.07, 1, uint64(n-1))
	}
	return p
}

// Next returns one object index.
func (p *Picker) Next() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// NextPair returns two distinct object indices (for transfers). With a
// single object it returns (0, 0).
func (p *Picker) NextPair() (int, int) {
	if p.n < 2 {
		return 0, 0
	}
	a := p.Next()
	b := p.Next()
	for b == a {
		b = p.rng.Intn(p.n) // fall back to uniform to guarantee progress
	}
	return a, b
}

// Mix decides between two transaction classes with a fixed percentage.
type Mix struct {
	rng *rand.Rand
	pct int // probability (0-100) of the "special" class
}

// NewMix returns a mix choosing the special class pct% of the time.
func NewMix(pct int, seed int64) *Mix {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	return &Mix{rng: rand.New(rand.NewSource(seed)), pct: pct}
}

// Special reports whether the next transaction is of the special class.
func (m *Mix) Special() bool { return m.rng.Intn(100) < m.pct }
