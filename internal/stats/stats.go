// Package stats provides cache-line-padded, per-thread sharded counters
// for the STM hot paths. Every backend used to funnel its commit/abort
// accounting through one block of global atomic.Uint64 fields, which
// serialized otherwise-parallel commits on a single contended cache
// line. Here each Thread owns a Shard — a private, padded block of
// slots — so the hot-path increment is an uncontended atomic add on a
// line no other thread writes, and a Stats() snapshot sums across the
// registered shards.
//
// Slots are plain small integers; each backend declares its own slot
// constants (commits, aborts, ...) in the [0, NumSlots) range. Counters
// are cumulative and monotonic; Snapshot may run concurrently with
// increments and observes each slot atomically (the cross-slot view is
// a racy-but-monotonic snapshot, exactly as the previous global
// counters provided).
package stats

import (
	"sync"
	"sync/atomic"
)

// NumSlots is the number of counters per shard. Sixteen 8-byte slots
// fill exactly two 64-byte cache lines; every backend's counter block
// fits (LSA carries ten counters since the commit-log extension split).
// Both lines are written only by the owning thread, so the growth costs
// contention nothing.
const NumSlots = 16

// Shard is one thread's private counter block. The slot array fills two
// cache lines and the trailing pad keeps the next heap object off them,
// so increments by the owning thread never contend with other shards.
type Shard struct {
	slots [NumSlots]atomic.Uint64
	_     [64]byte
}

// Inc adds 1 to the given slot.
func (sh *Shard) Inc(slot int) { sh.slots[slot].Add(1) }

// Add adds n to the given slot.
func (sh *Shard) Add(slot int, n uint64) { sh.slots[slot].Add(n) }

// Load returns the shard's own value of the given slot.
func (sh *Shard) Load(slot int) uint64 { return sh.slots[slot].Load() }

// Set is a registry of shards belonging to one STM instance. The zero
// value is ready to use.
type Set struct {
	mu     sync.Mutex
	shards []*Shard
}

// NewShard allocates a shard, registers it, and returns it. Each Thread
// calls this once; the shard lives as long as the Set (threads are
// never unregistered — counters are cumulative).
func (s *Set) NewShard() *Shard {
	sh := new(Shard)
	s.mu.Lock()
	s.shards = append(s.shards, sh)
	s.mu.Unlock()
	return sh
}

// Snapshot returns the per-slot sums across all registered shards.
func (s *Set) Snapshot() [NumSlots]uint64 {
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	var out [NumSlots]uint64
	for _, sh := range shards {
		for i := range sh.slots {
			out[i] += sh.slots[i].Load()
		}
	}
	return out
}

// Shards returns the number of registered shards (tests, diagnostics).
func (s *Set) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}
