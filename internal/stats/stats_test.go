package stats

import (
	"sync"
	"testing"
	"unsafe"
)

func TestShardFillsCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(Shard{}.slots); got != 128 {
		t.Fatalf("slot block is %d bytes, want 128 (two whole cache lines)", got)
	}
	if got := unsafe.Sizeof(Shard{}); got < 192 {
		t.Fatalf("Shard is %d bytes, want >= 192 (padded)", got)
	}
}

func TestSnapshotSumsAcrossShards(t *testing.T) {
	var set Set
	a, b := set.NewShard(), set.NewShard()
	a.Inc(0)
	a.Add(0, 2)
	b.Inc(0)
	a.Inc(3)
	b.Add(7, 5)
	snap := set.Snapshot()
	want := [NumSlots]uint64{0: 4, 3: 1, 7: 5}
	if snap != want {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	if set.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", set.Shards())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	var set Set
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := set.NewShard()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sh.Inc(i % NumSlots)
			}
		}()
	}
	wg.Wait()
	snap := set.Snapshot()
	var total uint64
	for _, v := range snap {
		total += v
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}
