package sstm

import (
	"testing"

	"tbtm/internal/core"
)

// Write skew is the canonical serializability violation that causal
// serializability (and snapshot isolation) admit: T1 reads {x,y} and
// writes x, T2 reads {x,y} and writes y. The rw anti-dependencies
// T1 → T2 (on y) and T2 → T1 (on x) form a cycle, so a serializable STM
// must abort one of them — in either commit order. These are the
// regression tests for the reader-list mechanism (§4.2's visible reads):
// without it, neither transaction sees the other's reads and both
// commit.

func writeSkewPair(s *STM) (x, y *Object, t1, t2 *Tx) {
	x = s.NewObject(int64(50))
	y = s.NewObject(int64(50))
	t1 = s.NewThread().Begin(core.Short, false)
	t2 = s.NewThread().Begin(core.Short, false)
	for _, tx := range []*Tx{t1, t2} {
		if _, err := tx.Read(x); err != nil {
			panic(err)
		}
		if _, err := tx.Read(y); err != nil {
			panic(err)
		}
	}
	return x, y, t1, t2
}

func TestWriteSkewRejectedT1First(t *testing.T) {
	s := New(Config{})
	x, y, t1, t2 := writeSkewPair(s)
	_, _ = x, y
	if err := t1.Write(x, int64(-10)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	if err := t2.Write(y, int64(-10)); err != nil {
		t.Fatalf("t2 Write: %v", err)
	}
	err1 := t1.Commit()
	err2 := t2.Commit()
	if err1 == nil && err2 == nil {
		t.Fatal("both skew transactions committed (t1 first); serializability violated")
	}
	if err1 != nil && err2 != nil {
		t.Fatal("both skew transactions aborted; one must commit")
	}
}

func TestWriteSkewRejectedT2First(t *testing.T) {
	s := New(Config{})
	x, y, t1, t2 := writeSkewPair(s)
	if err := t2.Write(y, int64(-10)); err != nil {
		t.Fatalf("t2 Write: %v", err)
	}
	if err := t1.Write(x, int64(-10)); err != nil {
		t.Fatalf("t1 Write: %v", err)
	}
	err2 := t2.Commit()
	err1 := t1.Commit()
	if err1 == nil && err2 == nil {
		t.Fatal("both skew transactions committed (t2 first); serializability violated")
	}
	if err1 != nil && err2 != nil {
		t.Fatal("both skew transactions aborted; one must commit")
	}
}

// TestReadOnlyPivotRejected is the three-transaction G2 pattern: a
// read-only transaction R observes x before W1 updates it and y after W2
// updated it, forcing R before W1 and after W2 — plus a dependency
// W1 → W2 — so the trio has no serialization. One of the three must
// abort.
func TestReadOnlyPivotRejected(t *testing.T) {
	s := New(Config{})
	x := s.NewObject(int64(0))
	y := s.NewObject(int64(0))

	r := s.NewThread().Begin(core.Short, true)
	w1 := s.NewThread().Begin(core.Short, false)
	w2 := s.NewThread().Begin(core.Short, false)

	// w2 updates y and commits.
	if _, err := w2.Read(y); err != nil {
		t.Fatalf("w2 Read y: %v", err)
	}
	if err := w2.Write(y, int64(2)); err != nil {
		t.Fatalf("w2 Write y: %v", err)
	}
	errW2 := w2.Commit()

	// r reads x (old) and y (new): r is after w2.
	if _, err := r.Read(x); err != nil {
		t.Fatalf("r Read x: %v", err)
	}
	if _, err := r.Read(y); err != nil {
		t.Fatalf("r Read y: %v", err)
	}

	// w1 reads y's new version (w2 → w1) and updates x, which r read:
	// r → w1. If r commits it must be before w1 but after w2, while
	// w2 → w1 — consistent only if r is between them... and it is!
	// The cycle closes only when w1 also precedes w2; keep this trio
	// acyclic-but-tight and assert everyone commits, then run the true
	// cyclic variant below.
	if _, err := w1.Read(y); err != nil {
		t.Fatalf("w1 Read y: %v", err)
	}
	if err := w1.Write(x, int64(1)); err != nil {
		t.Fatalf("w1 Write x: %v", err)
	}
	errR := r.Commit()
	errW1 := w1.Commit()
	if errW2 != nil || errR != nil || errW1 != nil {
		t.Fatalf("acyclic trio aborted: w2=%v r=%v w1=%v", errW2, errR, errW1)
	}
}

// TestThreeTxCycleRejected closes a genuine three-transaction cycle:
//
//	r:  reads x(old), reads z(new from w2)   ⇒ w2 → r, r → w1 (rw on x)
//	w1: writes x, reads y(old)               ⇒ w1 → w2 (rw on y)
//	w2: writes y, writes z
//
// r → w1 → w2 → r. At most two of the three may commit.
func TestThreeTxCycleRejected(t *testing.T) {
	s := New(Config{})
	x := s.NewObject(int64(0))
	y := s.NewObject(int64(0))
	z := s.NewObject(int64(0))

	r := s.NewThread().Begin(core.Short, true)
	w1 := s.NewThread().Begin(core.Short, false)
	w2 := s.NewThread().Begin(core.Short, false)

	// r reads x first (will be overwritten by w1: r → w1).
	if _, err := r.Read(x); err != nil {
		t.Fatalf("r Read x: %v", err)
	}
	// w1 reads y (will be overwritten by w2: w1 → w2) and writes x.
	if _, err := w1.Read(y); err != nil {
		t.Fatalf("w1 Read y: %v", err)
	}
	if err := w1.Write(x, int64(1)); err != nil {
		t.Fatalf("w1 Write x: %v", err)
	}
	// w2 writes y and z, then commits.
	if err := w2.Write(y, int64(2)); err != nil {
		t.Fatalf("w2 Write y: %v", err)
	}
	if err := w2.Write(z, int64(2)); err != nil {
		t.Fatalf("w2 Write z: %v", err)
	}
	errW2 := w2.Commit()

	// r reads z after w2 committed: w2 → r.
	var errR error
	if _, err := r.Read(z); err != nil {
		errR = err
	} else {
		errR = r.Commit()
	}
	errW1 := w1.Commit()

	committed := 0
	for _, err := range []error{errW2, errR, errW1} {
		if err == nil {
			committed++
		}
	}
	if committed == 3 {
		t.Fatal("all three transactions of an rw-cycle committed; serializability violated")
	}
	if committed == 0 {
		t.Fatal("no transaction committed; at least one must")
	}
}
