package sstm

import (
	"errors"
	"sync"
	"testing"

	"tbtm/internal/core"
)

func atomically(t *testing.T, th *Thread, ro bool, fn func(tx *Tx) error) {
	t.Helper()
	for i := 0; ; i++ {
		tx := th.Begin(core.Short, ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return
		}
		if !core.IsRetryable(err) {
			t.Errorf("non-retryable error: %v", err)
			return
		}
		if i > 20000 {
			t.Error("transaction did not commit after 20000 retries")
			return
		}
	}
}

func TestBasicReadWrite(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(int64(1))
	th := s.NewThread()
	atomically(t, th, false, func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int64)+1)
	})
	tx := th.Begin(core.Short, true)
	v, err := tx.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(2) {
		t.Fatalf("value = %v, want 2", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyRejectsWritesAndDoneSemantics(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(0)
	ro := s.NewThread().Begin(core.Short, true)
	if err := ro.Write(o, 1); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("RO write = %v", err)
	}
	ro.Abort()
	if _, err := ro.Read(o); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Read after abort = %v", err)
	}
	if err := ro.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Commit after abort = %v", err)
	}
}

// figure2 sets up the paper's Figure 2 execution up to the point where TL
// and T3 have both built their (incompatible) views, then commits them in
// the given order. Exactly the first must succeed: the execution is
// causally serializable but not serializable, so S-STM must abort the
// second (§4.2: "only one of TL or T3 can commit ... the first
// transaction of TL or T3 that commits will order T1 and T2; the other
// one will abort").
func figure2(t *testing.T, s *STM, commitTLFirst bool) (errTL, errT3 error) {
	t.Helper()
	o1, o2 := s.NewObject("o1v0"), s.NewObject("o2v0")
	o3, o4 := s.NewObject("o3v0"), s.NewObject("o4v0")
	p1, p2, p3, pL := s.NewThread(), s.NewThread(), s.NewThread(), s.NewThread()

	// TL reads o1 and o2 before T1 commits, o3 after T2 commits:
	// TL's view is T2 → TL → T1.
	tl := pL.Begin(core.Long, false)
	if _, err := tl.Read(o1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(o2); err != nil {
		t.Fatal(err)
	}

	// T3 reads o3 before T2 commits and writes o2 after T1 commits:
	// T3's view is T1 → T3 → T2.
	t3 := p3.Begin(core.Short, false)
	if _, err := t3.Read(o3); err != nil {
		t.Fatal(err)
	}

	// T1 : w(o1) w(o2).
	t1 := p1.Begin(core.Short, false)
	if err := t1.Write(o1, "o1v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(o2, "o2v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("T1: %v", err)
	}

	// T2 : w(o3) w(o3).
	t2 := p2.Begin(core.Short, false)
	if err := t2.Write(o3, "o3v1"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(o3, "o3v2"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("T2: %v", err)
	}

	// T3 writes o2 over T1's version (T1 → T3).
	if err := t3.Write(o2, "o2v2"); err != nil {
		t.Fatal(err)
	}
	// TL reads o3 — T2's version (T2 → TL) — and writes o4.
	if _, err := tl.Read(o3); err != nil {
		t.Fatal(err)
	}
	if err := tl.Write(o4, "o4v1"); err != nil {
		t.Fatal(err)
	}

	if commitTLFirst {
		errTL = tl.Commit()
		errT3 = t3.Commit()
	} else {
		errT3 = t3.Commit()
		errTL = tl.Commit()
	}
	return errTL, errT3
}

func TestFigure2ExactlyOneCommits(t *testing.T) {
	t.Run("T3 first", func(t *testing.T) {
		s := New(Config{Threads: 4})
		errTL, errT3 := figure2(t, s, false)
		if errT3 != nil {
			t.Fatalf("first committer T3 aborted: %v", errT3)
		}
		if !errors.Is(errTL, core.ErrConflict) {
			t.Fatalf("TL = %v, want ErrConflict", errTL)
		}
	})
	t.Run("TL first", func(t *testing.T) {
		s := New(Config{Threads: 4})
		errTL, errT3 := figure2(t, s, true)
		if errTL != nil {
			t.Fatalf("first committer TL aborted: %v", errTL)
		}
		if !errors.Is(errT3, core.ErrConflict) {
			t.Fatalf("T3 = %v, want ErrConflict", errT3)
		}
	})
}

// TestFigure1StillCommits checks that S-STM keeps the concurrency CS-STM
// offers on Figure 1: with no order-contradicting reader, all three
// transactions commit.
func TestFigure1StillCommits(t *testing.T) {
	s := New(Config{Threads: 3})
	o1, o2 := s.NewObject("o1v0"), s.NewObject("o2v0")
	o3, o4 := s.NewObject("o3v0"), s.NewObject("o4v0")
	p1, p2, p3 := s.NewThread(), s.NewThread(), s.NewThread()

	tl := p3.Begin(core.Long, false)
	if _, err := tl.Read(o1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(o2); err != nil {
		t.Fatal(err)
	}
	t1 := p1.Begin(core.Short, false)
	if err := t1.Write(o1, "o1v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(o2, "o2v1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := p2.Begin(core.Short, false)
	if err := t2.Write(o3, "o3v1"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(o3); err != nil {
		t.Fatal(err)
	}
	if err := tl.Write(o4, "o4v1"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Commit(); err != nil {
		t.Fatalf("TL must commit on Figure 1: %v", err)
	}
}

// TestFloorPropagatesTransitively checks the "carried along causal
// chains" property: after TL commits ordering TL → T1, a transaction that
// reads T1's versions absorbs TL's timestamp transitively and cannot
// order itself before TL.
func TestFloorPropagatesTransitively(t *testing.T) {
	s := New(Config{Threads: 4})
	o1 := s.NewObject("o1v0")
	o5 := s.NewObject("o5v0")
	p1, p2, p3 := s.NewThread(), s.NewThread(), s.NewThread()

	// TL reads o1@v0 and o5@v0... first, fix TL's reads.
	tl := p3.Begin(core.Long, false)
	if _, err := tl.Read(o1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(o5); err != nil {
		t.Fatal(err)
	}

	// T1 overwrites o1 and commits: TL (when it commits) precedes T1.
	atomically(t, p1, false, func(tx *Tx) error { return tx.Write(o1, "o1v1") })

	// TL commits (writes nothing — read-only behaviour is enough to
	// impose TL → T1).
	if err := tl.Commit(); err != nil {
		t.Fatalf("TL: %v", err)
	}

	// T4 reads T1's o1 version (so T1 → T4, transitively TL → T4), then
	// tries to overwrite o5, whose v0 TL read. If T4 could commit a
	// version of o5 with a timestamp not dominating TL's, a later reader
	// could order T4 before TL. The floor forces T4's timestamp to
	// dominate TL's, keeping the order consistent; T4 itself read o5@v0
	// which TL also read — no conflict, T4 commits after TL.
	t4 := p2.Begin(core.Short, false)
	v, err := t4.Read(o1)
	if err != nil {
		t.Fatal(err)
	}
	if v != "o1v1" {
		t.Fatalf("T4 read o1 = %v", v)
	}
	if err := t4.Write(o5, "o5v1"); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatalf("T4: %v", err)
	}
	// T4's installed version must dominate TL's commit timestamp.
	if !tl.CT().LessEq(o5.Current().CT) {
		t.Fatalf("T4's version CT %v does not dominate TL's %v", o5.Current().CT, tl.CT())
	}
}

func TestMoneyConservationSerializable(t *testing.T) {
	for _, entries := range []int{0, 2} {
		entries := entries
		name := "vector"
		if entries == 2 {
			name = "plausible2"
		}
		t.Run(name, func(t *testing.T) {
			s := New(Config{Threads: 4, Entries: entries})
			const accounts, transfers, workers = 8, 50, 4
			objs := make([]*Object, accounts)
			for i := range objs {
				objs[i] = s.NewObject(int64(100))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					th := s.NewThread()
					for i := 0; i < transfers; i++ {
						from := (seed + i) % accounts
						to := (seed + i*5 + 1) % accounts
						if from == to {
							continue
						}
						atomically(t, th, false, func(tx *Tx) error {
							fv, err := tx.Read(objs[from])
							if err != nil {
								return err
							}
							tv, err := tx.Read(objs[to])
							if err != nil {
								return err
							}
							if err := tx.Write(objs[from], fv.(int64)-1); err != nil {
								return err
							}
							return tx.Write(objs[to], tv.(int64)+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total int64
			atomically(t, s.NewThread(), true, func(tx *Tx) error {
				total = 0
				for _, o := range objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					total += v.(int64)
				}
				return nil
			})
			if total != accounts*100 {
				t.Fatalf("total = %d, want %d", total, accounts*100)
			}
		})
	}
}

func TestStatsAndAccessors(t *testing.T) {
	s := New(Config{})
	if s.Config().Threads != 16 || s.Config().Entries != 16 {
		t.Fatalf("defaults = %+v", s.Config())
	}
	if s.Clock() == nil {
		t.Fatal("Clock nil")
	}
	th := s.NewThread()
	if th.STM() != s || th.ID() != 0 {
		t.Fatal("thread accessors wrong")
	}
	o := s.NewObject(1)
	if o.ID() == 0 || o.Current().Value != 1 || o.Current().Next() != nil {
		t.Fatal("object accessors wrong")
	}
	tx := th.Begin(core.Short, false)
	if err := tx.Write(o, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rec := o.Current().Writer
	if rec == nil || !rec.TS.Equal(o.Current().CT) {
		t.Fatal("writer record missing or inconsistent")
	}
	if len(rec.Floor()) != 16 {
		t.Fatalf("floor width = %d", len(rec.Floor()))
	}
	st := s.Stats()
	if st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
