package sstm

import (
	"errors"
	"testing"

	"tbtm/internal/core"
)

// TestCommitLogFastValidationDisjoint: a commit whose window avoided its
// read footprint skips both successor walks (validation and floor
// attachment).
func TestCommitLogFastValidationDisjoint(t *testing.T) {
	s := New(Config{Threads: 4})
	if s.Log() == nil {
		t.Fatal("commit log not armed by default")
	}
	a, b := s.NewObject(int64(0)), s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(a); err != nil {
		t.Fatalf("Read: %v", err)
	}

	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(b, int64(9)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := s.Stats()
	if st.FastValidations < 1 {
		t.Fatalf("FastValidations = %d, want >= 1 (stats %+v)", st.FastValidations, st)
	}
}

// TestCommitLogRWConflictStillDetected: overwriting a read version must
// still fail serializability validation when the orders cycle — the
// window hits the footprint and the successor walk runs.
func TestCommitLogRWConflictStillDetected(t *testing.T) {
	s := New(Config{Threads: 4})
	o := s.NewObject(int64(0))

	tx := s.NewThread().Begin(core.Short, false)
	if _, err := tx.Read(o); err != nil {
		t.Fatalf("Read: %v", err)
	}

	other := s.NewThread().Begin(core.Short, false)
	if err := other.Write(o, int64(1)); err != nil {
		t.Fatalf("other Write: %v", err)
	}
	if err := other.Commit(); err != nil {
		t.Fatalf("other Commit: %v", err)
	}

	// The upgrade folds the successor's timestamp into T.ct: a cycle.
	if err := tx.Write(o, int64(2)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
}
