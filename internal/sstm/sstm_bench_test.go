package sstm

import (
	"testing"

	"tbtm/internal/core"
)

func BenchmarkTransfer(b *testing.B) {
	// S-STM's per-update cost includes the commit-mutex critical section
	// with floor re-absorption and successor-chain attachment (§4.2's
	// "prohibitive, especially for short transactions" overhead claim).
	s := New(Config{Threads: 16})
	oa, ob := s.NewObject(int64(0)), s.NewObject(int64(0))
	th := s.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := th.Begin(core.Short, false)
		if _, err := tx.Read(oa); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(ob, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitContention(b *testing.B) {
	// Parallel committers all serialize on the commit mutex.
	s := New(Config{Threads: 16})
	const n = 8
	objs := make([]*Object, n)
	for i := range objs {
		objs[i] = s.NewObject(int64(0))
	}
	var idx int64
	b.RunParallel(func(pb *testing.PB) {
		th := s.NewThread()
		i := int(idx) % n
		idx++
		for pb.Next() {
			tx := th.Begin(core.Short, false)
			if err := tx.Write(objs[i], int64(i)); err != nil {
				tx.Abort()
				continue
			}
			_ = tx.Commit()
		}
	})
}
