// Package sstm implements S-STM, the serializable STM of paper §4.2.
//
// S-STM extends CS-STM: causal serializability additionally requires all
// update transactions to be perceived in the same order by all
// processors. The paper's mechanism keeps transactions unordered as long
// as possible and, once a committing transaction imposes an order between
// previously concurrent transactions, prevents any other transaction from
// contradicting it: "a solution is to force any transaction accessing
// objects updated by T2 after T2 has committed ... to have a commit
// timestamp greater than that of T3" (§4.2).
//
// We realize that rule with two mechanisms on top of CS-STM:
//
// Reader lists (the paper's visible reads): every read registers the
// transaction's record on the version it observed. When a writer W
// commits, it absorbs — for every version it overwrites — the timestamp
// and floor of each committed reader R of that version: the rw
// anti-dependency R → W is then reflected as R.ct ≼ W.ct, and W's
// successor validation detects any cycle (W would have to both precede
// and follow R). Readers that are still active when W commits are
// handled symmetrically by their own commit-time validation against W's
// installed successor version.
//
// Floor timestamps: when a transaction R commits having read a version
// that was overwritten by writer W, the serialization order R → W is
// fixed; R raises W's floor to R's timestamp. Every transaction that
// accesses any of W's versions — and, transitively, anything causally
// after them — absorbs the floor into its own commit timestamp, so the
// CS-STM successor validation detects any attempt to order itself before
// R: information about past readers is carried along causal chains,
// exactly as §4.2 describes.
//
// The paper implements this without locks using compare-and-swap, an
// extra "committing" state, and helping, omitting the details as "quite
// intricate". Earlier revisions of this package serialized every commit
// decision under one process-global mutex; commits from disjoint
// footprints now proceed in parallel under striped two-phase locking:
//
//   - Object stripes. A committing transaction locks the commit stripes
//     of every object in its footprint (reads and writes), in ascending
//     stripe order, and holds them across the whole decision. Two commits
//     that share any object therefore serialize exactly as under the
//     global mutex, and while the stripes are held the successor chains
//     and reader lists of the footprint are frozen: every version
//     install and every committed-reader status flip happens under the
//     stripe of the object involved, because that object is by
//     definition in the installing/reading transaction's own footprint.
//
//   - Record locks. Floors live on per-transaction records that are
//     reachable from many objects, so two disjoint-footprint commits can
//     still touch the same third party's record concurrently. Each
//     record carries a small mutex making individual floor absorptions
//     and raises atomic. Missing a concurrent raise is equivalent to the
//     global-mutex schedule in which the absorber committed first (the
//     raiser's decision fixes the order only at its own commit, which
//     then re-validates with everything it absorbed — whichever decision
//     is later in the induced order has absorbed the other's timestamps
//     through its frozen footprint); observing a raise early only makes
//     the absorber's timestamp larger, which is conservative: it can
//     cause a spurious abort, never a missed cycle.
//
// Config.CommitStripes = 1 restores the fully serialized commit (all
// footprints share the single stripe), which doubles as the contention
// baseline for the scaling benchmarks. Helping is unnecessary in-process
// because a lock holder cannot crash.
package sstm

import (
	"sync"
	"sync/atomic"

	"tbtm/internal/cm"
	"tbtm/internal/core"
	"tbtm/internal/stats"
	"tbtm/internal/vclock"
)

// Config parameterizes an S-STM instance.
type Config struct {
	// Threads sizes the vector clock (default 16).
	Threads int
	// Entries is the timestamp width r (0 → Threads, exact vector clock).
	Entries int
	// Mapping selects the processor→entry mapping for plausible widths
	// (default: the paper's modulo mapping).
	Mapping vclock.Mapping
	// Comb appends a second REV segment to the plausible timestamps
	// (see cstm.Config.Comb and vclock.NewComb).
	Comb bool
	// CM arbitrates write/write conflicts. Nil means Polite.
	CM cm.Manager
	// CommitStripes is the number of commit lock stripes (rounded up to a
	// power of two, clamped to [1, 64]; 0 means the default of 64). A
	// committing transaction locks the stripes of its whole footprint, so
	// disjoint-footprint commits proceed in parallel. 1 serializes every
	// commit decision — the pre-striping behaviour, kept as the scaling
	// baseline.
	CommitStripes int
	// Lot, when non-nil, receives a wakeup for every object an update
	// commit installs a version into, unblocking transactions parked in
	// the facade's Retry. Nil keeps the commit path wake-free.
	Lot *core.ParkingLot
	// CommitLog sizes the global commit log (0 default-on, >0 explicit
	// size, <0 off), run in claim mode as in CS-STM: every update commit
	// claims a log tick and publishes its write set under the commit
	// stripes before validating. A committing transaction whose window
	// (begin, now] avoided its read footprint has successor-free reads —
	// the nested successor-walk validation and the floor-attachment walk
	// are both vacuous and skipped.
	CommitLog int
	// CrossCheck makes every log-clear skip re-verify that no read
	// version has a successor, panicking on disagreement (conformance
	// harness only).
	CrossCheck bool
}

// Stats is a snapshot of an instance's cumulative counters.
type Stats struct {
	Commits         uint64
	Aborts          uint64
	Conflicts       uint64 // serializability validation failures
	FastValidations uint64 // commits that skipped the successor walks (commit log)
	LogWraps        uint64 // fast-path fallbacks because the log window wrapped
}

// Counter slots within a thread's stats shard.
const (
	cntCommits = iota
	cntAborts
	cntConflicts
	cntFastValidations
	cntLogWraps
)

// commitStripe is one commit lock, padded so neighbouring stripes do not
// share a cache line under contention.
type commitStripe struct {
	sync.Mutex
	_ [56]byte
}

// STM is an S-STM instance.
type STM struct {
	cfg   Config
	clock *vclock.Clock

	// stripes are the commit locks: a committing transaction holds the
	// stripes of every object in its footprint across its whole decision
	// (floor absorption, successor validation, floor attachment, version
	// install). stripeMask is len(stripes)-1 (a power of two).
	stripes    []commitStripe
	stripeMask uint64

	// log is the claim-mode commit log, nil when disabled.
	log *core.CommitLog

	nextThread atomic.Int64

	// shards holds the per-thread counter shards; see internal/stats.
	shards stats.Set
}

// New returns an S-STM instance, applying defaults for zero fields.
func New(cfg Config) *STM {
	if cfg.Threads < 1 {
		cfg.Threads = 16
	}
	if cfg.Entries < 1 || cfg.Entries > cfg.Threads {
		cfg.Entries = cfg.Threads
	}
	if cfg.CM == nil {
		cfg.CM = &cm.Polite{}
	}
	n := cfg.CommitStripes
	if n < 1 {
		n = 64
	}
	if n > 64 {
		n = 64 // footprint stripe sets are tracked in one uint64
	}
	for n&(n-1) != 0 {
		n++ // round up to a power of two for mask indexing
	}
	cfg.CommitStripes = n
	mk := vclock.NewMapped
	if cfg.Comb {
		mk = vclock.NewComb
	}
	s := &STM{
		cfg:        cfg,
		clock:      mk(cfg.Threads, cfg.Entries, cfg.Mapping),
		stripes:    make([]commitStripe, n),
		stripeMask: uint64(n - 1),
	}
	if cfg.CommitLog >= 0 {
		s.log = core.NewCommitLog(cfg.CommitLog)
	}
	return s
}

// Log returns the commit log, or nil when disabled (tests).
func (s *STM) Log() *core.CommitLog { return s.log }

// lockFootprint locks every stripe in mask in ascending index order (the
// fixed order makes footprint acquisition deadlock-free).
func (s *STM) lockFootprint(mask uint64) {
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			s.stripes[i].Lock()
		}
		mask >>= 1
	}
}

// unlockFootprint releases every stripe in mask.
func (s *STM) unlockFootprint(mask uint64) {
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			s.stripes[i].Unlock()
		}
		mask >>= 1
	}
}

// Config returns the effective configuration.
func (s *STM) Config() Config { return s.cfg }

// Clock exposes the vector time base.
func (s *STM) Clock() *vclock.Clock { return s.clock }

// Stats returns a snapshot of the cumulative counters, aggregated across
// the per-thread shards.
func (s *STM) Stats() Stats {
	c := s.shards.Snapshot()
	return Stats{
		Commits: c[cntCommits], Aborts: c[cntAborts], Conflicts: c[cntConflicts],
		FastValidations: c[cntFastValidations], LogWraps: c[cntLogWraps],
	}
}

// Record is the persistent footprint of a transaction: its commit
// timestamp (assigned when the transaction's commit decision fixes it),
// the transaction descriptor (so readers of the record can tell whether
// it committed), and the floor — the join of the timestamps of all
// committed transactions that must precede any transaction ordered after
// this one. TS is written once, before the owning transaction's status
// flips to committed, and is immutable afterwards; the floor keeps
// growing for as long as the record is reachable from installed
// versions, so every floor access goes through mu.
type Record struct {
	TS    vclock.TS
	meta  *core.TxMeta
	mu    sync.Mutex // guards floor
	floor vclock.TS
}

// absorbFloorInto folds the record's current floor into ct.
func (r *Record) absorbFloorInto(ct vclock.TS) {
	r.mu.Lock()
	ct.MaxInto(r.floor)
	r.mu.Unlock()
}

// raiseFloor raises the record's floor to dominate ts.
func (r *Record) raiseFloor(ts vclock.TS) {
	r.mu.Lock()
	r.floor.MaxInto(ts)
	r.mu.Unlock()
}

// setFloor installs the record's initial floor buffer (once, by the
// owning transaction's commit decision, before the record becomes
// reachable from any installed version).
func (r *Record) setFloor(f vclock.TS) {
	r.mu.Lock()
	r.floor = f
	r.mu.Unlock()
}

// Floor returns a copy of the record's current floor (tests and
// diagnostics).
func (r *Record) Floor() vclock.TS {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.floor.Clone()
}

// FloorInto copies the record's current floor into dst, reusing dst's
// storage when it is wide enough, and returns the result. The zero-alloc
// sibling of Floor for callers that poll floors on a hot path.
func (r *Record) FloorInto(dst vclock.TS) vclock.TS {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.floor.CopyInto(dst)
}

// Version is one committed state of an Object.
type Version struct {
	Value    any
	CT       vclock.TS
	Seq      uint64
	WriterID uint64
	// Writer is the committing transaction's record, nil for initial
	// versions. It carries the floor that readers must absorb.
	Writer *Record

	next atomic.Pointer[Version]

	// readersMu guards readers, the paper's per-version reader list
	// (§4.2: "a reading transaction atomically inserts itself in a
	// 'reader list' associated with the read version"). The list is
	// consulted once, by the transaction that overwrites this version,
	// and cleared afterwards; late registrations by transactions that
	// loaded the version just before it was overwritten are caught by
	// their own successor validation instead.
	readersMu sync.Mutex
	readers   []*Record
}

// Next returns the successor version, or nil while current.
func (v *Version) Next() *Version { return v.next.Load() }

// addReader registers r in the version's reader list.
func (v *Version) addReader(r *Record) {
	v.readersMu.Lock()
	v.readers = append(v.readers, r)
	v.readersMu.Unlock()
}

// takeReaders returns the reader list and clears it.
func (v *Version) takeReaders() []*Record {
	v.readersMu.Lock()
	rs := v.readers
	v.readers = nil
	v.readersMu.Unlock()
	return rs
}

// Readers returns a snapshot of the reader list (tests).
func (v *Version) Readers() []*Record {
	v.readersMu.Lock()
	defer v.readersMu.Unlock()
	return append([]*Record(nil), v.readers...)
}

// absorbReaders folds the timestamp and floor of every committed reader
// other than self into ct, holding the reader-list lock across the walk
// (the commit path's snapshot-free sibling of Readers; the record lock
// nests inside the list lock and nowhere else, so the order is fixed).
func (v *Version) absorbReaders(self *Record, ct vclock.TS) {
	v.readersMu.Lock()
	for _, rd := range v.readers {
		if rd == self || rd.meta.Status() != core.StatusCommitted {
			continue
		}
		ct.MaxInto(rd.TS)
		rd.absorbFloorInto(ct)
	}
	v.readersMu.Unlock()
}

// Object is an S-STM shared object.
type Object struct {
	id  uint64
	cur atomic.Pointer[Version]
	wr  atomic.Pointer[core.TxMeta]
}

// NewObject allocates an object whose initial version has a zero
// timestamp and no writer record.
func (s *STM) NewObject(initial any) *Object {
	o := &Object{id: core.NextObjectID()}
	o.cur.Store(&Version{Value: initial, CT: s.clock.Zero(), Seq: 1})
	return o
}

// ID returns the object's process-unique identifier.
func (o *Object) ID() uint64 { return o.id }

// Current returns the newest committed version.
func (o *Object) Current() *Version { return o.cur.Load() }

// Thread is a per-goroutine handle carrying VC_p. It also owns a stats
// shard and a reusable transaction descriptor, so the begin→commit hot
// path allocates only what outlives the transaction (its meta and
// record).
type Thread struct {
	stm   *STM
	id    int
	vc    vclock.TS
	shard *stats.Shard
	tx    Tx        // reusable descriptor, recycled by Begin once finished
	ctbuf vclock.TS // spare timestamp buffer recovered from aborted transactions
	idbuf []uint64  // reusable write-set ID buffer for commit-log publication
}

// NewThread returns a handle for one worker goroutine.
func (s *STM) NewThread() *Thread {
	return &Thread{stm: s, id: int(s.nextThread.Add(1) - 1), vc: s.clock.Zero(), shard: s.shards.NewShard()}
}

// ID returns the thread's index.
func (th *Thread) ID() int { return th.id }

// VC returns a copy of the thread's last committed timestamp (tests).
func (th *Thread) VC() vclock.TS { return th.vc.Clone() }

// VCInto copies the thread's last committed timestamp into dst, reusing
// dst's storage when it is wide enough, and returns the result (the
// zero-alloc sibling of VC).
func (th *Thread) VCInto(dst vclock.TS) vclock.TS { return th.vc.CopyInto(dst) }

// STM returns the owning instance.
func (th *Thread) STM() *STM { return th.stm }

// Begin starts a transaction.
//
// Begin may recycle the thread's previous transaction descriptor: a *Tx
// is invalid after Commit or Abort and must not be retained across the
// next Begin on the same thread. The transaction's meta and record are
// always allocated fresh — both outlive the transaction (records stay
// reachable from reader lists and installed versions).
func (th *Thread) Begin(kind core.TxKind, readOnly bool) *Tx {
	tx := &th.tx
	if tx.stm != nil && !tx.done {
		tx = new(Tx)
	}
	meta := core.NewTxMeta(kind, th.id)
	tx.stm = th.stm
	tx.th = th
	tx.meta = meta
	tx.rec = &Record{meta: meta}
	tx.ro = readOnly
	tx.ct = th.takeCT()
	clear(tx.reads) // release the previous transaction's objects/values
	clear(tx.writes)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex.Reset()
	tx.rindex.Reset()
	if log := th.stm.log; log != nil {
		tx.lb = log.Claimed() // see cstm.Thread.Begin
	}
	tx.done = false
	return tx
}

// takeCT returns a tentative commit timestamp initialized from VC_p,
// reusing a buffer recovered from an aborted predecessor when one is
// available (committed timestamps escape into records and VC_p and are
// never reused).
func (th *Thread) takeCT() vclock.TS {
	if buf := th.ctbuf; len(buf) == len(th.vc) {
		th.ctbuf = nil
		copy(buf, th.vc)
		return buf
	}
	return th.vc.Clone()
}

type readEntry struct {
	obj *Object
	ver *Version
}

type writeEntry struct {
	obj  *Object
	base *Version
	val  any
}

// Tx is an S-STM transaction.
type Tx struct {
	stm  *STM
	th   *Thread
	meta *core.TxMeta
	rec  *Record
	ro   bool

	ct vclock.TS

	reads  []readEntry
	writes []writeEntry
	windex core.SmallIndex
	// rindex deduplicates reads per object (one reader-list registration
	// and one read entry per object) and doubles as the commit log's
	// read-footprint membership test.
	rindex core.SmallIndex
	// lb is the commit-log tick observed at Begin; the commit-time fast
	// path scans (lb, now].
	lb   uint64
	done bool
}

// Meta exposes the shared descriptor.
func (tx *Tx) Meta() *core.TxMeta { return tx.meta }

// Done reports whether the transaction has finished and its descriptor
// may be recycled. A nil receiver counts as done.
func (tx *Tx) Done() bool { return tx == nil || tx.done }

// CT returns a copy of the tentative commit timestamp (tests).
func (tx *Tx) CT() vclock.TS { return tx.ct.Clone() }

// CTInto copies the tentative commit timestamp into dst, reusing dst's
// storage when it is wide enough, and returns the result (the zero-alloc
// sibling of CT).
func (tx *Tx) CTInto(dst vclock.TS) vclock.TS { return tx.ct.CopyInto(dst) }

// Watches appends the transaction's read footprint to buf as (object,
// read-version Seq) pairs and returns the extended slice. It must be
// called before the descriptor is recycled by the thread's next Begin.
func (tx *Tx) Watches(buf []core.Watch) []core.Watch {
	for i := range tx.reads {
		r := &tx.reads[i]
		buf = append(buf, core.Watch{ID: r.obj.ID(), Seq: r.ver.Seq, Obj: r.obj})
	}
	return buf
}

// WatchesStale reports whether any watched object has advanced past the
// Seq recorded at read time. S-STM recycles neither versions nor
// descriptors (records and timestamps escape into reader lists), so the
// current version's Seq is read directly.
func (tx *Tx) WatchesStale(ws []core.Watch) bool {
	for i := range ws {
		if ws[i].Obj.(*Object).cur.Load().Seq != ws[i].Seq {
			return true
		}
	}
	return false
}

func (tx *Tx) stabilize(o *Object) {
	for round := 0; ; round++ {
		w := o.wr.Load()
		if w == nil || w == tx.meta || w.Status() != core.StatusCommitting {
			return
		}
		cm.Backoff(round)
	}
}

func (tx *Tx) fail(err error) error {
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.done = true
	tx.th.ctbuf = tx.ct // never published: recover the buffer
	tx.ct = nil
	tx.th.shard.Inc(cntAborts)
	return err
}

// Read opens o in read mode: the read is visible in the sense required
// for serializability — its ordering consequences are published at commit
// through the floor mechanism — and recorded for validation.
func (tx *Tx) Read(o *Object) (any, error) {
	if tx.done {
		return nil, core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return nil, tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		return tx.writes[i].val, nil
	}
	if i, ok := tx.rindex.Get(o.ID()); ok {
		// Re-read: return the version registered first. One read entry
		// per object keeps the reader list and the commit-time walks
		// duplicate-free.
		return tx.reads[i].ver.Value, nil
	}
	tx.meta.Prio.Add(1)
	tx.stabilize(o)
	v := o.cur.Load()
	tx.absorb(v)
	v.addReader(tx.rec) // visible read (§4.2)
	tx.rindex.Put(o.ID(), len(tx.reads))
	tx.reads = append(tx.reads, readEntry{obj: o, ver: v})
	return v.Value, nil
}

// absorb folds a version's timestamp into T.ct. The writer's floor is
// deliberately not read here: floors are only accessed under the commit
// mutex, where Commit re-absorbs them before validating, which is the
// absorption that soundness relies on.
func (tx *Tx) absorb(v *Version) {
	tx.ct.MaxInto(v.CT)
}

// Write opens o in write mode with single-writer arbitration and buffers
// the update.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.ro {
		return core.ErrReadOnly
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if i, ok := tx.windex.Get(o.ID()); ok {
		tx.writes[i].val = val
		return nil
	}
	tx.meta.Prio.Add(1)

	for round := 0; ; round++ {
		if tx.meta.Status() == core.StatusAborted {
			return tx.fail(core.ErrAborted)
		}
		w := o.wr.Load()
		switch {
		case w == nil:
			if o.wr.CompareAndSwap(nil, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		case w == tx.meta:
			tx.recordWrite(o, val)
			return nil
		case w.Status().Terminal():
			if o.wr.CompareAndSwap(w, tx.meta) {
				tx.recordWrite(o, val)
				return nil
			}
		default:
			if !cm.Resolve(tx.stm.cfg.CM, tx.meta, w) {
				tx.th.shard.Inc(cntConflicts)
				return tx.fail(core.ErrAborted)
			}
		}
		cm.Backoff(round)
	}
}

func (tx *Tx) recordWrite(o *Object, val any) {
	v := o.cur.Load()
	tx.absorb(v)
	tx.windex.Put(o.ID(), len(tx.writes))
	tx.writes = append(tx.writes, writeEntry{obj: o, base: v, val: val})
}

// footprint returns the stripe set of every object the transaction
// accessed, as a bitmask over the STM's commit stripes.
func (tx *Tx) footprint() uint64 {
	m := tx.stm.stripeMask
	var mask uint64
	for i := range tx.reads {
		mask |= 1 << (tx.reads[i].obj.id & m)
	}
	for i := range tx.writes {
		mask |= 1 << (tx.writes[i].obj.id & m)
	}
	return mask
}

// Commit decides the transaction while holding the commit stripes of its
// whole footprint (see the package comment for why striped two-phase
// locking preserves the global-mutex semantics):
//
//  1. Re-absorb the floors of every accessed version (orders imposed by
//     transactions that committed since we opened them), and — the
//     reader-list rule — the timestamps and floors of every committed
//     reader of every version this transaction overwrites: each such
//     reader R fixed the order R → T when it read the version T's write
//     replaces, so T's timestamp must dominate R's. Readers of our
//     overwritten versions decide under our stripes (the version's
//     object is in their footprint too), so their committed status and
//     timestamp are stable while we hold them.
//  2. Validate: a successor of a read version whose timestamp is ≼ T.ct
//     closes a precedence cycle — abort (as in CS-STM, but reader lists
//     and floors have folded rw-antidependency orderings into the
//     timestamps, upgrading the guarantee from causal serializability to
//     serializability). Successor chains of the footprint are frozen
//     while the stripes are held.
//  3. Fix the final timestamp (clock tick for update transactions) and
//     publish it on the transaction's record; flip the status to
//     committed while still holding the stripes, so a later committer of
//     an overlapping footprint never misses this transaction in a reader
//     list.
//  4. Attach: for every read version, raise the floor of every successor
//     version's writer to T.ct, fixing T → successor-writer for all
//     future transactions.
//  5. Install the buffered writes, carrying the transaction's record.
func (tx *Tx) Commit() error {
	if tx.done {
		return core.ErrTxDone
	}
	if tx.meta.Status() == core.StatusAborted {
		return tx.fail(core.ErrAborted)
	}
	if !tx.meta.CASStatus(core.StatusActive, core.StatusCommitting) {
		return tx.fail(core.ErrAborted)
	}

	s := tx.stm
	mask := tx.footprint()
	s.lockFootprint(mask)
	// Commit-log fast path: with the stripes held, any successor of a
	// read version was installed by a stripe-serialized predecessor that
	// claimed its log tick after our read and published before
	// unlocking — so a window (lb, now] that avoided the read footprint
	// proves every read version successor-free, making the step 2
	// validation and step 4 attachment walks vacuous.
	fastOK := false
	if log := s.log; log != nil {
		switch log.Check(tx.lb, log.Claimed(), &tx.rindex) {
		case core.LogClear:
			fastOK = true
		case core.LogWrapped:
			tx.th.shard.Inc(cntLogWraps)
		}
	}
	// Step 1: re-absorb floors and committed readers of overwritten
	// versions.
	for _, r := range tx.reads {
		if r.ver.Writer != nil {
			r.ver.Writer.absorbFloorInto(tx.ct)
		}
	}
	for _, w := range tx.writes {
		if w.base.Writer != nil {
			w.base.Writer.absorbFloorInto(tx.ct)
		}
		w.base.absorbReaders(tx.rec, tx.ct)
	}
	// Step 2: validate.
	if fastOK {
		if s.cfg.CrossCheck {
			for _, r := range tx.reads {
				if r.ver.next.Load() != nil {
					panic("sstm: commit-log fast path admitted a read with a successor")
				}
			}
		}
		tx.th.shard.Inc(cntFastValidations)
	}
	if !fastOK {
		for _, r := range tx.reads {
			for succ := r.ver.next.Load(); succ != nil; succ = succ.next.Load() {
				if succ.CT.LessEq(tx.ct) {
					tx.meta.CASStatus(core.StatusCommitting, core.StatusAborted)
					s.unlockFootprint(mask)
					tx.releaseLocks()
					tx.done = true
					tx.th.ctbuf = tx.ct
					tx.ct = nil
					tx.th.shard.Inc(cntAborts)
					tx.th.shard.Inc(cntConflicts)
					return core.ErrConflict
				}
			}
		}
	}
	// Step 3: final timestamp, published on the record, status flipped
	// under the stripes.
	if len(tx.writes) > 0 {
		s.clock.Stamp(tx.th.id, tx.ct)
		if log := s.log; log != nil {
			// Claim our log tick and publish the write set under the
			// stripes, before installing: a later committer sharing any of
			// our stripes reads the claim counter after we unlock and so
			// finds this record in its window.
			ids := tx.th.idbuf[:0]
			for i := range tx.writes {
				ids = append(ids, tx.writes[i].obj.id)
			}
			tx.th.idbuf = ids
			log.Append(ids)
		}
	}
	tx.rec.TS = tx.ct // the ct buffer escapes into the record here
	if len(tx.writes) > 0 {
		// Only a writer's record can become a version's Writer, so only
		// writers need a floor buffer for future raises; a write-free
		// record's floor is never raised and absorbs as empty.
		tx.rec.setFloor(s.clock.Zero())
	}
	// Step 4: attach our order to every successor writer, along the whole
	// successor chain (each overwrote a version we read, so we precede
	// each of them). Skipped on the fast path: the reads are
	// successor-free.
	if !fastOK {
		for _, r := range tx.reads {
			for succ := r.ver.next.Load(); succ != nil; succ = succ.next.Load() {
				if succ.Writer != nil {
					succ.Writer.raiseFloor(tx.ct)
				}
			}
		}
	}
	// Step 5: install. The overwritten versions' reader lists have been
	// absorbed; clear them (late readers validate against the successor
	// instead).
	if len(tx.writes) > 0 {
		for _, w := range tx.writes {
			w.base.takeReaders()
			nv := &Version{Value: w.val, CT: tx.ct, Seq: w.base.Seq + 1, WriterID: tx.meta.ID, Writer: tx.rec}
			w.base.next.Store(nv)
			w.obj.cur.Store(nv)
		}
	}
	tx.meta.CASStatus(core.StatusCommitting, core.StatusCommitted)
	s.unlockFootprint(mask)

	tx.releaseLocks()
	tx.done = true
	if lot := s.cfg.Lot; lot != nil {
		for _, w := range tx.writes {
			lot.Wake(w.obj.ID())
		}
	}
	tx.th.vc = tx.ct
	tx.th.shard.Inc(cntCommits)
	return nil
}

// Abort aborts the transaction explicitly; no-op when already finished.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.meta.TryAbort()
	tx.releaseLocks()
	tx.done = true
	tx.th.ctbuf = tx.ct
	tx.ct = nil
	tx.th.shard.Inc(cntAborts)
}

func (tx *Tx) releaseLocks() {
	for _, w := range tx.writes {
		w.obj.wr.CompareAndSwap(tx.meta, nil)
	}
}
