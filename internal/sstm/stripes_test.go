package sstm

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tbtm/internal/core"
)

// retryable reports whether a transaction may simply be re-run.
func retryable(err error) bool {
	return errors.Is(err, core.ErrConflict) || errors.Is(err, core.ErrAborted)
}

func TestCommitStripesNormalized(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 64}, {1, 1}, {2, 2}, {3, 4}, {7, 8}, {64, 64}, {100, 64},
	} {
		s := New(Config{CommitStripes: c.in})
		if got := s.Config().CommitStripes; got != c.want {
			t.Errorf("CommitStripes %d normalized to %d, want %d", c.in, got, c.want)
		}
		if len(s.stripes) != c.want || s.stripeMask != uint64(c.want-1) {
			t.Errorf("stripes=%d mask=%d for CommitStripes %d", len(s.stripes), s.stripeMask, c.in)
		}
	}
}

// TestStripedCommitPreservesInvariant runs concurrent transfers between
// random account pairs plus full-sum audits on every stripe width,
// including the serialized baseline. Serializability implies every audit
// observes the invariant total.
func TestStripedCommitPreservesInvariant(t *testing.T) {
	for _, stripes := range []int{1, 4, 64} {
		s := New(Config{Threads: 8, CommitStripes: stripes})
		const accounts = 16
		const initial = int64(100)
		objs := make([]*Object, accounts)
		for i := range objs {
			objs[i] = s.NewObject(initial)
		}

		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		iters := 400
		if testing.Short() {
			iters = 100
		}
		var bad atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			th := s.NewThread()
			seed := uint64(w)*2654435761 + 12345
			wg.Add(1)
			go func() {
				defer wg.Done()
				rnd := func(n int) int {
					seed = seed*6364136223846793005 + 1442695040888963407
					return int((seed >> 33) % uint64(n))
				}
				for i := 0; i < iters; i++ {
					if i%8 == 7 {
						// Audit: read every account, check the total.
						for {
							tx := th.Begin(core.Short, true)
							var sum int64
							ok := true
							for _, o := range objs {
								v, err := tx.Read(o)
								if err != nil {
									ok = false
									break
								}
								sum += v.(int64)
							}
							if !ok {
								continue
							}
							if err := tx.Commit(); err != nil {
								if retryable(err) {
									continue
								}
								t.Error(err)
								return
							}
							if sum != initial*accounts {
								bad.Add(1)
							}
							break
						}
						continue
					}
					a, b := rnd(accounts), rnd(accounts)
					if a == b {
						continue
					}
					for {
						tx := th.Begin(core.Short, false)
						va, err := tx.Read(objs[a])
						if err != nil {
							continue
						}
						vb, err := tx.Read(objs[b])
						if err != nil {
							continue
						}
						if err := tx.Write(objs[a], va.(int64)-1); err != nil {
							if retryable(err) {
								continue
							}
							t.Error(err)
							return
						}
						if err := tx.Write(objs[b], vb.(int64)+1); err != nil {
							if retryable(err) {
								continue
							}
							t.Error(err)
							return
						}
						if err := tx.Commit(); err == nil {
							break
						} else if !retryable(err) {
							t.Error(err)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		if n := bad.Load(); n != 0 {
			t.Fatalf("stripes=%d: %d audits observed a torn total", stripes, n)
		}
	}
}

// TestStripedCommitWriteSkewConcurrent hammers the canonical write-skew
// pattern from many goroutines on independent x/y pairs whose stripes
// differ, verifying the reader-list mechanism still rejects the cycle
// when commits run under disjoint stripes elsewhere in the instance.
func TestStripedCommitWriteSkewConcurrent(t *testing.T) {
	s := New(Config{Threads: 8})
	pairs := 8
	rounds := 200
	if testing.Short() {
		rounds = 50
	}
	var violations atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thA, thB := s.NewThread(), s.NewThread()
			for i := 0; i < rounds; i++ {
				x := s.NewObject(int64(50))
				y := s.NewObject(int64(50))
				t1 := thA.Begin(core.Short, false)
				t2 := thB.Begin(core.Short, false)
				ok1 := readBoth(t1, x, y) && t1.Write(x, int64(-10)) == nil
				ok2 := readBoth(t2, x, y) && t2.Write(y, int64(-10)) == nil
				var err1, err2 error
				if ok1 {
					err1 = t1.Commit()
				} else {
					t1.Abort()
					err1 = core.ErrAborted
				}
				if ok2 {
					err2 = t2.Commit()
				} else {
					t2.Abort()
					err2 = core.ErrAborted
				}
				if err1 == nil && err2 == nil {
					violations.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d write-skew pairs both committed under striped commit", n)
	}
}

func readBoth(tx *Tx, x, y *Object) bool {
	if _, err := tx.Read(x); err != nil {
		return false
	}
	_, err := tx.Read(y)
	return err == nil
}

// BenchmarkCommitScalingDisjoint measures update-commit throughput with
// every goroutine owning a private object: footprints are disjoint, so
// striped commits should scale with goroutines while the serialized
// baseline (CommitStripes=1) funnels through one lock. Run with -cpu to
// sweep the thread axis; cmd/benchjson records the curves.
func BenchmarkCommitScalingDisjoint(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		stripes int
	}{
		{"striped", 0},
		{"serialized", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := New(Config{Threads: 64, CommitStripes: cfg.stripes})
			var idx atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				th := s.NewThread()
				// One private object per goroutine: disjoint footprints.
				o := s.NewObject(int64(0))
				_ = idx.Add(1)
				i := int64(0)
				for pb.Next() {
					tx := th.Begin(core.Short, false)
					if _, err := tx.Read(o); err != nil {
						b.Fatal(err)
					}
					if err := tx.Write(o, i); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
