// Package epochpin enforces the PR2 reclamation contract: code running
// inside an epoch critical section (between Slot.Pin/Recycler.Pin and
// the matching Unpin) must never block. A parked or I/O-waiting thread
// keeps its slot pinned at an old epoch, which stalls Domain.TryAdvance
// for every thread and wedges version/descriptor recycling — the
// invariant was previously stated only in comments in core/lot.go and
// server/executor.go.
//
// The analyzer recognizes pinned regions two ways:
//
//   - lexically: inside a function, after a call to a method named Pin
//     and before the matching Unpin (a `defer x.Unpin()` extends the
//     region to the end of the function);
//   - by annotation: a function marked `//tbtm:pinned` runs with a pin
//     held for its whole body (the callers pin; lsa.Tx.Read is the
//     archetype).
//
// Inside a pinned region it flags channel sends/receives outside a
// select with default, selects without default, mutex and RWMutex
// acquisition, WaitGroup/Cond waits, time.Sleep and friends, calls
// into I/O packages (os, net, syscall, os/exec), the engine's own
// parking primitives (ParkingLot.Block, Waiter.Await, wal waits), and
// calls to same-package functions that transitively do any of the
// above. runtime.Gosched is allowed: yielding keeps the scheduler
// moving without holding the pin across an unbounded wait.
package epochpin

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"tbtm/internal/lint/analysis"
)

// Analyzer is the epochpin pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochpin",
	Doc:  "forbid blocking operations while an epoch pin is held",
	Run:  run,
}

// ioPackages are packages whose calls imply syscalls or unbounded
// waits.
var ioPackages = map[string]bool{
	"os":      true,
	"net":     true,
	"syscall": true,
	"os/exec": true,
}

// blockedFuncs are fully qualified functions known to park or wait,
// keyed by types.Func.FullName.
var blockedFuncs = map[string]string{
	"(*tbtm/internal/core.ParkingLot).Block": "parks the goroutine on the lot",
	"(tbtm/internal/core.Waiter).Await":      "parks until a wakeup",
	"(*tbtm/internal/core.Waiter).Await":     "parks until a wakeup",
	"(tbtm/internal/wal.Ticket).Wait":        "waits for a WAL write/fsync",
	"(*tbtm/internal/wal.Log).Sync":          "waits for an fsync",
	"(*tbtm/internal/wal.Log).Close":         "waits for the WAL batcher",
	"time.Sleep":                             "sleeps",
	"time.After":                             "waits on a timer",
	"time.Tick":                              "waits on a ticker",
	"(*sync.Mutex).Lock":                     "may wait on a mutex",
	"(*sync.RWMutex).Lock":                   "may wait on a write lock",
	"(*sync.RWMutex).RLock":                  "may wait on a read lock",
	"(*sync.WaitGroup).Wait":                 "waits on a WaitGroup",
	"(*sync.Cond).Wait":                      "waits on a condition variable",
}

// blocker is one blocking construct found in a function body.
type blocker struct {
	pos    token.Pos
	reason string
}

func run(pass *analysis.Pass) error {
	// Memoized per-function transitive blocking classification for
	// same-package calls. The map holds a *blocker (nil entry = known
	// non-blocking; in-progress entries start nil, which also breaks
	// recursion cycles conservatively toward "non-blocking").
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	memo := map[*types.Func]*blocker{}
	visiting := map[*types.Func]bool{}

	var firstBlocker func(fn *types.Func) *blocker
	// directBlocker classifies one AST node; descend tells the walker
	// whether to keep walking below the node.
	directBlocker := func(n ast.Node, transitive bool, fb func(*types.Func) *blocker) (*blocker, bool) {
		switch node := n.(type) {
		case *ast.SendStmt:
			return &blocker{node.Pos(), "channel send can block"}, true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				return &blocker{node.Pos(), "channel receive can block"}, true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return &blocker{node.Pos(), "select without default can block"}, true
			}
			// Non-blocking select: its comm clauses are fine, but still
			// walk the case bodies.
			return nil, true
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, node)
			if fn == nil {
				return nil, true
			}
			if reason, ok := blockedFuncs[fn.FullName()]; ok {
				return &blocker{node.Pos(), fmt.Sprintf("%s %s", fn.Name(), reason)}, true
			}
			if pkg := fn.Pkg(); pkg != nil {
				if ioPackages[pkg.Path()] {
					return &blocker{node.Pos(), fmt.Sprintf("%s.%s does I/O or syscalls", pkg.Path(), fn.Name())}, true
				}
				if transitive && pkg == pass.Pkg && fn.Name() != "Unpin" {
					if b := fb(fn); b != nil {
						return &blocker{node.Pos(), fmt.Sprintf("calls %s, which %s", fn.Name(), b.reason)}, true
					}
				}
			}
		}
		return nil, true
	}

	firstBlocker = func(fn *types.Func) *blocker {
		if b, ok := memo[fn]; ok {
			return b
		}
		if visiting[fn] {
			return nil // cycle: assume non-blocking rather than diverge
		}
		fd, ok := decls[fn]
		if !ok {
			return nil
		}
		visiting[fn] = true
		var found *blocker
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			// Inside select-with-default the comm operations are
			// non-blocking; skip the whole select if it has a default,
			// except we must still scan case bodies — handled by treating
			// the clauses individually below.
			if sel, ok := n.(*ast.SelectStmt); ok && hasDefaultClause(sel) {
				for _, c := range sel.Body.List {
					cc := c.(*ast.CommClause)
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, func(m ast.Node) bool {
							if found != nil {
								return false
							}
							if b, _ := directBlocker(m, true, firstBlocker); b != nil {
								found = b
							}
							return found == nil
						})
					}
				}
				return false
			}
			if b, _ := directBlocker(n, true, firstBlocker); b != nil {
				found = b
			}
			return found == nil
		})
		delete(visiting, fn)
		memo[fn] = found
		return found
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			annotated := fn != nil && pass.Directives.FuncHas(fn, analysis.DirPinned)
			checkFunc(pass, fd, annotated, directBlocker, firstBlocker)
		}
	}
	return nil
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// pinCall reports whether the statement's expression is a call to a
// method named name ("Pin"/"Unpin").
func pinCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Name() == name
}

// checkFunc walks one function, tracking the lexical pin depth, and
// reports blocking constructs found while pinned (or anywhere, if the
// whole function is annotated //tbtm:pinned).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, annotated bool,
	direct func(ast.Node, bool, func(*types.Func) *blocker) (*blocker, bool),
	fb func(*types.Func) *blocker) {

	// Collect pin events in lexical order.
	type event struct {
		pos   token.Pos
		delta int
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if pinCall(pass.TypesInfo, node.X, "Pin") {
				events = append(events, event{node.Pos(), +1})
			}
			if pinCall(pass.TypesInfo, node.X, "Unpin") {
				events = append(events, event{node.Pos(), -1})
			}
		case *ast.DeferStmt:
			if pinCall(pass.TypesInfo, node.Call, "Unpin") {
				// The pin stays held to the end of the function: no -1.
				return false
			}
		case *ast.FuncLit:
			return false // closures run later, in their own context
		}
		return true
	})
	pinnedAt := func(pos token.Pos) bool {
		if annotated {
			return true
		}
		depth := 0
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			depth += e.delta
			if depth < 0 {
				depth = 0
			}
		}
		return depth > 0
	}
	if !annotated && len(events) == 0 {
		return
	}

	where := "while an epoch pin is held"
	if annotated {
		where = "in //tbtm:pinned function " + fd.Name.Name
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok && hasDefaultClause(sel) {
			// Non-blocking select: scan only the clause bodies.
			for _, c := range sel.Body.List {
				cc := c.(*ast.CommClause)
				for _, stmt := range cc.Body {
					ast.Inspect(stmt, func(m ast.Node) bool {
						if b, _ := direct(m, true, fb); b != nil && pinnedAt(b.pos) {
							pass.Reportf(b.pos, "%s %s", b.reason, where)
							return false
						}
						return true
					})
				}
			}
			return false
		}
		if b, _ := direct(n, true, fb); b != nil && pinnedAt(b.pos) {
			pass.Reportf(b.pos, "%s %s", b.reason, where)
			// Keep walking siblings but not below the reported node, so
			// one construct yields one diagnostic.
			return false
		}
		return true
	})
}
