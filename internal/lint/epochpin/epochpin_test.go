package epochpin_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/epochpin"
)

func TestEpochpin(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochpin.Analyzer, "epochpin")
}
