package epochpin

import (
	"runtime"
	"sync/atomic"
)

var counter atomic.Uint64

// unpinnedBlocking blocks, but only after releasing the pin — the
// contract allows that.
func unpinnedBlocking(s *slot) {
	s.Pin()
	counter.Add(1)
	s.Unpin()
	<-ch
}

// pinnedFastPath mirrors the engine's pinned hot path: atomics,
// non-blocking notify, and a scheduler yield are all fine.
//
//tbtm:pinned
func pinnedFastPath() uint64 {
	select {
	case ch <- struct{}{}:
	default:
	}
	runtime.Gosched()
	return counter.Load()
}

// nonBlockingHelper is reachable from a pinned region and clean.
func nonBlockingHelper() { counter.Add(1) }

func pinnedCallsClean(s *slot) {
	s.Pin()
	defer s.Unpin()
	nonBlockingHelper()
}

// closuresRunLater: a func literal built while pinned is not executed
// while pinned (the engine hands wakeup closures off post-commit).
func closuresRunLater(s *slot) func() {
	s.Pin()
	defer s.Unpin()
	return func() { <-ch }
}
