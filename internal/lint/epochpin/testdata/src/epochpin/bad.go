package epochpin

import (
	"sync"
	"time"
)

type slot struct{ depth int }

func (s *slot) Pin()   { s.depth++ }
func (s *slot) Unpin() { s.depth-- }

var mu sync.Mutex
var ch = make(chan struct{}, 1)

// blockingWhilePinned holds the pin across a park.
func blockingWhilePinned(s *slot) {
	s.Pin()
	<-ch // want `channel receive can block while an epoch pin is held`
	s.Unpin()
}

// mutexWhilePinned holds the pin across a lock acquisition.
func mutexWhilePinned(s *slot) {
	s.Pin()
	defer s.Unpin()
	mu.Lock() // want `Lock may wait on a mutex while an epoch pin is held`
	mu.Unlock()
}

// sleeper is annotated as running pinned by its callers.
//
//tbtm:pinned
func sleeper() {
	time.Sleep(time.Millisecond) // want `Sleep sleeps in //tbtm:pinned function sleeper`
}

// helper blocks; transitiveBlock reaches it while pinned.
func helper() {
	ch <- struct{}{}
}

func transitiveBlock(s *slot) {
	s.Pin()
	helper() // want `calls helper, which channel send can block while an epoch pin is held`
	s.Unpin()
}

// selectNoDefault can park the goroutine.
//
//tbtm:pinned
func selectNoDefault() {
	select { // want `select without default can block in //tbtm:pinned function selectNoDefault`
	case <-ch:
	case ch <- struct{}{}:
	}
}
