package lint

import (
	"os"
	"testing"
)

// framework directories under internal/lint that are not analyzers.
var frameworkDirs = map[string]bool{
	"analysis":     true,
	"analysistest": true,
	"testdata":     true,
}

// TestRegistryMatchesDirectories is the meta-test: every analyzer
// package on disk is registered under its directory name, and every
// registered analyzer has a package directory — so tbtmvet can never
// silently run a stale list.
func TestRegistryMatchesDirectories(t *testing.T) {
	registered := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc or Run", a.Name)
		}
		if registered[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		registered[a.Name] = true
	}

	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() && !frameworkDirs[e.Name()] {
			onDisk[e.Name()] = true
		}
	}

	for name := range onDisk {
		if !registered[name] {
			t.Errorf("analyzer package internal/lint/%s exists but is not in Analyzers()", name)
		}
	}
	for name := range registered {
		if !onDisk[name] {
			t.Errorf("analyzer %q is registered but internal/lint/%s does not exist", name, name)
		}
	}
}
