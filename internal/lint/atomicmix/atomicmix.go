// Package atomicmix enforces two sync/atomic hygiene contracts:
//
//   - a struct field accessed through the function-style atomic API
//     (atomic.LoadUint64(&s.f), atomic.AddUint64(&s.f, 1), ...)
//     anywhere must be accessed that way everywhere — one plain read
//     mixed in is a data race the race detector only catches if the
//     interleaving happens to occur under test;
//   - a plain int64/uint64 field used with 64-bit atomic functions
//     must be 8-byte aligned on 32-bit targets, where the Go ABI only
//     guarantees 4-byte struct alignment. The check computes offsets
//     under GOARCH=386 sizes so amd64-only CI still catches it (the
//     cross-arch compile smoke backs it with a real 32-bit build).
//
// Fields of the atomic.Uint64-style wrapper types are exempt from
// both: their methods are the only access path, and the runtime
// align64 mechanism guarantees their alignment since Go 1.19 — which
// is also the recommended fix for any finding here.
package atomicmix

import (
	"go/ast"
	"go/types"
	"strings"

	"tbtm/internal/lint/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag mixed atomic/plain field access and 64-bit atomics unaligned on 32-bit targets",
	Run:  run,
}

// fieldUse accumulates how one struct field is accessed.
type fieldUse struct {
	atomicSites []ast.Node // &s.f passed to a sync/atomic function
	plainSites  []ast.Node // any other s.f read/write
	sixtyFour   bool       // some atomic access was a 64-bit op
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	uses := map[*types.Var]*fieldUse{}
	// Selector nodes consumed as &-operands of atomic calls, so the
	// plain-access walk can skip them.
	consumed := map[ast.Node]bool{}

	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return nil
		}
		v, _ := selection.Obj().(*types.Var)
		if v == nil || v.Pkg() != pass.Pkg {
			return nil
		}
		return v
	}
	use := func(v *types.Var) *fieldUse {
		u := uses[v]
		if u == nil {
			u = &fieldUse{}
			uses[v] = u
		}
		return u
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Function-style API only: methods of the wrapper types have
			// a receiver and need no checking.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if v := fieldOf(addr.X); v != nil {
				u := use(v)
				u.atomicSites = append(u.atomicSites, call)
				if strings.HasSuffix(fn.Name(), "64") {
					u.sixtyFour = true
				}
				consumed[ast.Unparen(addr.X)] = true
			}
			return true
		})
	}
	if len(uses) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			v := fieldOf(sel)
			if v == nil {
				return true
			}
			if u, tracked := uses[v]; tracked {
				u.plainSites = append(u.plainSites, sel)
			}
			return true
		})
	}

	for v, u := range uses {
		if len(u.atomicSites) == 0 {
			continue
		}
		for _, site := range u.plainSites {
			pass.Reportf(site.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races with the atomic users (use the atomic API or an atomic.%s field)", v.Name(), wrapperFor(v.Type()))
		}
	}

	checkAlignment(pass, uses)
	return nil
}

// checkAlignment verifies 8-byte alignment of 64-bit atomically
// accessed plain fields under 32-bit layout rules.
func checkAlignment(pass *analysis.Pass, uses map[*types.Var]*fieldUse) {
	sizes32 := types.SizesFor("gc", "386")
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		n := st.NumFields()
		fields := make([]*types.Var, n)
		for i := 0; i < n; i++ {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		for i, f := range fields {
			u, tracked := uses[f]
			if !tracked || !u.sixtyFour || len(u.atomicSites) == 0 {
				continue
			}
			if offsets[i]%8 != 0 {
				pass.Reportf(f.Pos(), "field %s.%s is used with 64-bit sync/atomic operations but sits at offset %d under GOARCH=386 (not 8-byte aligned); use atomic.%s or move the field to the front", tn.Name(), f.Name(), offsets[i], wrapperFor(f.Type()))
			}
		}
	}
}

// wrapperFor names the sync/atomic wrapper type matching a plain
// integer type, for the fix suggestion.
func wrapperFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return "Value"
}
