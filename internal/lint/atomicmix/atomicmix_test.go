package atomicmix_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "atomicmix")
}
