package atomicmix

import "sync/atomic"

// wrapped uses the atomic wrapper types: only atomic access is
// possible and align64 guarantees placement, so nothing to flag.
type wrapped struct {
	flags uint32
	count atomic.Uint64
}

func wrappedOps(w *wrapped) uint64 {
	w.count.Add(1)
	return w.count.Load()
}

// consistent uses the function API everywhere and leads with the
// 64-bit field, so it is aligned even under 32-bit layout.
type consistent struct {
	n     uint64
	flags uint32
}

func addC(c *consistent) { atomic.AddUint64(&c.n, 1) }
func getC(c *consistent) uint64 {
	return atomic.LoadUint64(&c.n)
}

// plainOnly is never touched atomically; plain access is fine.
type plainOnly struct{ n uint64 }

func bumpPlain(p *plainOnly) { p.n++ }
