package atomicmix

import "sync/atomic"

type mixed struct {
	hits uint64
}

func bump(m *mixed) {
	atomic.AddUint64(&m.hits, 1)
}

func peek(m *mixed) uint64 {
	return m.hits // want `field hits is accessed with sync/atomic elsewhere; this plain access races`
}

func reset(m *mixed) {
	m.hits = 0 // want `field hits is accessed with sync/atomic elsewhere; this plain access races`
}

// misaligned puts a 64-bit atomic field after a uint32: offset 4 on
// 386, where atomic.AddUint64 faults or tears.
type misaligned struct {
	flags uint32
	count uint64 // want `field misaligned.count is used with 64-bit sync/atomic operations but sits at offset 4 under GOARCH=386`
}

func countUp(m *misaligned) uint64 {
	return atomic.AddUint64(&m.count, 1)
}
