// Package lint is the registry of the repo's contract analyzers.
// cmd/tbtmvet runs exactly this list; the meta-test in
// registry_test.go keeps the list in sync with the analyzer packages
// on disk, so adding an analyzer directory without registering it (or
// vice versa) fails the build lane.
package lint

import (
	"tbtm/internal/lint/analysis"
	"tbtm/internal/lint/atomicmix"
	"tbtm/internal/lint/epochpin"
	"tbtm/internal/lint/noalloc"
	"tbtm/internal/lint/padcheck"
	"tbtm/internal/lint/seqlock"
	"tbtm/internal/lint/walerr"
)

// Analyzers returns every registered contract analyzer, in the order
// tbtmvet runs them.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		epochpin.Analyzer,
		noalloc.Analyzer,
		padcheck.Analyzer,
		seqlock.Analyzer,
		walerr.Analyzer,
	}
}
