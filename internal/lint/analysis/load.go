package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Load lists patterns with the go tool (in dir), type-checks every
// non-dependency module package from source, and returns the packages
// plus the shared FileSet and the harvested directive set. Imports are
// satisfied from the build cache's export data, which `go list -export`
// produces as a side effect — so a load works offline and never
// re-type-checks the standard library.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, *DirectiveSet, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		Standard   bool
		DepOnly    bool
		GoFiles    []string
		Module     *struct{ Path string }
	}
	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Module != nil {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)
	dirs := NewDirectiveSet()

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("type-check %s: %v", p.ImportPath, err)
		}
		for _, f := range files {
			dirs.Harvest(fset, f, info)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath,
			Dir:     p.Dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, fset, dirs, nil
}

// LoadDir parses and type-checks one directory as a single package
// outside any module package list (analysistest fixtures). modDir is
// where `go list` runs to resolve the fixture's imports.
func LoadDir(modDir, pkgDir string) (*Package, *token.FileSet, *DirectiveSet, error) {
	ents, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", pkgDir)
	}

	// Resolve the fixture's imports through the module's build cache.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, im := range f.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{"list", "-export", "-json", "-deps", "--"}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = modDir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("go list %v: %v\n%s", imports, err, stderr.String())
		}
		type listPkg struct {
			ImportPath string
			Export     string
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, nil, nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	name := files[0].Name.Name
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-check %s: %v", pkgDir, err)
	}
	dirs := NewDirectiveSet()
	for _, f := range files {
		dirs.Harvest(fset, f, info)
	}
	return &Package{PkgPath: name, Dir: pkgDir, Files: files, Types: tpkg, Info: info}, fset, dirs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Run executes the analyzers over the packages, returning surviving
// diagnostics (ignore-suppressed ones dropped) ordered by position.
func Run(pkgs []*Package, fset *token.FileSet, dirs *DirectiveSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sizes := types.SizesFor("gc", runtime.GOARCH)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.Matches(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				TypesSizes: sizes,
				Directives: dirs,
				report: func(d Diagnostic) {
					if !dirs.Ignored(fset, d.Pos, d.Analyzer) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortDiags(fset, diags)
	return diags, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pa, pb := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
