// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis, carrying exactly the surface the tbtm
// analyzers need: an Analyzer value with a Run function, a Pass bundling
// one type-checked package, and positioned Diagnostics. The repo builds
// offline against the standard library only, so vendoring the real
// framework is not an option; the API mirrors it closely enough that a
// future PR with network access can swap the import path and delete this
// package.
//
// Differences from x/tools worth knowing:
//
//   - Packages are loaded via `go list -export -json -deps` and
//     type-checked from source, with imports satisfied by the build
//     cache's export data (see Load). There is no separate driver
//     protocol; cmd/tbtmvet is the only driver.
//   - Instead of Facts, a Pass carries Directives: every `//tbtm:...`
//     function annotation harvested from all packages in the load, so
//     analyzers can answer "is this cross-package callee annotated?"
//     without a fact serialization layer.
//   - Suppression is uniform: a `//tbtm:ignore <analyzer>` comment on a
//     line drops that analyzer's diagnostics for the line (the runner
//     applies it, not each analyzer).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Name doubles as the suppression
// key for //tbtm:ignore comments and must match the analyzer's package
// directory under internal/lint (the registry meta-test enforces this).
type Analyzer struct {
	Name string
	Doc  string

	// Match restricts which packages the analyzer runs over; nil means
	// every package. Fixture packages are always matched by name so
	// analysistest works for restricted analyzers.
	Match func(pkgPath string) bool

	// Run performs the check, reporting findings through the Pass. An
	// error aborts the whole vet run (reserved for internal failures,
	// not findings).
	Run func(*Pass) error
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass bundles everything an analyzer sees for one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Directives holds every //tbtm: function annotation from every
	// package in the same load (keyed by types.Func.FullName), so
	// contract checks see cross-package annotations.
	Directives *DirectiveSet

	report func(Diagnostic)
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Matches reports whether the analyzer applies to a package path,
// treating a nil Match as "everything". The final path element is also
// tested so fixture packages (named after their analyzer) always match.
func (a *Analyzer) Matches(pkgPath string) bool {
	if a.Match == nil {
		return true
	}
	if i := strings.LastIndexByte(pkgPath, '/'); pkgPath[i+1:] == a.Name {
		return true
	}
	return a.Match(pkgPath)
}
