package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive names attached to function declarations. A directive is a
// comment line of the form `//tbtm:<name>` (no space after the slashes,
// like //go: directives) in the function's doc comment; anything after
// the name on the line is free-form justification.
const (
	// DirNoalloc marks a function whose body must not allocate: the
	// noalloc analyzer rejects allocating constructs in it and requires
	// its callees to be noalloc or allocok.
	DirNoalloc = "noalloc"
	// DirAllocok marks a function callable from noalloc contexts even
	// though its own body may allocate (amortized or slow-path
	// allocations the author vouches for). Its body is not checked.
	DirAllocok = "allocok"
	// DirPinned marks a function that runs with an epoch pin held (or
	// that takes one): the epochpin analyzer rejects blocking
	// constructs in it and in its same-package callees.
	DirPinned = "pinned"
	// DirSeqlock marks a struct type as a seqlock record: a stamp field
	// plus atomically published payload fields (see the seqlock
	// analyzer for the protocol it then enforces).
	DirSeqlock = "seqlock"
)

// DirectiveSet indexes //tbtm: annotations for a whole load: function
// directives by types.Func.FullName, type directives by the
// *types.TypeName's full name, and per-line ignore suppressions.
type DirectiveSet struct {
	funcs map[string]map[string]bool // FullName -> directive -> present
	types map[string]map[string]bool // "pkgpath.TypeName" -> directive
	// ignores maps file name -> line -> analyzer names suppressed there
	// (the wildcard "*" suppresses every analyzer on the line).
	ignores map[string]map[int]map[string]bool
}

// NewDirectiveSet returns an empty set.
func NewDirectiveSet() *DirectiveSet {
	return &DirectiveSet{
		funcs:   map[string]map[string]bool{},
		types:   map[string]map[string]bool{},
		ignores: map[string]map[int]map[string]bool{},
	}
}

// FuncHas reports whether fn carries the directive.
func (s *DirectiveSet) FuncHas(fn *types.Func, dir string) bool {
	if fn == nil {
		return false
	}
	return s.funcs[fn.FullName()][dir]
}

// TypeHas reports whether the named type carries the directive.
func (s *DirectiveSet) TypeHas(tn *types.TypeName, dir string) bool {
	if tn == nil {
		return false
	}
	return s.types[typeKey(tn)][dir]
}

// Ignored reports whether diagnostics from the analyzer are suppressed
// on the line holding pos.
func (s *DirectiveSet) Ignored(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	lines := s.ignores[p.Filename]
	if lines == nil {
		return false
	}
	set := lines[p.Line]
	return set[analyzer] || set["*"]
}

func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

func (s *DirectiveSet) addFunc(name, dir string) {
	m := s.funcs[name]
	if m == nil {
		m = map[string]bool{}
		s.funcs[name] = m
	}
	m[dir] = true
}

func (s *DirectiveSet) addType(key, dir string) {
	m := s.types[key]
	if m == nil {
		m = map[string]bool{}
		s.types[key] = m
	}
	m[dir] = true
}

// Harvest scans one type-checked file for //tbtm: directives and ignore
// comments, adding them to the set.
func (s *DirectiveSet) Harvest(fset *token.FileSet, f *ast.File, info *types.Info) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			for _, dir := range commentDirectives(d.Doc) {
				if fn, ok := info.Defs[d.Name].(*types.Func); ok {
					s.addFunc(fn.FullName(), dir)
				}
			}
		case *ast.GenDecl:
			// A directive may sit on the GenDecl (`//tbtm:seqlock` above
			// `type foo struct`) or on an individual TypeSpec inside a
			// parenthesized block.
			declDirs := commentDirectives(d.Doc)
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				dirs := append(declDirs, commentDirectives(ts.Doc)...)
				for _, dir := range dirs {
					if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
						s.addType(typeKey(tn), dir)
					}
				}
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//tbtm:ignore")
			if !ok {
				continue
			}
			p := fset.Position(c.Pos())
			lines := s.ignores[p.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				s.ignores[p.Filename] = lines
			}
			set := lines[p.Line]
			if set == nil {
				set = map[string]bool{}
				lines[p.Line] = set
			}
			// A justification may follow the analyzer names after a dash:
			//	//tbtm:ignore walerr — hash.Hash.Write never errors
			if i := strings.IndexAny(rest, "—"); i >= 0 {
				rest = rest[:i]
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			names := strings.Fields(rest)
			if len(names) == 0 {
				set["*"] = true
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
}

// commentDirectives returns the //tbtm: directive names (first word
// after the colon-joined prefix) present in a comment group.
func commentDirectives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//tbtm:")
		if !ok || strings.HasPrefix(rest, "ignore") {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 {
			out = append(out, fields[0])
		}
	}
	return out
}

// FuncDirective resolves the *types.Func for a called expression (a
// plain call or a method call through a selector) so callers can query
// FuncHas on it; nil when the callee is not a statically known function.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
