// Package noalloc turns the repo's AllocsPerRun pins into a
// compile-time contract. A function annotated `//tbtm:noalloc` must
// not contain allocating constructs; the benchmarks then only have to
// witness that the annotation set covers the hot path, instead of
// being the sole line of defense against an accidental allocation
// sneaking into a warm loop.
//
// Flagged inside a //tbtm:noalloc function:
//
//   - make, new, &CompositeLit, and map/slice literals;
//   - func literals (closure headers escape) and go statements;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing: passing or converting a concrete
//     non-pointer-shaped value to an interface (pointers, maps, chans
//     and funcs ride in the interface word without allocating);
//   - map writes (growth allocates);
//   - calls to functions that are neither allowlisted (sync/atomic,
//     sync lock/unlock, runtime.Gosched, math, math/bits) nor
//     themselves annotated //tbtm:noalloc or //tbtm:allocok.
//
// Deliberately allowed: append (the engine's descriptor-reuse contract
// makes append-into-retained-capacity the idiom — amortized zero, and
// the AllocsPerRun pins keep it honest), plain defer, stack composite
// literals, and calls through interfaces (the concrete methods carry
// their own annotations; dynamic dispatch cannot be checked here).
// `//tbtm:allocok` marks a callee as vouched-for without checking its
// body; `//tbtm:ignore noalloc` suppresses one line.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"tbtm/internal/lint/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject allocating constructs in //tbtm:noalloc functions",
	Run:  run,
}

// allowedPackages may be called freely from noalloc functions.
var allowedPackages = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// allowedFuncs are individual allowlisted functions/methods by
// FullName.
var allowedFuncs = map[string]bool{
	"runtime.Gosched":   true,
	"runtime.KeepAlive": true,
	// encoding/binary helpers that only write into caller-provided
	// buffers (append is the amortized-zero idiom; the Put/Uvarint
	// forms touch no heap at all).
	"encoding/binary.AppendUvarint":            true,
	"encoding/binary.Uvarint":                  true,
	"(encoding/binary.bigEndian).PutUint32":    true,
	"(encoding/binary.bigEndian).PutUint64":    true,
	"(encoding/binary.bigEndian).Uint32":       true,
	"(encoding/binary.bigEndian).Uint64":       true,
	"(encoding/binary.littleEndian).PutUint32": true,
	"(encoding/binary.littleEndian).PutUint64": true,
	"(encoding/binary.littleEndian).Uint32":    true,
	"(encoding/binary.littleEndian).Uint64":    true,
	"(*sync.Mutex).Lock":                       true,
	"(*sync.Mutex).Unlock":                     true,
	"(*sync.Mutex).TryLock":                    true,
	"(*sync.RWMutex).Lock":                     true,
	"(*sync.RWMutex).Unlock":                   true,
	"(*sync.RWMutex).RLock":                    true,
	"(*sync.RWMutex).RUnlock":                  true,
	// time.Now/Since read the monotonic clock without heap traffic
	// (time.Time is stack-shaped); the flight recorder stamps events
	// with them on the warm path.
	"time.Now":                    true,
	"time.Since":                  true,
	"(time.Time).Sub":             true,
	"(time.Duration).Nanoseconds": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.Directives.FuncHas(fn, analysis.DirNoalloc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// pointerShaped reports whether a concrete value of type t fits the
// interface data word without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isInterface(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "func literal in //tbtm:noalloc function %s (closures allocate when they capture)", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(node.Pos(), "go statement in //tbtm:noalloc function %s allocates a goroutine", fd.Name.Name)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					pass.Reportf(node.Pos(), "&composite literal in //tbtm:noalloc function %s heap-allocates when it escapes", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(node.Pos(), "map literal in //tbtm:noalloc function %s allocates", fd.Name.Name)
				case *types.Slice:
					pass.Reportf(node.Pos(), "slice literal in //tbtm:noalloc function %s allocates", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if tv, ok := info.Types[node]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(node.Pos(), "string concatenation in //tbtm:noalloc function %s allocates", fd.Name.Name)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(lhs.Pos(), "map write in //tbtm:noalloc function %s can allocate on growth", fd.Name.Name)
						}
					}
				}
			}
			if node.Tok == token.ADD_ASSIGN {
				if tv, ok := info.Types[node.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(node.Pos(), "string concatenation in //tbtm:noalloc function %s allocates", fd.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, node)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins: make and new always allocate; append/len/cap/copy are
	// fine (append is the amortized-zero reuse idiom).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in //tbtm:noalloc function %s allocates", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new in //tbtm:noalloc function %s allocates", fd.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			argT := info.Types[call.Args[0]].Type
			checkConversion(pass, fd, call.Pos(), argT, target)
		}
		return
	}

	fn := analysis.CalleeFunc(info, call)
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if isInterface(sig.Recv().Type()) {
				checkBoxing(pass, fd, call, sig)
				return // dynamic dispatch: concrete impls carry the contract
			}
		}
		if pkg := fn.Pkg(); pkg != nil && pkg != pass.Pkg {
			if allowedPackages[pkg.Path()] || allowedFuncs[fn.FullName()] {
				checkBoxing(pass, fd, call, sig)
				return
			}
		}
		if !pass.Directives.FuncHas(fn, analysis.DirNoalloc) && !pass.Directives.FuncHas(fn, analysis.DirAllocok) {
			pass.Reportf(call.Pos(), "call to %s from //tbtm:noalloc function %s: callee is not allowlisted and not annotated //tbtm:noalloc or //tbtm:allocok", fn.Name(), fd.Name.Name)
		}
		if sig != nil {
			checkBoxing(pass, fd, call, sig)
		}
		return
	}

	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return // the literal itself is already flagged
	}

	// Calling a function value (field, variable): allocation behavior
	// unknowable statically.
	pass.Reportf(call.Pos(), "indirect call in //tbtm:noalloc function %s cannot be verified allocation-free", fd.Name.Name)
}

// checkConversion flags conversions that allocate.
func checkConversion(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, from, to types.Type) {
	if from == nil || to == nil {
		return
	}
	toStr := isStringT(to)
	fromStr := isStringT(from)
	if toStr && isByteOrRuneSlice(from) {
		pass.Reportf(pos, "[]byte/[]rune→string conversion in //tbtm:noalloc function %s allocates", fd.Name.Name)
		return
	}
	if fromStr && isByteOrRuneSlice(to) {
		pass.Reportf(pos, "string→slice conversion in //tbtm:noalloc function %s allocates", fd.Name.Name)
		return
	}
	if isInterface(to) && !isInterface(from) && !pointerShaped(from) {
		pass.Reportf(pos, "conversion to interface boxes a %s in //tbtm:noalloc function %s", from.String(), fd.Name.Name)
	}
}

// checkBoxing flags concrete non-pointer-shaped arguments passed to
// interface parameters.
func checkBoxing(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		at := tv.Type
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if isInterface(at) || pointerShaped(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it in //tbtm:noalloc function %s", at.String(), fd.Name.Name)
	}
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
