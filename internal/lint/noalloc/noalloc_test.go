package noalloc_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "noalloc")
}
