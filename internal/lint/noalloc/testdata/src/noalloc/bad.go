package noalloc

import "fmt"

type ring struct {
	slots []uint64
	m     map[uint64]int
}

//tbtm:noalloc
func badMake(n int) []uint64 {
	return make([]uint64, n) // want `make in //tbtm:noalloc function badMake allocates`
}

//tbtm:noalloc
func badNew() *ring {
	return new(ring) // want `new in //tbtm:noalloc function badNew allocates`
}

//tbtm:noalloc
func badLit() *ring {
	return &ring{} // want `&composite literal in //tbtm:noalloc function badLit heap-allocates`
}

//tbtm:noalloc
func badClosure(n uint64) func() uint64 {
	return func() uint64 { return n } // want `func literal in //tbtm:noalloc function badClosure`
}

//tbtm:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation in //tbtm:noalloc function badConcat allocates`
}

//tbtm:noalloc
func badStringConv(b []byte) string {
	return string(b) // want `\[\]byte/\[\]rune→string conversion in //tbtm:noalloc function badStringConv allocates`
}

//tbtm:noalloc
func badBoxing(r *ring, n uint64) {
	fmt.Println(n) // want `call to Println from //tbtm:noalloc function badBoxing` `passing uint64 to interface parameter boxes it`
}

//tbtm:noalloc
func badMapWrite(r *ring, k uint64) {
	r.m[k] = 1 // want `map write in //tbtm:noalloc function badMapWrite can allocate on growth`
}

//tbtm:noalloc
func badGo() {
	go func() {}() // want `go statement in //tbtm:noalloc function badGo allocates a goroutine` `func literal in //tbtm:noalloc function badGo`
}

// plainHelper has no annotation, so noalloc callers may not lean on
// it.
func plainHelper() {}

//tbtm:noalloc
func badCallee() {
	plainHelper() // want `call to plainHelper from //tbtm:noalloc function badCallee: callee is not allowlisted`
}
