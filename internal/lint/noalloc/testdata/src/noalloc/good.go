package noalloc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

type shard struct {
	mu sync.Mutex
	n  atomic.Uint64
}

// reuseAppend grows into retained capacity — the descriptor-reuse
// idiom; append is deliberately allowed.
//
//tbtm:noalloc
func reuseAppend(buf []uint64, v uint64) []uint64 {
	buf = buf[:0]
	return append(buf, v)
}

//tbtm:noalloc
func fastPath(s *shard) uint64 {
	s.mu.Lock()
	v := s.n.Load()
	s.mu.Unlock()
	runtime.Gosched()
	return v
}

// vouchedFor allocates on its slow path; the author takes
// responsibility with allocok, so noalloc callers may use it.
//
//tbtm:allocok slow path allocates at most once per epoch
func vouchedFor(s *shard) *shard {
	if s == nil {
		return &shard{}
	}
	return s
}

//tbtm:noalloc
func callsVouched(s *shard) uint64 {
	return vouchedFor(s).n.Load()
}

// pointerIface: pointers ride in the interface word without boxing.
//
//tbtm:noalloc
func pointerIface(s *shard) any {
	return any(s)
}
