// Package padcheck verifies that cache-line padding in sharded
// structures actually does its job. The engine leans on manual `_
// [N]byte` (or `_ pad`) spacer fields — lotShard's count/map split,
// the striped clock slots, the stats shards, epoch.Slot — and the only
// prior guard was a single hand-written size test for lotShard. The
// analyzer generalizes it with types.Sizes:
//
//   - every blank byte-array spacer must put the fields before and
//     after it on distinct 64-byte cache lines (a spacer that shrank
//     below the neighbour's tail is silently useless);
//   - a padded struct used as an array or slice element must have a
//     size that is a multiple of the cache line, or elements share
//     lines and the padding defeats itself;
//   - a padded struct must not be copied by value: the copy tears the
//     layout away from the atomics it isolates (and the big spacer
//     copies are pure waste on any hot path).
package padcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"tbtm/internal/lint/analysis"
)

const cacheLine = 64

// Analyzer is the padcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc:  "verify that [N]byte spacer fields really separate cache lines and padded structs are not copied",
	Run:  run,
}

// isPadField reports whether f is a blank spacer: `_ [N]byte` or a
// named type (like epoch's `pad`) whose underlying type is a byte
// array.
func isPadField(f *types.Var) bool {
	if f.Name() != "_" {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// paddedStructs returns the named struct types declared in the package
// that contain at least one spacer field.
func paddedStructs(pass *analysis.Pass) map[*types.Named]*types.Struct {
	out := map[*types.Named]*types.Struct{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isPadField(st.Field(i)) {
				out[named] = st
				break
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	padded := paddedStructs(pass)
	if len(padded) == 0 {
		return nil
	}

	for named, st := range padded {
		checkLayout(pass, named, st)
	}

	// Is any padded struct an array/slice element somewhere in the
	// package? Then its size must tile cache lines exactly.
	elemChecked := map[*types.Named]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var elem types.Type
			switch t := n.(type) {
			case *ast.ArrayType:
				if tv, ok := pass.TypesInfo.Types[t.Elt]; ok && tv.IsType() {
					elem = tv.Type
				}
			default:
				return true
			}
			if named, ok := elem.(*types.Named); ok && !elemChecked[named] {
				if st, isPadded := padded[named]; isPadded {
					elemChecked[named] = true
					size := pass.TypesSizes.Sizeof(st)
					if size%cacheLine != 0 {
						pass.Reportf(n.Pos(), "%s is an array/slice element but its size %d is not a multiple of the %d-byte cache line, so elements share lines despite padding", named.Obj().Name(), size, cacheLine)
					}
				}
			}
			return true
		})
	}

	checkCopies(pass, padded)
	return nil
}

// checkLayout verifies each spacer separates its neighbours onto
// distinct cache lines.
func checkLayout(pass *analysis.Pass, named *types.Named, st *types.Struct) {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
	}
	offsets := pass.TypesSizes.Offsetsof(fields)
	for i := 0; i < n; i++ {
		if !isPadField(fields[i]) {
			continue
		}
		before := -1
		for j := i - 1; j >= 0; j-- {
			if !isPadField(fields[j]) {
				before = j
				break
			}
		}
		after := -1
		for j := i + 1; j < n; j++ {
			if !isPadField(fields[j]) {
				after = j
				break
			}
		}
		if before < 0 || after < 0 {
			continue // leading/trailing spacer: no pair to separate
		}
		endBefore := offsets[before] + pass.TypesSizes.Sizeof(fields[before].Type()) - 1
		if endBefore/cacheLine == offsets[after]/cacheLine {
			pass.Reportf(fields[i].Pos(), "pad between %s.%s and %s.%s leaves both on cache line %d (offsets %d and %d); widen the spacer", named.Obj().Name(), fields[before].Name(), named.Obj().Name(), fields[after].Name(), endBefore/cacheLine, offsets[before], offsets[after])
		}
	}
}

// exprType resolves an expression's type, falling back to Defs/Uses
// for identifiers the Types map skips (range-clause definitions).
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkCopies flags by-value copies of padded structs.
func checkCopies(pass *analysis.Pass, padded map[*types.Named]*types.Struct) {
	isPadded := func(t types.Type) (*types.Named, bool) {
		named, ok := t.(*types.Named)
		if !ok {
			return nil, false
		}
		_, ok = padded[named]
		return named, ok
	}
	reportCopy := func(pos token.Pos, what string, named *types.Named) {
		pass.Reportf(pos, "%s copies padded struct %s by value; pass *%s so the cache-line layout stays shared", what, named.Obj().Name(), named.Obj().Name())
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil {
					for _, rf := range node.Recv.List {
						if tv, ok := pass.TypesInfo.Types[rf.Type]; ok {
							if named, ok := isPadded(tv.Type); ok {
								reportCopy(rf.Type.Pos(), "value receiver", named)
							}
						}
					}
				}
				if node.Type.Params != nil {
					for _, pf := range node.Type.Params.List {
						if tv, ok := pass.TypesInfo.Types[pf.Type]; ok {
							if named, ok := isPadded(tv.Type); ok {
								reportCopy(pf.Type.Pos(), "parameter", named)
							}
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if len(node.Lhs) == len(node.Rhs) {
						if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue // discarding, not copying into live storage
						}
					}
					if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.IsValue() {
						// Copying out of a variable, dereference, index or
						// field is a layout-tearing copy; constructing a
						// fresh value (composite literal, function result)
						// is not.
						switch ast.Unparen(rhs).(type) {
						case *ast.Ident, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
							if named, ok := isPadded(tv.Type); ok {
								reportCopy(rhs.Pos(), "assignment", named)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if node.Value != nil {
					if t := exprType(pass.TypesInfo, node.Value); t != nil {
						if named, ok := isPadded(t); ok {
							reportCopy(node.Value.Pos(), "range value", named)
						}
					}
				}
			}
			return true
		})
	}
}
