package padcheck

import "sync/atomic"

// goodShard mirrors the engine's lotShard: the count leads on its own
// cache line, the spacers are wide enough, and the total size tiles
// 64-byte lines, so an array of shards never shares a line.
type goodShard struct {
	count atomic.Int64
	_     [56]byte
	hits  atomic.Int64
	_     [56]byte
}

var goodRing [4]goodShard

func useGood(s *goodShard) int64 {
	for i := range goodRing {
		goodRing[i].count.Add(1)
	}
	return s.count.Load() + s.hits.Load()
}
