package padcheck

import "sync/atomic"

// badShard's spacer is too small: count (8 bytes at offset 0) plus a
// 16-byte pad leaves hits at offset 24 — same cache line.
type badShard struct {
	count atomic.Int64
	_     [16]byte // want `pad between badShard.count and badShard.hits leaves both on cache line 0`
	hits  atomic.Int64
}

// oddShard is padded but 72 bytes: as an array element, neighbours
// share lines.
type oddShard struct {
	n atomic.Int64
	_ [64]byte
}

var oddRing [8]oddShard // want `oddShard is an array/slice element but its size 72 is not a multiple`

type copyTarget struct {
	n atomic.Int64
	_ [56]byte
	m atomic.Int64
	_ [56]byte
}

func (c copyTarget) byValue() int64 { // want `value receiver copies padded struct copyTarget`
	return c.n.Load()
}

func consume(c copyTarget) {} // want `parameter copies padded struct copyTarget`

func copies(p *copyTarget, ring []copyTarget) {
	local := *p // want `assignment copies padded struct copyTarget`
	_ = local
	for _, c := range ring { // want `range value copies padded struct copyTarget`
		_ = c
	}
}
