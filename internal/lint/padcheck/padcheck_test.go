package padcheck_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/padcheck"
)

func TestPadcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), padcheck.Analyzer, "padcheck")
}
