package seqlock_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/seqlock"
)

func TestSeqlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seqlock.Analyzer, "seqlock")
}
