package seqlock

import "sync/atomic"

// goodRecord mirrors the engine's commit-log record.
//
//tbtm:seqlock
type goodRecord struct {
	stamp atomic.Uint64
	n     atomic.Uint64
	ids   [6]atomic.Uint64
}

// publish follows the writer protocol: busy stamp, payload, release
// stamp.
func publish(r *goodRecord, t uint64, ids []uint64) {
	r.stamp.Store(t<<1 | 1)
	r.n.Store(uint64(len(ids)))
	for i, id := range ids {
		r.ids[i].Store(id)
	}
	r.stamp.Store(t << 1)
}

// read follows the reader protocol: stamp, payload, stamp re-check.
func read(r *goodRecord, t uint64) (uint64, bool) {
	want := t << 1
	for {
		s1 := r.stamp.Load()
		if s1 != want {
			return 0, false
		}
		n := r.n.Load()
		if r.stamp.Load() != want {
			continue
		}
		return n, true
	}
}
