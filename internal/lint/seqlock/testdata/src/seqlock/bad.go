package seqlock

import "sync/atomic"

//tbtm:seqlock
type badRecord struct {
	stamp atomic.Uint64
	n     atomic.Uint64
	extra uint64 // want `field extra of seqlock struct badRecord is not a sync/atomic type`
}

//tbtm:seqlock
type stampless struct { // want `seqlock struct stampless has no "stamp" field`
	n atomic.Uint64
}

// tornReader loads the payload without re-checking the stamp after.
func tornReader(r *badRecord) uint64 {
	s1 := r.stamp.Load()
	if s1&1 != 0 {
		return 0
	}
	return r.n.Load() // want `read of seqlock field badRecord.n is not bracketed by stamp loads \(missing the re-check after\)`
}

// blindReader never consults the stamp at all.
func blindReader(r *badRecord) uint64 {
	return r.n.Load() // want `read of seqlock field badRecord.n is not bracketed by stamp loads \(missing both sides\)`
}

// tornWriter publishes the payload without marking the record busy
// first.
func tornWriter(r *badRecord, v uint64) {
	r.n.Store(v) // want `write of seqlock field badRecord.n is not bracketed by stamp stores \(missing the opening stamp access\)`
	r.stamp.Store(2)
}

func copied(r *badRecord) badRecord {
	snap := *r // want `seqlock struct badRecord copied by value`
	return snap
}
