// Package seqlock enforces the commit-log ring's stamped-record read
// and write protocol, generalized behind a `//tbtm:seqlock` type
// directive. The protocol (internal/core/commitlog.go) is:
//
//	writer: stamp ← busy, fill payload fields, stamp ← published
//	reader: s1 := stamp; read payload; s2 := stamp; s1 != s2 → torn
//
// One forgotten re-check and a reader consumes a half-overwritten
// record — exactly the class of bug PR4's fuzzing had to dig out at
// runtime. The analyzer checks, for every struct marked
// //tbtm:seqlock:
//
//   - the struct has a `stamp` field and every field is a sync/atomic
//     type (or an array of them), so no access can be a plain read;
//   - any function loading a payload field also loads the stamp both
//     before and after that read (lexically), and any function storing
//     a payload field stores the stamp on both sides — the shape of a
//     correct seqlock section;
//   - the struct is never copied by value (a copy's stamp certifies
//     nothing about the copied payload).
package seqlock

import (
	"go/ast"
	"go/types"

	"tbtm/internal/lint/analysis"
)

// Analyzer is the seqlock pass.
var Analyzer = &analysis.Analyzer{
	Name: "seqlock",
	Doc:  "enforce the stamp/payload seqlock protocol on //tbtm:seqlock structs",
	Run:  run,
}

const stampField = "stamp"

// isAtomicType reports whether t is a sync/atomic value type or an
// array of them.
func isAtomicType(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicType(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// seqlockStructs returns the //tbtm:seqlock-marked named struct types
// declared in this package.
func seqlockStructs(pass *analysis.Pass) map[*types.Named]*types.Struct {
	out := map[*types.Named]*types.Struct{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !pass.Directives.TypeHas(tn, analysis.DirSeqlock) {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			out[named] = st
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	marked := seqlockStructs(pass)
	if len(marked) == 0 {
		return nil
	}

	for named, st := range marked {
		hasStamp := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == stampField {
				hasStamp = true
			}
			if !isAtomicType(f.Type()) {
				pass.Reportf(f.Pos(), "field %s of seqlock struct %s is not a sync/atomic type; every field must be readable under the torn-read protocol", f.Name(), named.Obj().Name())
			}
		}
		if !hasStamp {
			pass.Reportf(named.Obj().Pos(), "seqlock struct %s has no %q field to version its payload", named.Obj().Name(), stampField)
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, marked, fd)
		}
	}

	checkCopies(pass, marked)
	return nil
}

// access is one atomic call on a field of a seqlock struct.
type access struct {
	call  *ast.CallExpr
	owner *types.Named
	field string
	store bool // Store/Swap/CompareAndSwap/Add vs Load
}

// fieldAccess classifies a call as an atomic access to a seqlock
// struct's field, unwrapping array indexing (ids[i].Load()).
func fieldAccess(pass *analysis.Pass, marked map[*types.Named]*types.Struct, call *ast.CallExpr) (access, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return access{}, false
	}
	var store bool
	switch sel.Sel.Name {
	case "Load":
		store = false
	case "Store", "Swap", "CompareAndSwap", "Add", "Or", "And":
		store = true
	default:
		return access{}, false
	}
	// Walk down to the field selection: r.stamp, r.ids[i], (&r.n) ...
	x := ast.Unparen(sel.X)
	for {
		switch e := x.(type) {
		case *ast.IndexExpr:
			x = ast.Unparen(e.X)
			continue
		case *ast.UnaryExpr:
			x = ast.Unparen(e.X)
			continue
		}
		break
	}
	fieldSel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return access{}, false
	}
	selection, ok := pass.TypesInfo.Selections[fieldSel]
	if !ok || selection.Kind() != types.FieldVal {
		return access{}, false
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return access{}, false
	}
	if _, ok := marked[named]; !ok {
		return access{}, false
	}
	return access{call: call, owner: named, field: selection.Obj().Name(), store: store}, true
}

// checkFunc enforces the bracketing rule inside one function: every
// payload access must have a stamp access of the same polarity both
// before and after it.
func checkFunc(pass *analysis.Pass, marked map[*types.Named]*types.Struct, fd *ast.FuncDecl) {
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if a, ok := fieldAccess(pass, marked, call); ok {
				accesses = append(accesses, a)
			}
		}
		return true
	})
	for _, a := range accesses {
		if a.field == stampField {
			continue
		}
		verb, role := "load", "read"
		if a.store {
			verb, role = "store", "write"
		}
		before, after := false, false
		for _, s := range accesses {
			if s.field != stampField || s.owner != a.owner || s.store != a.store {
				continue
			}
			if s.call.Pos() < a.call.Pos() {
				before = true
			}
			if s.call.Pos() > a.call.Pos() {
				after = true
			}
		}
		if !before || !after {
			pass.Reportf(a.call.Pos(), "%s of seqlock field %s.%s is not bracketed by stamp %ss (missing %s); the %s can be torn by a concurrent writer", role, a.owner.Obj().Name(), a.field, verb, missing(before, after), role)
		}
	}
}

func missing(before, after bool) string {
	switch {
	case !before && !after:
		return "both sides"
	case !before:
		return "the opening stamp access"
	default:
		return "the re-check after"
	}
}

// checkCopies flags by-value copies of seqlock structs.
func checkCopies(pass *analysis.Pass, marked map[*types.Named]*types.Struct) {
	isMarked := func(t types.Type) (*types.Named, bool) {
		named, ok := t.(*types.Named)
		if !ok {
			return nil, false
		}
		_, ok = marked[named]
		return named, ok
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if len(node.Lhs) == len(node.Rhs) {
						if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					tv, ok := pass.TypesInfo.Types[rhs]
					if !ok || !tv.IsValue() {
						continue
					}
					switch ast.Unparen(rhs).(type) {
					case *ast.Ident, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
						if named, ok := isMarked(tv.Type); ok {
							pass.Reportf(rhs.Pos(), "seqlock struct %s copied by value; a copy's stamp does not cover its payload", named.Obj().Name())
						}
					}
				}
			case *ast.FuncDecl:
				if node.Recv != nil {
					for _, rf := range node.Recv.List {
						if tv, ok := pass.TypesInfo.Types[rf.Type]; ok {
							if named, ok := isMarked(tv.Type); ok {
								pass.Reportf(rf.Type.Pos(), "seqlock struct %s used as value receiver; a copy's stamp does not cover its payload", named.Obj().Name())
							}
						}
					}
				}
			}
			return true
		})
	}
}
