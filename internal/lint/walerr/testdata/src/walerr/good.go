package walerr

import (
	"errors"
	"os"
)

var errWedged = errors.New("wal: log failed")
var errTorn = errors.New("wal: torn record")

type log struct {
	seg    *segment
	failed bool
}

// fail is the wedge: the first I/O error sticks.
func (l *log) fail(err error) {
	if !l.failed {
		l.failed = true
	}
}

// routed handles every error: propagated or wedged, never dropped.
func (l *log) routed(buf []byte) error {
	if _, err := l.seg.f.Write(buf); err != nil {
		l.fail(err)
		return err
	}
	if err := l.seg.Sync(); err != nil {
		l.fail(err)
		return errWedged
	}
	// Close errors are exempt: the sync above already certified the
	// data, so a close failure carries no durability information.
	l.seg.Close()
	return nil
}

// normalized maps a parse failure to a sentinel: the caller still sees
// a non-nil error, so nothing is swallowed.
func normalized(l *log, buf []byte) error {
	if _, err := l.seg.f.Write(buf); err != nil {
		return errTorn
	}
	if err := l.seg.Sync(); err != nil {
		panic("unreachable in tests")
	}
	return nil
}

// prune removals are best-effort by contract: a failed Remove is
// retried by the next checkpoint and never loses committed data.
func prune(names []string) {
	for _, n := range names {
		os.Remove(n)
	}
}
