package walerr

import "os"

type segment struct{ f *os.File }

func (s *segment) Sync() error  { return s.f.Sync() }
func (s *segment) Close() error { return s.f.Close() }

// fireAndForget reproduces the miss the contract exists for: the
// fsync error evaporates and acked commits stop being durable.
func fireAndForget(s *segment, buf []byte) {
	s.f.Write(buf) // want `error from Write is discarded; WAL I/O errors must wedge the log`
	s.Sync()       // want `error from Sync is discarded; WAL I/O errors must wedge the log`
}

func blankError(s *segment, buf []byte) int {
	n, _ := s.f.Write(buf) // want `error from Write assigned to _; WAL I/O errors must wedge the log`
	return n
}

// noticedAndDropped checks the error, then does nothing with it.
func noticedAndDropped(s *segment) bool {
	err := s.Sync()
	if err != nil { // want `err checked against nil but the branch never uses it: the WAL error is swallowed`
		return false
	}
	return true
}
