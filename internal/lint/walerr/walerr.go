// Package walerr enforces internal/wal's failure contract at compile
// time. The WAL's promise is "the first I/O error wedges the log":
// every write/fsync error must reach Log.fail (and through it the
// OnFailure callback that flips tbtmd read-only) or be returned to a
// caller that does. Before this analyzer the contract was convention
// only — one swallowed error and acknowledged commits can silently
// stop hitting disk while the server keeps acking.
//
// Two patterns are flagged, in WAL packages only:
//
//   - a discarded I/O error: calling Write/Flush/Sync/Create/SyncDir/
//     Truncate/Rename as a bare statement or assigning its error to _.
//     (Close is exempt: the log fsyncs before closing, so a close
//     error carries no durability information. Remove is exempt:
//     segment/checkpoint pruning is best-effort by contract — a failed
//     removal is retried by the next checkpoint and never loses data.)
//   - a swallowed check: `if err != nil { ... }` whose body never uses
//     err — the error was noticed and then dropped on the floor
//     instead of being routed to the wedge or propagated. A branch
//     that returns a non-nil error of its own (sentinel normalization
//     such as errTorn/errCkptCorrupt on the read path) or panics still
//     fails the operation, so it is not a swallow.
package walerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tbtm/internal/lint/analysis"
)

// Analyzer is the walerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "walerr",
	Doc:  "forbid discarding or swallowing I/O errors in internal/wal",
	Match: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/wal")
	},
	Run: run,
}

// ioMethods are the I/O calls whose errors carry durability meaning.
var ioMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"Flush":       true,
	"Sync":        true,
	"Create":      true,
	"SyncDir":     true,
	"Truncate":    true,
	"Rename":      true,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// ioCall reports whether the call is an I/O method whose last
	// result is an error.
	ioCall := func(call *ast.CallExpr) (string, bool) {
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || !ioMethods[fn.Name()] {
			return "", false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return "", false
		}
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		if !types.Identical(last, types.Universe.Lookup("error").Type()) {
			return "", false
		}
		return fn.Name(), true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok {
					if name, ok := ioCall(call); ok {
						pass.Reportf(call.Pos(), "error from %s is discarded; WAL I/O errors must wedge the log (fail/OnFailure) or be returned", name)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || len(node.Rhs) != 1 {
						continue
					}
					name, ok := ioCall(call)
					if !ok {
						continue
					}
					// The error is the last LHS position in a multi-assign
					// from one call; in a 1:1 assign it is the only LHS.
					errPos := len(node.Lhs) - 1
					if i == 0 {
						if id, ok := node.Lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(id.Pos(), "error from %s assigned to _; WAL I/O errors must wedge the log (fail/OnFailure) or be returned", name)
						}
					}
				}
			case *ast.IfStmt:
				checkSwallowed(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkSwallowed flags `if err != nil` bodies that never use err and
// do not fail the operation some other way (returning a non-nil error
// of their own, or panicking).
func checkSwallowed(pass *analysis.Pass, ifs *ast.IfStmt) {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return
	}
	var errIdent *ast.Ident
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name != "nil" {
			if obj := pass.TypesInfo.Uses[id]; obj != nil &&
				types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				errIdent = id
			}
		}
	}
	if errIdent == nil {
		return
	}
	obj := pass.TypesInfo.Uses[errIdent]
	errType := types.Universe.Lookup("error").Type()
	used := false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[node] == obj {
				used = true
			}
		case *ast.ReturnStmt:
			// Returning a non-nil error (a wrapped error or a sentinel
			// like errTorn) fails the operation: the caller still sees
			// a failure, so nothing was swallowed.
			for _, res := range node.Results {
				tv, ok := pass.TypesInfo.Types[res]
				if ok && !tv.IsNil() && types.AssignableTo(tv.Type, errType) {
					used = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "panic" {
				used = true
			}
		}
		return !used
	})
	if !used {
		pass.Reportf(ifs.Pos(), "%s checked against nil but the branch never uses it: the WAL error is swallowed instead of wedging the log or propagating", errIdent.Name)
	}
}
