package walerr_test

import (
	"testing"

	"tbtm/internal/lint/analysistest"
	"tbtm/internal/lint/walerr"
)

func TestWalerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walerr.Analyzer, "walerr")
}
