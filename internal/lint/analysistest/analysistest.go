// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-repo mini
// framework.
//
// Fixtures live in testdata/src/<pkg>/ next to the analyzer. A line
// that must be flagged carries a comment of the form
//
//	x = y // want `regexp` `another regexp`
//
// with one backquoted (or double-quoted) regexp per expected
// diagnostic on that line. The run fails on any unexpected diagnostic
// and on any unmatched expectation — so a fixture proves both that the
// analyzer fires where it must and stays quiet where it must not.
package analysistest

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tbtm/internal/lint/analysis"
)

// wantRE matches one quoted expectation in a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<pkg>, applies the analyzer, and reports any
// mismatch between its diagnostics and the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loaded, fset, dirs, err := analysis.LoadDir(moduleRoot(t), dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if !a.Matches(loaded.PkgPath) {
		t.Fatalf("analyzer %s does not match fixture package %q", a.Name, loaded.PkgPath)
	}
	diags, err := analysis.Run([]*analysis.Package{loaded}, fset, dirs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range loaded.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// moduleRoot finds the enclosing module directory so fixture imports
// resolve against the repo's build cache.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil || strings.TrimSpace(string(out)) == "" {
		t.Fatalf("locating module root: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestData returns the testdata directory next to the caller's package
// (x/tools parity helper): analyzers call analysistest.Run(t,
// analysistest.TestData(), Analyzer, "pkgname").
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(fmt.Sprintf("analysistest: %v", err))
	}
	return abs
}
