// Package metrics provides lightweight concurrent instrumentation for
// the benchmark harness and the CLIs: log-bucketed latency histograms
// with percentile estimation, and abort-reason accounting driven by the
// library's sentinel errors. The paper's evaluation reports throughput
// only; the histograms let the harness additionally report the latency
// distributions behind it, and the abort breakdown makes the paper's
// motivating claim — long transactions have a much lower likelihood of
// committing — directly measurable (see harness.RunCommitProbability).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"tbtm/internal/core"
)

// histBuckets is one bucket per power of two of nanoseconds: bucket i
// holds observations with Len64(ns) == i, i.e. [2^(i-1), 2^i). Bucket 0
// holds zero-duration observations; 63 covers everything up to ~292
// years, comfortably past any transaction latency.
const histBuckets = 64

// Histogram is a fixed-size log₂-bucketed duration histogram, safe for
// concurrent use. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bits.Len64(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the bucket containing the q·count-th observation.
// With power-of-two buckets the estimate is within 2x of the true value.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1) << uint(i)) // upper edge 2^i ns
		}
	}
	return time.Duration(math.MaxInt64)
}

// Merge adds other's observations into h (h and other may be observed
// concurrently; the merge itself is a racy-but-monotonic snapshot, fine
// for reporting).
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < histBuckets; i++ {
		if v := other.buckets[i].Load(); v > 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Summary renders count, mean and the standard percentiles.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p95≤%v p99≤%v",
		h.Count(), h.Mean().Round(time.Nanosecond),
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}

// Reason classifies why a transaction attempt failed.
type Reason int

// Abort reasons, classified from the library's sentinel errors.
const (
	// ReasonNone marks a successful attempt.
	ReasonNone Reason = iota
	// ReasonConflict is a validation failure (read set invalidated).
	ReasonConflict
	// ReasonAborted is a contention-manager (or explicit) abort.
	ReasonAborted
	// ReasonSnapshotMiss means no retained version was old enough.
	ReasonSnapshotMiss
	// ReasonOther is any other error.
	ReasonOther
	numReasons
)

// NumReasons is the number of distinct Reason values (including
// ReasonNone); callers sizing per-reason counter arrays use it.
const NumReasons = int(numReasons)

// String returns the reason name.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "ok"
	case ReasonConflict:
		return "conflict"
	case ReasonAborted:
		return "aborted"
	case ReasonSnapshotMiss:
		return "snapshot-miss"
	case ReasonOther:
		return "other"
	default:
		return "invalid"
	}
}

// Classify maps an error from a transaction attempt to a Reason.
func Classify(err error) Reason {
	switch {
	case err == nil:
		return ReasonNone
	case errors.Is(err, core.ErrConflict):
		return ReasonConflict
	case errors.Is(err, core.ErrSnapshotUnavailable):
		return ReasonSnapshotMiss
	case errors.Is(err, core.ErrAborted):
		return ReasonAborted
	default:
		return ReasonOther
	}
}

// Recorder accumulates per-attempt outcomes: latency histograms for
// successful and failed attempts and an abort-reason breakdown. The zero
// value is ready to use and safe for concurrent recording.
type Recorder struct {
	// Success and Failure are attempt latency histograms by outcome.
	Success Histogram
	Failure Histogram

	reasons [numReasons]atomic.Uint64
}

// Record classifies err and books the attempt's latency under the
// appropriate histogram. It returns the classification.
func (r *Recorder) Record(d time.Duration, err error) Reason {
	reason := Classify(err)
	r.reasons[reason].Add(1)
	if reason == ReasonNone {
		r.Success.Observe(d)
	} else {
		r.Failure.Observe(d)
	}
	return reason
}

// Attempts returns the total number of recorded attempts.
func (r *Recorder) Attempts() uint64 {
	var n uint64
	for i := range r.reasons {
		n += r.reasons[i].Load()
	}
	return n
}

// Successes returns the number of successful attempts.
func (r *Recorder) Successes() uint64 { return r.reasons[ReasonNone].Load() }

// CommitProbability returns the fraction of attempts that succeeded
// (the paper's "likelihood of committing"); 0 with no attempts.
func (r *Recorder) CommitProbability() float64 {
	n := r.Attempts()
	if n == 0 {
		return 0
	}
	return float64(r.Successes()) / float64(n)
}

// ReasonCount returns how many attempts failed with the given reason
// (or succeeded, for ReasonNone).
func (r *Recorder) ReasonCount(reason Reason) uint64 {
	if reason < 0 || reason >= numReasons {
		return 0
	}
	return r.reasons[reason].Load()
}

// Breakdown renders the non-zero abort reasons.
func (r *Recorder) Breakdown() string {
	var parts []string
	for reason := ReasonConflict; reason < numReasons; reason++ {
		if n := r.reasons[reason].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
