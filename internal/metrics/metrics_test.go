package metrics

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tbtm/internal/core"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram: count=%d mean=%v p50=%v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 100*time.Nanosecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	// 100ns falls in bucket [64, 128): every quantile reports <= 128ns.
	if q := h.Quantile(0.5); q < 100*time.Nanosecond || q > 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want (100ns, 128ns]", q)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	// True values: 500µs, 950µs, 990µs. Bucket upper bounds are within
	// 2x above the true quantile and never below it.
	checks := []struct {
		name      string
		got, want time.Duration
	}{
		{"p50", p50, 500 * time.Microsecond},
		{"p95", p95, 950 * time.Microsecond},
		{"p99", p99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		if c.got < c.want || c.got > 2*c.want {
			t.Fatalf("%s = %v, want in [%v, %v]", c.name, c.got, c.want, 2*c.want)
		}
	}
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotonic: %v %v %v", p50, p95, p99)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5 * time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(1.0); q != 0 {
		t.Fatalf("p100 of zeros = %v, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("merged Count = %d, want 20", a.Count())
	}
	if q := a.Quantile(0.25); q > 2*time.Millisecond {
		t.Fatalf("p25 = %v, want about 1ms", q)
	}
	if q := a.Quantile(0.99); q < time.Second {
		t.Fatalf("p99 = %v, want >= 1s", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const (
		goroutines = 8
		each       = 1000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*each)
	}
}

// Property: quantiles are monotone in q and bounded by [min/2, 2*max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		last := time.Duration(-1)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is count-additive.
func TestHistogramMergeAdditiveProperty(t *testing.T) {
	prop := func(xs, ys []uint16) bool {
		var a, b Histogram
		for _, x := range xs {
			a.Observe(time.Duration(x))
		}
		for _, y := range ys {
			b.Observe(time.Duration(y))
		}
		a.Merge(&b)
		return a.Count() == uint64(len(xs)+len(ys))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		err  error
		want Reason
	}{
		{nil, ReasonNone},
		{core.ErrConflict, ReasonConflict},
		{core.ErrAborted, ReasonAborted},
		{core.ErrSnapshotUnavailable, ReasonSnapshotMiss},
		{fmt.Errorf("wrapped: %w", core.ErrConflict), ReasonConflict},
		{fmt.Errorf("wrapped: %w", core.ErrSnapshotUnavailable), ReasonSnapshotMiss},
		{errors.New("unrelated"), ReasonOther},
	}
	for _, tt := range tests {
		if got := Classify(tt.err); got != tt.want {
			t.Fatalf("Classify(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}

func TestReasonString(t *testing.T) {
	for r := ReasonNone; r < numReasons; r++ {
		if r.String() == "invalid" {
			t.Fatalf("reason %d has no name", r)
		}
	}
	if Reason(99).String() != "invalid" {
		t.Fatal("out-of-range reason not invalid")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record(time.Millisecond, nil)
	r.Record(2*time.Millisecond, nil)
	r.Record(time.Millisecond, core.ErrConflict)
	r.Record(time.Millisecond, core.ErrAborted)

	if r.Attempts() != 4 {
		t.Fatalf("Attempts = %d", r.Attempts())
	}
	if r.Successes() != 2 {
		t.Fatalf("Successes = %d", r.Successes())
	}
	if p := r.CommitProbability(); p != 0.5 {
		t.Fatalf("CommitProbability = %v, want 0.5", p)
	}
	if r.ReasonCount(ReasonConflict) != 1 || r.ReasonCount(ReasonAborted) != 1 {
		t.Fatalf("reason counts wrong: %s", r.Breakdown())
	}
	if r.Success.Count() != 2 || r.Failure.Count() != 2 {
		t.Fatalf("histogram routing wrong: ok=%d fail=%d", r.Success.Count(), r.Failure.Count())
	}
	if r.Breakdown() == "none" {
		t.Fatal("Breakdown empty with recorded failures")
	}
}

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	if r.CommitProbability() != 0 {
		t.Fatal("empty recorder probability != 0")
	}
	if r.Breakdown() != "none" {
		t.Fatalf("Breakdown = %q", r.Breakdown())
	}
	if r.ReasonCount(Reason(-1)) != 0 || r.ReasonCount(Reason(99)) != 0 {
		t.Fatal("out-of-range ReasonCount != 0")
	}
}

func TestSummaryFormat(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Summary()
	if s == "" || h.Count() != 1 {
		t.Fatalf("Summary = %q", s)
	}
}
