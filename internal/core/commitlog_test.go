package core

import (
	"sync"
	"testing"
)

func fpOf(ids ...uint64) *SmallIndex {
	var ix SmallIndex
	for i, id := range ids {
		ix.Put(id, i)
	}
	return &ix
}

func TestCommitLogEmptyWindowClear(t *testing.T) {
	l := NewCommitLog(8)
	if v := l.Check(5, 5, fpOf(1)); v != LogClear {
		t.Fatalf("empty window = %v, want clear", v)
	}
	if v := l.Check(7, 3, fpOf(1)); v != LogClear {
		t.Fatalf("inverted window = %v, want clear", v)
	}
}

func TestCommitLogHitAndClear(t *testing.T) {
	l := NewCommitLog(8)
	l.Publish(1, []uint64{10, 11})
	l.Publish(2, []uint64{12})
	l.Publish(3, nil) // write-free record (e.g. aborted after claim)

	if v := l.Check(0, 3, fpOf(12)); v != LogHit {
		t.Fatalf("Check(0,3, {12}) = %v, want hit", v)
	}
	if v := l.Check(0, 3, fpOf(99)); v != LogClear {
		t.Fatalf("Check(0,3, {99}) = %v, want clear", v)
	}
	if v := l.Check(2, 3, fpOf(12)); v != LogClear {
		t.Fatalf("Check(2,3, {12}) = %v, want clear (12 written at tick 2)", v)
	}
}

func TestCommitLogWrapDetection(t *testing.T) {
	l := NewCommitLog(4)
	for tick := uint64(1); tick <= 9; tick++ {
		l.Publish(tick, []uint64{tick})
	}
	// Window wider than the ring.
	if v := l.Check(0, 9, fpOf(99)); v != LogWrapped {
		t.Fatalf("wide window = %v, want wrapped", v)
	}
	// Window inside the ring span but with an overwritten slot: tick 5
	// lives in the slot tick 9 overwrote.
	if v := l.Check(4, 7, fpOf(99)); v != LogWrapped {
		t.Fatalf("overwritten window = %v, want wrapped", v)
	}
	// The still-live suffix is readable.
	if v := l.Check(6, 9, fpOf(99)); v != LogClear {
		t.Fatalf("live window = %v, want clear", v)
	}
	if v := l.Check(6, 9, fpOf(8)); v != LogHit {
		t.Fatalf("live window with hit = %v, want hit", v)
	}
}

func TestCommitLogUnpublishedSlot(t *testing.T) {
	l := NewCommitLog(8)
	l.Publish(1, []uint64{1})
	// Tick 2 claimed conceptually but never published: the reader must
	// not treat the stale slot as tick 2's record.
	if v := l.Check(0, 2, fpOf(99)); v != LogUnpublished {
		t.Fatalf("missing record = %v, want unpublished", v)
	}
}

func TestCommitLogOverflowRecordHitsEverything(t *testing.T) {
	l := NewCommitLog(8)
	big := make([]uint64, logInlineIDs+1)
	for i := range big {
		big[i] = uint64(100 + i)
	}
	l.Publish(1, big)
	if v := l.Check(0, 1, fpOf(7)); v != LogHit {
		t.Fatalf("overflow record = %v, want hit (conservative)", v)
	}
}

func TestCommitLogAppendClaims(t *testing.T) {
	l := NewCommitLog(8)
	if got := l.Claimed(); got != 0 {
		t.Fatalf("Claimed = %d, want 0", got)
	}
	t1 := l.Append([]uint64{42})
	t2 := l.Append([]uint64{43})
	if t1 != 1 || t2 != 2 {
		t.Fatalf("Append ticks = %d, %d, want 1, 2", t1, t2)
	}
	if got := l.Claimed(); got != 2 {
		t.Fatalf("Claimed = %d, want 2", got)
	}
	if v := l.Check(0, 2, fpOf(43)); v != LogHit {
		t.Fatalf("Check = %v, want hit", v)
	}
}

// TestCommitLogConcurrent hammers publishers against window checkers
// under the race detector: checks must never report Clear for a window
// containing a published record that hits the footprint.
func TestCommitLogConcurrent(t *testing.T) {
	const (
		writers = 4
		each    = 2000
	)
	l := NewCommitLog(1024)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint64, 1)
			for i := 0; i < each; i++ {
				ids[0] = uint64(w) // writer w always writes object w
				l.Append(ids)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	fp := fpOf(0) // watch writer 0's object
	for {
		select {
		case <-done:
			// Quiesced: a fresh record for the watched object must hit in
			// a window that contains exactly it.
			tick := l.Append([]uint64{0})
			if v := l.Check(tick-1, tick, fp); v != LogHit {
				t.Fatalf("final Check = %v, want hit", v)
			}
			return
		default:
		}
		hi := l.Claimed()
		if hi == 0 {
			continue
		}
		lo := uint64(0)
		if hi > 64 {
			lo = hi - 64
		}
		switch l.Check(lo, hi, fp) {
		case LogClear, LogHit, LogWrapped, LogUnpublished:
			// Any verdict is legal mid-run; the race detector and the
			// final assertion do the judging.
		}
	}
}
