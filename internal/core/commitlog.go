package core

import (
	"runtime"
	"sync/atomic"
)

// logInlineIDs is the number of written-object IDs one commit-log record
// stores inline. Together with the stamp and count words it makes a
// record exactly one cache line (8 × 8 bytes), so concurrent readers and
// the publishing writer never share a line with a neighbouring record.
// Commits writing more objects publish an overflow record instead, which
// readers treat as touching everything (they fall back to the full
// read-set walk — correct, merely slower, and large write sets already
// pay O(writes) elsewhere).
const logInlineIDs = 6

// logOverflow marks a record whose write set did not fit inline.
const logOverflow = ^uint64(0)

// logSpinLimit bounds how long a scanning reader waits for a claimed but
// not-yet-published record before giving up (the publisher is between
// its clock tick and the slot store — a handful of instructions unless
// it was preempted). Beyond the limit the reader reports LogUnpublished
// and validates the slow way.
const logSpinLimit = 128

// LogVerdict is the outcome of a commit-log window check.
type LogVerdict uint8

const (
	// LogClear: every record in the window was readable and none of the
	// written objects is in the transaction's footprint. The snapshot
	// extends without touching the read set.
	LogClear LogVerdict = iota
	// LogHit: some record in the window wrote an object the transaction
	// read. The caller must fall back to full validation — the record may
	// stem from a writer that subsequently aborted (records are published
	// before the writer's own validation), so a hit is not yet a conflict.
	LogHit
	// LogWrapped: part of the window has been overwritten by newer
	// commits (the ring wrapped) or lies beyond the ring's span. Full
	// validation required.
	LogWrapped
	// LogUnpublished: a record in the window was claimed but its
	// publisher had not filled the slot within the spin budget. Full
	// validation required.
	LogUnpublished
)

// String returns the verdict name.
func (v LogVerdict) String() string {
	switch v {
	case LogClear:
		return "clear"
	case LogHit:
		return "hit"
	case LogWrapped:
		return "wrapped"
	case LogUnpublished:
		return "unpublished"
	default:
		return "invalid"
	}
}

// logRecord is one slot of the ring: the commit tick it currently holds
// (seqlock-style stamp) plus the written-object IDs of that commit. All
// fields are atomics so the seqlock read protocol is race-clean: a
// reader that loses the stamp re-check discards whatever it read.
//
// Stamp protocol for tick t occupying slot t&mask:
//
//	writer: stamp ← t<<1|1 (busy), fill n and ids, stamp ← t<<1
//	reader: s1 := stamp; if s1 != t<<1 → not (or no longer) t's record;
//	        read fields; s2 := stamp; if s2 != s1 → torn, retry/fail
//
//tbtm:seqlock
type logRecord struct {
	stamp atomic.Uint64
	n     atomic.Uint64 // id count, or logOverflow
	ids   [logInlineIDs]atomic.Uint64
}

// CommitLog is a fixed-size global log of committed (and committing)
// update transactions: a lock-free ring of (commit tick, written-object
// IDs) records that every backend's commit path publishes into. Snapshot
// extension and commit-time validation then check only the log window
// between the transaction's snapshot and the target time against the
// transaction's read footprint — O(commits in the window) instead of
// O(read-set size) — falling back to the full read-set walk when the
// window wrapped, a record was oversized, or a record hit the footprint.
//
// A log instance is keyed by a dense, process-unique tick sequence and
// is used in exactly one of two modes:
//
//   - Clock mode (scalar backends on a strictly commit-counting time
//     base): the tick is the commit time itself. Committers call Publish
//     with the time they acquired; the acquisition is the claim, so a
//     reader that observed Now() == t knows every record with tick <= t
//     is claimed and either published or imminently so.
//
//   - Claim mode (vector-clock backends, whose commit timestamps are
//     neither scalar nor dense): the tick comes from the log's own
//     counter via Append. Readers bound windows with Claimed().
//
// Records are conservative: a committer publishes its write set after
// claiming its tick and before validating its own read set, so records
// of writers that go on to abort remain in the log. Readers therefore
// treat a hit as "must validate fully", never as a conflict by itself.
type CommitLog struct {
	mask uint64
	recs []logRecord
	next atomic.Uint64 // claim counter (claim mode only)
}

// DefaultCommitLogSlots is the ring size used when a backend enables the
// log without an explicit size: large enough that a reader has to fall
// behind by thousands of commits before extension degrades to the full
// walk, small enough (256 KiB of records) to sit comfortably in L2.
const DefaultCommitLogSlots = 4096

// NewCommitLog returns a log with at least slots records, rounded up to
// a power of two (values below 2 select DefaultCommitLogSlots).
func NewCommitLog(slots int) *CommitLog {
	if slots < 2 {
		slots = DefaultCommitLogSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &CommitLog{mask: uint64(n - 1), recs: make([]logRecord, n)}
}

// Cap returns the ring size in records.
func (l *CommitLog) Cap() int { return len(l.recs) }

// Publish records that the commit with tick t wrote the given objects.
// Ticks must be dense and process-unique (each value published at most
// once); in clock mode the caller publishes immediately after acquiring
// its commit time, before validating or installing, so that a reader
// spinning on the slot is never left waiting across the publisher's
// whole commit. ids is borrowed for the duration of the call only.
//
//tbtm:noalloc
func (l *CommitLog) Publish(t uint64, ids []uint64) {
	r := &l.recs[t&l.mask]
	r.stamp.Store(t<<1 | 1)
	if len(ids) > logInlineIDs {
		r.n.Store(logOverflow)
	} else {
		for i, id := range ids {
			r.ids[i].Store(id)
		}
		r.n.Store(uint64(len(ids)))
	}
	r.stamp.Store(t << 1)
}

// Append claims the next tick from the log's own counter and publishes
// ids under it, returning the tick (claim mode). The claim and the
// publication are adjacent so readers never wait long on the slot.
//
//tbtm:noalloc
func (l *CommitLog) Append(ids []uint64) uint64 {
	t := l.next.Add(1)
	l.Publish(t, ids)
	return t
}

// Claimed returns the newest tick handed out by Append (claim mode).
// Every record with a tick at or below the returned value has been
// claimed and is published or about to be.
func (l *CommitLog) Claimed() uint64 { return l.next.Load() }

// Check scans the window (lb, ub] and reports whether any record in it
// wrote an object in the footprint fp. Ticks are 1-based; lb is the
// newest tick already accounted for by the caller's snapshot and ub the
// tick (or time) the caller wants to advance to. An empty window is
// trivially clear.
//
// The scan runs oldest-first so a wrapped window fails fast, and
// re-checks each record's stamp after reading it (seqlock) so a
// concurrent overwrite is detected rather than half-read.
//
//tbtm:noalloc
func (l *CommitLog) Check(lb, ub uint64, fp *SmallIndex) LogVerdict {
	if ub <= lb {
		return LogClear
	}
	if ub-lb > uint64(len(l.recs)) {
		return LogWrapped
	}
	for t := lb + 1; t <= ub; t++ {
		switch l.checkOne(t, fp) {
		case LogClear:
		case LogHit:
			return LogHit
		case LogWrapped:
			return LogWrapped
		case LogUnpublished:
			return LogUnpublished
		}
	}
	return LogClear
}

// checkOne checks the record for tick t against fp.
//
//tbtm:noalloc
func (l *CommitLog) checkOne(t uint64, fp *SmallIndex) LogVerdict {
	r := &l.recs[t&l.mask]
	want := t << 1
	for spin := 0; ; spin++ {
		s1 := r.stamp.Load()
		switch {
		case s1 > want|1:
			// A newer tick overwrote (or is overwriting) the slot.
			return LogWrapped
		case s1 != want:
			// Claimed but not yet published (s1 < want covers both an
			// older occupant and our publisher's busy stamp want|1 — wait
			// either way; busy can also briefly show during overwrite by
			// tick t+cap, caught by the s1 > want|1 test above next spin).
			if spin >= logSpinLimit {
				return LogUnpublished
			}
			runtime.Gosched()
			continue
		}
		n := r.n.Load()
		if n == logOverflow {
			if r.stamp.Load() == want {
				return LogHit // oversized write set: assume it touches us
			}
			continue // torn read; re-examine
		}
		hit := false
		for i := uint64(0); i < n && i < logInlineIDs; i++ {
			if _, ok := fp.Get(r.ids[i].Load()); ok {
				hit = true
				break
			}
		}
		if r.stamp.Load() != want {
			continue // overwritten mid-read; re-examine from the stamp
		}
		if hit {
			return LogHit
		}
		return LogClear
	}
}
