package core

import "testing"

func TestSmallIndexInlineAndSpill(t *testing.T) {
	var ix SmallIndex
	const n = 3 * smallIndexCap
	for i := 0; i < n; i++ {
		if _, ok := ix.Get(uint64(i + 100)); ok {
			t.Fatalf("key %d present before Put", i+100)
		}
		ix.Put(uint64(i+100), i)
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := ix.Get(uint64(i + 100))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i+100, v, ok, i)
		}
	}
}

func TestSmallIndexReset(t *testing.T) {
	var ix SmallIndex
	for i := 0; i < 2*smallIndexCap; i++ {
		ix.Put(uint64(i), i)
	}
	ix.Reset()
	if ix.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", ix.Len())
	}
	for i := 0; i < 2*smallIndexCap; i++ {
		if _, ok := ix.Get(uint64(i)); ok {
			t.Fatalf("key %d survived Reset", i)
		}
	}
	// The index must be fully reusable after Reset.
	ix.Put(7, 42)
	if v, ok := ix.Get(7); !ok || v != 42 {
		t.Fatalf("Get(7) after Reset+Put = %d,%v, want 42,true", v, ok)
	}
}
