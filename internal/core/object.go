package core

import (
	"sync/atomic"
)

// LongZoneTag is folded into Version.Zone by Z-STM's long-transaction
// installs (short installs carry the plain zone number). Long commits
// serialize before every short labeled with their zone or a later one,
// yet their versions land late on the scalar timeline — so a short's
// old-version fallback must be able to tell "installed by a long" apart
// from "installed by a same-zone short": skipping past the former tears
// the zone serialization even when the scalar snapshot is consistent
// (see lsa.Tx.zoneUnsafe), while skipping past the latter stays inside
// the zone's linearizable scalar order.
const LongZoneTag = uint64(1) << 63

// objIDs issues process-unique object identifiers.
var objIDs atomic.Uint64

// NextObjectID returns a fresh process-unique object ID, used to key
// read/write sets and to identify objects in recorded histories.
func NextObjectID() uint64 { return objIDs.Add(1) }

// Version is one committed state of an Object under a scalar time base.
// Versions form a singly-linked chain from newest to oldest via Prev; the
// chain is truncated to the object's retention depth on install.
//
// The validity interval of a version (paper §4.1) is [TS, next.TS): it
// begins at its writer's commit time and ends when the next version is
// installed.
type Version struct {
	// Value is the committed payload. Values are treated as immutable:
	// writers install new versions instead of mutating in place, which is
	// what lets long transactions hold references without copying
	// (paper §5.1: "This object will not change...").
	Value any
	// TS is the scalar commit time of the writing transaction.
	TS uint64
	// Seq is the per-object version sequence number, starting at 1 for
	// the initial version. It defines the per-object version order used
	// by the offline consistency checkers.
	Seq uint64
	// WriterID is the transaction ID that installed this version (0 for
	// the initial version); recorded for history checking and debugging.
	WriterID uint64
	// Zone is the z-linearizability zone the writer committed in (0 when
	// the STM does not use zones). A long transaction with zone number z
	// must not observe versions tagged z: they were installed by
	// same-zone short transactions that serialize after it, possibly in
	// the window between the long's zone stamp and its read (see
	// zstm.LongTx.Read).
	Zone uint64

	// depth is the number of versions reachable through prev including
	// this one, maintained by Install to amortize chain truncation. It
	// is written before the version is published and never changes.
	depth uint32
	// prev is the next-older version, or nil if truncated or initial.
	// It is atomic because truncation severs the chain on a node that
	// is already published to concurrent (invisible) readers.
	prev atomic.Pointer[Version]
}

// Prev returns the next-older retained version, or nil if truncated or
// initial.
//
//tbtm:noalloc
func (v *Version) Prev() *Version { return v.prev.Load() }

// Object is the fat object header shared by the scalar-clock STMs
// (LSA-STM and Z-STM). It provides a committed version chain, a writer
// ownership word for visible write/write conflict detection, and the
// per-object zone stamp o.zc used by Z-STM (Algorithms 2 and 3).
//
// The zero value is not usable; construct objects with NewObject.
type Object struct {
	id   uint64
	cur  atomic.Pointer[Version]
	wr   atomic.Pointer[TxMeta]
	zc   atomic.Uint64
	keep int
}

// NewObject returns an object whose initial committed version holds value
// at time 0, retaining at least keep committed versions (keep < 1 is
// treated as 1, i.e. a single-version object as in TL2). Truncation is
// amortized: the chain may transiently grow to 2*keep-1 versions before
// it is cut back to keep, so installs cost O(1) amortized instead of
// O(keep) each.
func NewObject(value any, keep int) *Object {
	if keep < 1 {
		keep = 1
	}
	o := &Object{id: NextObjectID(), keep: keep}
	o.cur.Store(&Version{Value: value, Seq: 1, depth: 1})
	return o
}

// ID returns the object's process-unique identifier.
//
//tbtm:noalloc
func (o *Object) ID() uint64 { return o.id }

// Retain returns the configured version retention depth.
func (o *Object) Retain() int { return o.keep }

// Current returns the newest committed version. It never returns nil.
//
//tbtm:noalloc
func (o *Object) Current() *Version { return o.cur.Load() }

// FindAt returns the newest version with TS <= t, or nil if every
// retained version is newer than t (the snapshot is too old to serve,
// ErrSnapshotUnavailable at the caller).
func (o *Object) FindAt(t uint64) *Version {
	for v := o.cur.Load(); v != nil; v = v.Prev() {
		if v.TS <= t {
			return v
		}
	}
	return nil
}

// Install publishes a new committed version with the given value, commit
// time and writer zone. The caller must be the current writer owner
// (single-writer protocol), so the store does not race with other
// installs.
//
// Truncation is amortized: the chain is cut back to the retention depth
// only when it reaches twice that depth, so a saturated object pays one
// O(keep) walk every keep installs instead of on every install.
// Concurrent readers walking the chain may observe the cut mid-walk and
// simply see fewer old versions, which is always safe.
func (o *Object) Install(value any, ts, writerID, zone uint64) *Version {
	cur := o.cur.Load()
	v := &Version{Value: value, TS: ts, Seq: cur.Seq + 1, WriterID: writerID, Zone: zone}
	switch {
	case o.keep == 1:
		v.depth = 1 // single-version: never link the predecessor
	case int(cur.depth) >= 2*o.keep-1:
		v.prev.Store(cur)
		p := v
		for i := 1; i < o.keep; i++ {
			p = p.Prev()
		}
		p.prev.Store(nil)
		v.depth = uint32(o.keep)
	default:
		v.prev.Store(cur)
		v.depth = cur.depth + 1
	}
	o.cur.Store(v)
	return v
}

// InstallRecycled is Install with epoch-gated version recycling: the new
// version is drawn from rec's pool when one is available, and every
// version this install unlinks from the chain — the displaced current
// version of a single-version object, or the tail cut off by amortized
// truncation — is retired to rec for reuse after its grace period.
// Steady-state update commits on a warm pool therefore allocate no
// version at all.
//
// The caller must be the current writer owner and must be pinned on rec's
// epoch slot (concurrent readers holding retired versions are protected
// by their own pins).
func (o *Object) InstallRecycled(rec *Recycler, value any, ts, writerID, zone uint64) *Version {
	cur := o.cur.Load()
	v := rec.version()
	if v == nil {
		v = new(Version)
	}
	v.Value, v.TS, v.Seq, v.WriterID, v.Zone = value, ts, cur.Seq+1, writerID, zone
	switch {
	case o.keep == 1:
		v.depth = 1
		v.prev.Store(nil)
		o.cur.Store(v) // unlinks cur from the object...
		rec.RetireVersion(cur)
		return v
	case int(cur.depth) >= 2*o.keep-1:
		v.prev.Store(cur)
		p := v
		for i := 1; i < o.keep; i++ {
			p = p.Prev()
		}
		tail := p.Prev()
		p.prev.Store(nil) // ...here the truncated tail is unlinked
		v.depth = uint32(o.keep)
		o.cur.Store(v)
		for t := tail; t != nil; t = t.Prev() {
			rec.RetireVersion(t)
		}
		return v
	default:
		v.prev.Store(cur)
		v.depth = cur.depth + 1
		o.cur.Store(v)
		return v
	}
}

// Writer returns the transaction currently holding write ownership, or
// nil. A non-nil owner whose status is terminal is a stale lock that the
// next acquirer may steal.
//
//tbtm:noalloc
func (o *Object) Writer() *TxMeta { return o.wr.Load() }

// CASWriter attempts to swing write ownership from old to new (either may
// be nil) and reports success.
func (o *Object) CASWriter(old, new *TxMeta) bool {
	return o.wr.CompareAndSwap(old, new)
}

// ReleaseWriter clears write ownership if owned by m.
func (o *Object) ReleaseWriter(m *TxMeta) { o.wr.CompareAndSwap(m, nil) }

// ZC returns the object's zone stamp o.zc (paper, Algorithms 2 and 3).
func (o *Object) ZC() uint64 { return o.zc.Load() }

// RaiseZC atomically raises o.zc to z if z is greater (the CAS-max used
// when a long transaction opens the object, Algorithm 2 line 7). It
// reports whether o.zc == z after the call, i.e. whether the caller's
// zone now owns the object; false means a transaction with a higher zone
// number already passed us (Algorithm 2 line 19).
func (o *Object) RaiseZC(z uint64) bool {
	for {
		cur := o.zc.Load()
		if cur == z {
			return true
		}
		if cur > z {
			return false
		}
		if o.zc.CompareAndSwap(cur, z) {
			return true
		}
	}
}
