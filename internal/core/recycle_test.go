package core

import (
	"testing"

	"tbtm/internal/epoch"
)

func newRecycler() (*Recycler, *epoch.Domain) {
	d := new(epoch.Domain)
	r := new(Recycler)
	r.Init(d)
	return r, d
}

func TestInstallRecycledSingleVersionReuse(t *testing.T) {
	r, _ := newRecycler()
	o := NewObject(int64(0), 1)

	r.Pin()
	first := o.Current()
	v1 := o.InstallRecycled(r, int64(1), 10, 1, 0)
	if o.Current() != v1 || v1.Prev() != nil || v1.Seq != 2 {
		t.Fatalf("install: cur=%v prev=%v seq=%d", o.Current(), v1.Prev(), v1.Seq)
	}
	r.Unpin()

	// After enough installs (each unpinned gap lets the epoch advance),
	// the displaced versions must start coming back from the pool.
	seen := map[*Version]bool{first: true, v1: true}
	reused := false
	for i := 0; i < 64; i++ {
		r.Pin()
		v := o.InstallRecycled(r, int64(i), uint64(20+i), 1, 0)
		if seen[v] {
			reused = true
		}
		seen[v] = true
		r.Unpin()
	}
	if !reused {
		t.Fatal("no version reuse after 64 single-version installs")
	}
}

func TestInstallRecycledNeverReusesWhilePinned(t *testing.T) {
	r, d := newRecycler()
	reader := d.Register()
	o := NewObject(int64(0), 1)

	reader.Pin()
	held := o.Current()
	heldVal := held.Value

	for i := 0; i < 200; i++ {
		r.Pin()
		o.InstallRecycled(r, int64(i+1), uint64(i+1), 1, 0)
		r.Unpin()
		d.TryAdvance()
	}
	if held.Value != heldVal {
		t.Fatalf("version held under pin was reused: Value=%v, want %v", held.Value, heldVal)
	}
	reader.Unpin()
}

func TestInstallRecycledTruncationRetiresTail(t *testing.T) {
	r, _ := newRecycler()
	const keep = 3
	o := NewObject(int64(0), keep)

	seen := map[*Version]bool{}
	reused := false
	for i := 0; i < 20*keep; i++ {
		r.Pin()
		v := o.InstallRecycled(r, int64(i), uint64(i+1), 1, 0)
		if seen[v] {
			reused = true
		}
		seen[v] = true
		r.Unpin()
	}
	if !reused {
		t.Fatal("no version reuse from truncated tails")
	}
	// Chain shape must match plain Install's amortized truncation bounds.
	n := 0
	for v := o.Current(); v != nil; v = v.Prev() {
		n++
	}
	if n < 1 || n > 2*keep-1 {
		t.Fatalf("chain length %d outside [1, %d]", n, 2*keep-1)
	}
}

func TestRecyclerMetaReuse(t *testing.T) {
	r, _ := newRecycler()
	seen := map[*TxMeta]bool{}
	ids := map[uint64]bool{}
	reused := false
	for i := 0; i < 64; i++ {
		r.Pin()
		m := r.NewMeta(Short, 7)
		if m.Status() != StatusActive || m.ThreadID != 7 || m.Prio.Load() != 0 {
			t.Fatalf("meta not reset: status=%v thread=%d prio=%d", m.Status(), m.ThreadID, m.Prio.Load())
		}
		if ids[m.ID] {
			t.Fatalf("recycled meta kept a stale ID %d", m.ID)
		}
		ids[m.ID] = true
		if seen[m] {
			reused = true
		}
		seen[m] = true
		m.TryAbort()
		r.Unpin()
		r.RetireMeta(m)
	}
	if !reused {
		t.Fatal("no meta reuse after 64 retire/new cycles")
	}
}

func TestLimboCapsDropExcess(t *testing.T) {
	r, _ := newRecycler()
	// Retire far more than the caps within pins that never let the epoch
	// advance enough to matter; nothing should panic or grow unbounded.
	for i := 0; i < maxLimbo+maxFree+100; i++ {
		r.RetireVersion(new(Version))
	}
	for i := range r.versions.ring {
		if n := len(r.versions.ring[i].items); n > maxLimbo {
			t.Fatalf("bucket %d grew to %d > maxLimbo", i, n)
		}
	}
	if len(r.versions.free) > maxFree {
		t.Fatalf("free list grew to %d > maxFree", len(r.versions.free))
	}
}
