package core

import (
	"tbtm/internal/epoch"
)

// Recycling limits. Free lists and limbo buckets are capped: dropping a
// retired node instead of pooling it is always safe (the garbage
// collector owns liveness; epochs only gate reuse), so the caps bound
// per-thread memory without any correctness consequence.
const (
	maxFree  = 256 // reclaimed nodes ready for reuse, per thread per type
	maxLimbo = 512 // nodes awaiting grace in one epoch bucket
	// advanceEvery amortizes the O(threads) epoch-advance scan across
	// retirements.
	advanceEvery = 32
)

// bucket holds nodes retired during one epoch.
type bucket[T any] struct {
	epoch uint64
	items []T
}

// limbo is a per-thread deferred-free list: retired nodes bucketed by
// retirement epoch, plus a free list of nodes whose grace period has
// passed. A four-slot ring suffices: the bucket for epoch e is reused
// for epoch e+4, and a thread retiring at epoch e+4 observes a global
// epoch of at least e+4, which makes epoch e ≤ Safe — always past
// grace, so the bucket drains first.
//
// scrub, when set, is applied to every node whose grace period has
// passed as it drains (whether it enters the free list or is dropped to
// the GC): it severs the node's references so a pooled node cannot pin
// payloads or chains of already-dropped nodes. Mutating there is safe
// precisely because drain only runs past the grace period; nodes
// dropped *before* grace (the retire-time cap) are left untouched —
// stale readers may still be walking them, and the GC keeps them alive
// exactly as long as needed.
type limbo[T any] struct {
	ring  [4]bucket[T]
	free  []T
	scrub func(T)
}

// retire adds x to the bucket for epoch e, draining the bucket's previous
// (by construction grace-expired) contents first if the ring wrapped.
func (l *limbo[T]) retire(e uint64, x T) {
	b := &l.ring[e&3]
	if b.epoch != e {
		l.drain(b)
		b.epoch = e
	}
	if len(b.items) < maxLimbo {
		b.items = append(b.items, x)
	}
	// else: drop on the floor; the GC reclaims it.
}

// drain moves a grace-expired bucket's nodes to the free list (up to the
// cap) and empties it.
func (l *limbo[T]) drain(b *bucket[T]) {
	for _, x := range b.items {
		if l.scrub != nil {
			l.scrub(x)
		}
		if len(l.free) < maxFree {
			l.free = append(l.free, x)
		}
	}
	clear(b.items) // release dropped nodes to the GC
	b.items = b.items[:0]
}

// get returns a reusable node if one is available, draining any buckets
// whose retirement epoch is at or before safe.
func (l *limbo[T]) get(safe uint64) (T, bool) {
	if len(l.free) == 0 {
		for i := range l.ring {
			b := &l.ring[i]
			if b.epoch != 0 && b.epoch <= safe && len(b.items) > 0 {
				l.drain(b)
				b.epoch = 0
			}
		}
	}
	var zero T
	if n := len(l.free); n > 0 {
		x := l.free[n-1]
		l.free[n-1] = zero
		l.free = l.free[:n-1]
		return x, true
	}
	return zero, false
}

// Recycler is a per-thread cache of retired Versions and TxMetas gated by
// epoch-based reclamation (see internal/epoch). All methods must be
// called by the owning thread.
//
// The contract mirrors EBR: the thread pins around every transaction
// (Pin in Begin, Unpin when the transaction finishes); nodes are retired
// only after they are unlinked from shared structures; a retired node is
// reused only once every pin concurrent with the retirement has been
// released. Reuse — not freeing — is what needs the grace period: a
// too-early reuse invites ABA on pointer-identity validation (a read-set
// entry compared against an object's chain) and on writer-word CAS, and
// mutates a node a stale reader may still be walking.
type Recycler struct {
	slot     *epoch.Slot
	versions limbo[*Version]
	metas    limbo[*TxMeta]
	retires  int
}

// Init registers the recycler with a reclamation domain. It must be
// called once before any other method.
func (r *Recycler) Init(d *epoch.Domain) {
	r.slot = d.Register()
	r.versions.scrub = func(v *Version) {
		// Grace has passed: no reader can hold this node. Drop the
		// payload and sever the chain so a pooled node pins neither user
		// data nor already-dropped tail nodes.
		v.Value = nil
		v.prev.Store(nil)
	}
}

// Ready reports whether Init has been called.
func (r *Recycler) Ready() bool { return r.slot != nil }

// Pin enters the owning thread's read-side critical section; nests.
func (r *Recycler) Pin() { r.slot.Pin() }

// Unpin leaves the critical section entered by the matching Pin.
func (r *Recycler) Unpin() { r.slot.Unpin() }

// tick amortizes epoch advancement across retirements.
func (r *Recycler) tick() {
	r.retires++
	if r.retires%advanceEvery == 0 {
		r.slot.Domain().TryAdvance()
	}
}

// RetireVersion hands a version that has been unlinked from its object's
// chain to the recycler. The caller must have removed every shared path
// to v before calling (concurrent readers that found v earlier are
// protected by their pins).
func (r *Recycler) RetireVersion(v *Version) {
	r.versions.retire(r.slot.Domain().Epoch(), v)
	r.tick()
}

// version returns a reusable Version whose grace period has passed, or
// nil. Pooled versions are already scrubbed; the caller overwrites
// every field before publishing.
func (r *Recycler) version() *Version {
	d := r.slot.Domain()
	if v, ok := r.versions.get(d.Safe()); ok {
		return v
	}
	// One advance attempt on a miss keeps a single-threaded loop (retire,
	// retire, get) from starving: with no other pinned slots the epoch
	// moves freely.
	d.TryAdvance()
	if v, ok := r.versions.get(d.Safe()); ok {
		return v
	}
	return nil
}

// RetireMeta hands a transaction descriptor to the recycler. The caller
// must guarantee the descriptor is unreachable for new readers: its
// transaction finished and released every writer word (existing holders
// are protected by their pins).
func (r *Recycler) RetireMeta(m *TxMeta) {
	r.metas.retire(r.slot.Domain().Epoch(), m)
	r.tick()
}

// NewMeta returns a descriptor in StatusActive with a fresh ID, reusing a
// retired descriptor whose grace period has passed when one is available.
func (r *Recycler) NewMeta(kind TxKind, threadID int) *TxMeta {
	d := r.slot.Domain()
	if m, ok := r.metas.get(d.Safe()); ok {
		m.Reset(kind, threadID)
		return m
	}
	d.TryAdvance()
	if m, ok := r.metas.get(d.Safe()); ok {
		m.Reset(kind, threadID)
		return m
	}
	return NewTxMeta(kind, threadID)
}
