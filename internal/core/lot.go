package core

import (
	"sync"
	"sync/atomic"
)

// lotShards is the number of parking-lot shards. A power of two so the
// object-ID → shard mapping is a mask; 64 shards keep commit-side wake
// probes and park-side registrations from serializing on one lock even
// with many hot objects.
const lotShards = 64

// Watch is one entry of a blocked transaction's read footprint: the
// object it read (by ID, which keys the parking lot, and by handle,
// which the owning backend uses to re-check currency) and the Seq of the
// version it observed. Seq is recorded at read time, while the reading
// transaction's epoch pin protects the version node, so a Watch never
// dangles into a recycled Version: only the uint64s survive the abort.
//
// Per-object Seq is what "footprint changed" means under every time
// base: scalar clocks, vector clocks and plausible clocks all install a
// fresh version with Seq = prev.Seq+1, so a Seq mismatch is exactly "a
// transaction committed an update to this object after my read".
type Watch struct {
	// ID is the object's process-unique identifier (NextObjectID).
	ID uint64
	// Seq is the per-object sequence number of the version the blocked
	// transaction read.
	Seq uint64
	// Obj is the backend's object handle (*core.Object, *cstm.Object,
	// ...). Only the backend that produced the Watch inspects it.
	Obj any
}

// Waiter is one thread's parking handle. A Waiter is owned by a single
// goroutine and reused across parks; the parking lot holds references to
// it only between Enqueue and Dequeue.
type Waiter struct {
	// ch carries wakeups. Capacity 1 makes notify idempotent: any number
	// of concurrent commits collapse into one token.
	ch chan struct{}
}

// NewWaiter returns a parking handle for one goroutine.
func NewWaiter() *Waiter { return &Waiter{ch: make(chan struct{}, 1)} }

// notify delivers a wakeup without blocking; extra notifications beyond
// the buffered one are dropped (the waiter is already runnable).
func (w *Waiter) notify() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// Await blocks until a wakeup arrives.
func (w *Waiter) Await() { <-w.ch }

// drain discards a pending wakeup so a recycled Waiter does not wake
// immediately on its next park from a stale notification.
func (w *Waiter) drain() {
	select {
	case <-w.ch:
	default:
	}
}

// lotShard is one shard of the parking lot. The waiter count leads on
// its own cache line so the commit-side fast probe (count == 0, no
// waiters anywhere near this shard) never touches the line the mutex
// and map bounce on; the trailing pad keeps the next shard's count off
// this shard's map line. Shards live in an array, so the layout below
// is load-bearing — see TestLotShardPadding.
type lotShard struct {
	// count is the number of registered watch entries in this shard,
	// maintained under mu but read without it by Wake's fast path.
	count atomic.Int64
	_     [56]byte

	mu      sync.Mutex
	waiters map[uint64][]*Waiter
	_       [48]byte
}

// ParkingLot is a sharded registry of threads blocked in Retry, keyed by
// object ID. One lot serves one TM instance; every backend commit path
// publishes a wakeup per written object through Wake.
//
// The no-lost-wakeup protocol is split between the lot and its caller:
//
//	reader: Enqueue(w, ws) → re-check footprint → Block(w) → Dequeue(w, ws)
//	writer: install versions → Wake(id) for each written object
//
// Registration and the wake scan run under the same shard mutex, and
// the commit-side fast probe reads count with sequentially consistent
// atomics, so a writer either observes the registration (and notifies)
// or the reader's post-Enqueue re-check observes the writer's install
// (and skips the park). A ParkingLot contains locks and must not be
// copied.
type ParkingLot struct {
	shards [lotShards]lotShard

	// Counters are slow-path only (parking is the opposite of a hot
	// loop), so plain shared atomics suffice.
	parks    atomic.Uint64
	wakes    atomic.Uint64
	spurious atomic.Uint64
}

// NewParkingLot returns an empty parking lot.
func NewParkingLot() *ParkingLot {
	l := &ParkingLot{}
	for i := range l.shards {
		l.shards[i].waiters = make(map[uint64][]*Waiter)
	}
	return l
}

func (l *ParkingLot) shard(id uint64) *lotShard { return &l.shards[id&(lotShards-1)] }

// Enqueue registers w on every watched object. Duplicate IDs in ws are
// tolerated (read sets may contain re-reads); the matching Dequeue
// removes all occurrences.
func (l *ParkingLot) Enqueue(w *Waiter, ws []Watch) {
	for i := range ws {
		sh := l.shard(ws[i].ID)
		sh.mu.Lock()
		sh.waiters[ws[i].ID] = append(sh.waiters[ws[i].ID], w)
		sh.count.Add(1)
		sh.mu.Unlock()
	}
}

// Dequeue removes every registration of w for the watched objects and
// clears any pending wakeup, leaving w ready for its next park. It must
// be called with the same watch set as the matching Enqueue.
func (l *ParkingLot) Dequeue(w *Waiter, ws []Watch) {
	for i := range ws {
		sh := l.shard(ws[i].ID)
		sh.mu.Lock()
		list := sh.waiters[ws[i].ID]
		kept := list[:0]
		for _, x := range list {
			if x != w {
				kept = append(kept, x)
			}
		}
		if removed := len(list) - len(kept); removed > 0 {
			sh.count.Add(int64(-removed))
		}
		if len(kept) == 0 {
			delete(sh.waiters, ws[i].ID)
		} else {
			for j := len(kept); j < len(list); j++ {
				list[j] = nil // drop the waiter reference
			}
			sh.waiters[ws[i].ID] = kept
		}
		sh.mu.Unlock()
	}
	// All shards w was registered in have been locked and unlocked, so
	// every notify aimed at those registrations has completed: the drain
	// cannot race with a late send.
	w.drain()
}

// Wake notifies every waiter parked on the object. Commit paths call it
// once per written object after the new version is installed; when no
// thread is parked anywhere near the object's shard it costs one atomic
// load.
func (l *ParkingLot) Wake(id uint64) {
	sh := l.shard(id)
	if sh.count.Load() == 0 {
		return
	}
	sh.mu.Lock()
	for _, w := range sh.waiters[id] {
		w.notify()
	}
	sh.mu.Unlock()
}

// Block parks the calling goroutine on w until a wakeup arrives,
// maintaining the park/wake counters. The caller must have Enqueued w
// and re-checked its footprint first.
func (l *ParkingLot) Block(w *Waiter) {
	l.parks.Add(1)
	w.Await()
	l.wakes.Add(1)
}

// NoteSpurious records a wakeup that did not unblock its waiter (the
// re-run transaction retried again).
func (l *ParkingLot) NoteSpurious() { l.spurious.Add(1) }

// Counters returns the cumulative park, wakeup and spurious-wakeup
// counts.
func (l *ParkingLot) Counters() (parks, wakes, spurious uint64) {
	return l.parks.Load(), l.wakes.Load(), l.spurious.Load()
}

// StaleScalar reports whether any watch taken over the scalar-clock
// object header (*core.Object) has advanced past its recorded Seq — the
// shared WatchesStale body of the LSA, Z-STM and SI-STM backends.
// Backends that recycle version nodes must hold their epoch pin across
// the call, so a version displaced mid-scan cannot be reused before the
// Seq read completes.
//
//tbtm:pinned
//tbtm:noalloc
func StaleScalar(ws []Watch) bool {
	for i := range ws {
		if ws[i].Obj.(*Object).Current().Seq != ws[i].Seq {
			return true
		}
	}
	return false
}

// Waiters returns the number of currently registered watch entries
// (tests and diagnostics).
func (l *ParkingLot) Waiters() int {
	n := int64(0)
	for i := range l.shards {
		n += l.shards[i].count.Load()
	}
	return int(n)
}
