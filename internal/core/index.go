package core

// smallIndexCap is the inline capacity of a SmallIndex. Typical short
// transactions touch a handful of objects; eight covers them with a
// linear scan over one cache line of keys before falling back to a map.
const smallIndexCap = 8

// SmallIndex maps object IDs to small integer positions (an index into a
// transaction's write or read log). The first few entries live in an
// inline array probed linearly; larger footprints spill into a map. A
// SmallIndex is reset in place between transactions so the warm path
// performs no allocation at all, replacing the per-transaction
// make(map[uint64]int) the write sets used to pay on first write.
//
// The zero value is empty and ready to use. Not safe for concurrent use;
// an index belongs to a single transaction at a time.
type SmallIndex struct {
	keys [smallIndexCap]uint64
	vals [smallIndexCap]int
	n    int
	m    map[uint64]int
}

// Get returns the position stored for key.
//
//tbtm:noalloc
func (ix *SmallIndex) Get(key uint64) (int, bool) {
	for i := 0; i < ix.n; i++ {
		if ix.keys[i] == key {
			return ix.vals[i], true
		}
	}
	if ix.m != nil {
		v, ok := ix.m[key]
		return v, ok
	}
	return 0, false
}

// Put stores key → val. The caller ensures key is not already present
// (transactions check with Get before logging a new entry); storing a
// duplicate key leaves the first mapping visible.
func (ix *SmallIndex) Put(key uint64, val int) {
	if ix.n < smallIndexCap {
		ix.keys[ix.n] = key
		ix.vals[ix.n] = val
		ix.n++
		return
	}
	if ix.m == nil {
		ix.m = make(map[uint64]int, 2*smallIndexCap)
	}
	ix.m[key] = val
}

// Len returns the number of stored entries.
func (ix *SmallIndex) Len() int { return ix.n + len(ix.m) }

// Reset empties the index in place, retaining the inline array and any
// spill map for reuse.
func (ix *SmallIndex) Reset() {
	ix.n = 0
	if ix.m != nil {
		clear(ix.m)
	}
}
