package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func TestLotWakeUnblocks(t *testing.T) {
	l := NewParkingLot()
	w := NewWaiter()
	ws := []Watch{{ID: 7, Seq: 1}}
	l.Enqueue(w, ws)
	done := make(chan struct{})
	go func() {
		l.Block(w)
		close(done)
	}()
	l.Wake(7)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken")
	}
	l.Dequeue(w, ws)
	if n := l.Waiters(); n != 0 {
		t.Fatalf("waiters after dequeue = %d, want 0", n)
	}
	if parks, wakes, _ := l.Counters(); parks != 1 || wakes != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", parks, wakes)
	}
}

// TestLotWakeBeforeBlock is the lost-wakeup unit test: a wake delivered
// after Enqueue but before Block must still unblock the waiter (this is
// the "writer commits between read and park" window; the facade
// additionally re-checks the footprint, but the lot alone must already
// buffer the token).
func TestLotWakeBeforeBlock(t *testing.T) {
	l := NewParkingLot()
	w := NewWaiter()
	ws := []Watch{{ID: 42, Seq: 1}}
	l.Enqueue(w, ws)
	l.Wake(42) // before the waiter sleeps
	done := make(chan struct{})
	go func() {
		l.Block(w)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-block wakeup was lost")
	}
	l.Dequeue(w, ws)
}

func TestLotWakeWrongObjectDoesNotUnblock(t *testing.T) {
	l := NewParkingLot()
	w := NewWaiter()
	ws := []Watch{{ID: 1, Seq: 1}}
	l.Enqueue(w, ws)
	// Same shard (1 and 1+lotShards collide mod 64), different object:
	// must not notify.
	l.Wake(1 + lotShards)
	select {
	case <-w.ch:
		t.Fatal("woken by a different object in the same shard")
	default:
	}
	l.Dequeue(w, ws)
}

func TestLotDequeueDrainsStaleWakeup(t *testing.T) {
	l := NewParkingLot()
	w := NewWaiter()
	ws := []Watch{{ID: 9, Seq: 1}}
	l.Enqueue(w, ws)
	l.Wake(9)
	l.Dequeue(w, ws) // never blocked: the buffered token must be drained
	l.Enqueue(w, ws)
	select {
	case <-w.ch:
		t.Fatal("stale wakeup survived Dequeue")
	default:
	}
	l.Dequeue(w, ws)
}

func TestLotDuplicateWatches(t *testing.T) {
	l := NewParkingLot()
	w := NewWaiter()
	// Read sets may contain re-reads: the same object twice.
	ws := []Watch{{ID: 5, Seq: 1}, {ID: 5, Seq: 1}, {ID: 6, Seq: 1}}
	l.Enqueue(w, ws)
	if n := l.Waiters(); n != 3 {
		t.Fatalf("waiters = %d, want 3", n)
	}
	l.Dequeue(w, ws)
	if n := l.Waiters(); n != 0 {
		t.Fatalf("waiters after dequeue = %d, want 0", n)
	}
}

// TestLotShardPadding guards the layout the commit-side fast probe
// relies on: the waiter count must lead its own cache line (no false
// sharing with the mutex/map line writers bounce on), and a shard must
// be a whole number of cache lines so the counts of neighbouring shards
// in the array never share one.
func TestLotShardPadding(t *testing.T) {
	var sh lotShard
	if off := unsafe.Offsetof(sh.mu); off < 64 {
		t.Fatalf("mutex at offset %d, want >= 64 (count must own its line)", off)
	}
	if sz := unsafe.Sizeof(sh); sz%64 != 0 {
		t.Fatalf("lotShard size %d is not a multiple of the cache line", sz)
	}
	if lotShards&(lotShards-1) != 0 {
		t.Fatalf("lotShards = %d, want a power of two", lotShards)
	}
}

// TestLotTorture hammers park/wake/cancel with many goroutines under
// the race detector: parkers watch random object sets and count their
// wakeups; wakers bump per-object versions and wake. The invariant is
// the blocking one — a parker whose watched object was bumped after its
// registration check must eventually unblock (the test deadlocks, and
// times out, on any lost wakeup).
func TestLotTorture(t *testing.T) {
	const objects = 97 // not a multiple of lotShards: uneven shard load
	parkers, rounds := 8, 400
	if testing.Short() {
		parkers, rounds = 4, 60
	}

	l := NewParkingLot()
	var seqs [objects]atomic.Uint64
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for p := 0; p < parkers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			w := NewWaiter()
			rng := uint64(p)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			ws := make([]Watch, 0, 4)
			for r := 0; r < rounds; r++ {
				ws = ws[:0]
				for i := 0; i < 1+int(next()%3); i++ {
					id := next() % objects
					ws = append(ws, Watch{ID: id, Seq: seqs[id].Load()})
				}
				l.Enqueue(w, ws)
				stale := false
				for _, x := range ws {
					if seqs[x.ID].Load() != x.Seq {
						stale = true
						break
					}
				}
				if !stale {
					l.Block(w) // a waker must eventually bump one of ws
				}
				l.Dequeue(w, ws)
				if next()%5 == 0 {
					// Abort path: register and cancel without blocking.
					l.Enqueue(w, ws)
					l.Dequeue(w, ws)
				}
			}
		}(p)
	}

	// Wakers: bump versions then wake, the commit-path order.
	var wwg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wwg.Add(1)
		go func(k int) {
			defer wwg.Done()
			rng := uint64(k)*0x123456789 + 99
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := next() % objects
				seqs[id].Add(1)
				l.Wake(id)
			}
		}(k)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("torture deadlocked: lost wakeup")
	}
	close(stop)
	wwg.Wait()
	if n := l.Waiters(); n != 0 {
		t.Fatalf("registrations leaked: %d", n)
	}
}
