// Package core provides the shared kernel used by every STM implementation
// in this repository: transaction descriptors with atomic status, the fat
// object header (version chain, writer lock, zone stamp, reader list), and
// the sentinel errors of the transactional API.
//
// The kernel follows the DSTM object model referenced by the paper
// (Herlihy et al., PODC 2003): objects are accessed indirectly, tentative
// versions stay private to the writer until commit, and write ownership is
// acquired with compare-and-swap so that conflicts can be arbitrated by a
// pluggable contention manager.
package core

import "errors"

var (
	// ErrConflict reports that the transaction lost a conflict (validation
	// failure, write/write arbitration, or zone crossing) and was aborted.
	// Transactions that fail with ErrConflict may be retried.
	ErrConflict = errors.New("tbtm: transaction conflict")

	// ErrAborted reports that the transaction was aborted, either
	// explicitly by the caller or by a contention manager acting on behalf
	// of another transaction.
	ErrAborted = errors.New("tbtm: transaction aborted")

	// ErrTxDone reports an operation on a transaction that has already
	// committed or aborted.
	ErrTxDone = errors.New("tbtm: transaction already finished")

	// ErrWrongObject reports an object that belongs to a different STM
	// instance or implementation than the transaction using it.
	ErrWrongObject = errors.New("tbtm: object belongs to a different STM")

	// ErrSnapshotUnavailable reports that no object version old enough for
	// the transaction's snapshot time is retained. It wraps ErrConflict
	// semantics: retrying may succeed with a fresh snapshot.
	ErrSnapshotUnavailable = errors.New("tbtm: no version available for snapshot time")

	// ErrReadOnly reports a write attempted by a transaction declared
	// read-only.
	ErrReadOnly = errors.New("tbtm: write in read-only transaction")
)

// IsRetryable reports whether err represents a transient transactional
// failure that a retry loop should re-execute.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrAborted) ||
		errors.Is(err, ErrSnapshotUnavailable)
}
