package core

import (
	"sync/atomic"
)

// TxKind classifies a transaction as short or long. The classification
// must be known when the transaction starts (paper §5.3); the adaptive
// package can supply it automatically from past behaviour.
type TxKind uint8

const (
	// Short marks a transaction expected to access few objects. Short
	// transactions run on the underlying time-based algorithm (e.g. LSA).
	Short TxKind = iota + 1
	// Long marks a transaction expected to access many objects. Under
	// Z-STM, long transactions are ordered by the zone counter.
	Long
)

// String returns "short" or "long".
func (k TxKind) String() string {
	switch k {
	case Short:
		return "short"
	case Long:
		return "long"
	default:
		return "unknown"
	}
}

// Status is the lifecycle state of a transaction descriptor. Transitions
// are monotonic: Active → Committing → Committed, or {Active,Committing} →
// Aborted. All transitions go through compare-and-swap so that any thread
// (including a contention manager aborting an enemy, or a helper finishing
// a committing transaction) can race safely.
type Status int32

const (
	// StatusActive is the initial state of a running transaction.
	StatusActive Status = iota + 1
	// StatusCommitting is the transient state published while a
	// transaction validates and installs its updates (S-STM helping,
	// paper §4.2 implementation notes).
	StatusCommitting
	// StatusCommitted is terminal: the transaction's versions are visible.
	StatusCommitted
	// StatusAborted is terminal: the transaction's tentative versions are
	// discarded.
	StatusAborted
)

// String returns the lower-case state name.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitting:
		return "committing"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}

// Terminal reports whether s is Committed or Aborted.
func (s Status) Terminal() bool {
	return s == StatusCommitted || s == StatusAborted
}

// txIDs issues process-unique transaction identifiers.
var txIDs atomic.Uint64

// NextTxID returns a fresh process-unique transaction ID. IDs are used by
// contention managers (Timestamp/Greedy policies) and by the history
// recorder; they carry no ordering semantics beyond uniqueness and start
// order.
func NextTxID() uint64 { return txIDs.Add(1) }

// TxMeta is the shared descriptor embedded in every STM's transaction
// type. It is the unit the contention managers and object writer locks
// operate on, so that the same arbitration code works across all five
// STM implementations.
type TxMeta struct {
	// ID is the process-unique start-ordered identifier.
	ID uint64
	// Kind is the short/long classification fixed at start.
	Kind TxKind
	// ThreadID identifies the Thread handle that started the transaction.
	ThreadID int
	// Prio is a contention-manager priority (e.g. Karma accumulates work).
	Prio atomic.Int64
	// Retries counts how many times this logical transaction has been
	// re-executed after an abort; used by backoff policies.
	Retries int
	// CommitTick is the scalar commit time the transaction installed its
	// writes under, recorded by the backend's commit path on a successful
	// update commit. Write-free commits leave it zero. A plain field is
	// safe under the recycler discipline: only the owning thread writes it
	// (at commit) and reads it (after Commit returns, before the
	// descriptor is recycled). Vector-clock backends (CS-STM, S-STM) have
	// no scalar commit time and never set it.
	CommitTick uint64

	status atomic.Int32
}

// NewTxMeta returns a descriptor in StatusActive with a fresh ID.
func NewTxMeta(kind TxKind, threadID int) *TxMeta {
	m := &TxMeta{ID: NextTxID(), Kind: kind, ThreadID: threadID}
	m.status.Store(int32(StatusActive))
	return m
}

// Reset re-initializes a recycled descriptor in place with a fresh ID and
// StatusActive. Only a Recycler may call it, and only on a descriptor
// whose reclamation grace period has passed: a descriptor is published to
// other threads through object writer words and contention managers, so
// resetting one that a stale reader could still hold would hand that
// reader a live transaction it has no claim on.
func (m *TxMeta) Reset(kind TxKind, threadID int) {
	m.ID = NextTxID()
	m.Kind = kind
	m.ThreadID = threadID
	m.Prio.Store(0)
	m.Retries = 0
	m.CommitTick = 0
	m.status.Store(int32(StatusActive))
}

// Status returns the current lifecycle state.
func (m *TxMeta) Status() Status { return Status(m.status.Load()) }

// CASStatus attempts the from→to transition and reports success.
func (m *TxMeta) CASStatus(from, to Status) bool {
	return m.status.CompareAndSwap(int32(from), int32(to))
}

// TryAbort moves the descriptor to StatusAborted unless it is already
// terminal. It returns true if the transaction is aborted after the call
// (whether by us or previously), false if it had already committed.
// Aborting a StatusCommitting transaction is allowed only from the
// transaction's own commit path; contention managers must not abort a
// committing enemy, so they use TryAbortActive instead.
func (m *TxMeta) TryAbort() bool {
	for {
		s := m.Status()
		switch s {
		case StatusCommitted:
			return false
		case StatusAborted:
			return true
		default:
			if m.CASStatus(s, StatusAborted) {
				return true
			}
		}
	}
}

// TryAbortActive aborts the descriptor only if it is still StatusActive.
// It reports whether the descriptor is aborted after the call. A false
// return means the enemy reached committing/committed first.
func (m *TxMeta) TryAbortActive() bool {
	if m.CASStatus(StatusActive, StatusAborted) {
		return true
	}
	return m.Status() == StatusAborted
}
