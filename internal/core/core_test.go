package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestTxKindString(t *testing.T) {
	tests := []struct {
		kind TxKind
		want string
	}{
		{Short, "short"},
		{Long, "long"},
		{TxKind(0), "unknown"},
		{TxKind(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("TxKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		status Status
		want   string
	}{
		{StatusActive, "active"},
		{StatusCommitting, "committing"},
		{StatusCommitted, "committed"},
		{StatusAborted, "aborted"},
		{Status(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.status.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.status, got, tt.want)
		}
	}
}

func TestStatusTerminal(t *testing.T) {
	tests := []struct {
		status Status
		want   bool
	}{
		{StatusActive, false},
		{StatusCommitting, false},
		{StatusCommitted, true},
		{StatusAborted, true},
	}
	for _, tt := range tests {
		if got := tt.status.Terminal(); got != tt.want {
			t.Errorf("%v.Terminal() = %v, want %v", tt.status, got, tt.want)
		}
	}
}

func TestNextTxIDUnique(t *testing.T) {
	const n = 1000
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := NextTxID()
		if seen[id] {
			t.Fatalf("duplicate tx id %d", id)
		}
		seen[id] = true
	}
}

func TestNextTxIDConcurrent(t *testing.T) {
	const workers, perWorker = 8, 500
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				ids = append(ids, NextTxID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate tx id %d", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestTxMetaLifecycle(t *testing.T) {
	m := NewTxMeta(Short, 3)
	if m.Status() != StatusActive {
		t.Fatalf("new TxMeta status = %v, want active", m.Status())
	}
	if m.Kind != Short || m.ThreadID != 3 {
		t.Fatalf("TxMeta fields = kind %v thread %d", m.Kind, m.ThreadID)
	}
	if !m.CASStatus(StatusActive, StatusCommitting) {
		t.Fatal("CAS active->committing failed")
	}
	if m.CASStatus(StatusActive, StatusAborted) {
		t.Fatal("CAS from stale state succeeded")
	}
	if !m.CASStatus(StatusCommitting, StatusCommitted) {
		t.Fatal("CAS committing->committed failed")
	}
	if m.Status() != StatusCommitted {
		t.Fatalf("status = %v, want committed", m.Status())
	}
}

func TestTryAbort(t *testing.T) {
	t.Run("active", func(t *testing.T) {
		m := NewTxMeta(Short, 0)
		if !m.TryAbort() {
			t.Fatal("TryAbort on active = false")
		}
		if m.Status() != StatusAborted {
			t.Fatalf("status = %v", m.Status())
		}
	})
	t.Run("committed", func(t *testing.T) {
		m := NewTxMeta(Short, 0)
		m.CASStatus(StatusActive, StatusCommitted)
		if m.TryAbort() {
			t.Fatal("TryAbort on committed = true")
		}
		if m.Status() != StatusCommitted {
			t.Fatalf("status = %v", m.Status())
		}
	})
	t.Run("already aborted", func(t *testing.T) {
		m := NewTxMeta(Short, 0)
		m.TryAbort()
		if !m.TryAbort() {
			t.Fatal("TryAbort on aborted = false")
		}
	})
}

func TestTryAbortActive(t *testing.T) {
	m := NewTxMeta(Short, 0)
	if !m.TryAbortActive() {
		t.Fatal("TryAbortActive on active = false")
	}
	m2 := NewTxMeta(Short, 0)
	m2.CASStatus(StatusActive, StatusCommitting)
	if m2.TryAbortActive() {
		t.Fatal("TryAbortActive aborted a committing transaction")
	}
	if m2.Status() != StatusCommitting {
		t.Fatalf("status = %v, want committing", m2.Status())
	}
}

func TestTryAbortConcurrentWithCommit(t *testing.T) {
	// Exactly one of commit / abort must win.
	for i := 0; i < 200; i++ {
		m := NewTxMeta(Short, 0)
		var wg sync.WaitGroup
		var committed, aborted bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			committed = m.CASStatus(StatusActive, StatusCommitted)
		}()
		go func() {
			defer wg.Done()
			aborted = m.TryAbortActive()
		}()
		wg.Wait()
		if committed == aborted {
			t.Fatalf("iteration %d: committed=%v aborted=%v (want exactly one)", i, committed, aborted)
		}
		final := m.Status()
		if committed && final != StatusCommitted {
			t.Fatalf("committed but status %v", final)
		}
		if aborted && final != StatusAborted {
			t.Fatalf("aborted but status %v", final)
		}
	}
}

func TestNewObjectInitialVersion(t *testing.T) {
	o := NewObject("init", 4)
	v := o.Current()
	if v == nil || v.Value != "init" || v.Seq != 1 || v.TS != 0 {
		t.Fatalf("initial version = %+v", v)
	}
	if o.Retain() != 4 {
		t.Fatalf("Retain() = %d, want 4", o.Retain())
	}
}

func TestNewObjectClampsKeep(t *testing.T) {
	for _, keep := range []int{0, -5} {
		o := NewObject(nil, keep)
		if o.Retain() != 1 {
			t.Errorf("NewObject(keep=%d).Retain() = %d, want 1", keep, o.Retain())
		}
	}
}

func TestObjectIDsUnique(t *testing.T) {
	a, b := NewObject(nil, 1), NewObject(nil, 1)
	if a.ID() == b.ID() {
		t.Fatalf("two objects share id %d", a.ID())
	}
}

func TestInstallAndChain(t *testing.T) {
	o := NewObject(0, 3)
	o.Install(1, 10, 101, 0)
	o.Install(2, 20, 102, 0)
	v := o.Current()
	if v.Value != 2 || v.TS != 20 || v.Seq != 3 || v.WriterID != 102 {
		t.Fatalf("current = %+v", v)
	}
	if v.Prev() == nil || v.Prev().Value != 1 || v.Prev().Prev() == nil || v.Prev().Prev().Value != 0 {
		t.Fatalf("chain broken: %+v", v)
	}
}

// TestInstallAmortizedTruncation pins the retention contract: after any
// number of installs the chain holds at least keep and fewer than
// 2*keep versions (truncation is amortized — one O(keep) cut every keep
// installs), and the retained suffix is always the newest versions.
func TestInstallAmortizedTruncation(t *testing.T) {
	const keep = 3
	o := NewObject(0, keep)
	for i := 1; i <= 20; i++ {
		o.Install(i, uint64(i*10), uint64(100+i), 0)
		depth := 0
		for p := o.Current(); p != nil; p = p.Prev() {
			depth++
			if depth > i+1 {
				t.Fatal("cycle in version chain")
			}
		}
		want := i + 1 // nothing truncated yet
		if want > 2*keep-1 {
			if depth < keep || depth > 2*keep-1 {
				t.Fatalf("after %d installs: depth = %d, want in [%d, %d]", i, depth, keep, 2*keep-1)
			}
		} else if depth != want {
			t.Fatalf("after %d installs: depth = %d, want %d", i, depth, want)
		}
		if cur := o.Current(); cur.Value != i {
			t.Fatalf("current = %v, want %d", cur.Value, i)
		}
	}
	// The retained versions are the newest ones, contiguous by Seq.
	prev := o.Current()
	for p := prev.Prev(); p != nil; prev, p = p, p.Prev() {
		if p.Seq != prev.Seq-1 {
			t.Fatalf("non-contiguous chain: %d after %d", p.Seq, prev.Seq)
		}
	}
}

func TestSingleVersionTruncation(t *testing.T) {
	o := NewObject(0, 1)
	o.Install(1, 10, 1, 0)
	if o.Current().Prev() != nil {
		t.Fatal("single-version object retained an old version")
	}
}

func TestFindAt(t *testing.T) {
	o := NewObject("v0", 8)
	o.Install("v1", 10, 1, 0)
	o.Install("v2", 20, 2, 0)
	tests := []struct {
		t    uint64
		want any
	}{
		{0, "v0"},
		{9, "v0"},
		{10, "v1"},
		{19, "v1"},
		{20, "v2"},
		{1000, "v2"},
	}
	for _, tt := range tests {
		v := o.FindAt(tt.t)
		if v == nil || v.Value != tt.want {
			t.Errorf("FindAt(%d) = %+v, want value %v", tt.t, v, tt.want)
		}
	}
}

func TestFindAtTooOld(t *testing.T) {
	o := NewObject("v0", 1)
	o.Install("v1", 10, 1, 0)
	if v := o.FindAt(5); v != nil {
		t.Fatalf("FindAt(5) on truncated chain = %+v, want nil", v)
	}
}

func TestWriterCAS(t *testing.T) {
	o := NewObject(nil, 1)
	a, b := NewTxMeta(Short, 0), NewTxMeta(Short, 1)
	if !o.CASWriter(nil, a) {
		t.Fatal("CASWriter(nil, a) failed on free object")
	}
	if o.CASWriter(nil, b) {
		t.Fatal("CASWriter(nil, b) succeeded while owned")
	}
	if o.Writer() != a {
		t.Fatal("Writer() != a")
	}
	o.ReleaseWriter(b) // not the owner: no-op
	if o.Writer() != a {
		t.Fatal("ReleaseWriter by non-owner released the lock")
	}
	o.ReleaseWriter(a)
	if o.Writer() != nil {
		t.Fatal("ReleaseWriter by owner did not release")
	}
}

func TestWriterCASConcurrent(t *testing.T) {
	o := NewObject(nil, 1)
	const n = 16
	winners := make(chan int, n)
	var wg sync.WaitGroup
	metas := make([]*TxMeta, n)
	for i := range metas {
		metas[i] = NewTxMeta(Short, i)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if o.CASWriter(nil, metas[i]) {
				winners <- i
			}
		}(i)
	}
	wg.Wait()
	close(winners)
	count := 0
	for range winners {
		count++
	}
	if count != 1 {
		t.Fatalf("%d goroutines acquired the writer lock, want 1", count)
	}
}

func TestRaiseZC(t *testing.T) {
	o := NewObject(nil, 1)
	if !o.RaiseZC(5) {
		t.Fatal("RaiseZC(5) from 0 = false")
	}
	if o.ZC() != 5 {
		t.Fatalf("ZC = %d, want 5", o.ZC())
	}
	if !o.RaiseZC(5) {
		t.Fatal("RaiseZC(5) at 5 = false (equal zone must succeed)")
	}
	if o.RaiseZC(3) {
		t.Fatal("RaiseZC(3) at 5 = true (passed transaction must fail)")
	}
	if o.ZC() != 5 {
		t.Fatalf("ZC changed to %d after failed raise", o.ZC())
	}
	if !o.RaiseZC(9) {
		t.Fatal("RaiseZC(9) at 5 = false")
	}
}

func TestRaiseZCMonotonicProperty(t *testing.T) {
	// Property: after any sequence of RaiseZC calls, ZC equals the maximum
	// argument among successful calls and never decreases.
	f := func(raises []uint64) bool {
		o := NewObject(nil, 1)
		var max uint64
		for _, z := range raises {
			prev := o.ZC()
			ok := o.RaiseZC(z)
			if z >= prev && !ok {
				return false
			}
			if z < prev && ok && z != prev {
				return false
			}
			if o.ZC() < prev {
				return false
			}
			if z > max {
				max = z
			}
		}
		return o.ZC() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRaiseZCConcurrent(t *testing.T) {
	o := NewObject(nil, 1)
	const n = 32
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(z uint64) {
			defer wg.Done()
			o.RaiseZC(z)
		}(uint64(i))
	}
	wg.Wait()
	if o.ZC() != n {
		t.Fatalf("ZC = %d after concurrent raises, want %d", o.ZC(), n)
	}
}

func TestIsRetryable(t *testing.T) {
	tests := []struct {
		err  error
		want bool
	}{
		{ErrConflict, true},
		{ErrAborted, true},
		{ErrSnapshotUnavailable, true},
		{fmt.Errorf("validate: %w", ErrConflict), true},
		{ErrTxDone, false},
		{ErrWrongObject, false},
		{ErrReadOnly, false},
		{errors.New("other"), false},
		{nil, false},
	}
	for _, tt := range tests {
		if got := IsRetryable(tt.err); got != tt.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}
