// Package adaptive implements automatic long/short transaction
// classification, the alternative the paper sketches in §5.3: "an
// automatic marking based on past behaviors of transactions would be a
// viable alternative" to explicit programmer annotation.
//
// A Classifier tracks, per call site, an exponential moving average of
// the number of objects a transaction opens and its recent abort streak.
// A site is promoted to Long once its average footprint exceeds the
// threshold, or when it keeps aborting as a short transaction despite a
// sizeable footprint (the situation of Figure 7's Compute-Total under a
// linearizable STM). A long-classified site whose footprint shrinks is
// demoted again, with hysteresis to avoid flapping.
package adaptive

import (
	"sync"

	"tbtm/internal/core"
)

// Config tunes the classifier.
type Config struct {
	// LongOpens promotes a site whose average open count is at or above
	// this value (default 64).
	LongOpens float64
	// DemoteOpens demotes a long site whose average falls below this
	// value (default LongOpens/2). The hysteresis band requires
	// DemoteOpens < LongOpens; non-positive values and values at or above
	// LongOpens fall back to LongOpens/2, so a misconfigured pair can
	// never make sites flap between promotion at LongOpens and immediate
	// demotion.
	DemoteOpens float64
	// AbortStreak promotes a site that aborted this many consecutive
	// times with at least MinOpensForAbortPromotion opens (default 8).
	AbortStreak int
	// MinOpensForAbortPromotion guards the abort-streak rule against
	// promoting genuinely tiny transactions (default 8).
	MinOpensForAbortPromotion float64
	// Alpha is the EMA smoothing factor in (0, 1] (default 0.2).
	Alpha float64
}

func (c *Config) defaults() {
	if c.LongOpens <= 0 {
		c.LongOpens = 64
	}
	if c.DemoteOpens <= 0 || c.DemoteOpens >= c.LongOpens {
		c.DemoteOpens = c.LongOpens / 2
	}
	if c.AbortStreak <= 0 {
		c.AbortStreak = 8
	}
	if c.MinOpensForAbortPromotion <= 0 {
		c.MinOpensForAbortPromotion = 8
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
}

// site is the per-call-site statistics record.
type site struct {
	emaOpens    float64
	abortStreak int
	long        bool
	samples     uint64
}

// Classifier assigns transaction kinds from past behaviour. It is safe
// for concurrent use.
type Classifier struct {
	cfg Config

	mu    sync.Mutex
	sites map[string]*site
}

// NewClassifier returns a classifier with the given configuration.
func NewClassifier(cfg Config) *Classifier {
	cfg.defaults()
	return &Classifier{cfg: cfg, sites: make(map[string]*site)}
}

// Classify returns the kind to run the named site's next transaction as.
// Unknown sites start as Short (the paper's default assumption: most
// transactions are short).
func (c *Classifier) Classify(name string) core.TxKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sites[name]; s != nil && s.long {
		return core.Long
	}
	return core.Short
}

// Observe records one finished execution of the named site: how many
// objects it opened and whether it committed. It returns the kind the
// site is classified as after the observation.
func (c *Classifier) Observe(name string, opens int, committed bool) core.TxKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sites[name]
	if s == nil {
		s = &site{}
		c.sites[name] = s
	}
	s.samples++
	if s.emaOpens == 0 {
		s.emaOpens = float64(opens)
	} else {
		s.emaOpens = (1-c.cfg.Alpha)*s.emaOpens + c.cfg.Alpha*float64(opens)
	}
	if committed {
		s.abortStreak = 0
	} else {
		s.abortStreak++
	}

	switch {
	case !s.long && s.emaOpens >= c.cfg.LongOpens:
		s.long = true
	case !s.long && s.abortStreak >= c.cfg.AbortStreak && s.emaOpens >= c.cfg.MinOpensForAbortPromotion:
		s.long = true
	case s.long && s.emaOpens < c.cfg.DemoteOpens && s.abortStreak == 0:
		s.long = false
	}
	if s.long {
		return core.Long
	}
	return core.Short
}

// SiteStats is a snapshot of one site's statistics.
type SiteStats struct {
	Name        string
	EMAOpens    float64
	AbortStreak int
	Long        bool
	Samples     uint64
}

// Stats returns a snapshot of every known site.
func (c *Classifier) Stats() []SiteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SiteStats, 0, len(c.sites))
	for name, s := range c.sites {
		out = append(out, SiteStats{
			Name: name, EMAOpens: s.emaOpens, AbortStreak: s.abortStreak,
			Long: s.long, Samples: s.samples,
		})
	}
	return out
}
