package adaptive

import (
	"strconv"
	"testing"
	"testing/quick"

	"tbtm/internal/core"
)

// TestQuickObserveNeverPanicsAndClassifies feeds arbitrary observation
// streams through one classifier and checks the classification stays a
// valid kind and Classify agrees with the last Observe verdict.
func TestQuickObserveNeverPanicsAndClassifies(t *testing.T) {
	c := NewClassifier(Config{})
	prop := func(siteID uint8, opens []uint16, commits []bool) bool {
		name := "site" + strconv.Itoa(int(siteID%8))
		last := c.Classify(name)
		for i, o := range opens {
			committed := i < len(commits) && commits[i]
			last = c.Observe(name, int(o%2048), committed)
			if last != core.Short && last != core.Long {
				return false
			}
		}
		return c.Classify(name) == last
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPromotionAboveThreshold checks the promotion law for
// arbitrary thresholds: a site that always opens at least the threshold
// is Long after its first observation (the EMA seeds at the first
// sample), and stays Long while its footprint stays there.
func TestQuickPromotionAboveThreshold(t *testing.T) {
	prop := func(threshold uint8, over uint8, commits []bool) bool {
		th := float64(threshold%200) + 1
		c := NewClassifier(Config{LongOpens: th})
		opens := int(th) + int(over)
		name := "hot"
		for i := 0; i < 10; i++ {
			committed := i < len(commits) && commits[i]
			if c.Observe(name, opens, committed) != core.Long {
				return false
			}
		}
		return c.Classify(name) == core.Long
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTinySitesNeverPromoted checks the guard rails: sites whose
// footprint stays below both the long threshold and the abort-promotion
// minimum are never classified Long, no matter the commit/abort pattern.
func TestQuickTinySitesNeverPromoted(t *testing.T) {
	c := NewClassifier(Config{LongOpens: 64, MinOpensForAbortPromotion: 8})
	prop := func(opens []uint8, commits []bool) bool {
		name := "tiny"
		for i, o := range opens {
			committed := i < len(commits) && commits[i]
			if c.Observe(name, int(o%8), committed) == core.Long {
				return false
			}
		}
		return c.Classify(name) == core.Short
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatsAccountAllSamples checks Stats bookkeeping: the sample
// count across sites equals the number of Observe calls.
func TestQuickStatsAccountAllSamples(t *testing.T) {
	prop := func(stream []uint8) bool {
		c := NewClassifier(Config{})
		for i, b := range stream {
			c.Observe("s"+strconv.Itoa(int(b%4)), int(b), i%3 != 0)
		}
		var total uint64
		for _, s := range c.Stats() {
			total += s.Samples
		}
		return total == uint64(len(stream))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
