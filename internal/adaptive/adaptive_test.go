package adaptive

import (
	"sync"
	"testing"

	"tbtm/internal/core"
)

func TestUnknownSiteIsShort(t *testing.T) {
	c := NewClassifier(Config{})
	if got := c.Classify("new"); got != core.Short {
		t.Fatalf("Classify(new) = %v, want short", got)
	}
}

func TestPromotionByFootprint(t *testing.T) {
	c := NewClassifier(Config{LongOpens: 50})
	// A site that opens 1000 objects is promoted immediately (EMA seeds
	// at the first sample).
	if got := c.Observe("total", 1000, true); got != core.Long {
		t.Fatalf("Observe = %v, want long", got)
	}
	if got := c.Classify("total"); got != core.Long {
		t.Fatalf("Classify = %v, want long", got)
	}
}

func TestSmallSitesStayShort(t *testing.T) {
	c := NewClassifier(Config{LongOpens: 50})
	for i := 0; i < 100; i++ {
		if got := c.Observe("transfer", 2, true); got != core.Short {
			t.Fatalf("iteration %d: %v", i, got)
		}
	}
}

func TestPromotionByAbortStreak(t *testing.T) {
	c := NewClassifier(Config{LongOpens: 1000, AbortStreak: 5, MinOpensForAbortPromotion: 10})
	// A mid-sized transaction that keeps aborting as short gets promoted.
	for i := 0; i < 4; i++ {
		if got := c.Observe("sum", 40, false); got != core.Short {
			t.Fatalf("promoted too early at %d", i)
		}
	}
	if got := c.Observe("sum", 40, false); got != core.Long {
		t.Fatal("abort streak did not promote")
	}
}

func TestAbortStreakGuardedByFootprint(t *testing.T) {
	c := NewClassifier(Config{AbortStreak: 3, MinOpensForAbortPromotion: 10})
	for i := 0; i < 20; i++ {
		if got := c.Observe("tiny", 2, false); got != core.Short {
			t.Fatal("tiny aborting site promoted")
		}
	}
}

func TestDemotionWithHysteresis(t *testing.T) {
	c := NewClassifier(Config{LongOpens: 50, Alpha: 0.5})
	c.Observe("site", 200, true) // promoted
	if c.Classify("site") != core.Long {
		t.Fatal("not promoted")
	}
	// Footprint shrinks: EMA decays toward 2, eventually below 25.
	for i := 0; i < 20; i++ {
		c.Observe("site", 2, true)
	}
	if c.Classify("site") != core.Short {
		t.Fatal("not demoted after footprint shrank")
	}
	// In-between footprint (between demote and promote) stays put.
	c2 := NewClassifier(Config{LongOpens: 50, Alpha: 1})
	c2.Observe("s", 200, true)
	c2.Observe("s", 30, true) // 30 >= 25 (demote threshold): stays long
	if c2.Classify("s") != core.Long {
		t.Fatal("hysteresis band did not hold")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := NewClassifier(Config{})
	c.Observe("a", 10, true)
	c.Observe("b", 100, false)
	st := c.Stats()
	if len(st) != 2 {
		t.Fatalf("stats has %d sites", len(st))
	}
	for _, s := range st {
		if s.Samples != 1 {
			t.Fatalf("site %s samples = %d", s.Name, s.Samples)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := NewClassifier(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Observe("shared", 100, i%2 == 0)
				c.Classify("shared")
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if len(st) != 1 || st[0].Samples != 1600 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := NewClassifier(Config{DemoteOpens: 99999}) // invalid: above LongOpens
	// Promotion at default threshold 64 still works.
	if got := c.Observe("x", 64, true); got != core.Long {
		t.Fatal("default LongOpens not applied")
	}
}

// TestDefaultsClampHysteresis pins the defaults audit: every degenerate
// DemoteOpens (negative, zero, equal to LongOpens, above LongOpens) must
// clamp to LongOpens/2, preserving the hysteresis band — a site promoted
// at LongOpens must not demote until its average halves.
func TestDefaultsClampHysteresis(t *testing.T) {
	for _, demote := range []float64{-5, 0, 64, 99999} {
		cfg := Config{LongOpens: 64, DemoteOpens: demote}
		cfg.defaults()
		if cfg.DemoteOpens != 32 {
			t.Fatalf("DemoteOpens=%v: clamped to %v, want 32", demote, cfg.DemoteOpens)
		}
		if cfg.DemoteOpens >= cfg.LongOpens {
			t.Fatalf("DemoteOpens=%v: no hysteresis band (%v >= %v)", demote, cfg.DemoteOpens, cfg.LongOpens)
		}
	}
	// Negative promotion thresholds and smoothing factors clamp too.
	cfg := Config{LongOpens: -1, AbortStreak: -1, MinOpensForAbortPromotion: -1, Alpha: -0.5}
	cfg.defaults()
	if cfg.LongOpens != 64 || cfg.AbortStreak != 8 || cfg.MinOpensForAbortPromotion != 8 || cfg.Alpha != 0.2 {
		t.Fatalf("negative config not clamped: %+v", cfg)
	}
}
