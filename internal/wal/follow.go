package wal

// Live tail: following the log past a given sequence number.
//
// A Follower streams the log's records — sealed segments, the growing
// active segment, and then batches as the batcher writes them — to a
// consumer (tbtmd's replication layer). The contract is seq-contiguous
// delivery: every call to Recv returns a chunk of whole records whose
// first seq is exactly one past the last chunk's, in one epoch.
//
// The design splits delivery into two phases:
//
//   - FILE phase: while the follower is behind the subscribe-time
//     boundary, chunks are read straight from segment files. The
//     boundary is the last seq the batcher had written when the
//     follower subscribed, captured under iomu right after flushing the
//     segment writer — so every record at or below it is file-visible,
//     and bytes past it (possibly torn mid-write at the live edge) are
//     never examined.
//
//   - LIVE phase: at the boundary the follower switches to its
//     subscription channel, which the batcher feeds one chunk per
//     written batch (the batch buffer itself — immutable once written —
//     shared by every subscriber, no copies). Subscription happened
//     under the same iomu hold that read the boundary, and batches are
//     written under iomu in seq order, so the first live chunk starts
//     exactly at boundary+1.
//
// A follower that cannot keep up does not stall the batcher: the
// subscription channel is buffered, and when it fills the batcher
// CLOSES it and forgets the subscriber. The follower observes the
// closed channel and falls back to the file phase (re-subscribing for a
// fresh boundary), re-reading what it missed from the files. Rotation
// is transparent (chunks never span segments; sealed segments are
// plain files); checkpoint pruning under an active follower surfaces as
// a failed file open, reported as ErrPruned — the consumer restarts
// from the latest checkpoint, which is exactly what pruning promises is
// sufficient.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// ErrPruned reports that the requested position has been pruned by a
// checkpoint: the follower must bootstrap from the latest checkpoint
// instead of tailing records.
var ErrPruned = errors.New("wal: position pruned by checkpoint; bootstrap from checkpoint")

// ErrStopped reports that Recv returned because the caller's stop
// channel closed.
var ErrStopped = errors.New("wal: follower stopped")

// maxFileChunk bounds one file-phase chunk (whole records only).
const maxFileChunk = 256 << 10

// Chunk is one seq-contiguous run of raw encoded records from a single
// epoch. Bytes is owned by the log (a batch buffer or a file read);
// consumers must not modify it, and must copy if they retain it past
// the next Recv.
type Chunk struct {
	Epoch uint64
	First uint64
	Last  uint64
	Bytes []byte
}

// subscriber is one live-phase listener. The batcher sends each written
// batch's chunk non-blockingly; a full channel means the follower
// lagged, and the batcher closes the channel instead of waiting.
type subscriber struct {
	ch chan Chunk
}

// Record is a decoded WAL record (the exported face of the on-disk
// format, for replicas applying shipped chunks).
type Record struct {
	Seq  uint64
	Tick uint64
	Ops  []Op
}

// DecodeRecord decodes the record at the head of b, returning it and
// the encoded size. Errors mean torn or corrupt bytes.
func DecodeRecord(b []byte) (Record, int, error) {
	r, n, err := nextRecord(b)
	if err != nil {
		return Record{}, 0, err
	}
	return Record{Seq: r.seq, Tick: r.tick, Ops: r.ops}, n, nil
}

// CheckpointSeq returns the seq the newest on-disk checkpoint covers (0
// if none).
func (l *Log) CheckpointSeq() uint64 {
	l.iomu.Lock()
	defer l.iomu.Unlock()
	return l.ckptSeq
}

// ReadCheckpoint loads the newest checkpoint's pairs and the seq it
// covers (nil, 0 when no checkpoint exists). It retries when a
// concurrent checkpoint prunes the file it was reading.
func (l *Log) ReadCheckpoint() (map[string][]byte, uint64, error) {
	for tries := 0; ; tries++ {
		upTo := l.CheckpointSeq()
		if upTo == 0 {
			return nil, 0, nil
		}
		pairs, err := readCheckpoint(l.fs, filepath.Join(l.dir, ckptName(upTo)))
		if err == nil {
			return pairs, upTo, nil
		}
		// A newer checkpoint may have pruned this one mid-read; retry
		// against the new one. A stable failure is real corruption.
		if l.CheckpointSeq() == upTo || tries >= 3 {
			return nil, 0, fmt.Errorf("wal: reading checkpoint %d: %w", upTo, err)
		}
	}
}

// Follower streams records past a position. Not safe for concurrent
// use; Close when done.
type Follower struct {
	l        *Log
	pos      uint64 // last seq delivered to the consumer
	boundary uint64 // file phase covers (pos, boundary]; live past it
	sub      *subscriber
}

// Follow opens a follower positioned after afterSeq: the first chunk
// Recv returns starts at afterSeq+1. ErrPruned means that position is
// below the pruning horizon — bootstrap from the checkpoint (see
// ReadCheckpoint) and follow from its covered seq instead.
func (l *Log) Follow(afterSeq uint64) (*Follower, error) {
	l.mu.Lock()
	closing := l.closing
	l.mu.Unlock()
	if closing {
		return nil, ErrClosed
	}
	if afterSeq < l.CheckpointSeq() {
		return nil, ErrPruned
	}
	f := &Follower{l: l, pos: afterSeq}
	if err := f.resubscribe(); err != nil {
		return nil, err
	}
	return f, nil
}

// resubscribe registers a fresh live subscription and captures its
// boundary: everything at or below it is file-visible (the segment
// writer is flushed under the same iomu hold), everything past it will
// arrive on the channel.
func (f *Follower) resubscribe() error {
	l := f.l
	l.iomu.Lock()
	defer l.iomu.Unlock()
	if l.seg != nil && !l.failed.Load() {
		if err := l.segWriter.Flush(); err != nil {
			l.fail(err)
		}
	}
	f.sub = &subscriber{ch: make(chan Chunk, 64)}
	l.subs = append(l.subs, f.sub)
	f.boundary = l.lastWritten
	return nil
}

// Close detaches the follower from the log.
func (f *Follower) Close() {
	l := f.l
	l.iomu.Lock()
	defer l.iomu.Unlock()
	for i, s := range l.subs {
		if s == f.sub {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			break
		}
	}
	f.sub = nil
}

// Recv returns the next chunk, blocking in the live phase until the
// batcher writes one (or stop closes). Errors: ErrStopped (caller's
// stop), ErrClosed (log shut down), ErrPruned (a checkpoint pruned the
// follower's position; re-bootstrap), ErrFailed (log wedged).
func (f *Follower) Recv(stop <-chan struct{}) (Chunk, error) {
	for {
		if f.pos < f.boundary {
			c, err := f.readFileChunk()
			if err != nil {
				return Chunk{}, err
			}
			f.pos = c.Last
			return c, nil
		}
		select {
		case c, ok := <-f.sub.ch:
			if !ok {
				// Lagged (batcher dropped us) or the log is going away.
				f.l.mu.Lock()
				closing := f.l.closing
				f.l.mu.Unlock()
				if closing {
					return Chunk{}, ErrClosed
				}
				if f.l.failed.Load() {
					return Chunk{}, f.l.err()
				}
				if err := f.resubscribe(); err != nil {
					return Chunk{}, err
				}
				continue
			}
			if c.Last <= f.pos {
				continue // stale (already read from files after a lag)
			}
			if c.First != f.pos+1 {
				// Gap: a chunk was dropped between channel sends. Fall
				// back to the files for the missing range.
				if err := f.resubscribe(); err != nil {
					return Chunk{}, err
				}
				continue
			}
			f.pos = c.Last
			return c, nil
		case <-stop:
			return Chunk{}, ErrStopped
		}
	}
}

// ScanRecord validates the record at the head of b (length + CRC) and
// returns its seq and encoded size without decoding the ops — the file
// phase and the replication shipper move raw bytes and only need
// boundaries.
func ScanRecord(b []byte) (seq uint64, n int, err error) {
	if len(b) < recHeaderSize {
		return 0, 0, errTorn
	}
	ln := int(binary.BigEndian.Uint32(b))
	if ln == 0 || ln > maxRecordSize || recHeaderSize+ln > len(b) {
		return 0, 0, errTorn
	}
	payload := b[recHeaderSize : recHeaderSize+ln]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:]) {
		return 0, 0, errTorn
	}
	seq, _, uerr := takeUvarint(payload)
	if uerr != nil {
		return 0, 0, errTorn
	}
	return seq, recHeaderSize + ln, nil
}

// readFileChunk reads the next run of records in (pos, boundary] from
// segment files: locate the segment holding pos+1, skip records already
// delivered, and collect whole records up to the boundary or the chunk
// size cap. A failed open means a checkpoint pruned the segment —
// ErrPruned.
func (f *Follower) readFileChunk() (Chunk, error) {
	l := f.l
	target := f.pos + 1
	for {
		l.iomu.Lock()
		segs := make([]segInfo, 0, len(l.segments)+1)
		segs = append(segs, l.segments...)
		if l.seg != nil {
			segs = append(segs, segInfo{name: l.segName, first: l.segFirst, last: l.lastWritten})
		}
		l.iomu.Unlock()

		idx := -1
		for i := range segs {
			if segs[i].first <= target {
				idx = i
			} else {
				break
			}
		}
		if idx < 0 {
			return Chunk{}, ErrPruned
		}
		seg := segs[idx]
		data, err := readAll(l.fs, seg.name)
		if err != nil {
			// The segment vanished between the snapshot and the read: a
			// checkpoint pruned it. (The active segment cannot vanish.)
			return Chunk{}, ErrPruned
		}
		epoch, _, err := parseSegHeader(data)
		if err != nil {
			return Chunk{}, fmt.Errorf("wal: following %s: %w", seg.name, err)
		}
		var c Chunk
		c.Epoch = epoch
		start := -1
		off := segHeaderSize
		for off < len(data) {
			seq, n, err := ScanRecord(data[off:])
			if err != nil { //tbtm:ignore walerr — torn bytes at the live edge end the scan by design; sealed-segment corruption below the boundary is recovery's to report, not the follower's
				// Torn bytes below the boundary in a sealed segment would
				// be corruption, but reaching them means every record we
				// wanted from this segment was already collected or the
				// segment ended early; in the active segment they are the
				// live edge. Either way stop here.
				break
			}
			if seq > f.boundary {
				break
			}
			if seq > f.pos {
				if start < 0 {
					start = off
					c.First = seq
				}
				c.Last = seq
				if off+n-start >= maxFileChunk {
					off += n
					break
				}
			}
			off += n
		}
		if start >= 0 {
			c.Bytes = data[start:off]
			return c, nil
		}
		// Nothing new in this segment: the target lives in a later one
		// (this segment ends below target after pruning-rotation), or the
		// boundary moved behind a torn live edge. Advance past this
		// segment if possible; otherwise report the gap.
		if idx+1 < len(segs) && segs[idx+1].first <= f.boundary {
			target = segs[idx+1].first
			continue
		}
		return Chunk{}, fmt.Errorf("wal: follower found no records in (%d, %d] of %s", f.pos, f.boundary, seg.name)
	}
}

// notifySubsLocked hands a written batch to every live subscriber.
// Caller holds iomu. The batch buffer is immutable from here on and is
// shared, not copied; a subscriber whose channel is full is dropped
// (closed channel = "you lagged; re-read the files").
func (l *Log) notifySubsLocked(b *batch) {
	if len(l.subs) == 0 {
		return
	}
	c := Chunk{Epoch: l.epoch, First: b.first, Last: b.last, Bytes: b.buf}
	keep := l.subs[:0]
	for _, s := range l.subs {
		select {
		case s.ch <- c:
			keep = append(keep, s)
		default:
			close(s.ch)
		}
	}
	for i := len(keep); i < len(l.subs); i++ {
		l.subs[i] = nil
	}
	l.subs = keep
}

// closeSubsLocked drops every subscriber (shutdown or a wedged log).
// Caller holds iomu.
func (l *Log) closeSubsLocked() {
	for _, s := range l.subs {
		close(s.ch)
	}
	l.subs = nil
}
