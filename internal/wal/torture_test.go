package wal

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Torture truth bookkeeping: every SET is stamped key@phase:tick so a
// recovered value identifies exactly which write survived. The
// invariant per key, for ModeStrict:
//
//   - a present value's (phase, tick) is >= the highest ACKNOWLEDGED
//     stamp for that key — no acked write is ever rolled back past —
//     and the value was actually written at some point;
//   - an absent key is legal only if some DELETE with stamp >= the
//     highest acked stamp was appended (acked or not — an unacked
//     delete in flight at the crash may legally survive).
//
// Acked bookkeeping freezes just BEFORE the crash clone is taken:
// anything acked before the freeze was fsynced before the freeze and
// is therefore in the clone; acks that race the clone are simply not
// counted (one-sided, keeps the check sound). Written/deleted
// bookkeeping never freezes: it runs before Append under the per-key
// lock, so everything in the clone is recorded.
type stamp struct {
	phase, tick uint64
}

func (s stamp) less(o stamp) bool {
	return s.phase < o.phase || (s.phase == o.phase && s.tick < o.tick)
}

type truth struct {
	mu      sync.Mutex
	frozen  atomic.Bool
	acked   map[string]stamp           // per key: highest acked stamp
	written map[string]map[string]bool // per key: set of written value stamps
	dels    map[string][]stamp         // per key: stamps of appended deletes
}

func newTruth() *truth {
	return &truth{
		acked:   map[string]stamp{},
		written: map[string]map[string]bool{},
		dels:    map[string][]stamp{},
	}
}

func (tr *truth) noteWritten(key, val string) {
	tr.mu.Lock()
	m := tr.written[key]
	if m == nil {
		m = map[string]bool{}
		tr.written[key] = m
	}
	m[val] = true
	tr.mu.Unlock()
}

func (tr *truth) noteDel(key string, s stamp) {
	tr.mu.Lock()
	tr.dels[key] = append(tr.dels[key], s)
	tr.mu.Unlock()
}

func (tr *truth) noteAcked(key string, s stamp) {
	if tr.frozen.Load() {
		return
	}
	tr.mu.Lock()
	if cur, ok := tr.acked[key]; !ok || cur.less(s) {
		tr.acked[key] = s
	}
	tr.mu.Unlock()
}

func parseStamp(val string) (stamp, error) {
	i := strings.LastIndexByte(val, '@')
	j := strings.LastIndexByte(val, ':')
	if i < 0 || j < i {
		return stamp{}, fmt.Errorf("bad stamp %q", val)
	}
	p, err1 := strconv.ParseUint(val[i+1:j], 10, 64)
	tk, err2 := strconv.ParseUint(val[j+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return stamp{}, fmt.Errorf("bad stamp %q", val)
	}
	return stamp{phase: p, tick: tk}, nil
}

// TestCrashTortureStrict drives a strict-mode log with concurrent
// appenders, crash-clones the filesystem at a random moment while
// appends are in flight, recovers from the clone, and checks the
// durability invariant — across multiple process "phases" so epoch
// handling (engine ticks restarting after recovery) is exercised too.
func TestCrashTortureStrict(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%02d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + iter)))
			fs := NewMemFS()
			tr := newTruth()
			phases := 1 + rng.Intn(3)
			for phase := 0; phase < phases; phase++ {
				fs = tortureOnePhase(t, fs, tr, uint64(phase), rng)
			}
			// Final recovery of the last crash image.
			l, rec, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict})
			if err != nil {
				t.Fatalf("final recovery: %v", err)
			}
			verifyRecovered(t, rec, tr)
			l.Close()
		})
	}
}

// tortureOnePhase opens the log on fs, runs concurrent appenders with
// a per-phase tick counter (restarting at 1, like an engine clock
// after restart), crash-clones at a random point, and returns the
// clone. The abandoned original log is closed afterwards; its
// post-clone writes go to the discarded original image.
func tortureOnePhase(t *testing.T, fs *MemFS, tr *truth, phase uint64, rng *rand.Rand) *MemFS {
	t.Helper()
	l, rec, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict, SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("phase %d open: %v", phase, err)
	}
	// The recovered image of the previous phase must itself satisfy the
	// invariant before more writes pile on.
	verifyRecovered(t, rec, tr)
	tr.frozen.Store(false)

	const G = 4
	keys := []string{"a", "b", "c", "d", "e", "f"}
	var stop atomic.Bool
	var completed atomic.Int64
	var wg sync.WaitGroup
	var tickMu sync.Mutex
	tick := uint64(0)
	nextTick := func() uint64 {
		tickMu.Lock()
		tick++
		v := tick
		tickMu.Unlock()
		return v
	}
	// Per-key locks held across [tick acquisition → Append → ack
	// bookkeeping] so a key's ticks are appended in increasing order,
	// the way an STM clock orders conflicting same-key commits.
	// Cross-key interleaving stays arbitrary, like the engine.
	var keyLocks [6]sync.Mutex
	ops := 30 + rng.Intn(150)
	seed := rng.Int63()
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(seed + int64(g)))
			for n := g; n < ops && !stop.Load(); n += G {
				ki := grng.Intn(len(keys))
				key := keys[ki]
				keyLocks[ki].Lock()
				ct := nextTick()
				s := stamp{phase: phase, tick: ct}
				var op Op
				if grng.Intn(8) == 0 {
					op = Op{Del: true, Key: key}
					tr.noteDel(key, s)
				} else {
					val := fmt.Sprintf("%s@%d:%d", key, phase, ct)
					op = Op{Key: key, Val: []byte(val)}
					tr.noteWritten(key, val)
				}
				tk, err := l.Append(ct, []Op{op})
				if err == nil && tk.Wait() == nil {
					tr.noteAcked(key, s)
				}
				keyLocks[ki].Unlock()
				completed.Add(1)
			}
		}(g)
	}
	// Crash once a random share of the ops completed — appenders are
	// still mid-flight, so the clone can catch torn batches.
	cut := int64(rng.Intn(ops + 1))
	for completed.Load() < cut {
		runtime.Gosched()
	}
	tr.frozen.Store(true)
	clone := fs.CrashClone(rng)
	stop.Store(true)
	wg.Wait()
	l.Close()
	return clone
}

func verifyRecovered(t *testing.T, rec *Recovered, tr *truth) {
	t.Helper()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for key, acked := range tr.acked {
		val, ok := rec.Keys[key]
		if !ok {
			// Absent is legal only when a delete at or after the acked
			// stamp was appended (it may have been unacked and still
			// survive the crash).
			excused := false
			for _, d := range tr.dels[key] {
				if !d.less(acked) {
					excused = true
					break
				}
			}
			if !excused {
				t.Fatalf("key %s lost: acked (phase %d, tick %d) but absent with no covering delete",
					key, acked.phase, acked.tick)
			}
			continue
		}
		s, err := parseStamp(string(val))
		if err != nil {
			t.Fatalf("key %s: %v", key, err)
		}
		if s.less(acked) {
			t.Fatalf("key %s rolled back: recovered %q but acked (phase %d, tick %d)",
				key, val, acked.phase, acked.tick)
		}
		if !tr.written[key][string(val)] {
			t.Fatalf("key %s: recovered value %q was never written", key, val)
		}
	}
}
