package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
)

var errCkptCorrupt = errors.New("wal: corrupt checkpoint")

// Checkpoint durably writes a point-in-time snapshot covering every
// record up to and including upTo, then rotates the active segment and
// prunes segments and older checkpoints the snapshot supersedes, so
// the next recovery loads the checkpoint and replays only WAL written
// after it.
//
// The caller must guarantee the snapshot/seq contract: iter must
// observe every commit whose record was assigned a seq <= upTo, and no
// commit is allowed to slip between "seq assigned" and "visible to a
// snapshot begun now" (tbtmd holds its checkpoint gate across
// commit+Append and reads upTo under that gate's write lock; see
// server/store).
//
// iter streams the snapshot: it calls emit once per live pair and
// returns an error to abandon the checkpoint.
func (l *Log) Checkpoint(upTo uint64, count int, iter func(emit func(key string, val []byte) error) error) error {
	if l.failed.Load() {
		return l.err()
	}
	final := filepath.Join(l.dir, ckptName(upTo))
	tmp := final + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	crc := crc32.New(castagnoli)
	out := func(b []byte) error {
		if _, err := w.Write(b); err != nil {
			return err
		}
		crc.Write(b) //tbtm:ignore walerr — hash.Hash.Write never returns an error
		return nil
	}
	var hdr []byte
	hdr = append(hdr, ckptMagic...)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	var fixed [16]byte
	binary.BigEndian.PutUint64(fixed[:8], upTo)
	binary.BigEndian.PutUint64(fixed[8:], uint64(count))
	if err := out(fixed[:]); err != nil {
		f.Close()
		return err
	}
	emitted := 0
	var scratch []byte
	emit := func(key string, val []byte) error {
		emitted++
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(key)))
		scratch = append(scratch, key...)
		scratch = binary.AppendUvarint(scratch, uint64(len(val)))
		if err := out(scratch); err != nil {
			return err
		}
		return out(val)
	}
	if err := iter(emit); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return err
	}
	if emitted != count {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint emitted %d pairs, caller declared %d", emitted, count)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	l.pruneLocked(upTo)
	l.nCkpts.Add(1)
	l.sinceCkpt.Store(0)
	return nil
}

// pruneLocked rotates the active segment if it holds records the new
// checkpoint covers, then removes superseded segments and older
// checkpoint files. Failures to remove are ignored (retried implicitly
// by the next checkpoint); failures to rotate wedge the log like any
// other write error.
func (l *Log) pruneLocked(upTo uint64) {
	l.iomu.Lock()
	defer l.iomu.Unlock()
	l.ckptSeq = upTo
	// Rotate so the active segment starts after the checkpoint — only
	// when it actually contains covered records.
	l.mu.Lock()
	next := l.nextSeq
	l.mu.Unlock()
	if l.seg != nil && l.segFirst <= upTo && next > l.segFirst {
		l.rotateLocked(next)
	}
	kept := l.segments[:0]
	for _, s := range l.segments {
		if s.last <= upTo {
			l.fs.Remove(s.name)
		} else {
			kept = append(kept, s)
		}
	}
	l.segments = kept
	// Drop older checkpoints and any interrupted temp files.
	if names, err := l.fs.ReadDir(l.dir); err == nil {
		for _, name := range names {
			if s, ok := parseCkptName(name); ok && s < upTo {
				l.fs.Remove(filepath.Join(l.dir, name))
			}
			if strings.HasSuffix(name, ".tmp") {
				l.fs.Remove(filepath.Join(l.dir, name))
			}
		}
		// Pruning durability is best-effort: if this dir sync is lost,
		// removed files can reappear after a crash, and recovery skips
		// their records (seq <= CheckpointSeq) before the next
		// checkpoint prunes them again.
		l.fs.SyncDir(l.dir) //tbtm:ignore walerr — best-effort prune, re-attempted by the next checkpoint
	}
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(fs FS, name string) (map[string][]byte, error) {
	data, err := readAll(fs, name)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+16+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, errCkptCorrupt
	}
	body := data[len(ckptMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, errCkptCorrupt
	}
	count := binary.BigEndian.Uint64(body[8:16])
	p := body[16:]
	if count > uint64(len(p)) {
		return nil, errCkptCorrupt
	}
	out := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		var k, v []byte
		if k, p, err = takeLenBytes(p); err != nil {
			return nil, errCkptCorrupt
		}
		if v, p, err = takeLenBytes(p); err != nil {
			return nil, errCkptCorrupt
		}
		out[string(k)] = append([]byte(nil), v...)
	}
	if len(p) != 0 {
		return nil, errCkptCorrupt
	}
	return out, nil
}
