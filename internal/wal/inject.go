package wal

import (
	"io"
	"sync"
)

// Injector intercepts file operations for fault injection. The torture
// tests use it to force short writes, silent bit-flips, and fsync
// errors at chosen points; production code never installs one.
type Injector interface {
	// Write inspects a pending append to name and returns the bytes
	// that actually reach the file. Returning a shorter slice models a
	// short write (the wrapper reports io.ErrShortWrite); returning
	// mutated bytes of the same length models silent corruption the CRC
	// must catch; returning an error fails the write outright.
	Write(name string, b []byte) ([]byte, error)
	// Sync returns a non-nil error to make the fsync of name fail.
	Sync(name string) error
}

// InjectFS wraps an FS, consulting an Injector before every file write
// and fsync. Directory-level operations pass through untouched.
type InjectFS struct {
	FS
	Inj Injector
}

func (ifs *InjectFS) Create(name string) (File, error) {
	f, err := ifs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, name: name, inj: ifs.Inj}, nil
}

type injectFile struct {
	File
	name string
	inj  Injector
}

func (f *injectFile) Write(b []byte) (int, error) {
	out, err := f.inj.Write(f.name, b)
	if len(out) > 0 {
		n, werr := f.File.Write(out)
		if werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return len(out), err
	}
	if len(out) < len(b) {
		return len(out), io.ErrShortWrite
	}
	return len(b), nil
}

func (f *injectFile) Sync() error {
	if err := f.inj.Sync(f.name); err != nil {
		return err
	}
	return f.File.Sync()
}

// ScriptInjector is a programmable Injector: it counts write and sync
// calls and fires one configured fault when the corresponding trigger
// count is reached. Safe for concurrent use.
type ScriptInjector struct {
	mu     sync.Mutex
	writes int
	syncs  int

	// FailWriteAt makes the Nth write (1-based) fail with WriteErr
	// after writing CutTo bytes (a short write when CutTo < len).
	FailWriteAt int
	CutTo       int
	WriteErr    error
	// FlipBitAt flips the low bit of the middle byte of the Nth write —
	// silent corruption.
	FlipBitAt int
	// FailSyncAt makes the Nth sync (1-based) fail with SyncErr.
	FailSyncAt int
	SyncErr    error
}

func (s *ScriptInjector) Write(name string, b []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	if s.FailWriteAt != 0 && s.writes == s.FailWriteAt {
		cut := s.CutTo
		if cut > len(b) {
			cut = len(b)
		}
		return b[:cut], s.WriteErr
	}
	if s.FlipBitAt != 0 && s.writes == s.FlipBitAt && len(b) > 0 {
		out := append([]byte(nil), b...)
		out[len(out)/2] ^= 1
		return out, nil
	}
	return b, nil
}

func (s *ScriptInjector) Sync(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	if s.FailSyncAt != 0 && s.syncs == s.FailSyncAt {
		return s.SyncErr
	}
	return nil
}
