package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk formats. A segment file is
//
//	magic "TBTMWAL1" | u64 epoch | u64 firstSeq          (24-byte header)
//	record*
//
// where each record is
//
//	u32 payloadLen | u32 CRC32C(payload) | payload
//	payload = uvarint seq | uvarint tick | uvarint nops |
//	          nops × (op byte | uvarint klen | key | [uvarint vlen | val])
//
// seq is the global append order (dense across segments and restarts),
// tick the engine commit time of the transaction the record describes,
// and epoch a counter bumped on every recovery so ticks from different
// process lifetimes (each starting a fresh engine clock) stay ordered:
// replay compares (epoch, tick) lexicographically per key.
//
// A checkpoint file is
//
//	magic "TBTMCKP1" | u64 upToSeq | u64 count |
//	count × (uvarint klen | key | uvarint vlen | val) |
//	u32 CRC32C(everything after the magic)
//
// written to a .tmp name, fsynced, then renamed — a checkpoint is
// either wholly valid or ignored.

const (
	segMagic  = "TBTMWAL1"
	ckptMagic = "TBTMCKP1"

	segHeaderSize = 8 + 8 + 8
	recHeaderSize = 4 + 4

	opSet = 1
	opDel = 2

	// maxRecordSize bounds a single record; a length prefix beyond it is
	// treated as corruption rather than attempted as an allocation.
	maxRecordSize = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	errBadMagic = errors.New("wal: bad magic")
	errTorn     = errors.New("wal: torn or corrupt record")
)

// Op is one key mutation of a committed transaction. Records carry the
// transaction's effective write set: one record per commit, so a crash
// can never surface part of a MULTI.
type Op struct {
	Del bool
	Key string
	Val []byte
}

func segName(firstSeq uint64) string           { return fmt.Sprintf("wal-%016x.log", firstSeq) }
func ckptName(upTo uint64) string              { return fmt.Sprintf("ckpt-%016x.db", upTo) }
func parseSegName(name string) (uint64, bool)  { return parseHexName(name, "wal-", ".log") }
func parseCkptName(name string) (uint64, bool) { return parseHexName(name, "ckpt-", ".db") }

func parseHexName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var v uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

func appendSegHeader(buf []byte, epoch, firstSeq uint64) []byte {
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	return binary.BigEndian.AppendUint64(buf, firstSeq)
}

func parseSegHeader(b []byte) (epoch, firstSeq uint64, err error) {
	if len(b) < segHeaderSize {
		return 0, 0, errTorn
	}
	if string(b[:8]) != segMagic {
		return 0, 0, errBadMagic
	}
	return binary.BigEndian.Uint64(b[8:16]), binary.BigEndian.Uint64(b[16:24]), nil
}

// appendRecord encodes one record (header + payload) onto buf.
func appendRecord(buf []byte, seq, tick uint64, ops []Op) []byte {
	hdrAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc backfilled below
	payloadAt := len(buf)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, tick)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		if op.Del {
			buf = append(buf, opDel)
			buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
			buf = append(buf, op.Key...)
		} else {
			buf = append(buf, opSet)
			buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
			buf = append(buf, op.Key...)
			buf = binary.AppendUvarint(buf, uint64(len(op.Val)))
			buf = append(buf, op.Val...)
		}
	}
	payload := buf[payloadAt:]
	binary.BigEndian.PutUint32(buf[hdrAt:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[hdrAt+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// record is a decoded WAL record.
type record struct {
	seq  uint64
	tick uint64
	ops  []Op
}

// nextRecord decodes the record at the head of b. It returns the
// record, the number of bytes consumed, and errTorn when the bytes do
// not form a complete, CRC-clean record — the caller treats that point
// as the crash tail.
func nextRecord(b []byte) (record, int, error) {
	var rec record
	if len(b) < recHeaderSize {
		return rec, 0, errTorn
	}
	n := binary.BigEndian.Uint32(b)
	crc := binary.BigEndian.Uint32(b[4:])
	if n == 0 || n > maxRecordSize || recHeaderSize+int(n) > len(b) {
		return rec, 0, errTorn
	}
	payload := b[recHeaderSize : recHeaderSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return rec, 0, errTorn
	}
	p := payload
	var err error
	if rec.seq, p, err = takeUvarint(p); err != nil {
		return rec, 0, errTorn
	}
	if rec.tick, p, err = takeUvarint(p); err != nil {
		return rec, 0, errTorn
	}
	nops, p, err := takeUvarint(p)
	if err != nil || nops > uint64(len(p)) {
		return rec, 0, errTorn
	}
	rec.ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		var op Op
		var code byte
		if len(p) == 0 {
			return rec, 0, errTorn
		}
		code, p = p[0], p[1:]
		var k []byte
		if k, p, err = takeLenBytes(p); err != nil {
			return rec, 0, errTorn
		}
		op.Key = string(k)
		switch code {
		case opSet:
			var v []byte
			if v, p, err = takeLenBytes(p); err != nil {
				return rec, 0, errTorn
			}
			op.Val = append([]byte(nil), v...)
		case opDel:
			op.Del = true
		default:
			return rec, 0, errTorn
		}
		rec.ops = append(rec.ops, op)
	}
	if len(p) != 0 {
		return rec, 0, errTorn
	}
	return rec, recHeaderSize + int(n), nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTorn
	}
	return v, b[n:], nil
}

func takeLenBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, nil, errTorn
	}
	return b[:n], b[n:], nil
}
