package wal

import (
	"bufio"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tbtm/internal/telemetry"
)

// Mode selects what an acknowledged append means.
type Mode int

const (
	// ModeNone acknowledges immediately: records reach the OS only as
	// the batcher drains and are fsynced only on rotation and close. A
	// crash may lose any acknowledged-but-unsynced commit.
	ModeNone Mode = iota
	// ModeRelaxed acknowledges once the record is in a segment write
	// (OS page cache); fsync runs in the background every FsyncEvery
	// records or FsyncInterval, whichever comes first. A crash loses at
	// most that window.
	ModeRelaxed
	// ModeStrict acknowledges only after the record's fsync completes.
	// Group commit keeps this viable: all appends that arrive while one
	// fsync is in flight share the next write+fsync pair.
	ModeStrict
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeRelaxed:
		return "relaxed"
	case ModeStrict:
		return "strict"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses none|relaxed|strict.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "none":
		return ModeNone, nil
	case "relaxed":
		return ModeRelaxed, nil
	case "strict":
		return ModeStrict, nil
	}
	return 0, fmt.Errorf("wal: unknown durability mode %q (want none, relaxed or strict)", s)
}

// ErrFailed is returned by Append and Ticket.Wait after the log has
// wedged on an I/O error (ENOSPC, EIO, a failed fsync...). The log
// never retries a failed disk: the caller is expected to stop issuing
// updates (tbtmd flips to read-only mode).
var ErrFailed = errors.New("wal: log failed")

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if absent).
	Dir string
	// FS is the filesystem; nil means the real one.
	FS FS
	// Mode is the durability mode (default ModeNone — the zero value
	// must not silently promise durability it doesn't deliver... but
	// callers should set it explicitly).
	Mode Mode
	// FsyncEvery caps how many records may be written-but-unsynced in
	// ModeRelaxed before a foreground fsync (default 256).
	FsyncEvery int
	// FsyncInterval bounds how long a written record may stay unsynced
	// in ModeRelaxed (default 5ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default 8 MiB).
	SegmentBytes int64
	// OnFailure, when set, is called exactly once from the batcher when
	// the log wedges on an I/O error.
	OnFailure func(error)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FS == nil {
		out.FS = OsFS{}
	}
	if out.FsyncEvery <= 0 {
		out.FsyncEvery = 256
	}
	if out.FsyncInterval <= 0 {
		out.FsyncInterval = 5 * time.Millisecond
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	return out
}

// batch is one group-commit unit: the concatenated records of every
// Append that arrived while the batcher was busy, written with one
// Write call and covered by one fsync.
type batch struct {
	buf   []byte
	recs  int
	first uint64 // first and last seq in buf, for rotation bookkeeping
	last  uint64

	werr    error         // write error; set before written closes
	serr    error         // write or fsync error; set before synced closes
	written chan struct{} // closed when the buffered write completed
	synced  chan struct{} // closed when a covering fsync completed
}

func newBatch() *batch {
	return &batch{written: make(chan struct{}), synced: make(chan struct{})}
}

// Ticket is the handle an Append returns; Wait blocks until the record
// is acknowledged per the log's mode. The zero Ticket waits for
// nothing (a disabled log).
type Ticket struct {
	l *Log
	b *batch
}

// Wait blocks until the append is acknowledged: immediately in
// ModeNone, after the segment write in ModeRelaxed, after the covering
// fsync in ModeStrict. It returns the I/O error that wedged the log,
// if any.
func (t Ticket) Wait() error {
	if t.b == nil || t.l == nil {
		return nil
	}
	switch t.l.opts.Mode {
	case ModeStrict:
		<-t.b.synced
		return t.b.serr
	case ModeRelaxed:
		<-t.b.written
		return t.b.werr
	default:
		return nil
	}
}

type segInfo struct {
	name  string
	first uint64
	last  uint64
}

// Log is a write-ahead log with group commit. Appends from any number
// of goroutines are coalesced by a single batcher goroutine into
// buffered segment writes and shared fsyncs.
type Log struct {
	opts  Options
	fs    FS
	dir   string
	epoch uint64

	// mu guards the append side: the open batch and the seq counter.
	mu      sync.Mutex
	cur     *batch
	nextSeq uint64
	closing bool

	work chan struct{} // batcher wakeup, capacity 1
	quit chan struct{}
	done chan struct{}

	// iomu guards the file side: active segment, rotation, checkpoint
	// pruning. The batcher holds it across write+fsync; Checkpoint
	// holds it across rotation and pruning.
	iomu        sync.Mutex
	seg         File
	segWriter   *bufio.Writer
	segName     string
	segFirst    uint64
	segSize     int64
	segments    []segInfo // closed segments, oldest first
	pendingSync []*batch  // written batches awaiting a covering fsync
	unsyncedRec int
	ckptSeq     uint64
	lastWritten uint64        // highest seq handed to the segment writer
	subs        []*subscriber // live-tail followers (see follow.go)

	failed  atomic.Bool
	failmu  sync.Mutex
	failerr error

	// counters (atomics; see Stats)
	nRecords   atomic.Uint64
	nBatches   atomic.Uint64
	nFsyncs    atomic.Uint64
	nBytes     atomic.Uint64
	nRotations atomic.Uint64
	nCkpts     atomic.Uint64
	sinceCkpt  atomic.Int64 // bytes appended since the last checkpoint

	// fsyncH is the fsync-latency histogram (ns); batchH the
	// group-commit batch-size histogram (records per batch). Both feed
	// the telemetry registry.
	fsyncH telemetry.Hist
	batchH telemetry.Hist
}

// FsyncLatency returns the live fsync-latency histogram (nanoseconds
// per flush+fsync pair).
func (l *Log) FsyncLatency() *telemetry.Hist { return &l.fsyncH }

// BatchSizes returns the group-commit batch-size histogram (records
// coalesced per segment write).
func (l *Log) BatchSizes() *telemetry.Hist { return &l.batchH }

// Append assigns the next sequence number to one committed
// transaction's effective write set and hands it to the batcher. The
// returned Ticket's Wait blocks until the record is acknowledged per
// the log's Mode. ops must be non-empty; key and value bytes are
// copied during encoding and may be reused immediately.
//
// The caller must ensure Append is invoked in a context where seq
// assignment order is meaningful for its own checkpointing (tbtmd
// holds its checkpoint gate across commit+Append; see server/store).
func (l *Log) Append(tick uint64, ops []Op) (Ticket, error) {
	if l.failed.Load() {
		return Ticket{}, l.err()
	}
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	b := l.cur
	if b == nil {
		b = newBatch()
		l.cur = b
	}
	seq := l.nextSeq
	l.nextSeq++
	if b.recs == 0 {
		b.first = seq
	}
	b.last = seq
	was := len(b.buf)
	b.buf = appendRecord(b.buf, seq, tick, ops)
	b.recs++
	l.sinceCkpt.Add(int64(len(b.buf) - was))
	l.mu.Unlock()
	select {
	case l.work <- struct{}{}:
	default:
	}
	return Ticket{l: l, b: b}, nil
}

// LastAssignedSeq returns the highest sequence number assigned so far
// (0 if none). With the caller's checkpoint gate held, every commit up
// to this point has its record at or below the returned seq.
func (l *Log) LastAssignedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// NeedCheckpoint reports whether at least threshold bytes of records
// were appended since the last checkpoint.
func (l *Log) NeedCheckpoint(threshold int64) bool {
	return !l.failed.Load() && l.sinceCkpt.Load() >= threshold
}

// Failed reports whether the log has wedged on an I/O error.
func (l *Log) Failed() bool { return l.failed.Load() }

func (l *Log) err() error {
	l.failmu.Lock()
	defer l.failmu.Unlock()
	if l.failerr != nil {
		return l.failerr
	}
	return ErrFailed
}

// fail wedges the log on its first I/O error: all current and future
// waiters get the error, and OnFailure fires once.
func (l *Log) fail(err error) {
	if !l.failed.CompareAndSwap(false, true) {
		return
	}
	l.failmu.Lock()
	l.failerr = fmt.Errorf("%w: %w", ErrFailed, err)
	l.failmu.Unlock()
	if l.opts.OnFailure != nil {
		l.opts.OnFailure(err)
	}
}

// run is the batcher: it drains open batches into buffered segment
// writes, decides when to fsync per the mode, and completes tickets.
func (l *Log) run() {
	defer close(l.done)
	var tickC <-chan time.Time
	var ticker *time.Ticker
	if l.opts.Mode == ModeRelaxed {
		ticker = time.NewTicker(l.opts.FsyncInterval)
		tickC = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-l.work:
			l.drain()
		case <-tickC:
			l.iomu.Lock()
			if l.unsyncedRec > 0 {
				l.syncLocked()
			}
			l.iomu.Unlock()
		case <-l.quit:
			l.drain()
			l.iomu.Lock()
			l.syncLocked()
			if l.seg != nil {
				l.seg.Close()
				l.seg = nil
			}
			l.closeSubsLocked()
			l.iomu.Unlock()
			return
		}
	}
}

func (l *Log) drain() {
	for {
		l.mu.Lock()
		b := l.cur
		l.cur = nil
		l.mu.Unlock()
		if b == nil {
			return
		}
		l.writeBatch(b)
	}
}

func (l *Log) writeBatch(b *batch) {
	l.iomu.Lock()
	defer l.iomu.Unlock()
	if !l.failed.Load() && l.segSize >= l.opts.SegmentBytes {
		l.rotateLocked(b.first)
	}
	if l.failed.Load() || l.seg == nil {
		b.werr = l.err()
		b.serr = b.werr
		close(b.written)
		close(b.synced)
		l.closeSubsLocked()
		return
	}
	err := l.writeAll(b.buf)
	b.werr = err
	l.nBatches.Add(1)
	l.nRecords.Add(uint64(b.recs))
	l.batchH.Observe(uint64(b.recs))
	l.nBytes.Add(uint64(len(b.buf)))
	l.segSize += int64(len(b.buf))
	close(b.written)
	if err != nil {
		b.serr = err
		close(b.synced)
		l.fail(err)
		l.completePending(l.err())
		l.closeSubsLocked()
		return
	}
	l.lastWritten = b.last
	l.notifySubsLocked(b)
	l.pendingSync = append(l.pendingSync, b)
	l.unsyncedRec += b.recs
	switch l.opts.Mode {
	case ModeStrict:
		l.syncLocked()
	case ModeRelaxed:
		if l.unsyncedRec >= l.opts.FsyncEvery {
			l.syncLocked()
		}
	}
}

// writeAll writes b through the buffered writer, turning short writes
// into errors.
func (l *Log) writeAll(b []byte) error {
	n, err := l.segWriter.Write(b)
	if err == nil && n < len(b) {
		err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(b))
	}
	return err
}

// syncLocked flushes the buffered writer, fsyncs the active segment,
// and completes every pending ticket. Caller holds iomu.
func (l *Log) syncLocked() {
	if l.seg == nil {
		err := ErrClosed
		if l.failed.Load() {
			err = l.err()
		}
		l.completePending(err)
		l.unsyncedRec = 0
		return
	}
	t0 := time.Now()
	err := l.segWriter.Flush()
	if err == nil {
		err = l.seg.Sync()
		l.nFsyncs.Add(1)
		l.fsyncH.Observe(uint64(time.Since(t0).Nanoseconds()))
	}
	if err != nil {
		l.fail(err)
		err = l.err()
	}
	l.completePending(err)
	l.unsyncedRec = 0
}

func (l *Log) completePending(err error) {
	for _, pb := range l.pendingSync {
		pb.serr = err
		close(pb.synced)
	}
	l.pendingSync = nil
}

// rotateLocked closes the active segment (fsyncing it so the segment
// boundary is durable) and opens a fresh one whose first record will
// be nextFirst. Caller holds iomu.
func (l *Log) rotateLocked(nextFirst uint64) {
	if l.seg != nil {
		l.syncLocked()
		l.seg.Close()
		l.segments = append(l.segments, segInfo{name: l.segName, first: l.segFirst, last: nextFirst - 1})
		l.seg = nil
	}
	if l.failed.Load() {
		return
	}
	if err := l.openSegmentLocked(nextFirst); err != nil {
		l.fail(err)
		return
	}
	l.nRotations.Add(1)
}

// openSegmentLocked creates and headers a new active segment starting
// at firstSeq. Caller holds iomu.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	name := filepath.Join(l.dir, segName(firstSeq))
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	hdr := appendSegHeader(nil, l.epoch, firstSeq)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.segWriter = w
	l.segName = name
	l.segFirst = firstSeq
	l.segSize = int64(segHeaderSize)
	return nil
}

// Sync forces a flush+fsync of everything appended so far (used by
// tests and by Close).
func (l *Log) Sync() error {
	l.drainFromCaller()
	l.iomu.Lock()
	defer l.iomu.Unlock()
	if l.failed.Load() {
		return l.err()
	}
	l.syncLocked()
	if l.failed.Load() {
		return l.err()
	}
	return nil
}

// drainFromCaller hands any open batch to the batcher and waits for it
// to be written, so a following fsync covers it.
func (l *Log) drainFromCaller() {
	l.mu.Lock()
	b := l.cur
	l.mu.Unlock()
	if b == nil {
		return
	}
	select {
	case l.work <- struct{}{}:
	default:
	}
	select {
	case <-b.written:
	case <-l.done:
	}
}

// Close drains outstanding appends, fsyncs, and closes the active
// segment. Appends racing Close may fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closing = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	if l.failed.Load() {
		return l.err()
	}
	return nil
}

// StatsSnapshot is a point-in-time view of the log's counters.
type StatsSnapshot struct {
	Mode          string `json:"mode"`
	Records       uint64 `json:"records"`
	Batches       uint64 `json:"batches"`
	Fsyncs        uint64 `json:"fsyncs"`
	Bytes         uint64 `json:"bytes"`
	Rotations     uint64 `json:"rotations"`
	Segments      int    `json:"segments"`
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Checkpoints   uint64 `json:"checkpoints"`
	Failed        bool   `json:"failed"`
	LastError     string `json:"last_error,omitempty"`
}

// Stats returns current counters.
func (l *Log) Stats() StatsSnapshot {
	s := StatsSnapshot{
		Mode:      l.opts.Mode.String(),
		Records:   l.nRecords.Load(),
		Batches:   l.nBatches.Load(),
		Fsyncs:    l.nFsyncs.Load(),
		Bytes:     l.nBytes.Load(),
		Rotations: l.nRotations.Load(),
		Failed:    l.failed.Load(),
	}
	s.Checkpoints = l.nCkpts.Load()
	s.LastSeq = l.LastAssignedSeq()
	l.iomu.Lock()
	s.Segments = len(l.segments)
	if l.seg != nil {
		s.Segments++
	}
	s.CheckpointSeq = l.ckptSeq
	l.iomu.Unlock()
	if s.Failed {
		s.LastError = l.err().Error()
	}
	return s
}
