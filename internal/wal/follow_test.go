package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// collectRecords drains chunks from f until the last delivered seq
// reaches want, asserting seq contiguity across chunks, and returns
// every decoded record in order.
func collectRecords(t *testing.T, f *Follower, after, want uint64) []Record {
	t.Helper()
	stop := make(chan struct{})
	time.AfterFunc(30*time.Second, func() { close(stop) })
	var out []Record
	pos := after
	for pos < want {
		c, err := f.Recv(stop)
		if err != nil {
			t.Fatalf("Recv after seq %d: %v", pos, err)
		}
		if c.First != pos+1 {
			t.Fatalf("chunk starts at %d, want %d (gap)", c.First, pos+1)
		}
		b := c.Bytes
		for len(b) > 0 {
			rec, n, err := DecodeRecord(b)
			if err != nil {
				t.Fatalf("decode at seq %d: %v", pos+1, err)
			}
			if rec.Seq != pos+1 {
				t.Fatalf("record seq %d, want %d", rec.Seq, pos+1)
			}
			out = append(out, rec)
			pos = rec.Seq
			b = b[n:]
		}
		if pos != c.Last {
			t.Fatalf("chunk claimed Last=%d but decoded through %d", c.Last, pos)
		}
	}
	return out
}

// TestFollowFileThenLive pins the two-phase hand-off: records appended
// before Follow arrive from segment files, records appended after
// arrive from the live subscription, and the seam is seq-contiguous.
func TestFollowFileThenLive(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%d", i), "v")).Wait()
	}
	f, err := l.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := collectRecords(t, f, 0, 5)
	if len(recs) != 5 || recs[0].Ops[0].Key != "k1" || recs[4].Ops[0].Key != "k5" {
		t.Fatalf("file phase: %+v", recs)
	}
	// Live phase: the next append arrives on the subscription.
	mustAppend(t, l, 6, set("k6", "v"), del("k1")).Wait()
	recs = collectRecords(t, f, 5, 6)
	if len(recs) != 1 || len(recs[0].Ops) != 2 || !recs[0].Ops[1].Del {
		t.Fatalf("live phase: %+v", recs)
	}
}

// TestFollowRotationMidTail: the tailed range spans several rotated
// segments; chunks never span a rotation and coverage stays contiguous.
func TestFollowRotationMidTail(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	val := string(bytes.Repeat([]byte("x"), 64))
	// Half the records before the follower exists...
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%02d", i), val)).Wait()
	}
	f, err := l.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := collectRecords(t, f, 0, 10)
	// ...and half appended while tailing, still rotating every few
	// records (64-byte values against a 256-byte segment cap).
	for i := 11; i <= 20; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%02d", i), val)).Wait()
	}
	recs = append(recs, collectRecords(t, f, 10, 20)...)
	if len(recs) != 20 {
		t.Fatalf("got %d records, want 20", len(recs))
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("test never rotated: %d segments", st.Segments)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("k%02d", i+1); r.Ops[0].Key != want {
			t.Fatalf("record %d key = %s, want %s", i, r.Ops[0].Key, want)
		}
	}
}

// TestFollowTornTailAtLiveEdge: garbage past the follower's boundary in
// the active segment (what a torn batch write leaves) must not corrupt
// file-phase delivery, and live-phase chunks (fed from batch buffers,
// not file reads) keep flowing after it.
func TestFollowTornTailAtLiveEdge(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	defer l.Close()
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%d", i), "v")).Wait()
	}
	f, err := l.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Tear the live edge: half a record header plus junk after the last
	// written record.
	name := l.segName
	data := fs.ReadFile(name)
	fs.WriteFile(name, append(append([]byte{}, data...), 0x00, 0x00, 0x01, 0xFF, 0xde, 0xad))
	recs := collectRecords(t, f, 0, 3)
	if len(recs) != 3 {
		t.Fatalf("file phase through torn edge: %d records, want 3", len(recs))
	}
	// Live chunks bypass the file, so the torn bytes stay harmless.
	mustAppend(t, l, 4, set("k4", "v")).Wait()
	if recs := collectRecords(t, f, 3, 4); recs[0].Ops[0].Key != "k4" {
		t.Fatalf("live after torn edge: %+v", recs)
	}
}

// TestFollowPrunedUnderActiveFollower: a checkpoint pruning the
// follower's position mid-tail surfaces ErrPruned from Recv (or an
// immediate ErrPruned from a stale Follow), and re-bootstrapping from
// ReadCheckpoint + Follow(coveredSeq) resumes cleanly.
func TestFollowPrunedUnderActiveFollower(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	state := map[string]string{}
	val := string(bytes.Repeat([]byte("y"), 64))
	for i := 1; i <= 12; i++ {
		k := fmt.Sprintf("k%02d", i)
		state[k] = val
		mustAppend(t, l, uint64(i), set(k, val)).Wait()
	}
	f, err := l.Follow(0) // attached, but has read nothing yet
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := l.Checkpoint(10, len(state), func(emit func(string, []byte) error) error {
		for k, v := range state {
			if err := emit(k, []byte(v)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	time.AfterFunc(30*time.Second, func() { close(stop) })
	if _, err := f.Recv(stop); !errors.Is(err, ErrPruned) {
		t.Fatalf("Recv under prune = %v, want ErrPruned", err)
	}
	// A fresh Follow below the horizon refuses immediately.
	if _, err := l.Follow(3); !errors.Is(err, ErrPruned) {
		t.Fatalf("Follow(3) = %v, want ErrPruned", err)
	}
	// Re-bootstrap: checkpoint pairs + tail from its covered seq.
	pairs, upTo, err := l.ReadCheckpoint()
	if err != nil || upTo != 10 || len(pairs) != 12 {
		t.Fatalf("ReadCheckpoint: upTo=%d pairs=%d err=%v", upTo, len(pairs), err)
	}
	f2, err := l.Follow(upTo)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	recs := collectRecords(t, f2, 10, 12)
	if len(recs) != 2 || recs[0].Seq != 11 || recs[1].Seq != 12 {
		t.Fatalf("post-bootstrap tail: %+v", recs)
	}
}

// TestFollowLaggedSubscriberRereadsFiles: a follower that stops calling
// Recv while the batcher writes more than its channel buffers is
// dropped (closed channel), and recovers by re-reading the files —
// still seq-contiguous, no records lost.
func TestFollowLaggedSubscriberRereadsFiles(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	defer l.Close()
	f, err := l.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Overflow the 64-chunk subscription buffer without a single Recv.
	const total = 80
	for i := 1; i <= total; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%02d", i), "v")).Wait()
	}
	recs := collectRecords(t, f, 0, total)
	if len(recs) != total {
		t.Fatalf("lagged follower delivered %d records, want %d", len(recs), total)
	}
}

// TestFollowerRestartResumesFromSeq: closing a follower and re-following
// from the last delivered seq resumes exactly past it — including
// across a log restart, where the records continue in a NEW epoch and
// chunks carry it.
func TestFollowerRestartResumesFromSeq(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, uint64(i), set(fmt.Sprintf("k%d", i), "v")).Wait()
	}
	f, err := l.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, f, 0, 6)
	last := recs[len(recs)-1].Seq
	f.Close() // crash of the consumer: position survives only consumer-side

	// More records land while no follower is attached.
	mustAppend(t, l, 7, set("k7", "v")).Wait()
	mustAppend(t, l, 8, set("k8", "v")).Wait()
	f2, err := l.Follow(last)
	if err != nil {
		t.Fatal(err)
	}
	recs = collectRecords(t, f2, last, 8)
	if len(recs) != 2 || recs[0].Seq != last+1 || recs[1].Seq != 8 {
		t.Fatalf("resume after %d: %+v", last, recs)
	}
	f2.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the log: epoch bumps, seqs continue. A follower resuming
	// from the pre-restart position sees the old records under the old
	// epoch and the new ones under the new.
	l2, rec := openMem(t, fs, ModeStrict)
	defer l2.Close()
	mustAppend(t, l2, 100, set("post", "restart")).Wait()
	f3, err := l2.Follow(8)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	stop := make(chan struct{})
	time.AfterFunc(30*time.Second, func() { close(stop) })
	c, err := f3.Recv(stop)
	if err != nil {
		t.Fatal(err)
	}
	if c.First != 9 || c.Epoch != rec.Epoch {
		t.Fatalf("post-restart chunk: first=%d epoch=%d, want 9/%d", c.First, c.Epoch, rec.Epoch)
	}
	rec2, _, err := DecodeRecord(c.Bytes)
	if err != nil || rec2.Ops[0].Key != "post" {
		t.Fatalf("post-restart record: %+v err=%v", rec2, err)
	}

	// And a follower from 0 spans BOTH epochs contiguously, with the
	// epoch changing at the restart boundary.
	f4, err := l2.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	defer f4.Close()
	seen := map[uint64]bool{}
	pos := uint64(0)
	for pos < 9 {
		c, err := f4.Recv(stop)
		if err != nil {
			t.Fatalf("span Recv: %v", err)
		}
		if c.First != pos+1 {
			t.Fatalf("span gap: first=%d, want %d", c.First, pos+1)
		}
		seen[c.Epoch] = true
		pos = c.Last
	}
	if len(seen) != 2 {
		t.Fatalf("expected chunks from 2 epochs, saw %v", seen)
	}
}
