package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with crash semantics, the substrate of the
// crash-torture tests. It distinguishes three durability levels the way
// a real disk does:
//
//   - data written but not fsynced lives in a per-file unsynced tail
//     that Crash may cut at ANY byte boundary (torn records);
//   - directory operations (create, rename, remove) are journaled and
//     undone by Crash unless a SyncDir intervened;
//   - fsynced data under a dir-synced name always survives.
//
// Crash(rng) simulates pulling the plug: it picks a random surviving
// prefix of every unsynced tail and undoes a random suffix of the
// pending directory journal, leaving exactly the states a real
// power-cut could leave. The zero value is not usable; use NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// journal holds directory operations not yet covered by a SyncDir,
	// oldest first, with enough state to undo each.
	journal []memOp
}

type memFile struct {
	synced   []byte
	unsynced []byte
}

func (f *memFile) bytes() []byte {
	out := make([]byte, 0, len(f.synced)+len(f.unsynced))
	out = append(out, f.synced...)
	return append(out, f.unsynced...)
}

type memOpKind int

const (
	memCreate memOpKind = iota
	memRename
	memRemove
)

type memOp struct {
	kind     memOpKind
	name     string   // created / removed name, or rename target
	from     string   // rename source
	prev     *memFile // displaced or removed content, for undo
	prevFrom *memFile // rename: source content, restored on undo
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) file() (*memFile, error) {
	f := h.fs.files[h.name]
	if f == nil {
		return nil, fmt.Errorf("memfs: %s: file removed", h.name)
	}
	return f, nil
}

func (h *memHandle) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	f.unsynced = append(f.unsynced, b...)
	return len(b), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	f.synced = append(f.synced, f.unsynced...)
	f.unsynced = nil
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.files[name]
	m.files[name] = &memFile{}
	m.journal = append(m.journal, memOp{kind: memCreate, name: name, prev: prev})
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("memfs: %s: no such file", name)
	}
	return io.NopCloser(bytes.NewReader(f.bytes())), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	prefix := dir
	if prefix != "" && prefix[len(prefix)-1] != '/' {
		prefix += "/"
	}
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && len(name) > len(prefix) {
			rest := name[len(prefix):]
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[oldpath]
	if f == nil {
		return fmt.Errorf("memfs: %s: no such file", oldpath)
	}
	m.journal = append(m.journal, memOp{
		kind: memRename, name: newpath, from: oldpath,
		prev: m.files[newpath], prevFrom: f,
	})
	m.files[newpath] = f
	delete(m.files, oldpath)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("memfs: %s: no such file", name)
	}
	m.journal = append(m.journal, memOp{kind: memRemove, name: name, prev: f})
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journal = nil
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("memfs: %s: no such file", name)
	}
	all := f.bytes()
	if int64(len(all)) < size {
		return fmt.Errorf("memfs: %s: truncate beyond end", name)
	}
	all = all[:size]
	// A truncate that survives a crash must be durable; model it as an
	// immediate metadata+data sync of the shortened file (recovery is
	// the only caller and runs single-threaded before serving).
	f.synced = all
	f.unsynced = nil
	return nil
}

// Crash simulates a power cut: every unsynced tail survives only up to
// a random byte boundary, and a random suffix of the pending directory
// journal is undone (files created, renamed or removed since the last
// SyncDir may revert). The filesystem is left in a state a subsequent
// recovery must cope with.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Undo a random suffix of the directory journal, newest first.
	keep := 0
	if n := len(m.journal); n > 0 {
		keep = rng.Intn(n + 1)
	}
	for i := len(m.journal) - 1; i >= keep; i-- {
		op := m.journal[i]
		switch op.kind {
		case memCreate:
			if op.prev == nil {
				delete(m.files, op.name)
			} else {
				m.files[op.name] = op.prev
			}
		case memRename:
			if op.prev == nil {
				delete(m.files, op.name)
			} else {
				m.files[op.name] = op.prev
			}
			m.files[op.from] = op.prevFrom
		case memRemove:
			m.files[op.name] = op.prev
		}
	}
	m.journal = nil
	// Cut every unsynced tail at a random byte boundary.
	for _, f := range m.files {
		if n := len(f.unsynced); n > 0 {
			f.unsynced = f.unsynced[:rng.Intn(n+1)]
		}
		f.synced = append(f.synced, f.unsynced...)
		f.unsynced = nil
	}
}

// CrashClone returns a deep copy of the filesystem as a crash at this
// instant could leave it — unsynced tails cut at random byte
// boundaries, a random suffix of the pending directory journal undone —
// without disturbing this instance. The torture tests clone mid-load
// (atomically with respect to concurrent writes) and recover from the
// clone, modeling SIGKILL-and-restart-elsewhere.
func (m *MemFS) CrashClone(rng *rand.Rand) *MemFS {
	m.mu.Lock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{
			synced:   append([]byte(nil), f.synced...),
			unsynced: append([]byte(nil), f.unsynced...),
		}
	}
	for _, op := range m.journal {
		cp := op
		// The clone's journal entries must point at the clone's files
		// where possible; displaced content copies are shared read-only
		// snapshots, which is fine — Crash only re-links them.
		if op.prev != nil {
			cp.prev = &memFile{synced: op.prev.bytes()}
		}
		if op.prevFrom != nil {
			if nf := out.files[op.name]; nf != nil && m.files[op.name] == op.prevFrom {
				cp.prevFrom = nf
			} else {
				cp.prevFrom = &memFile{synced: op.prevFrom.bytes()}
			}
		}
		out.journal = append(out.journal, cp)
	}
	m.mu.Unlock()
	out.Crash(rng)
	return out
}

// Snapshot returns a deep copy of the current on-"disk" state (synced
// and unsynced bytes concatenated), for tests that want to recover from
// a clean image without crashing this instance.
func (m *MemFS) Snapshot() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{synced: f.bytes()}
	}
	return out
}

// ReadFile returns the full current content of name, or nil if absent.
func (m *MemFS) ReadFile(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil
	}
	return f.bytes()
}

// WriteFile replaces name's content as fully durable bytes (test setup
// for corruption scenarios).
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{synced: append([]byte(nil), data...)}
}
