package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openMem(t *testing.T, fs *MemFS, mode Mode) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(Options{Dir: "d", FS: fs, Mode: mode, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, tick uint64, ops ...Op) Ticket {
	t.Helper()
	tk, err := l.Append(tick, ops)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return tk
}

func set(k, v string) Op { return Op{Key: k, Val: []byte(v)} }
func del(k string) Op    { return Op{Del: true, Key: k} }

func TestAppendRecoverBasic(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, ModeStrict)
	if len(rec.Keys) != 0 || rec.Epoch != 1 || rec.NextSeq != 1 {
		t.Fatalf("fresh dir: %+v", rec)
	}
	mustAppend(t, l, 1, set("a", "1"))
	mustAppend(t, l, 2, set("b", "2"), set("c", "3")) // multi-op record
	mustAppend(t, l, 3, del("a"))
	tk := mustAppend(t, l, 4, set("b", "4"))
	if err := tk.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openMem(t, fs, ModeStrict)
	defer l2.Close()
	if rec2.Records != 4 || rec2.TornTail {
		t.Fatalf("recovered: %+v", rec2)
	}
	if rec2.Epoch != 2 || rec2.NextSeq != 5 {
		t.Fatalf("epoch/nextseq: %+v", rec2)
	}
	want := map[string]string{"b": "4", "c": "3"}
	if len(rec2.Keys) != len(want) {
		t.Fatalf("keys: %v", rec2.Keys)
	}
	for k, v := range want {
		if string(rec2.Keys[k]) != v {
			t.Fatalf("key %s = %q, want %q", k, rec2.Keys[k], v)
		}
	}
}

func TestOutOfOrderTicksResolvePerKey(t *testing.T) {
	// Append order and tick order disagree (possible when commits from
	// different threads reach Append out of commit order): the higher
	// tick must win regardless of seq order.
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeRelaxed)
	mustAppend(t, l, 9, set("k", "later"))
	mustAppend(t, l, 5, set("k", "earlier"))
	l.Close()
	l2, rec := openMem(t, fs, ModeRelaxed)
	defer l2.Close()
	if string(rec.Keys["k"]) != "later" {
		t.Fatalf("k = %q, want later", rec.Keys["k"])
	}
}

func TestModesAllRecoverAfterCleanClose(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeRelaxed, ModeStrict} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := NewMemFS()
			l, _ := openMem(t, fs, mode)
			for i := 0; i < 100; i++ {
				tk := mustAppend(t, l, uint64(i+1), set(fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%d", i)))
				if err := tk.Wait(); err != nil {
					t.Fatalf("Wait: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2, rec := openMem(t, fs, mode)
			defer l2.Close()
			if len(rec.Keys) != 10 {
				t.Fatalf("keys after close: %d, want 10", len(rec.Keys))
			}
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("k%02d", i)
				want := fmt.Sprintf("v%d", 90+i)
				if string(rec.Keys[k]) != want {
					t.Fatalf("%s = %q, want %q", k, rec.Keys[k], want)
				}
			}
		})
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	defer l.Close()
	const G, N = 8, 50
	var wg sync.WaitGroup
	var tick atomic.Uint64
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				tk, err := l.Append(tick.Add(1), []Op{set(fmt.Sprintf("g%d", g), "v")})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := tk.Wait(); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := l.Stats()
	if s.Records != G*N {
		t.Fatalf("records = %d, want %d", s.Records, G*N)
	}
	// Group commit: batches (and so fsyncs) must not exceed records,
	// and with concurrent appenders there is usually real coalescing;
	// the hard assertion is only the invariant, not the ratio.
	if s.Batches > s.Records || s.Fsyncs == 0 {
		t.Fatalf("stats: %+v", s)
	}
	t.Logf("records=%d batches=%d fsyncs=%d", s.Records, s.Batches, s.Fsyncs)
}

func TestRotationCheckpointPrune(t *testing.T) {
	fs := NewMemFS()
	l, rec, err := Open(Options{Dir: "d", FS: fs, Mode: ModeRelaxed, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	state := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i%20)
		v := fmt.Sprintf("v%d", i)
		state[k] = v
		mustAppend(t, l, uint64(i+1), set(k, v)).Wait()
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if l.Stats().Rotations == 0 {
		t.Fatalf("expected rotations with 512-byte segments: %+v", l.Stats())
	}
	upTo := l.LastAssignedSeq()
	err = l.Checkpoint(upTo, len(state), func(emit func(string, []byte) error) error {
		for k, v := range state {
			if err := emit(k, []byte(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// All pre-checkpoint segments must be gone.
	names, _ := fs.ReadDir("d")
	segs, ckpts := 0, 0
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs++
		}
		if _, ok := parseCkptName(n); ok {
			ckpts++
		}
	}
	if ckpts != 1 || segs != 1 {
		t.Fatalf("after checkpoint: %v", names)
	}
	// A few post-checkpoint appends, then recover.
	mustAppend(t, l, 1000, set("k000", "post")).Wait()
	l.Close()

	l2, rec2 := openMem(t, fs, ModeRelaxed)
	l2.Close()
	if rec2.CheckpointSeq != upTo || rec2.CheckpointKeys != len(state) {
		t.Fatalf("recovered: %+v", rec2)
	}
	if rec2.Records != 1 {
		t.Fatalf("replayed %d records, want 1 (post-checkpoint only)", rec2.Records)
	}
	state["k000"] = "post"
	for k, v := range state {
		if string(rec2.Keys[k]) != v {
			t.Fatalf("%s = %q, want %q", k, rec2.Keys[k], v)
		}
	}

	// Duplicate replay idempotence: recovering the same image twice
	// (the first recovery truncates nothing here) gives the same state.
	l3, rec3 := openMem(t, fs, ModeRelaxed)
	l3.Close()
	if len(rec3.Keys) != len(rec2.Keys) {
		t.Fatalf("second recovery diverged: %d vs %d keys", len(rec3.Keys), len(rec2.Keys))
	}
}

func TestSyncFailureWedgesLog(t *testing.T) {
	fs := NewMemFS()
	boom := errors.New("simulated EIO")
	inj := &ScriptInjector{FailSyncAt: 3, SyncErr: boom} // syncs 1-2: segment header syncs
	var failures atomic.Int32
	l, _, err := Open(Options{
		Dir: "d", FS: &InjectFS{FS: fs, Inj: inj}, Mode: ModeStrict,
		OnFailure: func(error) { failures.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First append's fsync is sync #3 (header sync + dir sync are 1-2
	// only if the FS routes them through Sync; count empirically: keep
	// appending until the log wedges).
	var werr error
	for i := 0; i < 10; i++ {
		tk, err := l.Append(uint64(i+1), []Op{set("k", "v")})
		if err != nil {
			werr = err
			break
		}
		if err := tk.Wait(); err != nil {
			werr = err
			break
		}
	}
	if werr == nil || !errors.Is(werr, ErrFailed) && !errors.Is(werr, boom) {
		t.Fatalf("expected wedge, got %v", werr)
	}
	if !l.Failed() {
		t.Fatal("log not marked failed")
	}
	if _, err := l.Append(99, []Op{set("k", "v")}); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after wedge: %v", err)
	}
	if failures.Load() != 1 {
		t.Fatalf("OnFailure fired %d times", failures.Load())
	}
	l.Close()
}

func TestShortWriteWedgesButEarlierRecordsSurvive(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	mustAppend(t, l, 1, set("a", "1")).Wait()
	l.Close()

	// Reopen with an injector that cuts the second record's write short.
	inj := &ScriptInjector{CutTo: 3}
	l2, _, err := Open(Options{Dir: "d", FS: &InjectFS{FS: fs, Inj: inj}, Mode: ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l2, 2, set("b", "2")).Wait()
	inj.mu.Lock()
	inj.FailWriteAt = inj.writes + 1
	inj.mu.Unlock()
	tk := mustAppend(t, l2, 3, set("c", "3"))
	if err := tk.Wait(); err == nil {
		t.Fatal("short write not surfaced")
	}
	l2.Close()

	l3, rec := openMem(t, fs, ModeStrict)
	defer l3.Close()
	if string(rec.Keys["a"]) != "1" || string(rec.Keys["b"]) != "2" {
		t.Fatalf("acked records lost: %v", rec.Keys)
	}
	if _, ok := rec.Keys["c"]; ok {
		t.Fatal("failed record resurfaced")
	}
	if !rec.TornTail {
		t.Fatal("expected torn tail from the 3-byte fragment")
	}
}

func TestRelaxedIntervalSyncs(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeRelaxed,
		FsyncEvery: 1 << 30, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, 1, set("a", "1")).Wait()
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
}
