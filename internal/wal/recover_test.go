package wal

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// segFiles lists segment file names currently in dir "d".
func segFiles(t *testing.T, fs *MemFS) []string {
	t.Helper()
	names, err := fs.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	return segs
}

func TestRecoverEmptyDataDir(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, ModeStrict)
	defer l.Close()
	if len(rec.Keys) != 0 || rec.CheckpointSeq != 0 || rec.Segments != 0 ||
		rec.TornTail || rec.Epoch != 1 || rec.NextSeq != 1 {
		t.Fatalf("empty dir: %+v", rec)
	}
}

func TestRecoverCheckpointWithNoWAL(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	mustAppend(t, l, 1, set("a", "1")).Wait()
	mustAppend(t, l, 2, set("b", "2")).Wait()
	upTo := l.LastAssignedSeq()
	err := l.Checkpoint(upTo, 2, func(emit func(string, []byte) error) error {
		emit("a", []byte("1"))
		return emit("b", []byte("2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Remove every segment file, leaving only the checkpoint.
	for _, n := range segFiles(t, fs) {
		if err := fs.Remove(filepath.Join("d", n)); err != nil {
			t.Fatal(err)
		}
	}
	l2, rec := openMem(t, fs, ModeStrict)
	defer l2.Close()
	if rec.CheckpointSeq != upTo || rec.Records != 0 || rec.Segments != 0 {
		t.Fatalf("ckpt-only recovery: %+v", rec)
	}
	if string(rec.Keys["a"]) != "1" || string(rec.Keys["b"]) != "2" {
		t.Fatalf("keys: %v", rec.Keys)
	}
	if rec.NextSeq != upTo+1 {
		t.Fatalf("NextSeq = %d, want %d", rec.NextSeq, upTo+1)
	}
}

func TestRecoverWALWithNoCheckpoint(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	mustAppend(t, l, 1, set("a", "1")).Wait()
	mustAppend(t, l, 2, del("a")).Wait()
	mustAppend(t, l, 3, set("b", "2")).Wait()
	l.Close()
	l2, rec := openMem(t, fs, ModeStrict)
	defer l2.Close()
	if rec.CheckpointSeq != 0 || rec.Records != 3 {
		t.Fatalf("wal-only recovery: %+v", rec)
	}
	if _, ok := rec.Keys["a"]; ok {
		t.Fatal("deleted key resurfaced")
	}
	if string(rec.Keys["b"]) != "2" {
		t.Fatalf("keys: %v", rec.Keys)
	}
}

func TestRecoverTornFinalRecord(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	mustAppend(t, l, 1, set("a", "1")).Wait()
	mustAppend(t, l, 2, set("b", "2")).Wait()
	l.Close()
	segs := segFiles(t, fs)
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	name := filepath.Join("d", segs[0])
	data := fs.ReadFile(name)
	// Chop the final record mid-payload: a torn tail.
	fs.WriteFile(name, data[:len(data)-3])

	l2, rec := openMem(t, fs, ModeStrict)
	l2.Close()
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	if string(rec.Keys["a"]) != "1" {
		t.Fatalf("keys: %v", rec.Keys)
	}
	if _, ok := rec.Keys["b"]; ok {
		t.Fatal("torn record applied")
	}

	// Idempotence: the torn segment was truncated at the last clean
	// record, so a second recovery sees a clean log and the same state.
	l3, rec3 := openMem(t, fs, ModeStrict)
	l3.Close()
	if rec3.TornTail {
		t.Fatal("tail still torn after truncation")
	}
	if string(rec3.Keys["a"]) != "1" || len(rec3.Keys) != len(rec.Keys) {
		t.Fatalf("second recovery diverged: %v vs %v", rec3.Keys, rec.Keys)
	}
}

func TestRecoverCRCCorruptionMidSegment(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustAppend(t, l, uint64(i+1), set(fmt.Sprintf("k%02d", i), "v")).Wait()
	}
	l.Close()
	segs := segFiles(t, fs)
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %v", segs)
	}
	// Flip one byte in the middle of the SECOND segment's records.
	name := filepath.Join("d", segs[1])
	data := append([]byte(nil), fs.ReadFile(name)...)
	data[segHeaderSize+(len(data)-segHeaderSize)/2] ^= 0x40
	fs.WriteFile(name, data)

	l2, rec := openMem(t, fs, ModeStrict)
	l2.Close()
	if !rec.TornTail {
		t.Fatal("corruption not detected")
	}
	// Everything before the corrupt record must be present, everything
	// at or after it (including all later segments) dropped.
	if string(rec.Keys["k00"]) != "v" {
		t.Fatalf("first segment lost: %v", rec.Keys)
	}
	if _, ok := rec.Keys["k39"]; ok {
		t.Fatal("records after the crash point survived")
	}
	// Idempotence: the first recovery truncated the corrupt segment and
	// removed the later ones, so a second recovery must see a clean log
	// and reach the same state (the dropped records must not return).
	l3, rec3 := openMem(t, fs, ModeStrict)
	l3.Close()
	if rec3.TornTail {
		t.Fatal("still torn after truncation")
	}
	if len(rec3.Keys) != len(rec.Keys) {
		t.Fatalf("second recovery diverged: %d vs %d keys", len(rec3.Keys), len(rec.Keys))
	}
	if _, ok := rec3.Keys["k39"]; ok {
		t.Fatal("dropped records returned on second recovery")
	}
}

func TestRecoverDuplicateReplayIdempotence(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, ModeStrict)
	mustAppend(t, l, 1, set("a", "old")).Wait()
	mustAppend(t, l, 2, set("a", "new")).Wait()
	l.Close()
	segs := segFiles(t, fs)
	name := filepath.Join("d", segs[0])
	data := fs.ReadFile(name)
	// Duplicate the whole record region (every record appears twice,
	// same seqs, same ticks) — replay must converge to the same state.
	dup := append(append([]byte(nil), data...), data[segHeaderSize:]...)
	fs.WriteFile(name, dup)

	l2, rec := openMem(t, fs, ModeStrict)
	l2.Close()
	if string(rec.Keys["a"]) != "new" || len(rec.Keys) != 1 {
		t.Fatalf("duplicate replay: %v", rec.Keys)
	}
	if rec.Records != 4 {
		t.Fatalf("records = %d, want 4 (two duplicated)", rec.Records)
	}
}

func TestRecoverMissingPrefixFails(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustAppend(t, l, uint64(i+1), set(fmt.Sprintf("k%02d", i), "v")).Wait()
	}
	upTo := l.LastAssignedSeq()
	err = l.Checkpoint(upTo, 40, func(emit func(string, []byte) error) error {
		for i := 0; i < 40; i++ {
			if err := emit(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 100, set("post", "v")).Wait()
	l.Close()
	// Destroy the checkpoint: recovery must refuse to serve from a
	// directory whose surviving segments are missing their prefix.
	names, _ := fs.ReadDir("d")
	for _, n := range names {
		if _, ok := parseCkptName(n); ok {
			fs.Remove(filepath.Join("d", n))
		}
	}
	if _, _, err := Open(Options{Dir: "d", FS: fs, Mode: ModeStrict}); err == nil ||
		!strings.Contains(err.Error(), "missing its prefix") {
		t.Fatalf("expected missing-prefix failure, got %v", err)
	}
}
