package wal

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Recovered describes what Open reconstructed from the data directory.
type Recovered struct {
	// Keys is the recovered live key space: latest valid checkpoint
	// plus every WAL record after it, resolved per key by highest
	// (epoch, commit tick).
	Keys map[string][]byte
	// CheckpointSeq is the sequence the loaded checkpoint covers (0 if
	// none was found).
	CheckpointSeq uint64
	// CheckpointKeys counts pairs loaded from the checkpoint.
	CheckpointKeys int
	// Records counts WAL records replayed (seq > CheckpointSeq);
	// Skipped counts records at or below it.
	Records uint64
	Skipped uint64
	// Segments counts WAL segment files scanned.
	Segments int
	// TornTail reports that the scan hit a torn or CRC-failing record;
	// the segment was truncated at the last clean record and any later
	// segments discarded, treating that point as the crash.
	TornTail bool
	// Epoch is the fresh epoch this process run will stamp on new
	// segments (always greater than any epoch seen on disk).
	Epoch uint64
	// NextSeq is the first sequence number new appends will use.
	NextSeq uint64
}

// replayEntry is one key's current winner during the replay fold.
type replayEntry struct {
	epoch uint64
	tick  uint64
	val   []byte
	del   bool
}

// Open recovers the data directory and returns a ready Log positioned
// after the last durable record, plus a description of what was
// recovered. A fresh/empty directory yields an empty Recovered and a
// log starting at seq 1.
func Open(opts Options) (*Log, *Recovered, error) {
	o := opts.withDefaults()
	fs, dir := o.FS, o.Dir
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{Keys: make(map[string][]byte)}

	// Latest valid checkpoint wins; leftovers (older checkpoints,
	// interrupted .tmp files) are cleaned by the next checkpoint.
	var ckptSeqs []uint64
	segFirst := map[uint64]string{}
	var segSeqs []uint64
	for _, name := range names {
		if s, ok := parseCkptName(name); ok {
			ckptSeqs = append(ckptSeqs, s)
		} else if s, ok := parseSegName(name); ok {
			segFirst[s] = name
			segSeqs = append(segSeqs, s)
		}
	}
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] })
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })

	base := map[string][]byte{}
	for _, s := range ckptSeqs {
		pairs, err := readCheckpoint(fs, filepath.Join(dir, ckptName(s)))
		if err != nil { //tbtm:ignore walerr — fallback policy: a bad checkpoint is skipped, the previous one is authoritative
			continue // corrupt or torn checkpoint: try the previous one
		}
		base = pairs
		rec.CheckpointSeq = s
		rec.CheckpointKeys = len(pairs)
		break
	}

	// Scan segments in seq order, folding records newer than the
	// checkpoint into the replay map. The first torn or CRC-failing
	// record is the crash point: truncate there, discard later
	// segments.
	replay := map[string]*replayEntry{}
	var maxEpoch, maxSeq uint64
	maxSeq = rec.CheckpointSeq
scan:
	for i, first := range segSeqs {
		name := filepath.Join(dir, segFirst[first])
		data, err := readAll(fs, name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		epoch, hdrFirst, err := parseSegHeader(data)
		if err != nil || hdrFirst != first {
			// An unreadable header means the segment never became
			// durable (crash during creation): treat like a torn tail at
			// offset zero.
			rec.TornTail = true
			removeFrom(fs, dir, segSeqs[i:], segFirst)
			break scan
		}
		rec.Segments++
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
		off := segHeaderSize
		for off < len(data) {
			r, n, err := nextRecord(data[off:])
			if err != nil {
				// Crash point: drop the tail of this segment and every
				// later segment.
				rec.TornTail = true
				if terr := fs.Truncate(name, int64(off)); terr != nil {
					return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, terr)
				}
				removeFrom(fs, dir, segSeqs[i+1:], segFirst)
				break scan
			}
			off += n
			if r.seq > maxSeq {
				maxSeq = r.seq
			}
			if r.seq <= rec.CheckpointSeq {
				rec.Skipped++
				continue
			}
			rec.Records++
			for j := range r.ops {
				op := &r.ops[j]
				cur := replay[op.Key]
				if cur == nil {
					replay[op.Key] = &replayEntry{epoch: epoch, tick: r.tick, val: op.Val, del: op.Del}
					continue
				}
				if epoch > cur.epoch || (epoch == cur.epoch && r.tick >= cur.tick) {
					cur.epoch, cur.tick, cur.val, cur.del = epoch, r.tick, op.Val, op.Del
				}
			}
		}
	}

	// A checkpoint-less directory whose earliest segment does not start
	// at seq 1 has lost its prefix (e.g. the only checkpoint was
	// corrupted after its covered segments were pruned). Serving from
	// it would silently drop data — fail instead.
	if rec.CheckpointSeq == 0 && len(segSeqs) > 0 {
		if lowest := segSeqs[0]; lowest > 1 {
			return nil, nil, fmt.Errorf("wal: no valid checkpoint but first segment starts at seq %d: data directory is missing its prefix", lowest)
		}
	}

	for k, v := range base {
		rec.Keys[k] = v
	}
	for k, e := range replay {
		if e.del {
			delete(rec.Keys, k)
		} else {
			rec.Keys[k] = e.val
		}
	}

	rec.Epoch = maxEpoch + 1
	rec.NextSeq = maxSeq + 1

	l := &Log{
		opts:    o,
		fs:      fs,
		dir:     dir,
		epoch:   rec.Epoch,
		nextSeq: rec.NextSeq,
		ckptSeq: rec.CheckpointSeq,
		// Everything recovered is file-visible: a follower's file phase
		// covers it without waiting for a fresh append.
		lastWritten: rec.NextSeq - 1,
		work:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	// Pre-existing segments stay until a checkpoint passes them; a new
	// active segment always starts at NextSeq, so every segment belongs
	// to exactly one epoch. Segments at or past NextSeq hold no live
	// records (a crash can leave a freshly rotated, still-empty segment
	// behind) — the new active segment may reuse their name, so they
	// must not be tracked for pruning.
	for i, first := range segSeqs {
		fsName, ok := segFirst[first]
		if !ok || first >= rec.NextSeq {
			continue
		}
		last := rec.NextSeq - 1
		if i+1 < len(segSeqs) {
			last = segSeqs[i+1] - 1
		}
		l.segments = append(l.segments, segInfo{name: filepath.Join(dir, fsName), first: first, last: last})
	}
	l.iomu.Lock()
	err = l.openSegmentLocked(rec.NextSeq)
	l.iomu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	go l.run()
	return l, rec, nil
}

// removeFrom deletes the named segments (post-crash-point debris) and
// forgets them so the Log does not track them. Removal failures are
// ignored: recovery already decided these bytes are dead, and the next
// recovery will re-discard them.
func removeFrom(fs FS, dir string, firsts []uint64, segFirst map[uint64]string) {
	for _, f := range firsts {
		if name, ok := segFirst[f]; ok {
			fs.Remove(filepath.Join(dir, name))
			delete(segFirst, f)
		}
	}
}

func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
